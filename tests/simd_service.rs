//! Multi-client soak of the resident simulation daemon: several
//! concurrent clients sweep the same request matrix against one live
//! daemon over TCP, at more than one pool size, and every successful
//! response must be byte-identical to a direct single-run execution of
//! the same spec. The daemon must then drain cleanly with reconciled
//! counters.

use simd::client::{request, ClientOpts};
use simd::exec::{execute, WarmSlot};
use simd::pool::PoolConfig;
use simd::proto::{report_slice, run_request_line, RunRequest, Spec};
use simd::server::{serve_with, ServeOpts, ServeSummary};
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::mpsc;
use std::thread::JoinHandle;

fn stream_req(id: u64, elems: u64, threads: usize) -> RunRequest {
    RunRequest {
        id,
        spec: Spec::Stream {
            preset: "chick".into(),
            elems,
            threads,
            kernel: "add".into(),
            strategy: "serial".into(),
            single_nodelet: true,
            stack_touch_period: 4,
        },
        deadline_ms: None,
        max_events: None,
        chaos: None,
    }
}

fn start_daemon(workers: usize, queue_cap: usize) -> (SocketAddr, JoinHandle<ServeSummary>) {
    let (addr_tx, addr_rx) = mpsc::channel();
    let handle = std::thread::spawn(move || {
        let opts = ServeOpts {
            addr: "127.0.0.1:0".into(),
            pool: PoolConfig {
                workers,
                queue_cap,
                selfcheck: true,
                ..PoolConfig::default()
            },
            drain_ms: 30_000,
            max_conns: 16,
            telemetry_path: None,
            handle_signals: false,
            metrics_addr: None,
        };
        serve_with(opts, move |addr| addr_tx.send(addr).unwrap()).expect("daemon failed")
    });
    let addr = addr_rx.recv().expect("daemon never became ready");
    (addr, handle)
}

/// Direct single-run execution: the byte-identity oracle.
fn oracle(matrix: &[(u64, usize)]) -> HashMap<(u64, usize), String> {
    matrix
        .iter()
        .map(|&(elems, threads)| {
            let out = execute(&mut WarmSlot::new(), &stream_req(0, elems, threads), None)
                .expect("direct run failed");
            ((elems, threads), out.report_json)
        })
        .collect()
}

#[test]
fn concurrent_clients_get_byte_identical_reports_at_any_pool_size() {
    let matrix: Vec<(u64, usize)> = vec![(256, 4), (512, 8), (1024, 4)];
    let expected = oracle(&matrix);
    const CLIENTS: usize = 3;

    for &workers in &[1usize, 3] {
        // A tight queue on the multi-worker daemon exercises busy
        // rejections; the client's seeded backoff must absorb them.
        let queue_cap = if workers == 1 { 2 } else { 4 };
        let (addr, daemon) = start_daemon(workers, queue_cap);
        let opts = ClientOpts {
            addr: addr.to_string(),
            retries: 50,
            backoff_ms: 2,
            seed: 7,
        };

        std::thread::scope(|scope| {
            for c in 0..CLIENTS {
                let opts = &opts;
                let matrix = &matrix;
                let expected = &expected;
                scope.spawn(move || {
                    for (i, &(elems, threads)) in matrix.iter().enumerate() {
                        let id = (c * 100 + i) as u64;
                        let line = run_request_line(&stream_req(id, elems, threads));
                        let reply = request(opts, &line).expect("request failed");
                        assert!(
                            reply.contains("\"ok\":true"),
                            "client {c} request {i}: {reply}"
                        );
                        assert!(reply.contains(&format!("\"id\":{id},")));
                        let report = report_slice(&reply).expect("missing report");
                        assert_eq!(
                            report,
                            expected[&(elems, threads)],
                            "pool size {workers}: daemon response diverged from direct run"
                        );
                    }
                });
            }
        });

        // Health endpoint reflects the completed work.
        let health = request(&opts, "{\"op\":\"health\",\"id\":999}").unwrap();
        assert!(health.contains("\"ok\":true"), "{health}");
        assert!(health.contains("\"draining\":false"), "{health}");
        assert!(health.contains("\"selfcheck_failures\":0"), "{health}");

        // Graceful shutdown: drain must quiesce and counters reconcile.
        let bye = request(&opts, "{\"op\":\"shutdown\",\"id\":1000}").unwrap();
        assert!(bye.contains("\"shutting_down\":true"), "{bye}");
        let summary = daemon.join().expect("daemon thread panicked");
        assert!(summary.drained, "drain did not quiesce: {summary:?}");
        assert!(
            summary.violations.is_empty(),
            "counter conservation violated: {:?}",
            summary.violations
        );
        let s = summary.stats;
        assert_eq!(s.completed_ok, (CLIENTS * matrix.len()) as u64);
        assert_eq!(s.in_flight, 0);
        assert_eq!(s.failed_panic, 0);
        assert!(
            s.warm_hits >= 1,
            "pool size {workers} never reused a warm engine: {s:?}"
        );
    }
}
