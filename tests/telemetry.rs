//! Telemetry determinism and reconciliation, end to end:
//!
//! * the same seed + config must yield **byte-identical** JSONL event
//!   logs, Chrome traces, and report JSON across runs;
//! * trace event counts must reconcile exactly with the engine's
//!   `NodeletCounters` totals (spawns, migrations, NACKs);
//! * every emitted artifact must pass the JSON syntax validator;
//! * telemetry stays `None` on reports when it was never enabled.
//!
//! These tests use the engine-level `enable_trace` / `enable_timeline`
//! API directly (not the process-global config), so they are safe under
//! the parallel test runner.

use desim::time::Time;
use emu_bench::telemetry;
use emu_core::prelude::*;

fn nl(i: u32) -> NodeletId {
    NodeletId(i)
}

/// A small cross-nodelet workload: remote spawns that load and store on
/// rotating nodelets, plus an atomic — exercises spawn, migration,
/// load, store, atomic, and remote-packet trace kinds.
fn busy_script() -> Vec<Op> {
    let mut ops = Vec::new();
    for i in 0..6u32 {
        ops.push(Op::Spawn {
            kernel: Box::new(ScriptKernel::new(vec![
                Op::Load {
                    addr: GlobalAddr::new(nl(i % 8), 0),
                    bytes: 8,
                },
                Op::Store {
                    addr: GlobalAddr::new(nl((i + 3) % 8), 0),
                    bytes: 8,
                },
            ])),
            place: Placement::On(nl(i % 8)),
        });
    }
    ops.push(Op::AtomicAdd {
        addr: GlobalAddr::new(nl(7), 0),
        bytes: 8,
    });
    ops
}

fn traced_run(cfg: MachineConfig) -> RunReport {
    let mut e = Engine::new(cfg).expect("engine");
    e.enable_trace(1 << 16);
    e.enable_timeline(Time::from_us(1))
        .expect("timeline bucket");
    e.spawn_at(nl(0), Box::new(ScriptKernel::new(busy_script())))
        .expect("spawn");
    e.run().expect("run")
}

fn nacky_config() -> MachineConfig {
    let mut cfg = presets::chick_prototype();
    cfg.faults.mig_nack_prob = 0.5;
    cfg.faults.mig_retry_budget = 64;
    cfg
}

#[test]
fn identical_runs_yield_byte_identical_artifacts() {
    let a = traced_run(presets::chick_prototype());
    let b = traced_run(presets::chick_prototype());

    let jsonl_a = telemetry::trace_jsonl(&a);
    let jsonl_b = telemetry::trace_jsonl(&b);
    assert_eq!(jsonl_a, jsonl_b, "JSONL event logs must be byte-identical");

    let report_a = telemetry::report_set_json("det", None, std::slice::from_ref(&a));
    let report_b = telemetry::report_set_json("det", None, std::slice::from_ref(&b));
    assert_eq!(report_a, report_b, "report JSON must be byte-identical");

    let chrome_a = telemetry::chrome_trace(&a);
    let chrome_b = telemetry::chrome_trace(&b);
    assert_eq!(chrome_a, chrome_b, "Chrome traces must be byte-identical");
}

#[test]
fn artifacts_pass_the_json_validator() {
    let r = traced_run(presets::chick_prototype());
    assert!(telemetry::json_ok(&telemetry::chrome_trace(&r)));
    assert!(telemetry::json_ok(&telemetry::report_set_json(
        "check",
        None,
        std::slice::from_ref(&r)
    )));
    assert!(telemetry::jsonl_ok(&telemetry::trace_jsonl(&r)));
}

#[test]
fn trace_counts_reconcile_with_counters() {
    let r = traced_run(presets::chick_prototype());
    let log = r.trace.as_ref().expect("trace enabled");
    assert!(log.is_lossless(), "workload must fit the ring");
    assert_eq!(log.count_of(TraceKind::Spawn), r.total_spawns());
    assert_eq!(log.count_of(TraceKind::MigrateOut), r.total_migrations());
    let sums = |f: fn(&NodeletCounters) -> u64| r.nodelets.iter().map(f).sum::<u64>();
    assert_eq!(
        log.count_of(TraceKind::MigrateIn),
        sums(|n| n.migrations_in)
    );
    assert_eq!(log.count_of(TraceKind::LocalLoad), sums(|n| n.local_loads));
    assert_eq!(
        log.count_of(TraceKind::LocalStore),
        sums(|n| n.local_stores)
    );
    assert_eq!(log.count_of(TraceKind::Atomic), sums(|n| n.atomics));
}

#[test]
fn nacks_and_retries_reconcile_on_a_faulted_machine() {
    let r = traced_run(nacky_config());
    let log = r.trace.as_ref().expect("trace enabled");
    assert!(r.total_nacks() > 0, "fault plan must actually NACK");
    assert_eq!(log.count_of(TraceKind::MigNack), r.total_nacks());
    assert_eq!(log.count_of(TraceKind::MigRetry), r.total_retries());

    // The faulted run must be deterministic too, NACK schedule and all.
    let again = traced_run(nacky_config());
    assert_eq!(
        telemetry::trace_jsonl(&r),
        telemetry::trace_jsonl(&again),
        "faulted-run JSONL must be byte-identical"
    );
}

#[test]
fn untraced_reports_serialize_with_null_telemetry() {
    let mut e = Engine::new(presets::chick_prototype()).expect("engine");
    e.spawn_at(nl(0), Box::new(ScriptKernel::new(busy_script())))
        .expect("spawn");
    let r = e.run().expect("run");
    assert!(r.trace.is_none());
    assert!(r.timelines.is_none());
    let json = telemetry::report_set_json("off", None, std::slice::from_ref(&r));
    assert!(telemetry::json_ok(&json));
    assert!(json.contains("\"trace\":null"));
    assert!(json.contains("\"timelines\":null"));
    // The JSONL degenerates to just the meta line.
    let jsonl = telemetry::trace_jsonl(&r);
    assert_eq!(jsonl.lines().count(), 1);
    assert!(telemetry::jsonl_ok(&jsonl));
}
