//! The sharded parallel scheduler must never change results: the full
//! run report — counters, occupancy, histograms, the merged event trace
//! and its drop count — is identical at every worker count, and
//! quick-mode figure CSVs/telemetry exports are byte-identical at
//! `--sim-threads 1/2/4`.

use emu_chick::prelude::*;

/// Build a seeded, faulted engine with a deliberately small trace ring
/// (so drop accounting is exercised) and a cross-shard-heavy workload.
fn seeded_run(mut cfg: MachineConfig, fault_seed: u64, workers: usize) -> RunReport {
    cfg.faults.seed = fault_seed;
    cfg.faults.mig_nack_prob = 0.25;
    cfg.faults.mig_retry_budget = 64;
    cfg.faults.ecc_prob = 0.15;
    let total = cfg.total_nodelets();
    let mut e = Engine::new(cfg).unwrap();
    e.set_sim_threads(workers);
    e.enable_trace(64); // tiny ring: the drop count must also agree
    for t in 0..6u32 {
        let here = NodeletId(t % total);
        let mut ops = Vec::new();
        for rep in 0..4u32 {
            let there = NodeletId((t * 7 + rep * 5 + 3) % total);
            ops.extend([
                Op::Load {
                    addr: GlobalAddr::new(there, 0x40),
                    bytes: 64,
                },
                Op::Store {
                    addr: GlobalAddr::new(here, 0x80),
                    bytes: 32,
                },
                Op::AtomicAdd {
                    addr: GlobalAddr::new(there, 0xc0),
                    bytes: 8,
                },
                Op::MigrateTo {
                    nodelet: NodeletId((t + rep + 1) % total),
                },
                Op::Compute { cycles: 40 },
            ]);
        }
        e.spawn_at(here, Box::new(ScriptKernel::new(ops))).unwrap();
    }
    e.run().unwrap()
}

#[test]
fn seeded_reports_identical_at_worker_counts_1_2_4() {
    type PresetFn = fn() -> MachineConfig;
    let presets: [(&str, PresetFn); 3] = [
        ("chick", presets::chick_prototype),
        ("chick-8node", presets::chick_8node_prototype),
        ("emu64", presets::emu64_full_speed),
    ];
    for (name, preset) in presets {
        for fault_seed in [1u64, 42] {
            let baseline = seeded_run(preset(), fault_seed, 1);
            let trace = baseline.trace.as_ref().expect("trace enabled");
            assert!(
                trace.dropped > 0,
                "{name}: ring must overflow to test drops"
            );
            for workers in [2usize, 4] {
                let parallel = seeded_run(preset(), fault_seed, workers);
                assert_eq!(
                    format!("{baseline:?}"),
                    format!("{parallel:?}"),
                    "{name} seed {fault_seed}: report differs at {workers} workers"
                );
            }
        }
    }
}

/// Figure-level byte-identity. One test function: the sim-threads knob,
/// the report collector, and `EMU_QUICK`/`EMU_RESULTS_DIR` are
/// process-global, and tests within one binary share the process.
#[test]
fn figures_are_byte_identical_at_any_sim_thread_count() {
    use emu_bench::output::Table;
    use emu_bench::{figures, telemetry};
    use emu_core::trace;

    type FigureFn = fn() -> Result<Table, emu_core::fault::SimError>;
    std::env::set_var("EMU_QUICK", "1");
    let base = std::env::temp_dir().join(format!("emu_pdesdet_{}", std::process::id()));
    let figs: [(&str, FigureFn); 2] = [("fig04", figures::fig04), ("fig10", figures::fig10)];
    for (name, f) in figs {
        let mut outs: Vec<(Vec<u8>, String)> = Vec::new();
        for sim_threads in [1usize, 2, 4] {
            emu_core::engine::set_sim_threads(sim_threads);
            trace::collect_reports(true);
            let table = f().expect("figure must succeed");
            let runs = trace::take_reports();
            trace::collect_reports(false);
            let report = telemetry::report_set_json(name, Some(&table), &runs);
            let dir = base.join(format!("{name}_s{sim_threads}"));
            std::env::set_var("EMU_RESULTS_DIR", &dir);
            let path = table.write_csv(name).expect("csv write");
            std::env::remove_var("EMU_RESULTS_DIR");
            outs.push((std::fs::read(path).expect("csv read"), report));
        }
        emu_core::engine::set_sim_threads(1);
        let (csv1, rep1) = &outs[0];
        assert!(!csv1.is_empty(), "{name}: empty CSV");
        assert!(telemetry::json_ok(rep1), "{name}: report JSON invalid");
        for (i, (csv, rep)) in outs.iter().enumerate().skip(1) {
            let threads = [1, 2, 4][i];
            assert_eq!(
                csv1, csv,
                "{name}: CSV differs between --sim-threads 1 and {threads}"
            );
            assert_eq!(
                rep1, rep,
                "{name}: report JSON differs between --sim-threads 1 and {threads}"
            );
        }
    }
    std::env::remove_var("EMU_QUICK");
    let _ = std::fs::remove_dir_all(&base);
}
