//! The parallel sweep executor must not change results: quick-mode
//! figure CSVs and telemetry exports are byte-identical at `-j 1` and
//! `-j 4`.
//!
//! One test function: the jobs knob, the report collector, and the
//! `EMU_QUICK`/`EMU_RESULTS_DIR` environment are process-global, and
//! tests within one binary share the process.

use emu_bench::output::Table;
use emu_bench::{figures, runcfg, telemetry};
use emu_core::fault::SimError;
use emu_core::trace;
use std::path::PathBuf;

type FigureFn = fn() -> Result<Table, SimError>;

/// Run `f` with the collector armed; return (csv bytes, report json).
fn run_collected(
    name: &str,
    dir: &std::path::Path,
    f: impl FnOnce() -> Result<Table, SimError>,
) -> (Vec<u8>, String) {
    trace::collect_reports(true);
    let table = f().expect("figure must succeed");
    let runs = trace::take_reports();
    trace::collect_reports(false);
    let report = telemetry::report_set_json(name, Some(&table), &runs);
    std::env::set_var("EMU_RESULTS_DIR", dir);
    let path = table.write_csv(name).expect("csv write");
    std::env::remove_var("EMU_RESULTS_DIR");
    (std::fs::read(path).expect("csv read"), report)
}

#[test]
fn figures_are_byte_identical_at_any_job_count() {
    std::env::set_var("EMU_QUICK", "1");
    let base = std::env::temp_dir().join(format!("emu_pardet_{}", std::process::id()));
    let figs: [(&str, FigureFn); 2] = [("fig04", figures::fig04), ("fig10", figures::fig10)];
    for (name, f) in figs {
        let mut outs: Vec<(Vec<u8>, String)> = Vec::new();
        for jobs in [1usize, 4] {
            runcfg::set_jobs(jobs);
            let dir: PathBuf = base.join(format!("{name}_j{jobs}"));
            outs.push(run_collected(name, &dir, f));
        }
        runcfg::set_jobs(0);
        let (csv1, rep1) = &outs[0];
        let (csv4, rep4) = &outs[1];
        assert!(!csv1.is_empty(), "{name}: empty CSV");
        assert_eq!(csv1, csv4, "{name}: CSV differs between -j1 and -j4");
        assert_eq!(
            rep1, rep4,
            "{name}: report JSON differs between -j1 and -j4"
        );
        assert!(telemetry::json_ok(rep1), "{name}: report JSON invalid");
    }
    std::env::remove_var("EMU_QUICK");
    let _ = std::fs::remove_dir_all(&base);
}
