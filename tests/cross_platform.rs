//! Cross-crate integration: the same workloads must produce identical
//! functional results on every platform and layout, regardless of how
//! differently the machines schedule them.

use emu_chick::prelude::*;
use membench::chase::{cpu::run_chase_cpu, run_chase_emu, ChaseConfig, ShuffleMode};
use membench::spmv_cpu::{run_spmv_cpu, CpuSpmvConfig, CpuStrategy};
use membench::spmv_emu::{run_spmv_emu, x_vector, EmuLayout, EmuSpmvConfig};
use membench::stream::{
    cpu::{run_stream_cpu, CpuStreamConfig},
    run_stream_emu, stream_checksum, EmuStreamConfig, StreamKernel,
};
use spmat::{laplacian, LaplacianSpec};
use std::sync::Arc;

#[test]
fn chase_checksums_agree_across_platforms_and_modes() {
    for mode in ShuffleMode::ALL {
        for block in [1usize, 16, 256] {
            let cc = ChaseConfig {
                elems_per_list: 512,
                nlists: 6,
                block_elems: block,
                mode,
                seed: 99,
            };
            let emu = run_chase_emu(&presets::chick_prototype(), &cc).unwrap();
            let cpu = run_chase_cpu(&sandy_bridge(), &cc);
            assert_eq!(emu.checksum, cc.expected_checksum(), "{}", mode.name());
            assert_eq!(cpu.checksum, cc.expected_checksum(), "{}", mode.name());
        }
    }
}

#[test]
fn spmv_all_six_configurations_produce_identical_results() {
    let m = Arc::new(laplacian(LaplacianSpec::paper(13)));
    let reference = m.spmv(&x_vector(m.ncols()));
    let close = |y: &[f64], label: &str| {
        let err = reference
            .iter()
            .zip(y)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(err < 1e-9, "{label}: max err {err}");
    };
    for layout in EmuLayout::ALL {
        let r = run_spmv_emu(
            &presets::chick_prototype(),
            Arc::clone(&m),
            &EmuSpmvConfig {
                layout,
                grain_nnz: 8,
            },
        )
        .unwrap();
        close(&r.y, layout.name());
    }
    for strategy in [
        CpuStrategy::MklLike,
        CpuStrategy::CilkFor,
        CpuStrategy::CilkSpawn { grain: 32 },
    ] {
        let r = run_spmv_cpu(
            &haswell(),
            Arc::clone(&m),
            &CpuSpmvConfig {
                strategy,
                nthreads: 7,
            },
        );
        close(&r.y, &strategy.name());
    }
}

#[test]
fn spmv_works_on_non_stencil_matrices_too() {
    // Random and skewed matrices exercise irregular row lengths.
    for m in [
        spmat::gen::random_uniform(300, 300, 6, 11),
        spmat::gen::skewed(256, 256, 32, 12),
        spmat::gen::banded(400, &[-7, -1, 0, 1, 7]),
    ] {
        let m = Arc::new(m);
        let reference = m.spmv(&x_vector(m.ncols()));
        for layout in EmuLayout::ALL {
            let r = run_spmv_emu(
                &presets::chick_prototype(),
                Arc::clone(&m),
                &EmuSpmvConfig {
                    layout,
                    grain_nnz: 16,
                },
            )
            .unwrap();
            let err = reference
                .iter()
                .zip(&r.y)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            assert!(err < 1e-9, "{}: err {err}", layout.name());
        }
    }
}

#[test]
fn stream_checksums_agree_across_platforms_and_kernels() {
    for kernel in [
        StreamKernel::Add,
        StreamKernel::Copy,
        StreamKernel::Scale,
        StreamKernel::Triad,
    ] {
        let n = 4096u64;
        let emu = run_stream_emu(
            &presets::chick_prototype(),
            &EmuStreamConfig {
                total_elems: n,
                nthreads: 32,
                kernel,
                ..Default::default()
            },
        )
        .unwrap();
        let cpu = run_stream_cpu(
            &sandy_bridge(),
            &CpuStreamConfig {
                total_elems: n,
                nthreads: 4,
                kernel,
                nt_stores: true,
            },
        );
        assert_eq!(
            emu.checksum,
            stream_checksum(n, kernel),
            "emu {}",
            kernel.name()
        );
        assert_eq!(
            cpu.checksum,
            stream_checksum(n, kernel),
            "cpu {}",
            kernel.name()
        );
    }
}

#[test]
fn every_emu_preset_runs_every_benchmark() {
    for cfg in [
        presets::chick_prototype(),
        presets::chick_toolchain_sim(),
        presets::chick_full_speed(),
        presets::emu64_full_speed(),
        presets::chick_8node_prototype(),
    ] {
        let nodelets = cfg.total_nodelets();
        let r = run_stream_emu(
            &cfg,
            &EmuStreamConfig {
                total_elems: 4096,
                nthreads: nodelets as usize * 4,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(r.checksum, stream_checksum(4096, StreamKernel::Add));
        let cc = ChaseConfig {
            elems_per_list: 256,
            nlists: 8,
            block_elems: 16,
            mode: ShuffleMode::FullBlock,
            seed: 3,
        };
        let ch = run_chase_emu(&cfg, &cc).unwrap();
        assert_eq!(ch.checksum, cc.expected_checksum());
    }
}
