//! Fault-injection integration: graceful degradation of the real
//! benchmarks under a faulted machine, determinism of faulted runs, and
//! error (not hang/panic) behaviour at the edges.

use emu_chick::prelude::*;
use membench::chase::{run_chase_emu, ChaseConfig, ShuffleMode};
use membench::stream::{run_stream_emu, stream_checksum, EmuStreamConfig, StreamKernel};

fn stream_bw(cfg: &MachineConfig) -> f64 {
    let r = run_stream_emu(
        cfg,
        &EmuStreamConfig {
            total_elems: 1 << 14,
            nthreads: 256,
            strategy: SpawnStrategy::RecursiveRemote,
            ..Default::default()
        },
    )
    .unwrap();
    // Faults slow the machine; they must never corrupt the computation.
    assert_eq!(r.checksum, stream_checksum(1 << 14, StreamKernel::Add));
    r.bandwidth.mb_per_sec()
}

/// More dead nodelets ⇒ monotonically less STREAM bandwidth (and some
/// redirected traffic), while the answer stays exact.
#[test]
fn stream_degrades_monotonically_with_dead_nodelets() {
    let base = presets::chick_prototype();
    let mut last = f64::INFINITY;
    for frac in [0.0, 0.25, 0.5] {
        let cfg = MachineConfig {
            faults: FaultPlan::none().with_dead_fraction(base.total_nodelets(), frac),
            ..base.clone()
        };
        let bw = stream_bw(&cfg);
        assert!(
            bw <= last * 1.001,
            "bandwidth must not improve as nodelets die: {bw} after {last} at frac {frac}"
        );
        last = bw;
    }
    // Half the machine gone must cost at least a quarter of the bandwidth.
    assert!(last < 0.75 * stream_bw(&base));
}

/// Slowing a subset of nodelets degrades the chase without changing its
/// functional result.
#[test]
fn chase_survives_slow_nodelets_exactly() {
    let base = presets::chick_prototype();
    let cc = ChaseConfig {
        elems_per_list: 512,
        nlists: 64,
        block_elems: 4,
        mode: ShuffleMode::FullBlock,
        seed: 23,
    };
    let clean = run_chase_emu(&base, &cc).unwrap();
    let slowed = MachineConfig {
        faults: FaultPlan::none().with_slow_fraction(base.total_nodelets(), 0.5, 4.0),
        ..base.clone()
    };
    let slow = run_chase_emu(&slowed, &cc).unwrap();
    assert_eq!(slow.checksum, cc.expected_checksum());
    assert!(
        slow.bandwidth.mb_per_sec() < clean.bandwidth.mb_per_sec(),
        "4x-slow nodelets must cost bandwidth"
    );
}

/// A faulted benchmark run replays bit-for-bit from the same plan seed.
#[test]
fn faulted_benchmarks_are_deterministic() {
    let base = presets::chick_prototype();
    let mut faults = FaultPlan::none().with_dead_fraction(base.total_nodelets(), 0.25);
    faults.mig_nack_prob = 0.1;
    faults.ecc_prob = 0.02;
    let cfg = MachineConfig {
        faults,
        ..base.clone()
    };
    let cc = ChaseConfig {
        elems_per_list: 256,
        nlists: 32,
        block_elems: 2,
        mode: ShuffleMode::FullBlock,
        seed: 7,
    };
    let (a, b) = (
        run_chase_emu(&cfg, &cc).unwrap(),
        run_chase_emu(&cfg, &cc).unwrap(),
    );
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.migrations, b.migrations);
    assert_eq!(a.faults, b.faults);
    assert!(a.faults.total() > 0, "the plan must actually inject faults");
}

/// NACK storms with a tiny retry budget surface as a structured error —
/// never a hang, never a panic.
#[test]
fn retry_budget_exhaustion_reports_cleanly_through_benchmarks() {
    let base = presets::chick_prototype();
    let mut faults = FaultPlan::none();
    faults.mig_nack_prob = 1.0; // every offer NACKed
    faults.mig_retry_budget = 3;
    let cfg = MachineConfig {
        faults,
        ..base.clone()
    };
    let err = run_chase_emu(
        &cfg,
        &ChaseConfig {
            elems_per_list: 64,
            nlists: 8,
            block_elems: 1,
            mode: ShuffleMode::FullBlock,
            seed: 1,
        },
    )
    .unwrap_err();
    assert!(
        matches!(err, SimError::RetryBudgetExhausted { retries: 3, .. }),
        "unexpected error: {err}"
    );
}

/// An invalid fault plan is rejected at engine construction, through the
/// public benchmark API.
#[test]
fn invalid_fault_plan_is_rejected_not_panicked() {
    let mut cfg = presets::chick_prototype();
    cfg.faults.mig_nack_prob = 2.0;
    let err = run_stream_emu(
        &cfg,
        &EmuStreamConfig {
            total_elems: 64,
            nthreads: 4,
            ..Default::default()
        },
    )
    .unwrap_err();
    assert!(matches!(err, SimError::InvalidConfig(_)), "got {err}");
}
