//! The paper's qualitative claims, asserted at test scale.
//!
//! These are the "shape" criteria of DESIGN.md: who wins, where the
//! knees/crossovers fall. Absolute magnitudes are checked against the
//! paper in EXPERIMENTS.md from full-size release runs.

use emu_chick::prelude::*;
use membench::chase::{cpu::run_chase_cpu, run_chase_emu, ChaseConfig, ShuffleMode};
use membench::pingpong::{run_pingpong, PingPongConfig};
use membench::spmv_emu::{run_spmv_emu, EmuLayout, EmuSpmvConfig};
use membench::stream::{run_stream_emu, EmuStreamConfig};
use spmat::{laplacian, LaplacianSpec};
use std::sync::Arc;

fn emu_stream(threads: usize, strategy: SpawnStrategy, single: bool) -> f64 {
    run_stream_emu(
        &presets::chick_prototype(),
        &EmuStreamConfig {
            total_elems: 1 << 14,
            nthreads: threads,
            strategy,
            single_nodelet: single,
            ..Default::default()
        },
    )
    .unwrap()
    .bandwidth
    .mb_per_sec()
}

/// Fig 4: single-nodelet STREAM scales with threads through 32 and
/// plateaus to 64.
#[test]
fn fig4_shape_knee_near_32_threads() {
    let b8 = emu_stream(8, SpawnStrategy::Serial, true);
    let b32 = emu_stream(32, SpawnStrategy::Serial, true);
    let b64 = emu_stream(64, SpawnStrategy::Serial, true);
    assert!(b32 > 2.5 * b8, "should still scale 8->32: {b8} -> {b32}");
    assert!(b64 < 1.15 * b32, "should plateau 32->64: {b32} -> {b64}");
}

/// Fig 4: spawn style barely matters on one nodelet.
#[test]
fn fig4_serial_and_recursive_agree_on_one_nodelet() {
    let s = emu_stream(32, SpawnStrategy::Serial, true);
    let r = emu_stream(32, SpawnStrategy::Recursive, true);
    assert!((s / r - 1.0).abs() < 0.1, "serial {s} vs recursive {r}");
}

/// Fig 5: remote spawns are essential for peak multi-nodelet bandwidth.
#[test]
fn fig5_remote_spawns_essential() {
    let serial = emu_stream(256, SpawnStrategy::Serial, false);
    let remote = emu_stream(256, SpawnStrategy::RecursiveRemote, false);
    assert!(
        remote > 1.7 * serial,
        "remote {remote} should dwarf serial {serial}"
    );
}

/// Fig 6: Emu chase bandwidth is flat in block size (above a few
/// elements), with a dip at block=1 that recovers by block=4.
#[test]
fn fig6_emu_flat_with_block1_dip() {
    let bw = |block: usize| {
        let cc = ChaseConfig {
            elems_per_list: 1024,
            nlists: 128,
            block_elems: block,
            mode: ShuffleMode::FullBlock,
            seed: 5,
        };
        run_chase_emu(&presets::chick_prototype(), &cc)
            .unwrap()
            .bandwidth
            .mb_per_sec()
    };
    let b1 = bw(1);
    let b4 = bw(4);
    let b64 = bw(64);
    let b512 = bw(512);
    assert!(b1 < 0.9 * b64, "block=1 dips: {b1} vs {b64}");
    assert!(b4 > 0.85 * b64, "recovers by block 4: {b4} vs {b64}");
    assert!(
        (b512 / b64 - 1.0).abs() < 0.2,
        "flat across blocks: {b64} vs {b512}"
    );
}

/// Fig 7: the Xeon needs DRAM-page-scale locality; tiny blocks are bad.
#[test]
fn fig7_xeon_hump() {
    let mut cfg = sandy_bridge();
    // Shrink the LLC so test-size lists behave like the paper's
    // LLC-dwarfing ones.
    cfg.l3.capacity = 1 << 20;
    let bw = |block: usize| {
        let cc = ChaseConfig {
            elems_per_list: 1 << 15,
            nlists: 8,
            block_elems: block,
            mode: ShuffleMode::FullBlock,
            seed: 5,
        };
        run_chase_cpu(&cfg, &cc).bandwidth.mb_per_sec()
    };
    let tiny = bw(1);
    let page = bw(512);
    let huge = bw(1 << 14);
    assert!(page > 2.0 * tiny, "page {page} vs tiny {tiny}");
    assert!(page > 1.2 * huge, "page {page} vs huge {huge}");
}

/// Fig 8: the Emu uses a far higher fraction of its peak than the Xeon
/// at every locality level.
#[test]
fn fig8_emu_utilization_dominates() {
    let emu_peak = emu_stream(512, SpawnStrategy::RecursiveRemote, false);
    let cpu_cfg = sandy_bridge();
    let cpu_peak = membench::stream::cpu::run_stream_cpu(
        &cpu_cfg,
        &membench::stream::cpu::CpuStreamConfig {
            total_elems: 1 << 16,
            nthreads: 16,
            ..Default::default()
        },
    )
    .bandwidth
    .mb_per_sec();
    for block in [4usize, 64, 1024] {
        let emu = run_chase_emu(
            &presets::chick_prototype(),
            &ChaseConfig {
                elems_per_list: 1024,
                nlists: 256,
                block_elems: block,
                mode: ShuffleMode::FullBlock,
                seed: 6,
            },
        )
        .unwrap()
        .bandwidth
        .mb_per_sec()
            / emu_peak;
        let xeon = run_chase_cpu(
            &cpu_cfg,
            &ChaseConfig {
                elems_per_list: 1 << 14,
                nlists: 16,
                block_elems: block,
                mode: ShuffleMode::FullBlock,
                seed: 6,
            },
        )
        .bandwidth
        .mb_per_sec()
            / cpu_peak;
        assert!(
            emu > 1.5 * xeon,
            "block {block}: emu {:.0}% vs xeon {:.0}%",
            emu * 100.0,
            xeon * 100.0
        );
    }
}

/// Fig 9a: layout ordering local < 1D < 2D.
#[test]
fn fig9a_layout_ordering() {
    let m = Arc::new(laplacian(LaplacianSpec::paper(20)));
    let bw = |layout| {
        run_spmv_emu(
            &presets::chick_prototype(),
            Arc::clone(&m),
            &EmuSpmvConfig {
                layout,
                grain_nnz: 16,
            },
        )
        .unwrap()
        .bandwidth
        .mb_per_sec()
    };
    let local = bw(EmuLayout::Local);
    let one_d = bw(EmuLayout::OneD);
    let two_d = bw(EmuLayout::TwoD);
    assert!(local < one_d, "local {local} < 1D {one_d}");
    assert!(one_d < two_d, "1D {one_d} < 2D {two_d}");
    assert!(two_d > 3.0 * local, "2D {two_d} >> local {local}");
}

/// Fig 10: the validation story — STREAM agrees between the hardware and
/// toolchain-simulator presets; migration-bound benchmarks do not.
#[test]
fn fig10_validation_gap_is_migration_specific() {
    let hw = presets::chick_prototype();
    let sim = presets::chick_toolchain_sim();
    let stream = |cfg: &MachineConfig| {
        run_stream_emu(
            cfg,
            &EmuStreamConfig {
                total_elems: 1 << 13,
                nthreads: 128,
                ..Default::default()
            },
        )
        .unwrap()
        .bandwidth
        .mb_per_sec()
    };
    assert!(
        (stream(&hw) / stream(&sim) - 1.0).abs() < 0.02,
        "STREAM must agree"
    );
    let chase1 = |cfg: &MachineConfig| {
        run_chase_emu(
            cfg,
            &ChaseConfig {
                elems_per_list: 512,
                nlists: 256,
                block_elems: 1,
                mode: ShuffleMode::FullBlock,
                seed: 7,
            },
        )
        .unwrap()
        .bandwidth
        .mb_per_sec()
    };
    assert!(
        chase1(&sim) > 1.15 * chase1(&hw),
        "migration-bound chase must diverge"
    );
    let pp = |cfg: &MachineConfig| {
        run_pingpong(
            cfg,
            &PingPongConfig {
                nthreads: 64,
                round_trips: 200,
                ..Default::default()
            },
        )
        .unwrap()
        .migrations_per_sec
    };
    let (h, s) = (pp(&hw), pp(&sim));
    assert!((h / 9.0e6 - 1.0).abs() < 0.1, "hw pingpong {h:.2e} ~ 9M/s");
    assert!(
        (s / 16.0e6 - 1.0).abs() < 0.1,
        "sim pingpong {s:.2e} ~ 16M/s"
    );
}

/// Fig 11: at full speed, bandwidth keeps scaling into thousands of
/// threads and stays insensitive to block size beyond small blocks.
#[test]
fn fig11_full_speed_scales_with_threads() {
    let cfg = presets::emu64_full_speed();
    let bw = |threads: usize, block: usize| {
        run_chase_emu(
            &cfg,
            &ChaseConfig {
                elems_per_list: 512,
                nlists: threads,
                block_elems: block,
                mode: ShuffleMode::FullBlock,
                seed: 8,
            },
        )
        .unwrap()
        .bandwidth
        .mb_per_sec()
    };
    let t256 = bw(256, 64);
    let t2048 = bw(2048, 64);
    assert!(t2048 > 3.0 * t256, "scales with threads: {t256} -> {t2048}");
    let b64 = bw(1024, 64);
    let b512 = bw(1024, 512);
    assert!(
        (b512 / b64 - 1.0).abs() < 0.25,
        "insensitive to block size: {b64} vs {b512}"
    );
}

/// Migration latency sits in the paper's 1–2 µs band under load.
#[test]
fn migration_latency_band() {
    let r = run_pingpong(
        &presets::chick_prototype(),
        &PingPongConfig {
            nthreads: 16,
            round_trips: 500,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(
        r.mean_latency_ns > 500.0 && r.mean_latency_ns < 3000.0,
        "loaded latency {} ns",
        r.mean_latency_ns
    );
}
