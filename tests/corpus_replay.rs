//! Replay the committed fuzz corpus under the lockstep conformance
//! harness. Every `tests/corpus/*.case` file — seeded exemplars and any
//! shrunk repro `simctl fuzz` ever committed — must run clean on both
//! event-queue backends and pass the run audit, forever.

use std::fs;
use std::path::Path;

#[test]
fn corpus_replays_clean() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut replayed = 0;
    for entry in fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("case") {
            continue;
        }
        let text = fs::read_to_string(&path).unwrap();
        let case =
            conformance::fuzz::decode(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let problems = conformance::fuzz::run_case(&case);
        assert!(problems.is_empty(), "{}: {problems:#?}", path.display());
        replayed += 1;
    }
    assert!(
        replayed >= 3,
        "corpus unexpectedly small ({replayed} cases)"
    );
}
