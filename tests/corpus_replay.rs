//! Replay the committed fuzz corpus. Every `tests/corpus/*.scn` file —
//! seeded exemplars and any shrunk repro `simctl fuzz` ever committed —
//! must run clean under the full scenario runner (lockstep queue
//! backends, sharded scheduler, run audit, expect blocks), forever.
//!
//! Legacy `.case` files still replay through the corpus codec; that
//! shim keeps old repro attachments usable for one release while
//! everything new lands as `.scn` (see `simctl scenario promote`).

use std::fs;
use std::path::Path;

#[test]
fn corpus_replays_clean() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut replayed = 0;
    for entry in fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("scn") {
            continue;
        }
        let text = fs::read_to_string(&path).unwrap();
        let s = scenario::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let outcome = scenario::run_scenario(&s);
        assert!(
            outcome.pass(),
            "{}: {:#?}",
            path.display(),
            outcome.failures
        );
        replayed += 1;
    }
    assert!(
        replayed >= 4,
        "corpus unexpectedly small ({replayed} scenarios)"
    );
}

/// One-release shim: legacy `.case` repros must still decode and
/// replay clean through the corpus codec, and must lower to the exact
/// same engine-level case as their promoted `.scn` sibling.
#[test]
fn legacy_case_files_still_replay_and_match_their_scn_form() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut replayed = 0;
    for entry in fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("case") {
            continue;
        }
        let text = fs::read_to_string(&path).unwrap();
        let case =
            conformance::fuzz::decode(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let problems = conformance::fuzz::run_case(&case);
        assert!(problems.is_empty(), "{}: {problems:#?}", path.display());

        let scn_path = path.with_extension("scn");
        let scn_text = fs::read_to_string(&scn_path)
            .unwrap_or_else(|e| panic!("{}: promoted sibling missing: {e}", scn_path.display()));
        let s = scenario::parse(&scn_text).unwrap();
        let lowered = scenario::case::case_from_scenario(&s).unwrap();
        assert_eq!(
            conformance::fuzz::encode(&lowered),
            conformance::fuzz::encode(&case),
            "{}: .case and .scn forms diverge",
            path.display()
        );
        replayed += 1;
    }
    assert!(replayed >= 1, "shim witness missing");
}
