//! Replay the committed fuzz corpus. Every `tests/corpus/*.scn` file —
//! seeded exemplars and any shrunk repro `simctl fuzz` ever committed —
//! must run clean under the full scenario runner (lockstep queue
//! backends, sharded scheduler, run audit, expect blocks), forever.
//!
//! The corpus is `.scn`-only. The `.case` text codec itself remains
//! load-bearing (fuzz repros, `scenario promote`, and the result
//! cache's `case:` recipes all speak it), so its round-trip stays
//! pinned here on an in-memory fixture.

use std::fs;
use std::path::Path;

#[test]
fn corpus_replays_clean() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut replayed = 0;
    for entry in fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("scn") {
            continue;
        }
        let text = fs::read_to_string(&path).unwrap();
        let s = scenario::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let outcome = scenario::run_scenario(&s);
        assert!(
            outcome.pass(),
            "{}: {:#?}",
            path.display(),
            outcome.failures
        );
        replayed += 1;
    }
    assert!(
        replayed >= 4,
        "corpus unexpectedly small ({replayed} scenarios)"
    );
}

/// The `.case` codec round trip: encode ∘ decode is the identity on
/// encoded form, and decode normalizes whatever formatting a repro was
/// written with. The cache relies on this normalization for stable
/// `simd-case` digests.
#[test]
fn case_codec_round_trips_on_a_fixture() {
    let mut rng = desim::rng::rng_from_seed(3);
    let case = conformance::fuzz::gen_case(&mut rng);
    let encoded = conformance::fuzz::encode(&case);
    let decoded = conformance::fuzz::decode(&encoded).unwrap();
    assert_eq!(conformance::fuzz::encode(&decoded), encoded);

    // No committed .case files remain; repros land as .scn now.
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    for entry in fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        assert_ne!(
            path.extension().and_then(|e| e.to_str()),
            Some("case"),
            "{}: stray legacy .case file",
            path.display()
        );
    }
}
