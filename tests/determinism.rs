//! Every simulation in the workspace is bit-deterministic: same seed,
//! same configuration ⇒ identical makespans, counters, and results.

use emu_chick::prelude::*;
use membench::chase::{cpu::run_chase_cpu, run_chase_emu, ChaseConfig, ShuffleMode};
use membench::gups::{run_gups_emu, GupsConfig};
use membench::pingpong::{run_pingpong, PingPongConfig};
use membench::spmv_emu::{run_spmv_emu, EmuLayout, EmuSpmvConfig};
use membench::stream::{run_stream_emu, EmuStreamConfig};
use spmat::{laplacian, LaplacianSpec};
use std::sync::Arc;

#[test]
fn stream_is_deterministic() {
    let run = || {
        run_stream_emu(
            &presets::chick_prototype(),
            &EmuStreamConfig {
                total_elems: 8192,
                nthreads: 64,
                ..Default::default()
            },
        )
        .unwrap()
    };
    let (a, b) = (run(), run());
    assert_eq!(a.report.makespan, b.report.makespan);
    assert_eq!(a.report.total_bytes(), b.report.total_bytes());
    assert_eq!(a.checksum, b.checksum);
}

#[test]
fn chase_same_seed_identical_different_seed_not() {
    let run = |seed: u64| {
        let cc = ChaseConfig {
            elems_per_list: 1024,
            nlists: 16,
            block_elems: 8,
            mode: ShuffleMode::FullBlock,
            seed,
        };
        run_chase_emu(&presets::chick_prototype(), &cc).unwrap()
    };
    assert_eq!(run(1).makespan, run(1).makespan);
    // A different permutation gives a (very likely) different makespan
    // but the identical checksum — same elements, different order.
    let (a, b) = (run(1), run(2));
    assert_eq!(a.checksum, b.checksum);
    assert_ne!(a.makespan, b.makespan);
}

#[test]
fn cpu_chase_is_deterministic() {
    let run = || {
        let cc = ChaseConfig {
            elems_per_list: 2048,
            nlists: 8,
            block_elems: 64,
            mode: ShuffleMode::FullBlock,
            seed: 4,
        };
        run_chase_cpu(&sandy_bridge(), &cc)
    };
    assert_eq!(run().makespan, run().makespan);
}

#[test]
fn spmv_is_deterministic_in_time_and_value() {
    let m = Arc::new(laplacian(LaplacianSpec::paper(10)));
    let run = || {
        run_spmv_emu(
            &presets::chick_prototype(),
            Arc::clone(&m),
            &EmuSpmvConfig {
                layout: EmuLayout::TwoD,
                grain_nnz: 8,
            },
        )
        .unwrap()
    };
    let (a, b) = (run(), run());
    assert_eq!(a.report.makespan, b.report.makespan);
    assert_eq!(a.migrations, b.migrations);
    assert_eq!(a.y, b.y);
}

#[test]
fn pingpong_and_gups_are_deterministic() {
    let pp = || {
        run_pingpong(
            &presets::chick_prototype(),
            &PingPongConfig {
                nthreads: 16,
                round_trips: 100,
                ..Default::default()
            },
        )
        .unwrap()
    };
    assert_eq!(pp().makespan, pp().makespan);
    let g = || {
        run_gups_emu(
            &presets::chick_prototype(),
            &GupsConfig {
                table_words: 1 << 12,
                nthreads: 16,
                updates_per_thread: 128,
                seed: 3,
            },
        )
        .unwrap()
    };
    assert_eq!(g().makespan, g().makespan);
}

#[test]
fn per_nodelet_counters_are_reproducible() {
    let run = || {
        run_stream_emu(
            &presets::chick_prototype(),
            &EmuStreamConfig {
                total_elems: 4096,
                nthreads: 96,
                strategy: SpawnStrategy::SerialRemote,
                ..Default::default()
            },
        )
        .unwrap()
        .report
    };
    let (a, b) = (run(), run());
    for (x, y) in a.nodelets.iter().zip(&b.nodelets) {
        assert_eq!(x.bytes_loaded, y.bytes_loaded);
        assert_eq!(x.migrations_in, y.migrations_in);
        assert_eq!(x.spawns, y.spawns);
        assert_eq!(x.slot_waits, y.slot_waits);
    }
}
