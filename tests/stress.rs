//! Stress and edge-case coverage across crates: slot exhaustion,
//! oversubscription, degenerate sizes, and preset extremes.

use emu_chick::prelude::*;
use membench::chase::{run_chase_emu, ChaseConfig, ShuffleMode};
use membench::stream::{run_stream_emu, stream_checksum, EmuStreamConfig, StreamKernel};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// `EMU_STRESS=1` unlocks the slowest cases at full size (CI sets it);
/// a default `cargo test -q` runs them scaled down so the suite stays
/// within a predictable time budget.
fn stress_enabled() -> bool {
    std::env::var("EMU_STRESS").as_deref() == Ok("1")
}

/// Thousands of threads funneled through one nodelet's 64 slots: the
/// engine must serialize admission without deadlock and run every worker.
#[test]
fn slot_exhaustion_thousands_of_threads() {
    let nthreads = if stress_enabled() { 2000 } else { 500 };
    let ran = Arc::new(AtomicUsize::new(0));
    let mut e = Engine::new(presets::chick_prototype()).unwrap();
    for _ in 0..nthreads {
        let ran = Arc::clone(&ran);
        let mut fired = false;
        e.spawn_at(
            NodeletId(0),
            Box::new(move |_ctx: &KernelCtx| {
                if !fired {
                    fired = true;
                    ran.fetch_add(1, Ordering::Relaxed);
                    Op::Compute { cycles: 50 }
                } else {
                    Op::Quit
                }
            }),
        )
        .unwrap();
    }
    let r = e.run().unwrap();
    assert_eq!(ran.load(Ordering::Relaxed), nthreads);
    assert!(r.nodelets[0].slot_waits > 0, "expected admission queueing");
}

/// More workers than elements: strided STREAM workers with empty ranges
/// must quit cleanly, and the checksum still verifies.
#[test]
fn stream_more_threads_than_elements() {
    let r = run_stream_emu(
        &presets::chick_prototype(),
        &EmuStreamConfig {
            total_elems: 64,
            nthreads: 512,
            strategy: SpawnStrategy::RecursiveRemote,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(r.checksum, stream_checksum(64, StreamKernel::Add));
}

/// Single-element lists, one list: the degenerate chase.
#[test]
fn chase_degenerate_single_element() {
    let cc = ChaseConfig {
        elems_per_list: 1,
        nlists: 1,
        block_elems: 1,
        mode: ShuffleMode::FullBlock,
        seed: 1,
    };
    let r = run_chase_emu(&presets::chick_prototype(), &cc).unwrap();
    assert_eq!(r.checksum, 0); // payload of the single element is id 0
    assert!(r.makespan > desim::Time::ZERO);
}

/// The 64-nodelet machine runs a cross-node chase deterministically.
#[test]
fn emu64_cross_node_chase_deterministic() {
    let (elems, lists) = if stress_enabled() {
        (256, 128)
    } else {
        (96, 48)
    };
    let cc = ChaseConfig {
        elems_per_list: elems,
        nlists: lists,
        block_elems: 4,
        mode: ShuffleMode::FullBlock,
        seed: 9,
    };
    let run = || run_chase_emu(&presets::emu64_full_speed(), &cc).unwrap();
    let (a, b) = (run(), run());
    assert_eq!(a.checksum, cc.expected_checksum());
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.migrations, b.migrations);
    assert!(a.migrations > 0, "cross-node lists must migrate");
}

/// An Emu machine with a single nodelet: everything is local, nothing
/// migrates, all benchmarks still work.
#[test]
fn single_nodelet_machine() {
    let cfg = MachineConfig {
        nodelets_per_node: 1,
        ..presets::chick_prototype()
    };
    let r = run_stream_emu(
        &cfg,
        &EmuStreamConfig {
            total_elems: 2048,
            nthreads: 32,
            strategy: SpawnStrategy::SerialRemote,
            single_nodelet: false,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(r.checksum, stream_checksum(2048, StreamKernel::Add));
    assert_eq!(r.report.total_migrations(), 0);
}

/// Breakdown accounting is conserved: the per-class times sum to at most
/// threads x makespan (no time invented).
#[test]
fn breakdown_conservation_bound() {
    let r = run_chase_emu(
        &presets::chick_prototype(),
        &ChaseConfig {
            elems_per_list: 512,
            nlists: 64,
            block_elems: 8,
            mode: ShuffleMode::FullBlock,
            seed: 4,
        },
    )
    .unwrap();
    let b = r.breakdown;
    let cap = r.makespan * 64;
    assert!(
        b.total() <= cap,
        "breakdown {} exceeds threads x makespan {}",
        b.total(),
        cap
    );
    assert!(b.migration > desim::Time::ZERO);
    // Fractions sum to 1 by construction.
    let f = b.fraction(b.compute)
        + b.fraction(b.memory)
        + b.fraction(b.migration)
        + b.fraction(b.store_issue)
        + b.fraction(b.spawn);
    assert!((f - 1.0).abs() < 1e-9);
}

/// The CPU engine tolerates thread oversubscription (threads > contexts).
#[test]
fn cpu_oversubscription() {
    use xeon_sim::prelude::*;
    let mut e = CpuEngine::new(sandy_bridge());
    for t in 0..96u64 {
        let ops: Vec<CpuOp> = (0..32)
            .map(|i| CpuOp::Load {
                addr: t * 0x100000 + i * 64,
                bytes: 8,
            })
            .collect();
        e.add_thread(Box::new(CpuScript::new(ops)));
    }
    let r = e.run();
    assert_eq!(r.threads, 96);
    assert!(r.makespan > desim::Time::ZERO);
}

/// Huge access sizes through the Emu channel (a full row of 1 KiB) are
/// charged proportionally.
#[test]
fn large_accesses_scale_channel_time() {
    let time_of = |bytes: u32| {
        let mut e = Engine::new(presets::chick_prototype()).unwrap();
        e.spawn_at(
            NodeletId(0),
            Box::new(ScriptKernel::new(vec![Op::Load {
                addr: GlobalAddr::new(NodeletId(0), 0),
                bytes,
            }])),
        )
        .unwrap();
        e.run().unwrap().makespan
    };
    let t8 = time_of(8);
    let t1k = time_of(1024);
    assert!(t1k > t8, "1 KiB must take longer than 8 B");
    // Transfer of 1024 B at 1.6 GB/s adds 640 ns - 5 ns over the 8 B case.
    let delta = (t1k - t8).ns_f64();
    assert!((delta - 635.0).abs() < 50.0, "delta {delta} ns");
}

/// Heavy end-to-end sweep, only under `EMU_STRESS=1`: a heavily
/// oversubscribed STREAM on the 64-nodelet machine, audited for
/// internal consistency. The slowest single case in the suite.
#[test]
fn stress_only_emu64_oversubscribed_stream() {
    if !stress_enabled() {
        eprintln!("skipped (set EMU_STRESS=1 to run)");
        return;
    }
    let cfg = presets::emu64_full_speed();
    let r = run_stream_emu(
        &cfg,
        &EmuStreamConfig {
            total_elems: 1 << 15,
            nthreads: 4096,
            strategy: SpawnStrategy::RecursiveRemote,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(r.checksum, stream_checksum(1 << 15, StreamKernel::Add));
    assert_consistent(&cfg, &r.report);
    assert!(r.report.total_migrations() > 0);
}
