//! # emu-chick — reproduction of "An Initial Characterization of the Emu Chick"
//!
//! This workspace rebuilds, in Rust, everything needed to reproduce the
//! 2018 characterization study of the Emu Chick migratory-thread
//! prototype: a discrete-event model of the Emu architecture
//! ([`emu_core`]), a cache-based Xeon comparison platform ([`xeon_sim`]),
//! the sparse-matrix substrate ([`spmat`]), the paper's benchmark suite
//! ([`membench`]), and the shared simulation kernel ([`desim`]).
//!
//! See `README.md` for a tour, `DESIGN.md` for the model inventory and
//! per-experiment index, and `EXPERIMENTS.md` for paper-vs-measured
//! results. The `examples/` directory shows the public API in action;
//! the `emu-bench` crate regenerates every figure.
//!
//! ```
//! use emu_chick::prelude::*;
//!
//! # fn main() -> Result<(), SimError> {
//! // A threadlet reading remote memory migrates to the data.
//! let mut engine = Engine::new(presets::chick_prototype())?;
//! engine.spawn_at(
//!     NodeletId(0),
//!     Box::new(ScriptKernel::new(vec![Op::Load {
//!         addr: GlobalAddr::new(NodeletId(5), 0),
//!         bytes: 8,
//!     }])),
//! )?;
//! assert_eq!(engine.run()?.total_migrations(), 1);
//! # Ok(())
//! # }
//! ```

pub use desim;
pub use emu_core;
pub use membench;
pub use spmat;
pub use xeon_sim;

/// One-stop import for examples and downstream users.
pub mod prelude {
    pub use emu_core::prelude::*;
    pub use xeon_sim::prelude::*;
}
