#!/usr/bin/env python3
"""Validate a Prometheus text-exposition (version 0.0.4) scrape body.

Usage: check_prom.py FILE [required_series ...]

Checks, stdlib-only (CI runner has no prometheus client):
  - every non-comment line is `name[{label="value"}] number`;
  - metric and label names match the Prometheus grammar;
  - every sample's family has a preceding `# TYPE` line, each family is
    typed exactly once, and the type is counter/gauge/summary;
  - counter and summary-count samples are non-negative;
  - summary families expose quantile/_sum/_count samples;
  - every `required_series` name appears as a sample.

Exits nonzero with one line per violation.
"""

import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r'(?:\{(?P<label>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>[^"\\]*)"\})?'
    r" (?P<num>\S+)$"
)
TYPES = {"counter", "gauge", "summary"}


def family(name: str) -> str:
    """Collapse summary sub-series onto the family that typed them."""
    for suffix in ("_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def check(text: str, required: list[str]) -> list[str]:
    errors = []
    typed = {}  # family -> declared type
    seen = {}  # sample name -> parsed value (last wins, like Prometheus)
    quantiles = set()  # summary families with at least one quantile sample
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            errors.append(f"line {lineno}: blank line inside exposition")
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) != 4:
                    errors.append(f"line {lineno}: malformed TYPE: {line!r}")
                    continue
                _, _, name, kind = parts
                if not NAME_RE.match(name):
                    errors.append(f"line {lineno}: bad metric name {name!r}")
                if kind not in TYPES:
                    errors.append(f"line {lineno}: unknown type {kind!r}")
                if name in typed:
                    errors.append(f"line {lineno}: duplicate TYPE for {name}")
                typed[name] = kind
            # Other comments (e.g. HELP) are legal and ignored.
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            errors.append(f"line {lineno}: unparseable sample: {line!r}")
            continue
        name, num = m.group("name"), m.group("num")
        try:
            val = float(num)
        except ValueError:
            errors.append(f"line {lineno}: non-numeric value {num!r}")
            continue
        fam = family(name)
        kind = typed.get(fam)
        if kind is None:
            errors.append(f"line {lineno}: sample {name} has no TYPE for {fam}")
            continue
        if m.group("label") == "quantile":
            quantiles.add(fam)
        if kind == "counter" and val < 0:
            errors.append(f"line {lineno}: counter {name} is negative ({num})")
        if kind == "summary" and name.endswith("_count") and val < 0:
            errors.append(f"line {lineno}: summary count {name} is negative")
        seen[name] = val
    for fam, kind in typed.items():
        if kind == "summary":
            for part, have in [
                ("quantile samples", fam in quantiles),
                ("_sum", f"{fam}_sum" in seen),
                ("_count", f"{fam}_count" in seen),
            ]:
                if not have:
                    errors.append(f"summary {fam} is missing its {part}")
    for name in required:
        if name not in seen:
            errors.append(f"required series {name} is absent")
    if not seen:
        errors.append("exposition contains no samples at all")
    return errors


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(sys.argv[1], encoding="utf-8") as f:
        text = f.read()
    errors = check(text, sys.argv[2:])
    for e in errors:
        print(f"check_prom: {e}", file=sys.stderr)
    if errors:
        return 1
    print(f"check_prom: ok ({sys.argv[1]})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
