//! SpMV layout explorer: how data placement drives performance on a
//! migratory-thread machine (the paper's Fig 3 / Fig 9a / Section V-A).
//!
//! Runs the same CSR SpMV over a 2-D Laplacian with the three Emu
//! layouts, verifies all three produce the exact reference result, and
//! prints bandwidth plus the migration behaviour that explains it.
//!
//! ```sh
//! cargo run --release --example spmv_layouts
//! ```

use emu_chick::prelude::*;
use membench::spmv_emu::{run_spmv_emu, x_vector, EmuLayout, EmuSpmvConfig};
use spmat::{laplacian, LaplacianSpec};
use std::sync::Arc;

fn main() {
    let n = 100;
    let m = Arc::new(laplacian(LaplacianSpec::paper(n)));
    println!(
        "matrix: {}x{} Laplacian ({} nonzeros, 5-point 2-D stencil, n={n})",
        m.nrows(),
        m.ncols(),
        m.nnz()
    );
    let reference = m.spmv(&x_vector(m.ncols()));
    let cfg = presets::chick_prototype();

    println!();
    println!(
        "{:<8} {:>12} {:>12} {:>14} {:>10}",
        "layout", "MB/s", "migrations", "mig/nonzero", "spawns"
    );
    for layout in EmuLayout::ALL {
        let r = run_spmv_emu(
            &cfg,
            Arc::clone(&m),
            &EmuSpmvConfig {
                layout,
                grain_nnz: 16,
            },
        )
        .unwrap();
        // Every layout computes the exact same output vector.
        let err = reference
            .iter()
            .zip(&r.y)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(err < 1e-9, "layout {} diverged", layout.name());
        println!(
            "{:<8} {:>12.1} {:>12} {:>14.3} {:>10}",
            layout.name(),
            r.bandwidth.mb_per_sec(),
            r.migrations,
            r.migrations as f64 / m.nnz() as f64,
            r.spawns,
        );
    }

    println!();
    println!("local : everything on one nodelet — no migrations, no parallel hardware.");
    println!("1D    : striped arrays — consecutive nonzeros live on different");
    println!("        nodelets, so walking one row migrates on ~every element.");
    println!("2D    : the paper's custom allocation — each row is contiguous on its");
    println!("        owner nodelet, x is replicated, y is written with memory-side");
    println!("        remote stores: the inner loop never migrates.");
}
