//! Quickstart: the Emu execution model in five small experiments.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use emu_chick::prelude::*;
use membench::pingpong::{run_pingpong, PingPongConfig};
use membench::stream::{run_stream_emu, EmuStreamConfig};

fn main() -> Result<(), SimError> {
    // ── 1. Threads migrate to data ──────────────────────────────────
    // A threadlet on nodelet 0 reads a word owned by nodelet 5. On a
    // cache machine the line would travel; on the Emu the *thread* does.
    let mut engine = Engine::new(presets::chick_prototype())?;
    engine.spawn_at(
        NodeletId(0),
        Box::new(ScriptKernel::new(vec![Op::Load {
            addr: GlobalAddr::new(NodeletId(5), 0x40),
            bytes: 8,
        }])),
    )?;
    let report = engine.run()?;
    println!("1) remote read:");
    println!("   migrations      : {}", report.total_migrations());
    println!(
        "   read served on  : nodelet 5 (local loads there: {})",
        report.nodelets[5].local_loads
    );
    println!("   single-read time: {}", report.makespan);

    // ── 2. Remote writes do NOT migrate ─────────────────────────────
    let mut engine = Engine::new(presets::chick_prototype())?;
    engine.spawn_at(
        NodeletId(0),
        Box::new(ScriptKernel::new(vec![Op::Store {
            addr: GlobalAddr::new(NodeletId(5), 0x40),
            bytes: 8,
        }])),
    )?;
    let report = engine.run()?;
    println!("\n2) remote write (memory-side, posted):");
    println!("   migrations: {}", report.total_migrations());
    println!(
        "   packets in at nodelet 5: {}",
        report.nodelets[5].remote_packets_in
    );

    // ── 3. Bandwidth comes from thread count ────────────────────────
    println!("\n3) STREAM ADD on one nodelet (cache-less core, more threads = more bandwidth):");
    for threads in [1usize, 8, 64] {
        let r = run_stream_emu(
            &presets::chick_prototype(),
            &EmuStreamConfig {
                total_elems: 1 << 14,
                nthreads: threads,
                strategy: SpawnStrategy::Recursive,
                single_nodelet: true,
                ..Default::default()
            },
        )?;
        println!(
            "   {threads:>2} threads: {:>7.1} MB/s",
            r.bandwidth.mb_per_sec()
        );
    }

    // ── 4. Spawn placement decides steady-state locality ────────────
    println!("\n4) STREAM ADD on eight nodelets, 512 threads:");
    for strategy in [SpawnStrategy::Serial, SpawnStrategy::RecursiveRemote] {
        let r = run_stream_emu(
            &presets::chick_prototype(),
            &EmuStreamConfig {
                total_elems: 1 << 16,
                nthreads: 512,
                strategy,
                ..Default::default()
            },
        )?;
        println!(
            "   {:<24} {:>7.1} MB/s  ({} migrations)",
            strategy.name(),
            r.bandwidth.mb_per_sec(),
            r.report.total_migrations()
        );
    }

    // ── 5. The migration engine is a real, finite resource ──────────
    let pp = run_pingpong(
        &presets::chick_prototype(),
        &PingPongConfig {
            nthreads: 64,
            round_trips: 500,
            ..Default::default()
        },
    )?;
    println!("\n5) ping-pong between two nodelets, 64 threads:");
    println!(
        "   throughput: {:.1} M migrations/s",
        pp.migrations_per_sec / 1e6
    );
    println!("   mean latency: {:.2} us", pp.mean_latency_ns / 1000.0);
    Ok(())
}
