//! Sparse-tensor MTTKRP on the Emu — toward the paper's ParTI goal.
//!
//! MTTKRP (`Y(i,:) += X(i,j,k)·B(j,:)∘C(k,:)`) dominates CP
//! decomposition. This example sweeps the CP rank for the two entry
//! placements and shows where data layout matters on a migratory
//! machine — and where per-thread FP latency takes over.
//!
//! ```sh
//! cargo run --release --example tensor_mttkrp
//! ```

use emu_chick::prelude::*;
use emu_tensor::coo::{mttkrp_reference, random_tensor};
use emu_tensor::emu::{run_mttkrp_emu, EmuMttkrpConfig, TensorLayout};
use std::sync::Arc;

fn main() {
    let cfg = presets::chick_prototype();
    let t = Arc::new(random_tensor([256, 64, 64], 1 << 14, 99));
    println!(
        "tensor: 256 x 64 x 64, {} nonzeros; 512 threadlets\n",
        t.nnz()
    );
    println!(
        "{:>5} {:>14} {:>20} {:>10}",
        "rank", "1D (MB/s)", "slice-blocked (MB/s)", "speedup"
    );
    for rank in [1u32, 2, 4, 8, 16] {
        let reference = mttkrp_reference(&t, rank);
        let mut bw = Vec::new();
        for layout in TensorLayout::ALL {
            let r = run_mttkrp_emu(
                &cfg,
                Arc::clone(&t),
                &EmuMttkrpConfig {
                    layout,
                    rank,
                    nthreads: 512,
                },
            )
            .unwrap();
            // Exactness check against the host reference.
            let err = reference
                .iter()
                .zip(&r.y)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            assert!(err < 1e-6, "{} diverged ({err})", layout.name());
            bw.push(r.bandwidth.mb_per_sec());
        }
        println!(
            "{rank:>5} {:>14.1} {:>20.1} {:>9.2}x",
            bw[0],
            bw[1],
            bw[1] / bw[0]
        );
    }
    println!();
    println!("Slice-blocked placement keeps every entry, factor row, and output");
    println!("row local (entries of slice i live on nodelet i mod 8, B and C are");
    println!("replicated) — the tensor analogue of the paper's 2D SpMV layout. At");
    println!("higher ranks the per-thread FP latency of the soft cores dominates");
    println!("both layouts and the placement advantage shrinks.");
}
