//! Streaming graph analytics on the Emu — the application class the
//! paper's introduction motivates (STINGER, reference [3]).
//!
//! Streams an RMAT edge batch into a STINGER-style structure, then runs
//! BFS two ways: the naive port (reading `visited[v]` migrates on every
//! edge) and the paper's "smart thread migration" recipe (publish with
//! memory-side remote atomics, read locally next level).
//!
//! ```sh
//! cargo run --release --example streaming_graph
//! ```

use emu_chick::prelude::*;
use emu_graph::bfs::{run_bfs_emu, BfsMode};
use emu_graph::gen;
use emu_graph::insert::run_insert_emu;
use emu_graph::stinger::Stinger;
use std::sync::Arc;

fn main() {
    let cfg = presets::chick_prototype();
    let edges = gen::rmat(11, 1 << 14, 2026);
    println!(
        "graph: RMAT scale 11 ({} vertices, {} streamed edges)\n",
        edges.nv,
        edges.len()
    );

    // ── streaming insertion ─────────────────────────────────────────
    println!("edge-stream ingestion (threads -> M edges/s, migrations/edge):");
    for threads in [16usize, 64, 256] {
        let r = run_insert_emu(&cfg, &edges, threads, emu_graph::DEFAULT_BLOCK_CAP).unwrap();
        println!(
            "  {threads:>4} threads: {:>6.2} M edges/s   {:.2} migrations/edge",
            r.edges_per_sec / 1e6,
            r.migrations as f64 / r.edges as f64
        );
    }

    // The streamed structure is exactly the host-built one.
    let host = Stinger::build_host(&edges, emu_graph::DEFAULT_BLOCK_CAP, 8);
    let streamed = run_insert_emu(&cfg, &edges, 256, emu_graph::DEFAULT_BLOCK_CAP).unwrap();
    assert_eq!(
        streamed.graph.lock().unwrap().canonical_adjacency(),
        host.canonical_adjacency()
    );
    println!("  (verified: streamed structure == host-built structure)\n");

    // ── BFS, naive vs smart ─────────────────────────────────────────
    let g = Arc::new(host);
    let reference = g.bfs_reference(0);
    println!("BFS from vertex 0 (512 threads):");
    for mode in [BfsMode::Migrating, BfsMode::RemoteFlags] {
        let r = run_bfs_emu(&cfg, Arc::clone(&g), 0, mode, 512).unwrap();
        assert_eq!(r.levels, reference);
        println!(
            "  {:<14} {:>7.2} M TEPS  depth {}  {:>8} migrations  ({:.3} per edge)",
            mode.name(),
            r.teps / 1e6,
            r.depth,
            r.migrations,
            r.migrations as f64 / r.edges_traversed as f64
        );
    }
    println!();
    println!("The naive traversal migrates for every visited-check; the smart one");
    println!("publishes discovery with memory-side atomics and reads everything");
    println!("locally on the next level — the BFS analogue of the paper's 1D-vs-2D");
    println!("SpMV layout lesson.");
}
