//! Ping-pong microbenchmark: measuring the migration engine, the
//! component whose firmware limits explain the paper's simulator
//! validation gap (Fig 10).
//!
//! ```sh
//! cargo run --release --example migration_engine
//! ```

use emu_chick::prelude::*;
use membench::pingpong::{run_pingpong, PingPongConfig};

fn main() {
    let presets_list: [(&str, MachineConfig); 3] = [
        ("Chick hardware (1.0 firmware)", presets::chick_prototype()),
        (
            "Emu 17.11 toolchain simulator",
            presets::chick_toolchain_sim(),
        ),
        ("full-speed design point", presets::chick_full_speed()),
    ];

    println!("ping-pong: N threadlets bounce between nodelets 0 and 1\n");
    for (name, cfg) in presets_list {
        println!("{name}:");
        println!(
            "{:>10} {:>18} {:>14} {:>12}",
            "threads", "migrations/s", "mean lat", "p99 lat"
        );
        for threads in [1usize, 4, 16, 64] {
            let r = run_pingpong(
                &cfg,
                &PingPongConfig {
                    nthreads: threads,
                    round_trips: 1000,
                    a: NodeletId(0),
                    b: NodeletId(1),
                },
            )
            .unwrap();
            println!(
                "{:>10} {:>16.2} M {:>11.2} us {:>9} ",
                threads,
                r.migrations_per_sec / 1e6,
                r.mean_latency_ns / 1000.0,
                format!("{}", r.p99_latency),
            );
        }
        println!();
    }
    println!("Hardware saturates near 9 M migrations/s; the toolchain simulator's");
    println!("idealized engine reaches ~16 M/s — reproducing the Fig 10 mismatch on");
    println!("migration-bound benchmarks while STREAM agrees on both.");
}
