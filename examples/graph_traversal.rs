//! Pointer chasing as a proxy for streaming-graph traversal — the
//! motivating workload class of the paper's introduction.
//!
//! Sweeps the block size (the amount of spatial locality left in a
//! fragmented neighbor list) on both platforms and prints bandwidth and
//! utilization side by side, i.e. a miniature Figs 6–8.
//!
//! ```sh
//! cargo run --release --example graph_traversal
//! ```

use emu_chick::prelude::*;
use membench::chase::{cpu::run_chase_cpu, run_chase_emu, ChaseConfig, ShuffleMode};
use membench::stream::{
    cpu::{run_stream_cpu, CpuStreamConfig},
    run_stream_emu, EmuStreamConfig,
};

fn main() {
    let emu_cfg = presets::chick_prototype();
    let cpu_cfg = sandy_bridge();

    // Peak measured STREAM on each platform is the utilization baseline.
    let emu_peak = run_stream_emu(
        &emu_cfg,
        &EmuStreamConfig {
            total_elems: 1 << 16,
            nthreads: 512,
            ..Default::default()
        },
    )
    .unwrap()
    .bandwidth
    .mb_per_sec();
    let cpu_peak = run_stream_cpu(
        &cpu_cfg,
        &CpuStreamConfig {
            total_elems: 1 << 18,
            nthreads: 16,
            ..Default::default()
        },
    )
    .bandwidth
    .mb_per_sec();
    println!("peak STREAM: Emu {emu_peak:.0} MB/s | Xeon {cpu_peak:.0} MB/s");
    println!();
    println!(
        "{:>12} {:>14} {:>8} {:>14} {:>8}",
        "block_elems", "Emu (MB/s)", "util", "Xeon (MB/s)", "util"
    );

    for block in [1usize, 4, 16, 64, 256, 1024] {
        let emu = run_chase_emu(
            &emu_cfg,
            &ChaseConfig {
                elems_per_list: 2048,
                nlists: 512,
                block_elems: block,
                mode: ShuffleMode::FullBlock,
                seed: 42,
            },
        )
        .unwrap();
        assert_eq!(
            emu.checksum,
            ChaseConfig {
                elems_per_list: 2048,
                nlists: 512,
                block_elems: block,
                mode: ShuffleMode::FullBlock,
                seed: 42,
            }
            .expected_checksum()
        );
        let cpu = run_chase_cpu(
            &cpu_cfg,
            &ChaseConfig {
                elems_per_list: 1 << 16,
                nlists: 32,
                block_elems: block,
                mode: ShuffleMode::FullBlock,
                seed: 42,
            },
        );
        println!(
            "{:>12} {:>14.1} {:>7.0}% {:>14.1} {:>7.0}%",
            block,
            emu.bandwidth.mb_per_sec(),
            100.0 * emu.bandwidth.mb_per_sec() / emu_peak,
            cpu.bandwidth.mb_per_sec(),
            100.0 * cpu.bandwidth.mb_per_sec() / cpu_peak,
        );
    }
    println!();
    println!("The Emu's bandwidth is nearly flat in the locality parameter — the");
    println!("paper's central claim — while the cache machine needs kilobytes of");
    println!("locality to approach even a quarter of its peak.");
}
