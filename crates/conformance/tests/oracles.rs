//! Analytical-oracle conformance: every closed-form prediction must
//! bracket the engine's measurement, for every machine preset the
//! paper models. Bands are documented in EXPERIMENTS.md.

use conformance::oracle::{all_presets, check_all};

#[test]
fn oracles_hold_for_every_preset() {
    let mut failures = Vec::new();
    for (name, cfg) in all_presets() {
        for check in check_all(&cfg).unwrap() {
            println!("{name}: {check}");
            if !check.pass() {
                failures.push(format!("{name}: {check}"));
            }
        }
    }
    assert!(failures.is_empty(), "\n{}", failures.join("\n"));
}
