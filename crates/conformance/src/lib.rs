//! Conformance checking for the Emu Chick simulator.
//!
//! Three pillars, each attacking model error from a different side:
//!
//! - [`oracle`] — closed-form queueing predictions (per-nodelet STREAM
//!   bandwidth, migration-rate ceilings, narrow-channel DRAM peaks)
//!   evaluated against the discrete-event engine for every machine
//!   preset, with explicit tolerance bands.
//! - [`fuzz`] — a deterministic configuration fuzzer that generates
//!   randomized-but-valid machine configs, fault plans, and kernel
//!   scripts, runs the calendar and reference heap queue backends in
//!   lockstep, audits both runs with [`emu_core::audit`], and shrinks
//!   any failure to a minimal repro.
//!
//! The committed corpus under `tests/corpus/` at the workspace root
//! replays previously-shrunk failures on every `cargo test` run.

pub mod fuzz;
pub mod oracle;
