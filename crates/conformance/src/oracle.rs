//! Closed-form analytical oracles for the discrete-event engine.
//!
//! The engine is a queueing network: Gossamer cores are an M/D/c-style
//! multi-server per nodelet, the narrow DRAM channel and the migration
//! engine are single FIFO servers. For workloads simple enough to solve
//! by hand, saturated throughput is the tightest resource's capacity and
//! unloaded latency is the sum of the service times along the path — no
//! simulation required. Each oracle here computes that closed form from
//! a [`MachineConfig`] alone, runs the engine on the matching workload,
//! and reports the measured/predicted ratio against an explicit
//! tolerance band.
//!
//! The point is conformance, not calibration: these bounds are derived
//! from the documented cost model (`MachineConfig::costs`, channel and
//! migration service times), so any engine change that silently alters
//! the effective cost of an op moves a ratio out of its band. Bands are
//! asymmetric where queueing theory says they must be — a saturated
//! bound is an upper bound (ratio ≤ 1 plus startup slack), an unloaded
//! latency is a lower bound on time (throughput ratio ≤ 1).
//!
//! The formulas and measured ratios per preset are documented in
//! EXPERIMENTS.md ("Conformance & fuzzing").

use emu_core::prelude::*;
use membench::pingpong::{run_pingpong, PingPongConfig};
use membench::stream::{run_stream_emu, EmuStreamConfig, StreamKernel};

/// One oracle evaluation: a closed-form prediction, the engine's
/// measurement, and the tolerance band on `measured / predicted`.
#[derive(Debug, Clone)]
pub struct OracleCheck {
    /// Which oracle, e.g. `"stream-saturated"`.
    pub name: &'static str,
    /// Closed-form prediction.
    pub predicted: f64,
    /// Engine measurement of the same quantity.
    pub measured: f64,
    /// Unit of both values (for reporting).
    pub unit: &'static str,
    /// Acceptable `measured / predicted` range, inclusive.
    pub band: (f64, f64),
}

impl OracleCheck {
    /// Measured over predicted.
    pub fn ratio(&self) -> f64 {
        self.measured / self.predicted
    }

    /// Whether the ratio falls inside the tolerance band.
    pub fn pass(&self) -> bool {
        let r = self.ratio();
        r.is_finite() && r >= self.band.0 && r <= self.band.1
    }
}

impl std::fmt::Display for OracleCheck {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: predicted {:.4e} {u}, measured {:.4e} {u}, ratio {:.3} (band {:.2}..{:.2}) {}",
            self.name,
            self.predicted,
            self.measured,
            self.ratio(),
            self.band.0,
            self.band.1,
            if self.pass() { "ok" } else { "FAIL" },
            u = self.unit,
        )
    }
}

/// Seconds per Gossamer-core cycle.
fn cycle_s(cfg: &MachineConfig) -> f64 {
    cfg.gc_clock.period().secs_f64()
}

/// Closed-form single-nodelet STREAM element rate (elements/second) for
/// `threads` workers, the M/D/c-style bound
/// `X(n) = min(n / R, c / D_core, 1 / D_chan)`:
///
/// * `R` — unloaded per-element latency of one thread: each load blocks
///   for issue + pipeline cycles, then channel service, then DRAM
///   latency; a store blocks for issue + pipeline only (the write drains
///   asynchronously); compute blocks for `cycles x latency_factor`. The
///   stack touch adds one load every `touch_period` elements.
/// * `D_core` — core occupancy per element (issue cycles + compute),
///   with `c = gcs_per_nodelet` servers.
/// * `D_chan` — channel occupancy per element: every load, store, and
///   stack touch is one 8-byte request.
pub fn stream_elem_rate(
    cfg: &MachineConfig,
    kernel: StreamKernel,
    threads: usize,
    touch_period: u32,
) -> f64 {
    let cyc = cycle_s(cfg);
    let loads = kernel.loads() as f64;
    let touch = if touch_period == 0 {
        0.0
    } else {
        1.0 / touch_period as f64
    };
    let issue = cfg.costs.mem_issue_cycles as f64;
    let pipeline = cfg.costs.mem_pipeline_cycles as f64;
    let word = cfg.channel_service(8).secs_f64();
    let dram = cfg.dram_latency.secs_f64();

    let load_latency = (issue + pipeline) * cyc + word + dram;
    let store_latency = (issue + pipeline) * cyc;
    let compute_latency = (kernel.compute_cycles() * cfg.costs.compute_latency_factor) as f64 * cyc;
    let r = (loads + touch) * load_latency + compute_latency + store_latency;

    let d_core = ((loads + touch + 1.0) * issue + kernel.compute_cycles() as f64) * cyc;
    let d_chan = (loads + touch + 1.0) * word;

    (threads as f64 / r)
        .min(cfg.gcs_per_nodelet as f64 / d_core)
        .min(1.0 / d_chan)
}

/// Saturated single-nodelet STREAM ADD bandwidth versus the M/D/c bound.
///
/// Uses one worker per hardware threadlet slot so the bound's `min`
/// selects a resource capacity, not the latency term. Queueing, spawn
/// ramp-up, and uneven tail completion keep the measurement below the
/// bound; the band allows that slack while still catching cost-model
/// drift in either direction.
pub fn check_stream_saturated(cfg: &MachineConfig) -> Result<OracleCheck, SimError> {
    let kernel = StreamKernel::Add;
    let sc = EmuStreamConfig {
        total_elems: 1 << 14,
        nthreads: cfg.slots_per_nodelet() as usize,
        kernel,
        single_nodelet: true,
        ..Default::default()
    };
    let r = run_stream_emu(cfg, &sc)?;
    let rate = stream_elem_rate(cfg, kernel, sc.nthreads, sc.stack_touch_period);
    Ok(OracleCheck {
        name: "stream-saturated",
        predicted: rate * kernel.bytes_per_elem() as f64,
        measured: r.bandwidth.bytes_per_sec,
        unit: "B/s",
        band: (0.95, 1.02),
    })
}

/// Single-thread single-nodelet STREAM ADD bandwidth versus the
/// latency-bound term `1 / R` of the same model. With one worker there
/// is no queueing, so the unloaded-latency sum should be nearly exact.
pub fn check_stream_single_thread(cfg: &MachineConfig) -> Result<OracleCheck, SimError> {
    let kernel = StreamKernel::Add;
    let sc = EmuStreamConfig {
        total_elems: 1 << 10,
        nthreads: 1,
        kernel,
        single_nodelet: true,
        ..Default::default()
    };
    let r = run_stream_emu(cfg, &sc)?;
    let rate = stream_elem_rate(cfg, kernel, 1, sc.stack_touch_period);
    Ok(OracleCheck {
        name: "stream-single-thread",
        predicted: rate * kernel.bytes_per_elem() as f64,
        measured: r.bandwidth.bytes_per_sec,
        unit: "B/s",
        band: (0.98, 1.02),
    })
}

/// Saturated two-nodelet ping-pong throughput versus the migration-rate
/// ceiling. Every bounce is served by one of the two endpoint migration
/// engines, so aggregate throughput is capped by
/// `2 x min(engine rate, core issue capacity)` where the issue capacity
/// is `gcs / (migrate_issue_cycles x cycle)` migrations/s per nodelet.
pub fn check_migration_ceiling(cfg: &MachineConfig) -> Result<OracleCheck, SimError> {
    let pc = PingPongConfig {
        nthreads: cfg.slots_per_nodelet() as usize,
        round_trips: 500,
        ..Default::default()
    };
    let r = run_pingpong(cfg, &pc)?;
    let engine_rate = cfg.migration_rate_per_sec as f64;
    let issue_rate =
        cfg.gcs_per_nodelet as f64 / (cfg.costs.migrate_issue_cycles as f64 * cycle_s(cfg));
    Ok(OracleCheck {
        name: "migration-ceiling",
        predicted: 2.0 * engine_rate.min(issue_rate),
        measured: r.migrations_per_sec,
        unit: "mig/s",
        band: (0.95, 1.01),
    })
}

/// Worker for the channel-peak oracle: `reps` local loads of `bytes`.
struct BigLoader {
    reps: u32,
    bytes: u32,
    home: NodeletId,
}

impl Kernel for BigLoader {
    fn step(&mut self, _ctx: &KernelCtx) -> Op {
        if self.reps == 0 {
            return Op::Quit;
        }
        self.reps -= 1;
        Op::Load {
            addr: GlobalAddr::new(self.home, 0x100),
            bytes: self.bytes,
        }
    }
}

/// Narrow-channel DRAM peak: enough threads issuing large local loads
/// that the channel, not the cores, is the bottleneck. Predicted
/// bandwidth is `bytes / channel_service(bytes)` — the wire rate
/// degraded by the per-access overhead — and the measurement should sit
/// tight against it, making this the sharpest of the three oracles.
pub fn check_channel_peak(cfg: &MachineConfig) -> Result<OracleCheck, SimError> {
    let bytes = 1024u32;
    let reps = 64u32;
    let threads = 16.min(cfg.slots_per_nodelet());
    let mut e = Engine::new(cfg.clone())?;
    for _ in 0..threads {
        e.spawn_at(
            NodeletId(0),
            Box::new(BigLoader {
                reps,
                bytes,
                home: NodeletId(0),
            }),
        )?;
    }
    let r = e.run()?;
    let measured = r.total_bytes() as f64 / r.makespan.secs_f64();
    Ok(OracleCheck {
        name: "channel-peak",
        predicted: bytes as f64 / cfg.channel_service(bytes).secs_f64(),
        measured,
        unit: "B/s",
        band: (0.97, 1.01),
    })
}

/// Evaluate every oracle against one machine config.
pub fn check_all(cfg: &MachineConfig) -> Result<Vec<OracleCheck>, SimError> {
    Ok(vec![
        check_stream_saturated(cfg)?,
        check_stream_single_thread(cfg)?,
        check_migration_ceiling(cfg)?,
        check_channel_peak(cfg)?,
    ])
}

/// The presets the paper models, by name — the sweep set for the oracle
/// conformance tests.
pub fn all_presets() -> Vec<(&'static str, MachineConfig)> {
    vec![
        ("chick_prototype", presets::chick_prototype()),
        ("chick_toolchain_sim", presets::chick_toolchain_sim()),
        ("chick_full_speed", presets::chick_full_speed()),
        ("emu64_full_speed", presets::emu64_full_speed()),
        ("chick_8node_prototype", presets::chick_8node_prototype()),
    ]
}
