//! Deterministic configuration fuzzing for the engine.
//!
//! The fuzzer generates randomized-but-valid [`MachineConfig`]s, fault
//! plans, and per-thread op scripts; runs each case three times — on the
//! default calendar event queue, on the reference binary-heap backend,
//! and on the sharded parallel scheduler with two workers — and demands
//! all runs agree **exactly** (counters, occupancy, histograms,
//! makespan, and the full event trace). Every run is then audited by
//! [`emu_core::audit`]. Because every stochastic fault decision is
//! keyed off a monotone draw counter, backends that pop events in the
//! same (time, key) order must produce byte-identical reports; any
//! divergence is a queue or barrier bug, and any audit violation is an
//! accounting bug.
//!
//! Failures shrink greedily to a minimal reproducer and round-trip
//! through a plain-text codec ([`encode`]/[`decode`]) so they can be
//! committed to `tests/corpus/` and replayed by `cargo test` forever.
//! Everything is seeded via [`desim::rng`]: [`fuzz`] is a pure
//! function of its arguments.

use desim::rng::{rng_from_seed, trial_seed, Rng64};
use desim::time::Time;
use emu_core::prelude::*;

/// Serializable op description (mirrors the subset of [`Op`] a script
/// can replay: memory traffic, compute, and explicit migration).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpSpec {
    /// Load `bytes` from `nodelet` (migrates the thread if remote).
    Load {
        /// Target nodelet.
        nodelet: u32,
        /// Request size in bytes.
        bytes: u32,
    },
    /// Store `bytes` to `nodelet` (remote stores post a packet).
    Store {
        /// Target nodelet.
        nodelet: u32,
        /// Request size in bytes.
        bytes: u32,
    },
    /// Memory-side atomic add at `nodelet`.
    Atomic {
        /// Target nodelet.
        nodelet: u32,
        /// Request size in bytes.
        bytes: u32,
    },
    /// Occupy the core for `cycles`.
    Compute {
        /// Core-occupancy cycles.
        cycles: u32,
    },
    /// Explicitly migrate to `nodelet`.
    Migrate {
        /// Destination nodelet.
        nodelet: u32,
    },
}

impl OpSpec {
    /// Lower this spec to a concrete engine [`Op`] on a machine of
    /// `total` nodelets (targets are taken modulo `total`).
    pub fn to_op(&self, total: u32) -> Op {
        let node = |n: u32| NodeletId(n % total);
        match *self {
            OpSpec::Load { nodelet, bytes } => Op::Load {
                addr: GlobalAddr::new(node(nodelet), 0x40),
                bytes,
            },
            OpSpec::Store { nodelet, bytes } => Op::Store {
                addr: GlobalAddr::new(node(nodelet), 0x80),
                bytes,
            },
            OpSpec::Atomic { nodelet, bytes } => Op::AtomicAdd {
                addr: GlobalAddr::new(node(nodelet), 0xc0),
                bytes,
            },
            OpSpec::Compute { cycles } => Op::Compute { cycles },
            OpSpec::Migrate { nodelet } => Op::MigrateTo {
                nodelet: node(nodelet),
            },
        }
    }
}

/// One threadlet of a fuzz case: where it starts and what it runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadScript {
    /// Spawn nodelet (taken modulo the machine's nodelet count).
    pub start: u32,
    /// Ops replayed in order; an implicit `Quit` follows.
    pub ops: Vec<OpSpec>,
}

/// A complete fuzz case: a machine plus a workload.
#[derive(Debug, Clone)]
pub struct FuzzCase {
    /// The machine (geometry, timing, fault plan).
    pub cfg: MachineConfig,
    /// The workload, one script per root threadlet.
    pub threads: Vec<ThreadScript>,
}

impl FuzzCase {
    /// A crude complexity measure used to prove shrinking progress:
    /// threads + ops + nodelets + active fault knobs.
    pub fn size(&self) -> usize {
        let f = &self.cfg.faults;
        let fault_knobs = [
            f.mig_nack_prob > 0.0,
            f.ecc_prob > 0.0,
            f.link_drop_prob > 0.0,
            !f.slowdown.is_empty(),
            f.dead.iter().any(|&d| d),
        ]
        .iter()
        .filter(|&&k| k)
        .count();
        self.threads.len()
            + self.threads.iter().map(|t| t.ops.len()).sum::<usize>()
            + self.cfg.total_nodelets() as usize
            + fault_knobs
    }
}

/// Generate one randomized-but-valid case. Every value is drawn from
/// `rng`, and the result always passes [`MachineConfig::validate`].
pub fn gen_case(rng: &mut Rng64) -> FuzzCase {
    let nodes = rng.gen_range(1..3u32);
    let nodelets_per_node = rng.gen_range(1..9u32);
    let total = nodes * nodelets_per_node;
    let mut faults = FaultPlan::none();
    if rng.gen_range(0..2u32) == 1 {
        faults.seed = rng.next_u64();
        faults.mig_nack_prob = rng.gen_range(0.0..0.3);
        faults.mig_backoff = Time::from_ns(rng.gen_range(1..100u64));
        faults.mig_retry_budget = 64;
        faults.ecc_prob = rng.gen_range(0.0..0.3);
        faults.ecc_latency = Time::from_ns(rng.gen_range(1..100u64));
        faults.link_drop_prob = rng.gen_range(0.0..0.2);
        faults.link_retry_budget = 64;
        if rng.gen_range(0..2u32) == 1 {
            faults.slowdown = (0..total).map(|_| rng.gen_range(1.0..4.0)).collect();
        }
        if total > 1 && rng.gen_range(0..2u32) == 1 {
            // Nodelet 0 stays alive so redirects always have a target.
            faults.dead = (0..total)
                .map(|n| n > 0 && rng.gen_range(0..5u32) == 0)
                .collect();
        }
    }
    let cfg = MachineConfig {
        nodes,
        nodelets_per_node,
        gcs_per_nodelet: rng.gen_range(1..3u32),
        threadlets_per_gc: rng.gen_range(2..17u32),
        gc_clock: desim::time::Clock::from_mhz(rng.gen_range(50..400u64)),
        ncdram_bytes_per_sec: rng.gen_range(100_000_000..4_000_000_000u64),
        dram_latency: Time::from_ns(rng.gen_range(0..200u64)),
        dram_access_overhead: Time::from_ns(rng.gen_range(0..20u64)),
        dram_burst_bytes: rng.gen_range(1..65u32),
        migration_rate_per_sec: rng.gen_range(100_000..20_000_000u64),
        intra_node_hop: Time::from_ns(rng.gen_range(0..500u64)),
        inter_node_hop: Time::from_ns(rng.gen_range(0..1000u64)),
        rapidio_bytes_per_sec: rng.gen_range(100_000_000..10_000_000_000u64),
        context_bytes: rng.gen_range(64..257u32),
        costs: CostModel {
            mem_issue_cycles: rng.gen_range(1..11u32),
            mem_pipeline_cycles: rng.gen_range(0..300u32),
            compute_latency_factor: rng.gen_range(1..9u32),
            spawn_issue_cycles: rng.gen_range(1..51u32),
            spawn_local_latency: Time::from_ns(rng.gen_range(0..500u64)),
            migrate_issue_cycles: rng.gen_range(1..17u32),
            atomic_extra: Time::from_ns(rng.gen_range(0..20u64)),
        },
        faults,
    };
    debug_assert!(cfg.validate().is_ok());
    let nthreads = rng.gen_range(1..6usize);
    let threads = (0..nthreads)
        .map(|_| ThreadScript {
            start: rng.gen_range(0..total),
            ops: gen_ops(rng, total),
        })
        .collect();
    FuzzCase { cfg, threads }
}

fn gen_ops(rng: &mut Rng64, total: u32) -> Vec<OpSpec> {
    let len = rng.gen_range(0..25usize);
    (0..len)
        .map(|_| match rng.gen_range(0..5u32) {
            0 => OpSpec::Load {
                nodelet: rng.gen_range(0..total),
                bytes: rng.gen_range(1..257u32),
            },
            1 => OpSpec::Store {
                nodelet: rng.gen_range(0..total),
                bytes: rng.gen_range(1..257u32),
            },
            2 => OpSpec::Atomic {
                nodelet: rng.gen_range(0..total),
                bytes: rng.gen_range(1..65u32),
            },
            3 => OpSpec::Compute {
                cycles: rng.gen_range(1..300u32),
            },
            _ => OpSpec::Migrate {
                nodelet: rng.gen_range(0..total),
            },
        })
        .collect()
}

/// Trace ring capacity for lockstep runs — large enough that every
/// generated case traces losslessly, so the audit's trace/counter
/// reconciliation always applies.
const TRACE_CAP: usize = 1 << 16;

/// Seed `engine` (built from — or reset to — `case.cfg`) with one
/// [`ScriptKernel`] per thread script. Shared by the lockstep runner and
/// the `simd` daemon, which replays cases on warm engines.
pub fn seed_case(engine: &mut Engine, case: &FuzzCase) -> Result<(), SimError> {
    let total = engine.cfg().total_nodelets();
    for t in &case.threads {
        let ops: Vec<Op> = t.ops.iter().map(|o| o.to_op(total)).collect();
        engine.spawn_at(NodeletId(t.start % total), Box::new(ScriptKernel::new(ops)))?;
    }
    Ok(())
}

fn run_once(
    case: &FuzzCase,
    reference_queue: bool,
    sim_threads: usize,
) -> Result<RunReport, SimError> {
    let mut e = Engine::new(case.cfg.clone())?;
    if reference_queue {
        e.use_reference_queue();
    }
    e.set_sim_threads(sim_threads);
    // The sharded leg exists to lockstep-check the threaded scheduler,
    // so pin it on: adaptive merging would otherwise collapse the pool
    // to the inline path on a single-core host and the three-way
    // comparison would silently lose its parallel witness.
    e.enable_merge(false);
    e.enable_trace(TRACE_CAP);
    seed_case(&mut e, case)?;
    e.run()
}

/// Compare two reports field group by field group, returning a message
/// per divergence. Identical runs must match exactly (not within a
/// tolerance): both backends consume the same seeds in the same order.
fn diff_reports(a: &RunReport, b: &RunReport, la: &str, lb: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut check = |what: &str, x: String, y: String| {
        if x != y {
            out.push(format!("{what} diverged:\n  {la}: {x}\n  {lb}: {y}"));
        }
    };
    check(
        "makespan",
        format!("{:?}", a.makespan),
        format!("{:?}", b.makespan),
    );
    check("threads", a.threads.to_string(), b.threads.to_string());
    check("events", a.events.to_string(), b.events.to_string());
    check(
        "nodelet counters",
        format!("{:?}", a.nodelets),
        format!("{:?}", b.nodelets),
    );
    check(
        "occupancy",
        format!("{:?}", a.occupancy),
        format!("{:?}", b.occupancy),
    );
    check(
        "migration latency",
        format!("{:?}", a.migration_latency),
        format!("{:?}", b.migration_latency),
    );
    check(
        "migrations per thread",
        format!("{:?}", a.migrations_per_thread),
        format!("{:?}", b.migrations_per_thread),
    );
    check(
        "time breakdown",
        format!("{:?}", a.breakdown),
        format!("{:?}", b.breakdown),
    );
    check(
        "pdes summary",
        format!("{:?}", a.pdes),
        format!("{:?}", b.pdes),
    );
    match (&a.trace, &b.trace) {
        (Some(ta), Some(tb)) => {
            if ta.events != tb.events || ta.dropped != tb.dropped {
                out.push("trace event streams diverged".into());
            }
        }
        (None, None) => {}
        _ => out.push("trace presence diverged".into()),
    }
    out
}

/// Run one case in lockstep on both queue backends and on the sharded
/// parallel scheduler (two workers), audit every run, and return every
/// problem found (empty = conforming).
pub fn run_case(case: &FuzzCase) -> Vec<String> {
    let mut problems = Vec::new();
    match (
        run_once(case, false, 1),
        run_once(case, true, 1),
        run_once(case, false, 2),
    ) {
        (Ok(a), Ok(b), Ok(p)) => {
            problems.extend(diff_reports(&a, &b, "calendar", "heap"));
            problems.extend(diff_reports(&a, &p, "sequential", "pdes-2shard"));
            for (label, r) in [("calendar", &a), ("heap", &b), ("pdes-2shard", &p)] {
                for v in audit(&case.cfg, r) {
                    problems.push(format!("audit ({label}): {v}"));
                }
            }
        }
        (Err(ea), Err(eb), Err(ep)) => {
            // A deterministic rejection is fine, but it must be the
            // same rejection on every backend.
            if ea.to_string() != eb.to_string() || ea.to_string() != ep.to_string() {
                problems.push(format!(
                    "errors diverged: calendar={ea}, heap={eb}, pdes-2shard={ep}"
                ));
            }
        }
        (ra, rb, rp) => {
            let d = |r: Result<RunReport, SimError>| match r {
                Ok(_) => "ok".to_string(),
                Err(e) => format!("err ({e})"),
            };
            problems.push(format!(
                "outcomes diverged: calendar={}, heap={}, pdes-2shard={}",
                d(ra),
                d(rb),
                d(rp)
            ));
        }
    }
    problems
}

/// Greedily shrink `case` while `still_fails` holds, returning the
/// smallest failing case found. The predicate is re-evaluated on every
/// candidate, capped at `max_evals` evaluations.
pub fn shrink_with(
    case: &FuzzCase,
    max_evals: usize,
    still_fails: &mut dyn FnMut(&FuzzCase) -> bool,
) -> FuzzCase {
    let mut best = case.clone();
    let mut evals = 0usize;
    loop {
        let mut improved = false;
        for cand in candidates(&best) {
            if evals >= max_evals {
                return best;
            }
            if cand.size() >= best.size() {
                continue;
            }
            evals += 1;
            if still_fails(&cand) {
                best = cand;
                improved = true;
                break;
            }
        }
        if !improved {
            return best;
        }
    }
}

/// Shrink a case that fails [`run_case`] to a minimal failing repro.
pub fn shrink(case: &FuzzCase) -> FuzzCase {
    shrink_with(case, 400, &mut |c| !run_case(c).is_empty())
}

/// One round of shrink candidates, cheapest wins first.
fn candidates(case: &FuzzCase) -> Vec<FuzzCase> {
    let mut out = Vec::new();
    // Drop a whole thread (keep at least one).
    if case.threads.len() > 1 {
        for i in 0..case.threads.len() {
            let mut c = case.clone();
            c.threads.remove(i);
            out.push(c);
        }
    }
    // Halve, then single-step-trim each thread's script.
    for i in 0..case.threads.len() {
        let len = case.threads[i].ops.len();
        if len == 0 {
            continue;
        }
        let mut halved = case.clone();
        halved.threads[i].ops.truncate(len / 2);
        out.push(halved);
        for k in 0..len {
            let mut c = case.clone();
            c.threads[i].ops.remove(k);
            out.push(c);
        }
    }
    // Neutralize the fault plan, whole or knob by knob.
    let f = &case.cfg.faults;
    if !f.is_none() {
        let mut c = case.clone();
        c.cfg.faults = FaultPlan::none();
        out.push(c);
        for knob in 0..5 {
            let mut c = case.clone();
            let fp = &mut c.cfg.faults;
            match knob {
                0 => fp.mig_nack_prob = 0.0,
                1 => fp.ecc_prob = 0.0,
                2 => fp.link_drop_prob = 0.0,
                3 => fp.slowdown.clear(),
                _ => fp.dead.clear(),
            }
            out.push(c);
        }
    }
    // Simplify the machine geometry. Op targets and thread starts are
    // taken modulo the nodelet count, so geometry shrinks stay valid.
    if case.cfg.nodes > 1 {
        let mut c = case.clone();
        c.cfg.nodes = 1;
        let total = c.cfg.total_nodelets() as usize;
        c.cfg.faults.slowdown.truncate(total);
        c.cfg.faults.dead.truncate(total);
        out.push(c);
    }
    if case.cfg.nodelets_per_node > 1 {
        let mut c = case.clone();
        c.cfg.nodelets_per_node /= 2;
        let total = c.cfg.total_nodelets() as usize;
        c.cfg.faults.slowdown.truncate(total);
        c.cfg.faults.dead.truncate(total);
        if c.cfg.faults.dead.iter().all(|&d| d) {
            c.cfg.faults.dead.clear();
        }
        out.push(c);
    }
    out
}

/// A conformance failure found by [`fuzz`]: the first failing case, its
/// shrunk repro, and what went wrong.
#[derive(Debug)]
pub struct FuzzFailure {
    /// Index of the failing case within the run.
    pub case_index: u64,
    /// The original failing case.
    pub case: FuzzCase,
    /// The shrunk repro (encode it for the corpus).
    pub minimized: FuzzCase,
    /// Problems reported by [`run_case`] on the original case.
    pub problems: Vec<String>,
}

/// Run `n` generated cases from `seed`. Returns the number of cases
/// that ran clean, or the first failure, shrunk. `progress` is called
/// with the index of every case as it starts.
pub fn fuzz(seed: u64, n: u64, mut progress: impl FnMut(u64)) -> Result<u64, Box<FuzzFailure>> {
    for i in 0..n {
        progress(i);
        let mut rng = rng_from_seed(trial_seed(seed, i));
        let case = gen_case(&mut rng);
        let problems = run_case(&case);
        if !problems.is_empty() {
            let minimized = shrink(&case);
            return Err(Box::new(FuzzFailure {
                case_index: i,
                case,
                minimized,
                problems,
            }));
        }
    }
    Ok(n)
}

// --- text codec -----------------------------------------------------------

/// Serialize a case to the corpus text format: one `key=value` per
/// line, threads last, `#` comments ignored on read.
pub fn encode(case: &FuzzCase) -> String {
    use std::fmt::Write as _;
    let c = &case.cfg;
    let f = &c.faults;
    let mut s = String::from("# conformance fuzz case v1\n");
    let hz = (desim::time::PS_PER_S + c.gc_clock.period().ps() / 2) / c.gc_clock.period().ps();
    let _ = write!(
        s,
        "nodes={}\nnodelets_per_node={}\ngcs_per_nodelet={}\nthreadlets_per_gc={}\n\
         gc_hz={hz}\nncdram_bytes_per_sec={}\ndram_latency_ps={}\ndram_access_overhead_ps={}\n\
         dram_burst_bytes={}\nmigration_rate_per_sec={}\nintra_node_hop_ps={}\n\
         inter_node_hop_ps={}\nrapidio_bytes_per_sec={}\ncontext_bytes={}\n\
         mem_issue_cycles={}\nmem_pipeline_cycles={}\ncompute_latency_factor={}\n\
         spawn_issue_cycles={}\nspawn_local_latency_ps={}\nmigrate_issue_cycles={}\n\
         atomic_extra_ps={}\n",
        c.nodes,
        c.nodelets_per_node,
        c.gcs_per_nodelet,
        c.threadlets_per_gc,
        c.ncdram_bytes_per_sec,
        c.dram_latency.ps(),
        c.dram_access_overhead.ps(),
        c.dram_burst_bytes,
        c.migration_rate_per_sec,
        c.intra_node_hop.ps(),
        c.inter_node_hop.ps(),
        c.rapidio_bytes_per_sec,
        c.context_bytes,
        c.costs.mem_issue_cycles,
        c.costs.mem_pipeline_cycles,
        c.costs.compute_latency_factor,
        c.costs.spawn_issue_cycles,
        c.costs.spawn_local_latency.ps(),
        c.costs.migrate_issue_cycles,
        c.costs.atomic_extra.ps(),
    );
    let _ = write!(
        s,
        "fault_seed={}\nfault_mig_nack_prob={:?}\nfault_mig_backoff_ps={}\n\
         fault_mig_retry_budget={}\nfault_ecc_prob={:?}\nfault_ecc_latency_ps={}\n\
         fault_link_drop_prob={:?}\nfault_link_retry_budget={}\nfault_max_events={}\n",
        f.seed,
        f.mig_nack_prob,
        f.mig_backoff.ps(),
        f.mig_retry_budget,
        f.ecc_prob,
        f.ecc_latency.ps(),
        f.link_drop_prob,
        f.link_retry_budget,
        f.max_events,
    );
    if !f.slowdown.is_empty() {
        let xs: Vec<String> = f.slowdown.iter().map(|x| format!("{x:?}")).collect();
        let _ = writeln!(s, "fault_slowdown={}", xs.join(","));
    }
    if !f.dead.is_empty() {
        let xs: Vec<String> = f.dead.iter().map(|&d| (d as u8).to_string()).collect();
        let _ = writeln!(s, "fault_dead={}", xs.join(","));
    }
    for t in &case.threads {
        let _ = write!(s, "thread={}", t.start);
        for op in &t.ops {
            let _ = match op {
                OpSpec::Load { nodelet, bytes } => write!(s, " L{nodelet}:{bytes}"),
                OpSpec::Store { nodelet, bytes } => write!(s, " S{nodelet}:{bytes}"),
                OpSpec::Atomic { nodelet, bytes } => write!(s, " A{nodelet}:{bytes}"),
                OpSpec::Compute { cycles } => write!(s, " C{cycles}"),
                OpSpec::Migrate { nodelet } => write!(s, " M{nodelet}"),
            };
        }
        s.push('\n');
    }
    s
}

fn parse<T: std::str::FromStr>(v: &str, key: &str) -> Result<T, String> {
    v.parse().map_err(|_| format!("bad value for {key}: {v:?}"))
}

/// Render one [`OpSpec`] in the corpus token syntax (`L0:8`, `C5`,
/// `M3`, …) — the inverse of [`parse_op`].
pub fn op_token(op: &OpSpec) -> String {
    match op {
        OpSpec::Load { nodelet, bytes } => format!("L{nodelet}:{bytes}"),
        OpSpec::Store { nodelet, bytes } => format!("S{nodelet}:{bytes}"),
        OpSpec::Atomic { nodelet, bytes } => format!("A{nodelet}:{bytes}"),
        OpSpec::Compute { cycles } => format!("C{cycles}"),
        OpSpec::Migrate { nodelet } => format!("M{nodelet}"),
    }
}

/// Parse one op token of the corpus syntax back into an [`OpSpec`].
pub fn parse_op(tok: &str) -> Result<OpSpec, String> {
    if tok.is_empty() {
        return Err("empty op token".into());
    }
    let (kind, rest) = tok.split_at(1);
    let pair = |rest: &str| -> Result<(u32, u32), String> {
        let (n, b) = rest
            .split_once(':')
            .ok_or_else(|| format!("bad op {tok:?}"))?;
        Ok((parse(n, "op nodelet")?, parse(b, "op bytes")?))
    };
    Ok(match kind {
        "L" => {
            let (nodelet, bytes) = pair(rest)?;
            OpSpec::Load { nodelet, bytes }
        }
        "S" => {
            let (nodelet, bytes) = pair(rest)?;
            OpSpec::Store { nodelet, bytes }
        }
        "A" => {
            let (nodelet, bytes) = pair(rest)?;
            OpSpec::Atomic { nodelet, bytes }
        }
        "C" => OpSpec::Compute {
            cycles: parse(rest, "op cycles")?,
        },
        "M" => OpSpec::Migrate {
            nodelet: parse(rest, "op nodelet")?,
        },
        _ => return Err(format!("unknown op {tok:?}")),
    })
}

/// Apply one `key=value` override to `cfg` using the corpus codec
/// vocabulary: machine geometry, clocking, cost-model, and `fault_*`
/// knobs. Shared by [`decode`] and the `.scn` scenario resolver, so a
/// scenario's `machine`/`faults` overrides and a corpus case speak
/// exactly the same language.
pub fn apply_config_key(cfg: &mut MachineConfig, key: &str, val: &str) -> Result<(), String> {
    match key {
        "nodes" => cfg.nodes = parse(val, key)?,
        "nodelets_per_node" => cfg.nodelets_per_node = parse(val, key)?,
        "gcs_per_nodelet" => cfg.gcs_per_nodelet = parse(val, key)?,
        "threadlets_per_gc" => cfg.threadlets_per_gc = parse(val, key)?,
        "gc_hz" => cfg.gc_clock = desim::time::Clock::from_hz(parse(val, key)?),
        "ncdram_bytes_per_sec" => cfg.ncdram_bytes_per_sec = parse(val, key)?,
        "dram_latency_ps" => cfg.dram_latency = Time::from_ps(parse(val, key)?),
        "dram_access_overhead_ps" => cfg.dram_access_overhead = Time::from_ps(parse(val, key)?),
        "dram_burst_bytes" => cfg.dram_burst_bytes = parse(val, key)?,
        "migration_rate_per_sec" => cfg.migration_rate_per_sec = parse(val, key)?,
        "intra_node_hop_ps" => cfg.intra_node_hop = Time::from_ps(parse(val, key)?),
        "inter_node_hop_ps" => cfg.inter_node_hop = Time::from_ps(parse(val, key)?),
        "rapidio_bytes_per_sec" => cfg.rapidio_bytes_per_sec = parse(val, key)?,
        "context_bytes" => cfg.context_bytes = parse(val, key)?,
        "mem_issue_cycles" => cfg.costs.mem_issue_cycles = parse(val, key)?,
        "mem_pipeline_cycles" => cfg.costs.mem_pipeline_cycles = parse(val, key)?,
        "compute_latency_factor" => cfg.costs.compute_latency_factor = parse(val, key)?,
        "spawn_issue_cycles" => cfg.costs.spawn_issue_cycles = parse(val, key)?,
        "spawn_local_latency_ps" => cfg.costs.spawn_local_latency = Time::from_ps(parse(val, key)?),
        "migrate_issue_cycles" => cfg.costs.migrate_issue_cycles = parse(val, key)?,
        "atomic_extra_ps" => cfg.costs.atomic_extra = Time::from_ps(parse(val, key)?),
        "fault_seed" => cfg.faults.seed = parse(val, key)?,
        "fault_mig_nack_prob" => cfg.faults.mig_nack_prob = parse(val, key)?,
        "fault_mig_backoff_ps" => cfg.faults.mig_backoff = Time::from_ps(parse(val, key)?),
        "fault_mig_retry_budget" => cfg.faults.mig_retry_budget = parse(val, key)?,
        "fault_ecc_prob" => cfg.faults.ecc_prob = parse(val, key)?,
        "fault_ecc_latency_ps" => cfg.faults.ecc_latency = Time::from_ps(parse(val, key)?),
        "fault_link_drop_prob" => cfg.faults.link_drop_prob = parse(val, key)?,
        "fault_link_retry_budget" => cfg.faults.link_retry_budget = parse(val, key)?,
        "fault_max_events" => cfg.faults.max_events = parse(val, key)?,
        "fault_slowdown" => {
            cfg.faults.slowdown = val
                .split(',')
                .map(|x| parse(x, key))
                .collect::<Result<_, _>>()?
        }
        "fault_dead" => {
            cfg.faults.dead = val
                .split(',')
                .map(|x| Ok::<bool, String>(parse::<u8>(x, key)? != 0))
                .collect::<Result<_, _>>()?
        }
        _ => return Err(format!("unknown key {key:?}")),
    }
    Ok(())
}

/// Parse one `thread=<start> <ops…>` payload (the part after `=`).
pub fn parse_thread(val: &str) -> Result<ThreadScript, String> {
    let mut toks = val.split_whitespace();
    let start = parse(toks.next().unwrap_or(""), "thread start")?;
    let ops = toks.map(parse_op).collect::<Result<_, _>>()?;
    Ok(ThreadScript { start, ops })
}

/// Parse the corpus text format back into a case. The decoded config is
/// re-validated, so a corrupt corpus file fails loudly, not subtly.
pub fn decode(text: &str) -> Result<FuzzCase, String> {
    let mut cfg = emu_core::presets::chick_prototype();
    cfg.faults = FaultPlan::none();
    let mut threads = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, val) = line
            .split_once('=')
            .ok_or_else(|| format!("bad line {line:?}"))?;
        if key == "thread" {
            threads.push(parse_thread(val)?);
        } else {
            apply_config_key(&mut cfg, key, val)?;
        }
    }
    cfg.validate()?;
    if threads.is_empty() {
        return Err("case has no threads".into());
    }
    Ok(FuzzCase { cfg, threads })
}

#[cfg(test)]
mod tests {
    use super::*;
    use test_support::cases;

    #[test]
    fn generated_cases_validate_and_round_trip() {
        cases(32, 0xF022, |case, rng| {
            let c = gen_case(rng);
            c.cfg.validate().unwrap();
            let decoded = decode(&encode(&c)).unwrap();
            assert_eq!(decoded.threads, c.threads, "case {case}");
            assert_eq!(
                format!("{:?}", decoded.cfg),
                format!("{:?}", c.cfg),
                "case {case}"
            );
        });
    }

    #[test]
    fn lockstep_clean_on_a_seeded_sweep() {
        cases(12, 0x10CB, |case, rng| {
            let c = gen_case(rng);
            let problems = run_case(&c);
            assert!(problems.is_empty(), "case {case}: {problems:?}");
        });
    }

    #[test]
    fn shrink_strictly_shrinks_a_synthetic_failure() {
        let has_migrate = |c: &FuzzCase| {
            c.threads
                .iter()
                .any(|t| t.ops.iter().any(|o| matches!(o, OpSpec::Migrate { .. })))
        };
        // Synthetic bug: "fails" whenever any Migrate op is present.
        let mut rng = rng_from_seed(0x51C1);
        let big = loop {
            let c = gen_case(&mut rng);
            if has_migrate(&c) {
                break c;
            }
        };
        let small = shrink_with(&big, 400, &mut |c| has_migrate(c));
        assert!(has_migrate(&small), "shrink lost the failure");
        assert!(
            small.size() < big.size(),
            "no progress: {} vs {}",
            small.size(),
            big.size()
        );
        // The repro should be down to a single op on a single thread.
        assert_eq!(small.threads.len(), 1);
        assert_eq!(small.threads[0].ops.len(), 1);
    }

    // The cross-shard-nack corpus exemplar's potency check (it must
    // NACK, cross shards, and migrate) lives in the scenario crate's
    // corpus tests now that the corpus is committed as `.scn`.

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode("nodes=0\nthread=0 C1").is_err());
        assert!(decode("nonsense").is_err());
        assert!(decode("frobnicate=3\nthread=0 C1").is_err());
        assert!(decode("nodes=1").is_err(), "no threads must be rejected");
        assert!(
            decode("thread=0 Z9").is_err(),
            "unknown op must be rejected"
        );
    }

    #[test]
    fn fuzz_driver_is_deterministic() {
        let mut seen_a = Vec::new();
        let mut seen_b = Vec::new();
        fuzz(7, 3, |i| seen_a.push(i)).unwrap();
        fuzz(7, 3, |i| seen_b.push(i)).unwrap();
        assert_eq!(seen_a, seen_b);
    }
}
