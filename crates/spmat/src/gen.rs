//! Random sparse-matrix generators for tests and extension benches.

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use desim::rng::rng_from_seed;

/// A uniformly random sparse matrix with ~`nnz_per_row` entries per row
/// (duplicates folded, so actual nnz may be slightly lower).
pub fn random_uniform(nrows: u32, ncols: u32, nnz_per_row: u32, seed: u64) -> CsrMatrix {
    let mut rng = rng_from_seed(seed);
    let mut coo = CooMatrix::new(nrows, ncols);
    for r in 0..nrows {
        for _ in 0..nnz_per_row {
            let c = rng.gen_range(0..ncols);
            let v = rng.gen_range(-1.0..1.0);
            coo.push(r, c, v);
        }
    }
    CsrMatrix::from_coo(&coo)
}

/// A banded matrix: diagonals at the given offsets (clipped at borders),
/// all values 1.0. Deterministic.
pub fn banded(n: u32, offsets: &[i64]) -> CsrMatrix {
    let mut coo = CooMatrix::new(n, n);
    for r in 0..n as i64 {
        for &off in offsets {
            let c = r + off;
            if (0..n as i64).contains(&c) {
                coo.push(r as u32, c as u32, 1.0);
            }
        }
    }
    CsrMatrix::from_coo(&coo)
}

/// A power-law (scale-free-ish) matrix: row `r` gets
/// `max(1, base >> (r·levels/nrows))` random entries — a cheap stand-in
/// for graph adjacency skew in load-balance tests.
pub fn skewed(nrows: u32, ncols: u32, base: u32, seed: u64) -> CsrMatrix {
    let mut rng = rng_from_seed(seed);
    let mut coo = CooMatrix::new(nrows, ncols);
    for r in 0..nrows {
        let level = (r as u64 * 8 / nrows.max(1) as u64) as u32;
        let k = (base >> level).max(1);
        for _ in 0..k {
            let c = rng.gen_range(0..ncols);
            coo.push(r, c, 1.0);
        }
    }
    CsrMatrix::from_coo(&coo)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_is_valid_and_deterministic() {
        let a = random_uniform(50, 50, 4, 7);
        let b = random_uniform(50, 50, 4, 7);
        a.validate().unwrap();
        assert_eq!(a, b);
        assert!(a.nnz() > 0 && a.nnz() <= 200);
    }

    #[test]
    fn banded_structure() {
        let m = banded(5, &[-1, 0, 1]);
        m.validate().unwrap();
        assert_eq!(m.nnz(), 5 + 2 * 4);
        assert_eq!(m.row_nnz(0), 2);
        assert_eq!(m.row_nnz(2), 3);
    }

    #[test]
    fn skewed_front_loads_nnz() {
        let m = skewed(64, 64, 64, 3);
        m.validate().unwrap();
        assert!(m.row_nnz(0) > m.row_nnz(63));
    }
}
