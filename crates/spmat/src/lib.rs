//! # spmat — sparse-matrix substrate for the Emu Chick reproduction
//!
//! The paper's SpMV experiments (Fig 9) run CSR sparse matrix–vector
//! multiply over synthetic Laplacian inputs with three different Emu data
//! layouts and three CPU parallelization strategies. This crate provides
//! the format ([`csr::CsrMatrix`]), the input generator
//! ([`laplacian::laplacian`]), row [`partition`]ers, and random
//! generators for tests ([`gen`]). The simulators' SpMV kernels verify
//! against [`csr::CsrMatrix::spmv`].

#![warn(missing_docs)]

pub mod coo;
pub mod csr;
pub mod gen;
pub mod io;
pub mod laplacian;
pub mod partition;

pub use coo::CooMatrix;
pub use csr::CsrMatrix;
pub use io::{load_matrix_market, read_matrix_market, write_matrix_market};
pub use laplacian::{laplacian, LaplacianSpec};
pub use partition::{contiguous, nnz_balanced, round_robin, RowPartition};
