//! Compressed Sparse Row matrices — the storage format of every SpMV
//! experiment in the paper (Fig 3 shows the three Emu layouts of exactly
//! these arrays: `row_ptr`, `col_idx`, `vals`).

use crate::coo::CooMatrix;

/// A CSR sparse matrix.
///
/// Invariants (checked by [`CsrMatrix::validate`], maintained by all
/// constructors):
/// * `row_ptr.len() == nrows + 1`, `row_ptr[0] == 0`, nondecreasing;
/// * `col_idx.len() == vals.len() == row_ptr[nrows]`;
/// * column indices within each row are strictly increasing and `< ncols`.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    nrows: u32,
    ncols: u32,
    row_ptr: Vec<u64>,
    col_idx: Vec<u32>,
    vals: Vec<f64>,
}

impl CsrMatrix {
    /// Build from raw parts, validating the CSR invariants.
    pub fn from_parts(
        nrows: u32,
        ncols: u32,
        row_ptr: Vec<u64>,
        col_idx: Vec<u32>,
        vals: Vec<f64>,
    ) -> Result<Self, String> {
        let m = CsrMatrix {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            vals,
        };
        m.validate()?;
        Ok(m)
    }

    /// Convert from COO, sorting entries and summing duplicates.
    pub fn from_coo(coo: &CooMatrix) -> Self {
        let mut entries = coo.entries.clone();
        entries.sort_unstable_by_key(|t| (t.row, t.col));
        let mut row_ptr = vec![0u64; coo.nrows as usize + 1];
        let mut col_idx = Vec::with_capacity(entries.len());
        let mut vals: Vec<f64> = Vec::with_capacity(entries.len());
        let mut i = 0;
        while i < entries.len() {
            let (r, c) = (entries[i].row, entries[i].col);
            let mut v = entries[i].val;
            i += 1;
            while i < entries.len() && entries[i].row == r && entries[i].col == c {
                v += entries[i].val;
                i += 1;
            }
            col_idx.push(c);
            vals.push(v);
            row_ptr[r as usize + 1] = col_idx.len() as u64;
        }
        // Prefix-fill empty rows.
        for r in 1..row_ptr.len() {
            if row_ptr[r] < row_ptr[r - 1] {
                row_ptr[r] = row_ptr[r - 1];
            }
        }
        let m = CsrMatrix {
            nrows: coo.nrows,
            ncols: coo.ncols,
            row_ptr,
            col_idx,
            vals,
        };
        debug_assert!(m.validate().is_ok(), "{:?}", m.validate());
        m
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> u32 {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> u32 {
        self.ncols
    }

    /// Number of stored nonzeros.
    #[inline]
    pub fn nnz(&self) -> u64 {
        self.row_ptr[self.nrows as usize]
    }

    /// The row-pointer array (`nrows + 1` entries).
    #[inline]
    pub fn row_ptr(&self) -> &[u64] {
        &self.row_ptr
    }

    /// The column-index array.
    #[inline]
    pub fn col_idx(&self) -> &[u32] {
        &self.col_idx
    }

    /// The value array.
    #[inline]
    pub fn vals(&self) -> &[f64] {
        &self.vals
    }

    /// The half-open nonzero range of row `r`.
    #[inline]
    pub fn row_range(&self, r: u32) -> std::ops::Range<usize> {
        self.row_ptr[r as usize] as usize..self.row_ptr[r as usize + 1] as usize
    }

    /// Number of nonzeros in row `r`.
    #[inline]
    pub fn row_nnz(&self, r: u32) -> u64 {
        self.row_ptr[r as usize + 1] - self.row_ptr[r as usize]
    }

    /// `y = A * x` (reference kernel; the simulators' SpMV kernels must
    /// produce exactly these values).
    ///
    /// # Panics
    /// Panics if `x.len() != ncols`.
    pub fn spmv(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols as usize, "dimension mismatch");
        let mut y = vec![0.0; self.nrows as usize];
        for r in 0..self.nrows {
            let mut acc = 0.0;
            for k in self.row_range(r) {
                acc += self.vals[k] * x[self.col_idx[k] as usize];
            }
            y[r as usize] = acc;
        }
        y
    }

    /// Check the CSR invariants.
    pub fn validate(&self) -> Result<(), String> {
        if self.row_ptr.len() != self.nrows as usize + 1 {
            return Err(format!(
                "row_ptr has {} entries, want {}",
                self.row_ptr.len(),
                self.nrows + 1
            ));
        }
        if self.row_ptr[0] != 0 {
            return Err("row_ptr[0] != 0".into());
        }
        if self.row_ptr.windows(2).any(|w| w[1] < w[0]) {
            return Err("row_ptr not nondecreasing".into());
        }
        let nnz = self.row_ptr[self.nrows as usize] as usize;
        if self.col_idx.len() != nnz || self.vals.len() != nnz {
            return Err(format!(
                "col_idx/vals length {}/{} != nnz {}",
                self.col_idx.len(),
                self.vals.len(),
                nnz
            ));
        }
        for r in 0..self.nrows {
            let range = self.row_range(r);
            let cols = &self.col_idx[range];
            if cols.iter().any(|&c| c >= self.ncols) {
                return Err(format!("row {r}: column out of bounds"));
            }
            if cols.windows(2).any(|w| w[1] <= w[0]) {
                return Err(format!("row {r}: columns not strictly increasing"));
            }
        }
        Ok(())
    }

    /// Bytes of useful data a CSR SpMV must touch, the "effective
    /// bandwidth" numerator used throughout Fig 9: each nonzero reads a
    /// value and a column index plus the matched `x` element, each row
    /// reads its pointer bounds and writes one `y` element. Emu stores
    /// indices as 8-byte words; so do we.
    pub fn spmv_bytes(&self) -> u64 {
        let nnz = self.nnz();
        let rows = self.nrows as u64;
        nnz * (8 + 8 + 8) + rows * (8 + 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 3x3: [[2,0,1],[0,3,0],[4,0,5]]
    fn small() -> CsrMatrix {
        CsrMatrix::from_parts(
            3,
            3,
            vec![0, 2, 3, 5],
            vec![0, 2, 1, 0, 2],
            vec![2.0, 1.0, 3.0, 4.0, 5.0],
        )
        .unwrap()
    }

    #[test]
    fn spmv_reference() {
        let m = small();
        let y = m.spmv(&[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![2.0 + 3.0, 6.0, 4.0 + 15.0]);
    }

    #[test]
    fn geometry_accessors() {
        let m = small();
        assert_eq!(m.nnz(), 5);
        assert_eq!(m.row_nnz(0), 2);
        assert_eq!(m.row_nnz(1), 1);
        assert_eq!(m.row_range(2), 3..5);
    }

    #[test]
    fn from_coo_sorts_and_handles_empty_rows() {
        let mut coo = CooMatrix::new(4, 4);
        coo.push(3, 1, 7.0);
        coo.push(0, 2, 1.0);
        coo.push(0, 0, 5.0);
        // row 1 and 2 empty
        let m = CsrMatrix::from_coo(&coo);
        m.validate().unwrap();
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.row_nnz(1), 0);
        assert_eq!(m.row_nnz(2), 0);
        let y = m.spmv(&[1.0, 1.0, 1.0, 1.0]);
        assert_eq!(y, vec![6.0, 0.0, 0.0, 7.0]);
    }

    #[test]
    fn from_coo_sums_duplicates() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(0, 0, 2.5);
        let m = CsrMatrix::from_coo(&coo);
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.vals()[0], 3.5);
    }

    #[test]
    fn validation_rejects_bad_columns() {
        let r = CsrMatrix::from_parts(2, 2, vec![0, 1, 2], vec![0, 5], vec![1.0, 1.0]);
        assert!(r.is_err());
        let r = CsrMatrix::from_parts(1, 3, vec![0, 2], vec![2, 1], vec![1.0, 1.0]);
        assert!(r.unwrap_err().contains("strictly increasing"));
    }

    #[test]
    fn validation_rejects_bad_row_ptr() {
        assert!(CsrMatrix::from_parts(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0; 2]).is_err());
        assert!(CsrMatrix::from_parts(2, 2, vec![1, 1, 2], vec![0, 1], vec![1.0; 2]).is_err());
        assert!(CsrMatrix::from_parts(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
    }

    #[test]
    fn spmv_bytes_formula() {
        let m = small();
        assert_eq!(m.spmv_bytes(), 5 * 24 + 3 * 16);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn spmv_dimension_check() {
        small().spmv(&[1.0, 2.0]);
    }
}
