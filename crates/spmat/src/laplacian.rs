//! Synthetic Laplacian inputs (Section III-E): the matrix of a
//! d-dimensional (2d+1)-point stencil on a grid of side `n`.
//!
//! The paper tests d = 2 with k = 4 neighbor points: an `n² x n²` matrix
//! with 5 diagonals (the classic 5-point Poisson stencil).

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;

/// Parameters of a stencil Laplacian.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaplacianSpec {
    /// Grid dimensionality (paper: 2).
    pub dims: u32,
    /// Grid points per dimension (paper sweeps this as "Laplacian size n").
    pub n: u32,
}

impl LaplacianSpec {
    /// The paper's configuration: a 2-D, 5-point stencil of side `n`.
    pub fn paper(n: u32) -> Self {
        LaplacianSpec { dims: 2, n }
    }

    /// Total number of rows/columns (`n^dims`).
    pub fn nrows(&self) -> u64 {
        (self.n as u64).pow(self.dims)
    }

    /// Exact nonzero count: each grid point has a center entry plus one
    /// entry per in-bounds neighbor; each dimension contributes
    /// `2(n-1)·n^(d-1)` neighbor pairs... computed exactly as
    /// `n^d + 2·d·n^(d-1)·(n-1)`.
    pub fn nnz(&self) -> u64 {
        let n = self.n as u64;
        let d = self.dims;
        n.pow(d) + 2 * d as u64 * n.pow(d - 1) * (n - 1)
    }
}

/// Build the Laplacian matrix for `spec`: center weight `2·dims`,
/// neighbor weights `-1` (grid graph Laplacian).
///
/// # Panics
/// Panics if the matrix would exceed `u32` rows or `n == 0` / `dims == 0`.
pub fn laplacian(spec: LaplacianSpec) -> CsrMatrix {
    assert!(spec.dims > 0, "dims must be > 0");
    assert!(spec.n > 0, "n must be > 0");
    let nrows = spec.nrows();
    assert!(nrows <= u32::MAX as u64, "matrix too large for u32 indices");
    let nrows = nrows as u32;
    let n = spec.n as u64;
    let d = spec.dims as usize;
    // Strides for linearization: coordinate i varies with stride n^i.
    let strides: Vec<u64> = (0..d).map(|i| n.pow(i as u32)).collect();

    let mut coo = CooMatrix::new(nrows, nrows);
    coo.entries.reserve(spec.nnz() as usize);
    let mut coord = vec![0u64; d];
    for row in 0..nrows as u64 {
        // Decode coordinates of this grid point.
        let mut rest = row;
        for c in coord.iter_mut() {
            *c = rest % n;
            rest /= n;
        }
        coo.push(row as u32, row as u32, 2.0 * d as f64);
        for i in 0..d {
            if coord[i] > 0 {
                coo.push(row as u32, (row - strides[i]) as u32, -1.0);
            }
            if coord[i] + 1 < n {
                coo.push(row as u32, (row + strides[i]) as u32, -1.0);
            }
        }
    }
    CsrMatrix::from_coo(&coo)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_spec_is_2d() {
        let s = LaplacianSpec::paper(100);
        assert_eq!(s.dims, 2);
        assert_eq!(s.nrows(), 10_000);
    }

    #[test]
    fn nnz_formula_matches_construction() {
        for n in [1u32, 2, 3, 5, 10] {
            for dims in [1u32, 2, 3] {
                let spec = LaplacianSpec { dims, n };
                let m = laplacian(spec);
                assert_eq!(m.nnz(), spec.nnz(), "n={n} dims={dims}");
                assert_eq!(m.nrows() as u64, spec.nrows());
            }
        }
    }

    #[test]
    fn five_point_structure() {
        // Interior rows of the 2-D Laplacian have exactly 5 entries.
        let m = laplacian(LaplacianSpec::paper(5));
        let interior = 2 * 5 + 2; // row (2,2) linearized: 2 + 2*5
        assert_eq!(m.row_nnz(interior), 5);
        // Corner rows have 3.
        assert_eq!(m.row_nnz(0), 3);
        assert_eq!(m.row_nnz(24), 3);
        m.validate().unwrap();
    }

    #[test]
    fn rows_sum_to_zero_interior() {
        // Grid-graph Laplacian: every row sums to the number of *missing*
        // neighbors; interior rows sum to 0, so A * ones = boundary defect.
        let m = laplacian(LaplacianSpec::paper(4));
        let y = m.spmv(&vec![1.0; m.ncols() as usize]);
        // Interior point (1..3, 1..3): zero.
        let interior = 1 + 4; // (1,1)
        assert_eq!(y[interior], 0.0);
        // Corner (0,0): 2 missing neighbors -> 2.
        assert_eq!(y[0], 2.0);
    }

    #[test]
    fn symmetric() {
        let m = laplacian(LaplacianSpec::paper(6));
        // Check A == A^T entry-wise via dense reconstruction (tiny n).
        let nr = m.nrows() as usize;
        let mut dense = vec![0.0; nr * nr];
        for r in 0..m.nrows() {
            for k in m.row_range(r) {
                dense[r as usize * nr + m.col_idx()[k] as usize] = m.vals()[k];
            }
        }
        for i in 0..nr {
            for j in 0..nr {
                assert_eq!(dense[i * nr + j], dense[j * nr + i]);
            }
        }
    }

    #[test]
    fn one_dimensional_is_tridiagonal() {
        let m = laplacian(LaplacianSpec { dims: 1, n: 8 });
        assert_eq!(m.nrows(), 8);
        assert_eq!(m.nnz(), 8 + 2 * 7);
        assert_eq!(m.row_nnz(0), 2);
        assert_eq!(m.row_nnz(3), 3);
    }
}
