//! Row partitioners: how SpMV work (and, in the 2D layout, storage) is
//! divided among nodelets or CPU threads.

use crate::csr::CsrMatrix;

/// Assignment of each row to an owner in `0..nowners`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowPartition {
    /// Owner of each row.
    pub owner: Vec<u32>,
    /// Number of owners.
    pub nowners: u32,
}

impl RowPartition {
    /// Rows assigned to `owner`, in order.
    pub fn rows_of(&self, owner: u32) -> Vec<u32> {
        self.owner
            .iter()
            .enumerate()
            .filter(|&(_, &o)| o == owner)
            .map(|(r, _)| r as u32)
            .collect()
    }

    /// Nonzeros owned by each owner, for balance diagnostics.
    pub fn nnz_per_owner(&self, m: &CsrMatrix) -> Vec<u64> {
        let mut out = vec![0u64; self.nowners as usize];
        for (r, &o) in self.owner.iter().enumerate() {
            out[o as usize] += m.row_nnz(r as u32);
        }
        out
    }

    /// Max/mean nonzero imbalance ratio (1.0 = perfect).
    pub fn imbalance(&self, m: &CsrMatrix) -> f64 {
        let per = self.nnz_per_owner(m);
        let max = per.iter().copied().max().unwrap_or(0) as f64;
        let mean = per.iter().sum::<u64>() as f64 / per.len().max(1) as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

/// Round-robin rows: row `r` to owner `r % nowners`. This is the
/// assignment implied by striping `row_ptr` with `mw_malloc1dlong` — the
/// paper's 1D and 2D layouts both use it.
pub fn round_robin(nrows: u32, nowners: u32) -> RowPartition {
    assert!(nowners > 0, "need at least one owner");
    RowPartition {
        owner: (0..nrows).map(|r| r % nowners).collect(),
        nowners,
    }
}

/// Contiguous row blocks: rows `[k·⌈nrows/nowners⌉, …)` to owner `k`
/// (the usual OpenMP/MKL static schedule on the CPU side).
pub fn contiguous(nrows: u32, nowners: u32) -> RowPartition {
    assert!(nowners > 0, "need at least one owner");
    let chunk = nrows.div_ceil(nowners).max(1);
    RowPartition {
        owner: (0..nrows).map(|r| (r / chunk).min(nowners - 1)).collect(),
        nowners,
    }
}

/// Greedy nonzero-balanced contiguous blocks: sweep rows, starting a new
/// owner whenever the running nonzero count passes `nnz/nowners`.
pub fn nnz_balanced(m: &CsrMatrix, nowners: u32) -> RowPartition {
    assert!(nowners > 0, "need at least one owner");
    let target = (m.nnz() as f64 / nowners as f64).max(1.0);
    let mut owner = Vec::with_capacity(m.nrows() as usize);
    let mut acc = 0u64;
    let mut cur = 0u32;
    for r in 0..m.nrows() {
        owner.push(cur);
        acc += m.row_nnz(r);
        if (acc as f64) >= target * (cur + 1) as f64 && cur + 1 < nowners {
            cur += 1;
        }
    }
    RowPartition { owner, nowners }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laplacian::{laplacian, LaplacianSpec};

    #[test]
    fn round_robin_covers_all_rows() {
        let p = round_robin(10, 3);
        assert_eq!(p.owner.len(), 10);
        assert_eq!(p.rows_of(0), vec![0, 3, 6, 9]);
        assert_eq!(p.rows_of(2), vec![2, 5, 8]);
    }

    #[test]
    fn contiguous_blocks() {
        let p = contiguous(10, 3);
        assert_eq!(p.rows_of(0), vec![0, 1, 2, 3]);
        assert_eq!(p.rows_of(1), vec![4, 5, 6, 7]);
        assert_eq!(p.rows_of(2), vec![8, 9]);
    }

    #[test]
    fn partitions_are_exhaustive_and_disjoint() {
        let m = laplacian(LaplacianSpec::paper(10));
        for p in [
            round_robin(m.nrows(), 8),
            contiguous(m.nrows(), 8),
            nnz_balanced(&m, 8),
        ] {
            let mut seen = vec![false; m.nrows() as usize];
            for o in 0..p.nowners {
                for r in p.rows_of(o) {
                    assert!(!seen[r as usize]);
                    seen[r as usize] = true;
                }
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn laplacian_round_robin_is_balanced() {
        let m = laplacian(LaplacianSpec::paper(20));
        let p = round_robin(m.nrows(), 8);
        assert!(p.imbalance(&m) < 1.05, "imbalance {}", p.imbalance(&m));
    }

    #[test]
    fn nnz_balanced_beats_naive_on_skewed_matrix() {
        // A matrix whose first rows are dense-ish and the rest near-empty.
        use crate::coo::CooMatrix;
        let mut coo = CooMatrix::new(100, 100);
        for r in 0..10u32 {
            for c in 0..50u32 {
                coo.push(r, c, 1.0);
            }
        }
        for r in 10..100u32 {
            coo.push(r, r, 1.0);
        }
        let m = crate::csr::CsrMatrix::from_coo(&coo);
        let naive = contiguous(m.nrows(), 4).imbalance(&m);
        let smart = nnz_balanced(&m, 4).imbalance(&m);
        assert!(smart < naive, "smart {smart} vs naive {naive}");
    }
}
