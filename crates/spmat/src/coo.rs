//! Coordinate-format sparse matrices (assembly format).

/// A matrix entry in coordinate form.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Triplet {
    /// Row index.
    pub row: u32,
    /// Column index.
    pub col: u32,
    /// Value.
    pub val: f64,
}

/// A sparse matrix under assembly: unordered triplets with duplicates
/// summed on conversion to CSR.
#[derive(Debug, Clone, Default)]
pub struct CooMatrix {
    /// Number of rows.
    pub nrows: u32,
    /// Number of columns.
    pub ncols: u32,
    /// Entries, in arbitrary order.
    pub entries: Vec<Triplet>,
}

impl CooMatrix {
    /// An empty `nrows x ncols` matrix.
    pub fn new(nrows: u32, ncols: u32) -> Self {
        CooMatrix {
            nrows,
            ncols,
            entries: Vec::new(),
        }
    }

    /// Append one entry.
    ///
    /// # Panics
    /// Panics if the indices are out of bounds.
    pub fn push(&mut self, row: u32, col: u32, val: f64) {
        assert!(row < self.nrows, "row {row} out of bounds ({})", self.nrows);
        assert!(col < self.ncols, "col {col} out of bounds ({})", self.ncols);
        self.entries.push(Triplet { row, col, val });
    }

    /// Number of stored entries (before duplicate folding).
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_count() {
        let mut m = CooMatrix::new(3, 3);
        m.push(0, 0, 1.0);
        m.push(2, 1, -2.0);
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bounds_checked() {
        let mut m = CooMatrix::new(2, 2);
        m.push(2, 0, 1.0);
    }
}
