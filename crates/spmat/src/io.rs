//! Matrix Market (`.mtx`) I/O, so real-world inputs (SuiteSparse, the
//! matrices SpMV papers actually use) can drive the benchmarks.
//!
//! Supports the `matrix coordinate real/integer/pattern general/symmetric`
//! subset — which covers the overwhelming majority of published sparse
//! matrices. Writing always emits `coordinate real general`.

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};

/// Parse a Matrix Market stream into CSR.
pub fn read_matrix_market<R: Read>(r: R) -> Result<CsrMatrix, String> {
    let mut lines = BufReader::new(r).lines();
    let header = lines
        .next()
        .ok_or("empty file")?
        .map_err(|e| e.to_string())?;
    let h: Vec<String> = header.split_whitespace().map(str::to_lowercase).collect();
    if h.len() < 5 || h[0] != "%%matrixmarket" || h[1] != "matrix" {
        return Err(format!("not a MatrixMarket matrix header: {header:?}"));
    }
    if h[2] != "coordinate" {
        return Err(format!("only coordinate format supported, got {}", h[2]));
    }
    let pattern = match h[3].as_str() {
        "real" | "integer" => false,
        "pattern" => true,
        other => return Err(format!("unsupported field type {other:?}")),
    };
    let symmetric = match h[4].as_str() {
        "general" => false,
        "symmetric" => true,
        other => return Err(format!("unsupported symmetry {other:?}")),
    };
    // Skip comments; first non-comment line is the size line.
    let mut size_line = None;
    for line in lines.by_ref() {
        let line = line.map_err(|e| e.to_string())?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        size_line = Some(t.to_string());
        break;
    }
    let size_line = size_line.ok_or("missing size line")?;
    let dims: Vec<u64> = size_line
        .split_whitespace()
        .map(|x| {
            x.parse()
                .map_err(|_| format!("bad size line {size_line:?}"))
        })
        .collect::<Result<_, _>>()?;
    let [nrows, ncols, nnz] = dims[..] else {
        return Err(format!("size line needs 3 fields: {size_line:?}"));
    };
    if nrows > u32::MAX as u64 || ncols > u32::MAX as u64 {
        return Err("matrix too large for u32 indices".into());
    }
    let mut coo = CooMatrix::new(nrows as u32, ncols as u32);
    let mut seen = 0u64;
    for line in lines {
        let line = line.map_err(|e| e.to_string())?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut f = t.split_whitespace();
        let r: u64 = f
            .next()
            .ok_or("short entry line")?
            .parse()
            .map_err(|_| format!("bad row in {t:?}"))?;
        let c: u64 = f
            .next()
            .ok_or("short entry line")?
            .parse()
            .map_err(|_| format!("bad col in {t:?}"))?;
        let v: f64 = if pattern {
            1.0
        } else {
            f.next()
                .ok_or("missing value")?
                .parse()
                .map_err(|_| format!("bad value in {t:?}"))?
        };
        if r == 0 || c == 0 || r > nrows || c > ncols {
            return Err(format!("entry ({r},{c}) out of bounds (1-based)"));
        }
        let (ri, ci) = (r as u32 - 1, c as u32 - 1);
        coo.push(ri, ci, v);
        if symmetric && ri != ci {
            coo.push(ci, ri, v);
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(format!("size line promised {nnz} entries, found {seen}"));
    }
    let m = CsrMatrix::from_coo(&coo);
    m.validate()?;
    Ok(m)
}

/// Write a matrix as `coordinate real general` (1-based indices).
pub fn write_matrix_market<W: Write>(m: &CsrMatrix, w: W) -> std::io::Result<()> {
    let mut out = BufWriter::new(w);
    writeln!(out, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(out, "% written by emu-chick/spmat")?;
    writeln!(out, "{} {} {}", m.nrows(), m.ncols(), m.nnz())?;
    for r in 0..m.nrows() {
        for k in m.row_range(r) {
            writeln!(out, "{} {} {:.17e}", r + 1, m.col_idx()[k] + 1, m.vals()[k])?;
        }
    }
    out.flush()
}

/// Read a `.mtx` file from disk.
pub fn load_matrix_market(path: &std::path::Path) -> Result<CsrMatrix, String> {
    let f = std::fs::File::open(path).map_err(|e| format!("{}: {e}", path.display()))?;
    read_matrix_market(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laplacian::{laplacian, LaplacianSpec};

    #[test]
    fn round_trip_preserves_matrix() {
        let m = laplacian(LaplacianSpec::paper(7));
        let mut buf = Vec::new();
        write_matrix_market(&m, &mut buf).unwrap();
        let back = read_matrix_market(&buf[..]).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn parses_general_real() {
        let src = "%%MatrixMarket matrix coordinate real general\n\
                   % comment\n\
                   2 3 3\n\
                   1 1 1.5\n\
                   2 3 -2.0\n\
                   1 2 4\n";
        let m = read_matrix_market(src.as_bytes()).unwrap();
        assert_eq!((m.nrows(), m.ncols(), m.nnz()), (2, 3, 3));
        let y = m.spmv(&[1.0, 1.0, 1.0]);
        assert_eq!(y, vec![5.5, -2.0]);
    }

    #[test]
    fn parses_symmetric_and_pattern() {
        let src = "%%MatrixMarket matrix coordinate pattern symmetric\n\
                   3 3 2\n\
                   2 1\n\
                   3 3\n";
        let m = read_matrix_market(src.as_bytes()).unwrap();
        // (2,1) mirrored to (1,2); diagonal (3,3) not duplicated.
        assert_eq!(m.nnz(), 3);
        let y = m.spmv(&[1.0, 1.0, 1.0]);
        assert_eq!(y, vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn rejects_malformed() {
        assert!(read_matrix_market("hello\n".as_bytes()).is_err());
        assert!(
            read_matrix_market("%%MatrixMarket matrix array real general\n2 2\n".as_bytes())
                .is_err()
        );
        // Entry out of bounds.
        let src = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        assert!(read_matrix_market(src.as_bytes()).is_err());
        // Wrong count.
        let src = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
        assert!(read_matrix_market(src.as_bytes()).is_err());
    }

    #[test]
    fn file_round_trip() {
        let m = laplacian(LaplacianSpec::paper(4));
        let path = std::env::temp_dir().join("emu_chick_io_test.mtx");
        write_matrix_market(&m, std::fs::File::create(&path).unwrap()).unwrap();
        let back = load_matrix_market(&path).unwrap();
        assert_eq!(m, back);
        let _ = std::fs::remove_file(path);
    }
}
