//! Property-based tests of the sparse-matrix substrate.

use proptest::prelude::*;
use spmat::coo::CooMatrix;
use spmat::csr::CsrMatrix;
use spmat::laplacian::{laplacian, LaplacianSpec};
use spmat::partition::{contiguous, nnz_balanced, round_robin};

fn arb_coo() -> impl Strategy<Value = CooMatrix> {
    (1u32..40, 1u32..40).prop_flat_map(|(nr, nc)| {
        prop::collection::vec((0..nr, 0..nc, -10.0f64..10.0), 0..200).prop_map(
            move |entries| {
                let mut coo = CooMatrix::new(nr, nc);
                for (r, c, v) in entries {
                    coo.push(r, c, v);
                }
                coo
            },
        )
    })
}

proptest! {
    /// CSR built from any COO satisfies all format invariants.
    #[test]
    fn from_coo_always_valid(coo in arb_coo()) {
        let m = CsrMatrix::from_coo(&coo);
        prop_assert!(m.validate().is_ok(), "{:?}", m.validate());
        prop_assert!(m.nnz() as usize <= coo.nnz());
    }

    /// SpMV agrees with a naive dense computation from the COO triplets.
    #[test]
    fn spmv_matches_dense(coo in arb_coo(), seed in 0u64..1000) {
        let m = CsrMatrix::from_coo(&coo);
        let x: Vec<f64> = (0..coo.ncols)
            .map(|j| ((j as u64 + seed) % 13) as f64 - 6.0)
            .collect();
        let mut dense = vec![0.0f64; coo.nrows as usize];
        for t in &coo.entries {
            dense[t.row as usize] += t.val * x[t.col as usize];
        }
        let y = m.spmv(&x);
        for (a, b) in dense.iter().zip(&y) {
            prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    /// SpMV is linear: A(ax + by) == a·Ax + b·Ay.
    #[test]
    fn spmv_linearity(coo in arb_coo(), a in -4.0f64..4.0, b in -4.0f64..4.0) {
        let m = CsrMatrix::from_coo(&coo);
        let nc = coo.ncols as usize;
        let x: Vec<f64> = (0..nc).map(|j| (j % 7) as f64).collect();
        let y: Vec<f64> = (0..nc).map(|j| ((j + 3) % 5) as f64).collect();
        let combo: Vec<f64> = x.iter().zip(&y).map(|(u, v)| a * u + b * v).collect();
        let lhs = m.spmv(&combo);
        let (mx, my) = (m.spmv(&x), m.spmv(&y));
        for i in 0..lhs.len() {
            let rhs = a * mx[i] + b * my[i];
            prop_assert!((lhs[i] - rhs).abs() < 1e-6, "row {i}: {} vs {rhs}", lhs[i]);
        }
    }

    /// The Laplacian nnz formula is exact and the matrix is symmetric
    /// with zero interior row sums, for any small (dims, n).
    #[test]
    fn laplacian_structure(dims in 1u32..4, n in 1u32..8) {
        let spec = LaplacianSpec { dims, n };
        let m = laplacian(spec);
        prop_assert_eq!(m.nnz(), spec.nnz());
        prop_assert!(m.validate().is_ok());
        // A * ones >= 0 everywhere (diagonally dominant), interior = 0.
        let y = m.spmv(&vec![1.0; m.ncols() as usize]);
        prop_assert!(y.iter().all(|&v| v >= -1e-12));
    }

    /// Every partitioner covers all rows exactly once.
    #[test]
    fn partitions_cover(nrows in 1u32..500, owners in 1u32..17) {
        let m = laplacian(LaplacianSpec { dims: 1, n: nrows });
        for p in [
            round_robin(nrows, owners),
            contiguous(nrows, owners),
            nnz_balanced(&m, owners),
        ] {
            prop_assert_eq!(p.owner.len(), nrows as usize);
            prop_assert!(p.owner.iter().all(|&o| o < owners));
            let covered: usize = (0..owners).map(|o| p.rows_of(o).len()).sum();
            prop_assert_eq!(covered, nrows as usize);
        }
    }

    /// nnz-balanced partitioning is never worse than 1 row of imbalance
    /// beyond the heaviest row.
    #[test]
    fn nnz_balanced_is_sane(n in 2u32..20, owners in 1u32..9) {
        let m = laplacian(LaplacianSpec::paper(n));
        let p = nnz_balanced(&m, owners);
        let per = p.nnz_per_owner(&m);
        prop_assert_eq!(per.iter().sum::<u64>(), m.nnz());
    }
}
