//! Randomized (seeded, deterministic) tests of the sparse-matrix
//! substrate. Each test sweeps a fixed set of seeds so failures are
//! reproducible without any external property-testing framework.

use spmat::coo::CooMatrix;
use spmat::csr::CsrMatrix;
use spmat::laplacian::{laplacian, LaplacianSpec};
use spmat::partition::{contiguous, nnz_balanced, round_robin};
use test_support::{cases, Rng64};

const CASES: u64 = 64;

fn arb_coo(rng: &mut Rng64) -> CooMatrix {
    let nr = rng.gen_range(1..40u32);
    let nc = rng.gen_range(1..40u32);
    let n = rng.gen_range(0..200usize);
    let mut coo = CooMatrix::new(nr, nc);
    for _ in 0..n {
        coo.push(
            rng.gen_range(0..nr),
            rng.gen_range(0..nc),
            rng.gen_range(-10.0..10.0),
        );
    }
    coo
}

/// CSR built from any COO satisfies all format invariants.
#[test]
fn from_coo_always_valid() {
    cases(CASES, 0xC00, |_case, rng| {
        let coo = arb_coo(rng);
        let m = CsrMatrix::from_coo(&coo);
        assert!(m.validate().is_ok(), "{:?}", m.validate());
        assert!(m.nnz() as usize <= coo.nnz());
    });
}

/// SpMV agrees with a naive dense computation from the COO triplets.
#[test]
fn spmv_matches_dense() {
    cases(CASES, 0xDE05E, |_case, rng| {
        let coo = arb_coo(rng);
        let seed = rng.gen_range(0..1000u64);
        let m = CsrMatrix::from_coo(&coo);
        let x: Vec<f64> = (0..coo.ncols)
            .map(|j| ((j as u64 + seed) % 13) as f64 - 6.0)
            .collect();
        let mut dense = vec![0.0f64; coo.nrows as usize];
        for t in &coo.entries {
            dense[t.row as usize] += t.val * x[t.col as usize];
        }
        let y = m.spmv(&x);
        for (a, b) in dense.iter().zip(&y) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    });
}

/// SpMV is linear: A(ax + by) == a·Ax + b·Ay.
#[test]
fn spmv_linearity() {
    cases(CASES, 0x11EA7, |_case, rng| {
        let coo = arb_coo(rng);
        let a = rng.gen_range(-4.0..4.0);
        let b = rng.gen_range(-4.0..4.0);
        let m = CsrMatrix::from_coo(&coo);
        let nc = coo.ncols as usize;
        let x: Vec<f64> = (0..nc).map(|j| (j % 7) as f64).collect();
        let y: Vec<f64> = (0..nc).map(|j| ((j + 3) % 5) as f64).collect();
        let combo: Vec<f64> = x.iter().zip(&y).map(|(u, v)| a * u + b * v).collect();
        let lhs = m.spmv(&combo);
        let (mx, my) = (m.spmv(&x), m.spmv(&y));
        for i in 0..lhs.len() {
            let rhs = a * mx[i] + b * my[i];
            assert!((lhs[i] - rhs).abs() < 1e-6, "row {i}: {} vs {rhs}", lhs[i]);
        }
    });
}

/// The Laplacian nnz formula is exact and the matrix is symmetric
/// with zero interior row sums, for any small (dims, n).
#[test]
fn laplacian_structure() {
    for dims in 1u32..4 {
        for n in 1u32..8 {
            let spec = LaplacianSpec { dims, n };
            let m = laplacian(spec);
            assert_eq!(m.nnz(), spec.nnz());
            assert!(m.validate().is_ok());
            // A * ones >= 0 everywhere (diagonally dominant), interior = 0.
            let y = m.spmv(&vec![1.0; m.ncols() as usize]);
            assert!(y.iter().all(|&v| v >= -1e-12));
        }
    }
}

/// Every partitioner covers all rows exactly once.
#[test]
fn partitions_cover() {
    cases(CASES, 0xC0FE, |_case, rng| {
        let nrows = rng.gen_range(1..500u32);
        let owners = rng.gen_range(1..17u32);
        let m = laplacian(LaplacianSpec { dims: 1, n: nrows });
        for p in [
            round_robin(nrows, owners),
            contiguous(nrows, owners),
            nnz_balanced(&m, owners),
        ] {
            assert_eq!(p.owner.len(), nrows as usize);
            assert!(p.owner.iter().all(|&o| o < owners));
            let covered: usize = (0..owners).map(|o| p.rows_of(o).len()).sum();
            assert_eq!(covered, nrows as usize);
        }
    });
}

/// nnz-balanced partitioning conserves the matrix's nonzeros.
#[test]
fn nnz_balanced_is_sane() {
    for n in 2u32..20 {
        for owners in 1u32..9 {
            let m = laplacian(LaplacianSpec::paper(n));
            let p = nnz_balanced(&m, owners);
            let per = p.nnz_per_owner(&m);
            assert_eq!(per.iter().sum::<u64>(), m.nnz());
        }
    }
}
