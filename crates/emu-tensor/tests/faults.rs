//! Fault-path accounting for the sparse-tensor workload: MTTKRP under
//! an active [`FaultPlan`] must stay numerically exact, pass the full
//! [`emu_core::audit`] pass, and reconcile its [`FaultTotals`] against
//! the event trace.

use emu_core::prelude::*;
use emu_core::trace::GlobalTelemetryGuard;
use emu_tensor::coo::{mttkrp_reference, random_tensor};
use emu_tensor::emu::{run_mttkrp_emu, EmuMttkrpConfig, TensorLayout};
use std::sync::Arc;

fn faulty_cfg() -> MachineConfig {
    let mut cfg = presets::chick_prototype();
    cfg.faults = FaultPlan {
        seed: 0x7E45,
        mig_nack_prob: 0.25,
        mig_backoff: desim::time::Time::from_ns(40),
        mig_retry_budget: 64,
        ecc_prob: 0.1,
        ecc_latency: desim::time::Time::from_ns(60),
        ..FaultPlan::none()
    };
    cfg.faults.validate(cfg.total_nodelets()).unwrap();
    cfg
}

#[test]
fn mttkrp_fault_counters_reconcile_with_trace() {
    let cfg = faulty_cfg();
    let t = Arc::new(random_tensor([24, 10, 10], 400, 0x7E46));
    let rank = 4;
    let reference = mttkrp_reference(&t, rank);

    for layout in TensorLayout::ALL {
        let _guard = GlobalTelemetryGuard::arm(TelemetryConfig {
            event_capacity: 1 << 20,
            timeline_bucket: None,
        });
        let r = run_mttkrp_emu(
            &cfg,
            Arc::clone(&t),
            &EmuMttkrpConfig {
                layout,
                rank,
                nthreads: 24,
            },
        )
        .unwrap();

        // Faults perturb timing, never results.
        for (i, (a, b)) in reference.iter().zip(&r.y).enumerate() {
            assert!((a - b).abs() < 1e-9, "{}[{i}]: {a} vs {b}", layout.name());
        }

        let log = r.report.trace.as_ref().expect("tracing was armed");
        assert!(log.is_lossless(), "ring too small for reconciliation");
        let totals = r.report.fault_totals();
        assert_eq!(totals.nacks, log.count_of(TraceKind::MigNack));
        assert_eq!(totals.retries, log.count_of(TraceKind::MigRetry));
        assert_eq!(totals.ecc_retries, log.count_of(TraceKind::EccRetry));
        assert_eq!(
            totals.link_retransmits,
            log.count_of(TraceKind::LinkRetransmit)
        );
        assert_eq!(totals.redirects, log.count_of(TraceKind::Redirect));
        // Completed runs retry every NACK.
        assert_eq!(totals.nacks, totals.retries);
        // With nnz ≫ threads the 1D layout migrates per entry; faults
        // that never fire would make this whole test vacuous.
        if layout == TensorLayout::OneD {
            assert!(totals.nacks > 0, "fault plan injected nothing");
        }
        assert_consistent(&cfg, &r.report);
    }
}

#[test]
fn mttkrp_fault_runs_are_reproducible() {
    let cfg = faulty_cfg();
    let t = Arc::new(random_tensor([16, 8, 8], 200, 0x7E47));
    let run = || {
        let r = run_mttkrp_emu(&cfg, Arc::clone(&t), &EmuMttkrpConfig::default()).unwrap();
        (r.y.clone(), r.migrations, r.report.makespan)
    };
    assert_eq!(run(), run(), "seeded faults must replay exactly");
}
