//! Property-based tests for the sparse-tensor substrate.

use emu_core::presets;
use emu_tensor::coo::{mttkrp_reference, SparseTensor, TensorEntry};
use emu_tensor::cpu::{run_mttkrp_cpu, CpuMttkrpConfig};
use emu_tensor::emu::{run_mttkrp_emu, EmuMttkrpConfig, TensorLayout};
use proptest::prelude::*;
use std::sync::Arc;

fn arb_tensor() -> impl Strategy<Value = SparseTensor> {
    (2u32..16, 2u32..12, 2u32..12).prop_flat_map(|(i, j, k)| {
        prop::collection::vec((0..i, 0..j, 0..k, -5.0f64..5.0), 1..120).prop_map(
            move |raw| {
                SparseTensor::from_entries(
                    [i, j, k],
                    raw.into_iter()
                        .map(|(i, j, k, val)| TensorEntry { i, j, k, val })
                        .collect(),
                )
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Entries come out sorted, deduplicated, and in bounds.
    #[test]
    fn tensor_canonical_form(t in arb_tensor()) {
        let es = t.entries();
        for w in es.windows(2) {
            prop_assert!((w[0].i, w[0].j, w[0].k) < (w[1].i, w[1].j, w[1].k));
        }
        for e in es {
            prop_assert!(e.i < t.dims[0] && e.j < t.dims[1] && e.k < t.dims[2]);
        }
    }

    /// Slice ranges partition the entry array.
    #[test]
    fn slice_ranges_partition(t in arb_tensor()) {
        let mut covered = 0;
        let mut last_end = 0;
        for i in 0..t.dims[0] {
            let r = t.slice_range(i);
            prop_assert_eq!(r.start, last_end);
            last_end = r.end;
            covered += r.len();
        }
        prop_assert_eq!(covered, t.nnz());
    }

    /// Both Emu layouts and the CPU implementation agree exactly with the
    /// reference for arbitrary tensors, ranks, and thread counts.
    #[test]
    fn mttkrp_exact_everywhere(
        t in arb_tensor(),
        rank in 1u32..6,
        threads in 1usize..24
    ) {
        let t = Arc::new(t);
        let reference = mttkrp_reference(&t, rank);
        let close = |y: &[f64], label: &str| -> Result<(), TestCaseError> {
            for (i, (a, b)) in reference.iter().zip(y).enumerate() {
                prop_assert!((a - b).abs() < 1e-9, "{label}[{i}]: {a} vs {b}");
            }
            Ok(())
        };
        for layout in TensorLayout::ALL {
            let r = run_mttkrp_emu(
                &presets::chick_prototype(),
                Arc::clone(&t),
                &EmuMttkrpConfig {
                    layout,
                    rank,
                    nthreads: threads,
                },
            );
            close(&r.y, layout.name())?;
        }
        let cpu = run_mttkrp_cpu(
            &xeon_sim::config::haswell(),
            Arc::clone(&t),
            &CpuMttkrpConfig {
                rank,
                nthreads: threads,
            },
        );
        close(&cpu.y, "cpu")?;
    }

    /// MTTKRP is linear in the tensor values: scaling every value scales Y.
    #[test]
    fn mttkrp_homogeneous(t in arb_tensor(), scale in 0.5f64..3.0) {
        let rank = 3;
        let y1 = mttkrp_reference(&t, rank);
        let scaled = SparseTensor::from_entries(
            t.dims,
            t.entries()
                .iter()
                .map(|e| TensorEntry { val: e.val * scale, ..*e })
                .collect(),
        );
        let y2 = mttkrp_reference(&scaled, rank);
        for (a, b) in y1.iter().zip(&y2) {
            prop_assert!((a * scale - b).abs() < 1e-9);
        }
    }
}
