//! Randomized (seeded, deterministic) tests for the sparse-tensor
//! substrate. Each test sweeps a fixed set of seeds so failures are
//! reproducible without any external property-testing framework.

use emu_core::presets;
use emu_tensor::coo::{mttkrp_reference, SparseTensor, TensorEntry};
use emu_tensor::cpu::{run_mttkrp_cpu, CpuMttkrpConfig};
use emu_tensor::emu::{run_mttkrp_emu, EmuMttkrpConfig, TensorLayout};
use std::sync::Arc;
use test_support::{cases, Rng64};

const CASES: u64 = 32;

fn arb_tensor(rng: &mut Rng64) -> SparseTensor {
    let i = rng.gen_range(2..16u32);
    let j = rng.gen_range(2..12u32);
    let k = rng.gen_range(2..12u32);
    let n = rng.gen_range(1..120usize);
    SparseTensor::from_entries(
        [i, j, k],
        (0..n)
            .map(|_| TensorEntry {
                i: rng.gen_range(0..i),
                j: rng.gen_range(0..j),
                k: rng.gen_range(0..k),
                val: rng.gen_range(-5.0..5.0),
            })
            .collect(),
    )
}

/// Entries come out sorted, deduplicated, and in bounds.
#[test]
fn tensor_canonical_form() {
    cases(CASES, 0x7E45, |_case, rng| {
        let t = arb_tensor(rng);
        let es = t.entries();
        for w in es.windows(2) {
            assert!((w[0].i, w[0].j, w[0].k) < (w[1].i, w[1].j, w[1].k));
        }
        for e in es {
            assert!(e.i < t.dims[0] && e.j < t.dims[1] && e.k < t.dims[2]);
        }
    });
}

/// Slice ranges partition the entry array.
#[test]
fn slice_ranges_partition() {
    cases(CASES, 0x511CE, |_case, rng| {
        let t = arb_tensor(rng);
        let mut covered = 0;
        let mut last_end = 0;
        for i in 0..t.dims[0] {
            let r = t.slice_range(i);
            assert_eq!(r.start, last_end);
            last_end = r.end;
            covered += r.len();
        }
        assert_eq!(covered, t.nnz());
    });
}

/// Both Emu layouts and the CPU implementation agree exactly with the
/// reference for arbitrary tensors, ranks, and thread counts.
#[test]
fn mttkrp_exact_everywhere() {
    cases(CASES, 0x377, |_case, rng| {
        let t = Arc::new(arb_tensor(rng));
        let rank = rng.gen_range(1..6u32);
        let threads = rng.gen_range(1..24usize);
        let reference = mttkrp_reference(&t, rank);
        let close = |y: &[f64], label: &str| {
            for (i, (a, b)) in reference.iter().zip(y).enumerate() {
                assert!((a - b).abs() < 1e-9, "{label}[{i}]: {a} vs {b}");
            }
        };
        for layout in TensorLayout::ALL {
            let r = run_mttkrp_emu(
                &presets::chick_prototype(),
                Arc::clone(&t),
                &EmuMttkrpConfig {
                    layout,
                    rank,
                    nthreads: threads,
                },
            )
            .unwrap();
            close(&r.y, layout.name());
        }
        let cpu = run_mttkrp_cpu(
            &xeon_sim::config::haswell(),
            Arc::clone(&t),
            &CpuMttkrpConfig {
                rank,
                nthreads: threads,
            },
        );
        close(&cpu.y, "cpu");
    });
}

/// MTTKRP is linear in the tensor values: scaling every value scales Y.
#[test]
fn mttkrp_homogeneous() {
    cases(CASES, 0x40E0, |_case, rng| {
        let t = arb_tensor(rng);
        let scale = rng.gen_range(0.5..3.0);
        let rank = 3;
        let y1 = mttkrp_reference(&t, rank);
        let scaled = SparseTensor::from_entries(
            t.dims,
            t.entries()
                .iter()
                .map(|e| TensorEntry {
                    val: e.val * scale,
                    ..*e
                })
                .collect(),
        );
        let y2 = mttkrp_reference(&scaled, rank);
        for (a, b) in y1.iter().zip(&y2) {
            assert!((a * scale - b).abs() < 1e-9);
        }
    });
}
