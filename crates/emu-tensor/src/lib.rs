//! # emu-tensor — sparse tensors on the Emu model
//!
//! The paper's stated larger goal includes porting ParTI tensor
//! decomposition (CP/Tucker) to the Emu. This crate takes that
//! direction: a 3-mode COO [`coo::SparseTensor`] and the **MTTKRP**
//! kernel (the dominant cost of CP-ALS) on both machines:
//!
//! * [`emu`] — MTTKRP on the Emu with 1D-striped vs slice-blocked entry
//!   placement (the tensor analogue of the paper's SpMV layout study),
//!   replicated factor matrices, and memory-side atomic Y updates;
//! * [`cpu`] — the Xeon comparison with slice-aligned privatized
//!   partitions.
//!
//! Every run verifies its Y against [`coo::mttkrp_reference`] exactly.

#![warn(missing_docs)]

pub mod coo;
pub mod cpu;
pub mod emu;
pub mod io;

pub use coo::{mttkrp_reference, random_tensor, skewed_tensor, SparseTensor, TensorEntry};
pub use cpu::{run_mttkrp_cpu, CpuMttkrpConfig, CpuMttkrpResult};
pub use emu::{run_mttkrp_emu, EmuMttkrpConfig, EmuMttkrpResult, TensorLayout};
pub use io::{read_tns, write_tns};
