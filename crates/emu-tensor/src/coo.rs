//! Three-mode sparse tensors in coordinate format, plus the host MTTKRP
//! reference.
//!
//! MTTKRP — matricized tensor times Khatri-Rao product — is the kernel
//! at the heart of the CP decomposition the paper's ParTI goal targets:
//! for a tensor X and factor matrices B (J×R), C (K×R),
//! `Y(i, r) += X(i,j,k) · B(j,r) · C(k,r)` over all nonzeros.

use desim::rng::rng_from_seed;

/// One tensor nonzero.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TensorEntry {
    /// Mode-0 index.
    pub i: u32,
    /// Mode-1 index.
    pub j: u32,
    /// Mode-2 index.
    pub k: u32,
    /// Value.
    pub val: f64,
}

/// A 3-mode sparse tensor in COO format, entries sorted by (i, j, k)
/// with duplicates folded.
#[derive(Debug, Clone)]
pub struct SparseTensor {
    /// Mode sizes (I, J, K).
    pub dims: [u32; 3],
    entries: Vec<TensorEntry>,
}

impl SparseTensor {
    /// Build from raw entries: sorts and folds duplicates.
    ///
    /// # Panics
    /// Panics if any index exceeds its mode size.
    pub fn from_entries(dims: [u32; 3], mut raw: Vec<TensorEntry>) -> Self {
        for e in &raw {
            assert!(
                e.i < dims[0] && e.j < dims[1] && e.k < dims[2],
                "entry ({},{},{}) outside dims {dims:?}",
                e.i,
                e.j,
                e.k
            );
        }
        raw.sort_unstable_by_key(|e| (e.i, e.j, e.k));
        let mut entries: Vec<TensorEntry> = Vec::with_capacity(raw.len());
        for e in raw {
            match entries.last_mut() {
                Some(last) if (last.i, last.j, last.k) == (e.i, e.j, e.k) => last.val += e.val,
                _ => entries.push(e),
            }
        }
        SparseTensor { dims, entries }
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// The sorted, deduplicated entries.
    pub fn entries(&self) -> &[TensorEntry] {
        &self.entries
    }

    /// Entries of mode-0 slice `i` (contiguous thanks to sorting).
    pub fn slice_range(&self, i: u32) -> std::ops::Range<usize> {
        let start = self.entries.partition_point(|e| e.i < i);
        let end = self.entries.partition_point(|e| e.i <= i);
        start..end
    }

    /// Bytes of useful data one MTTKRP pass touches with rank `r`: each
    /// nonzero reads its 24 B entry plus a B row and a C row, and updates
    /// a Y row (read+write counted once, as the SpMV accounting does).
    pub fn mttkrp_bytes(&self, rank: u32) -> u64 {
        self.nnz() as u64 * (24 + 3 * rank as u64 * 8)
    }
}

/// The deterministic factor-matrix entries used by all MTTKRP
/// implementations: `B(j, r) = 1 + ((j + 3r) mod 11) / 11`.
pub fn b_value(j: u32, r: u32) -> f64 {
    1.0 + ((j + 3 * r) % 11) as f64 / 11.0
}

/// `C(k, r) = 1 + ((2k + r) mod 7) / 7`.
pub fn c_value(k: u32, r: u32) -> f64 {
    1.0 + ((2 * k + r) % 7) as f64 / 7.0
}

/// Host-reference MTTKRP: returns Y as an I×R row-major vector.
pub fn mttkrp_reference(t: &SparseTensor, rank: u32) -> Vec<f64> {
    let mut y = vec![0.0; t.dims[0] as usize * rank as usize];
    for e in t.entries() {
        for r in 0..rank {
            y[e.i as usize * rank as usize + r as usize] +=
                e.val * b_value(e.j, r) * c_value(e.k, r);
        }
    }
    y
}

/// Uniform random tensor with ~`nnz` nonzeros (duplicates folded).
pub fn random_tensor(dims: [u32; 3], nnz: usize, seed: u64) -> SparseTensor {
    let mut rng = rng_from_seed(seed);
    let raw: Vec<TensorEntry> = (0..nnz)
        .map(|_| TensorEntry {
            i: rng.gen_range(0..dims[0]),
            j: rng.gen_range(0..dims[1]),
            k: rng.gen_range(0..dims[2]),
            val: rng.gen_range(-1.0..1.0),
        })
        .collect();
    SparseTensor::from_entries(dims, raw)
}

/// A slice-skewed tensor: slice `i` receives `~ base >> (8i/I)` entries —
/// the load imbalance real tensors (e.g. Amazon reviews) exhibit.
pub fn skewed_tensor(dims: [u32; 3], base: usize, seed: u64) -> SparseTensor {
    let mut rng = rng_from_seed(seed);
    let mut raw = Vec::new();
    for i in 0..dims[0] {
        let level = (i as u64 * 8 / dims[0].max(1) as u64) as u32;
        let n = (base >> level).max(1);
        for _ in 0..n {
            raw.push(TensorEntry {
                i,
                j: rng.gen_range(0..dims[1]),
                k: rng.gen_range(0..dims[2]),
                val: rng.gen_range(-1.0..1.0),
            });
        }
    }
    SparseTensor::from_entries(dims, raw)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_entries_sorts_and_folds() {
        let t = SparseTensor::from_entries(
            [3, 3, 3],
            vec![
                TensorEntry {
                    i: 2,
                    j: 0,
                    k: 0,
                    val: 1.0,
                },
                TensorEntry {
                    i: 0,
                    j: 1,
                    k: 2,
                    val: 2.0,
                },
                TensorEntry {
                    i: 0,
                    j: 1,
                    k: 2,
                    val: 3.0,
                },
            ],
        );
        assert_eq!(t.nnz(), 2);
        assert_eq!(t.entries()[0].val, 5.0);
        assert_eq!(t.entries()[1].i, 2);
    }

    #[test]
    fn slice_range_is_contiguous_partition() {
        let t = random_tensor([10, 8, 8], 200, 1);
        let mut total = 0;
        for i in 0..10 {
            let r = t.slice_range(i);
            assert!(t.entries()[r.clone()].iter().all(|e| e.i == i));
            total += r.len();
        }
        assert_eq!(total, t.nnz());
    }

    #[test]
    fn reference_mttkrp_tiny_by_hand() {
        // Single entry (0,1,2,val=2), rank 1:
        // y[0] = 2 * B(1,0) * C(2,0).
        let t = SparseTensor::from_entries(
            [1, 2, 3],
            vec![TensorEntry {
                i: 0,
                j: 1,
                k: 2,
                val: 2.0,
            }],
        );
        let y = mttkrp_reference(&t, 1);
        let expect = 2.0 * b_value(1, 0) * c_value(2, 0);
        assert!((y[0] - expect).abs() < 1e-12);
    }

    #[test]
    fn skewed_front_loads_slices() {
        let t = skewed_tensor([16, 16, 16], 64, 2);
        assert!(t.slice_range(0).len() > t.slice_range(15).len());
    }

    #[test]
    fn mttkrp_bytes_formula() {
        let t = random_tensor([4, 4, 4], 10, 3);
        assert_eq!(t.mttkrp_bytes(8), t.nnz() as u64 * (24 + 192));
    }

    #[test]
    #[should_panic(expected = "outside dims")]
    fn bounds_checked() {
        let _ = SparseTensor::from_entries(
            [2, 2, 2],
            vec![TensorEntry {
                i: 2,
                j: 0,
                k: 0,
                val: 1.0,
            }],
        );
    }
}
