//! MTTKRP on the Emu model, with the SpMV layout lesson transplanted to
//! tensors:
//!
//! * [`TensorLayout::OneD`] — entries striped element-wise across
//!   nodelets (`mw_malloc1dlong` of the COO arrays): walking consecutive
//!   nonzeros migrates on every entry;
//! * [`TensorLayout::SliceBlocked`] — the "2D" analogue: the entries of
//!   mode-0 slice `i` live contiguously on nodelet `i % N`, factor
//!   matrices B and C are replicated, and the output row `Y(i,:)` is
//!   co-located with its slice — the inner loop never migrates.
//!
//! Y updates use memory-side remote atomics in both layouts, so the
//! layouts differ *only* in where the entry data lives.

use crate::coo::{b_value, c_value, SparseTensor};
use desim::stats::Bandwidth;
use emu_core::prelude::*;
use std::sync::{Arc, Mutex};

/// FMA + index arithmetic per (nonzero, rank) pair on the Gossamer soft
/// core (same justification as `membench::spmv_emu::FMA_CYCLES`).
pub const FMA_CYCLES: u32 = 30;

/// Data placement of the tensor (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TensorLayout {
    /// Entries striped element-wise across all nodelets.
    OneD,
    /// Slice-contiguous per-nodelet placement, B/C replicated.
    SliceBlocked,
}

impl TensorLayout {
    /// Both layouts, for sweeps.
    pub const ALL: [TensorLayout; 2] = [TensorLayout::OneD, TensorLayout::SliceBlocked];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            TensorLayout::OneD => "1D",
            TensorLayout::SliceBlocked => "slice-blocked",
        }
    }
}

/// Configuration of one Emu MTTKRP run.
#[derive(Clone, Debug)]
pub struct EmuMttkrpConfig {
    /// Data placement.
    pub layout: TensorLayout,
    /// CP rank (columns of B, C, Y).
    pub rank: u32,
    /// Worker threadlets.
    pub nthreads: usize,
}

impl Default for EmuMttkrpConfig {
    fn default() -> Self {
        EmuMttkrpConfig {
            layout: TensorLayout::SliceBlocked,
            rank: 8,
            nthreads: 256,
        }
    }
}

/// Result of one Emu MTTKRP run.
#[derive(Debug)]
pub struct EmuMttkrpResult {
    /// The computed Y (I×R row-major), verified against
    /// [`crate::coo::mttkrp_reference`].
    pub y: Vec<f64>,
    /// Effective bandwidth ([`SparseTensor::mttkrp_bytes`] / makespan).
    pub bandwidth: Bandwidth,
    /// Total thread migrations.
    pub migrations: u64,
    /// Full machine report.
    pub report: RunReport,
}

/// Address of entry `e` under `layout`.
fn entry_addr(t: &SparseTensor, layout: TensorLayout, e: usize, nodelets: u32) -> GlobalAddr {
    match layout {
        TensorLayout::OneD => GlobalAddr::new(
            NodeletId((e as u32) % nodelets),
            0x1000_0000 + (e as u64 / nodelets as u64) * 32,
        ),
        TensorLayout::SliceBlocked => {
            let i = t.entries()[e].i;
            GlobalAddr::new(NodeletId(i % nodelets), 0x1000_0000 + e as u64 * 32)
        }
    }
}

struct MttkrpWorker {
    t: Arc<SparseTensor>,
    layout: TensorLayout,
    rank: u32,
    nodelets: u32,
    /// B and C, replicated: resolve at the reader's nodelet.
    b: ArrayHandle,
    c: ArrayHandle,
    /// Entry indices this worker owns.
    work: Vec<u32>,
    w: usize,
    r: u32,
    phase: u8,
    acc: f64,
    y_out: Arc<Mutex<Vec<f64>>>,
}

impl Kernel for MttkrpWorker {
    fn step(&mut self, ctx: &KernelCtx) -> Op {
        loop {
            let Some(&e_idx) = self.work.get(self.w) else {
                return Op::Quit;
            };
            let e = self.t.entries()[e_idx as usize];
            match self.phase {
                // Load the entry — the only op whose placement differs
                // between layouts (migration per entry in 1D).
                0 => {
                    self.phase = 1;
                    self.r = 0;
                    return Op::Load {
                        addr: entry_addr(&self.t, self.layout, e_idx as usize, self.nodelets),
                        bytes: 24,
                    };
                }
                // Rank loop: B(j,r), C(k,r), FMA, Y(i,r) atomic update.
                1 => {
                    if self.r >= self.rank {
                        self.w += 1;
                        self.phase = 0;
                        continue;
                    }
                    self.phase = 2;
                    let idx = e.j as u64 * self.rank as u64 + self.r as u64;
                    return Op::Load {
                        addr: self.b.addr(idx, ctx.here),
                        bytes: 8,
                    };
                }
                2 => {
                    self.phase = 3;
                    let idx = e.k as u64 * self.rank as u64 + self.r as u64;
                    return Op::Load {
                        addr: self.c.addr(idx, ctx.here),
                        bytes: 8,
                    };
                }
                3 => {
                    self.phase = 4;
                    self.acc = e.val * b_value(e.j, self.r) * c_value(e.k, self.r);
                    return Op::Compute { cycles: FMA_CYCLES };
                }
                4 => {
                    // Functional accumulate + the memory-side update. The
                    // Y row lives on slice i's home nodelet.
                    let y_idx = e.i as usize * self.rank as usize + self.r as usize;
                    self.y_out.lock().unwrap()[y_idx] += self.acc;
                    let y_home = NodeletId(e.i % self.nodelets);
                    let addr = GlobalAddr::new(y_home, 0x3000_0000 + y_idx as u64 * 8);
                    self.r += 1;
                    self.phase = 1;
                    return Op::AtomicAdd { addr, bytes: 8 };
                }
                _ => unreachable!(),
            }
        }
    }
}

/// Run MTTKRP on the Emu machine `cfg`.
pub fn run_mttkrp_emu(
    cfg: &MachineConfig,
    t: Arc<SparseTensor>,
    mc: &EmuMttkrpConfig,
) -> Result<EmuMttkrpResult, SimError> {
    assert!(mc.rank > 0 && mc.nthreads > 0);
    let nodelets = cfg.total_nodelets();
    let mut ms = MemSpace::new(nodelets);
    let b = ms.replicated(t.dims[1] as u64 * mc.rank as u64, 8);
    let c = ms.replicated(t.dims[2] as u64 * mc.rank as u64, 8);
    let y_out = Arc::new(Mutex::new(vec![0.0; t.dims[0] as usize * mc.rank as usize]));
    let nnz = t.nnz();
    let workers = mc.nthreads.min(nnz.max(1));
    // Work assignment follows the layout: in 1D, worker w takes entries
    // w, w+W, …; in slice-blocked, entries are grouped per nodelet (by
    // slice home) and dealt to that nodelet's workers.
    let mut engine = Engine::new(cfg.clone())?;
    let assignments: Vec<(NodeletId, Vec<u32>)> = match mc.layout {
        TensorLayout::OneD => {
            // Contiguous chunks (how a cilk_spawn loop deals work): each
            // worker walks consecutive entries, which sit on consecutive
            // nodelets — the migration storm.
            let chunk = nnz.div_ceil(workers);
            (0..workers)
                .filter_map(|w| {
                    let start = w * chunk;
                    let end = ((w + 1) * chunk).min(nnz);
                    if start >= end {
                        return None;
                    }
                    let work: Vec<u32> = (start..end).map(|e| e as u32).collect();
                    Some((NodeletId((start as u32) % nodelets), work))
                })
                .collect()
        }
        TensorLayout::SliceBlocked => {
            let mut per_nodelet: Vec<Vec<u32>> = vec![Vec::new(); nodelets as usize];
            for (e_idx, e) in t.entries().iter().enumerate() {
                per_nodelet[(e.i % nodelets) as usize].push(e_idx as u32);
            }
            let per_home = (workers / nodelets as usize).max(1);
            let mut out = Vec::new();
            for (n, entries) in per_nodelet.into_iter().enumerate() {
                if entries.is_empty() {
                    continue;
                }
                for w in 0..per_home.min(entries.len()) {
                    let work: Vec<u32> =
                        entries.iter().skip(w).step_by(per_home).copied().collect();
                    out.push((NodeletId(n as u32), work));
                }
            }
            out
        }
    };
    for (start, work) in assignments {
        if work.is_empty() {
            continue;
        }
        engine.spawn_at(
            start,
            Box::new(MttkrpWorker {
                t: Arc::clone(&t),
                layout: mc.layout,
                rank: mc.rank,
                nodelets,
                b: b.clone(),
                c: c.clone(),
                work,
                w: 0,
                r: 0,
                phase: 0,
                acc: 0.0,
                y_out: Arc::clone(&y_out),
            }),
        )?;
    }
    let report = engine.run()?;
    let y = y_out.lock().unwrap().clone();
    Ok(EmuMttkrpResult {
        y,
        bandwidth: report.bandwidth_for(t.mttkrp_bytes(mc.rank)),
        migrations: report.total_migrations(),
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::{mttkrp_reference, random_tensor, skewed_tensor};
    use emu_core::presets;

    fn check(t: Arc<SparseTensor>, layout: TensorLayout, rank: u32) -> EmuMttkrpResult {
        let reference = mttkrp_reference(&t, rank);
        let r = run_mttkrp_emu(
            &presets::chick_prototype(),
            Arc::clone(&t),
            &EmuMttkrpConfig {
                layout,
                rank,
                nthreads: 32,
            },
        )
        .unwrap();
        let err = reference
            .iter()
            .zip(&r.y)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(err < 1e-9, "{}: err {err}", layout.name());
        r
    }

    #[test]
    fn both_layouts_exact() {
        let t = Arc::new(random_tensor([20, 16, 12], 400, 1));
        check(Arc::clone(&t), TensorLayout::OneD, 4);
        check(t, TensorLayout::SliceBlocked, 4);
    }

    #[test]
    fn one_d_migrates_slice_blocked_does_not() {
        let t = Arc::new(random_tensor([32, 16, 16], 600, 2));
        let one_d = check(Arc::clone(&t), TensorLayout::OneD, 4);
        let blocked = check(Arc::clone(&t), TensorLayout::SliceBlocked, 4);
        assert!(
            one_d.migrations as usize > t.nnz() / 2,
            "1D should migrate per entry: {}",
            one_d.migrations
        );
        assert!(
            blocked.migrations < one_d.migrations / 10,
            "blocked {} vs 1D {}",
            blocked.migrations,
            one_d.migrations
        );
    }

    #[test]
    fn blocked_wins_when_threads_saturate() {
        // Layout only pays off once enough threadlets saturate the
        // machine (at low saturation the per-rank FMA latency dominates
        // both layouts equally — a real property of rank-heavy MTTKRP).
        let t = Arc::new(random_tensor([128, 32, 32], 8192, 2));
        let bw = |layout| {
            run_mttkrp_emu(
                &presets::chick_prototype(),
                Arc::clone(&t),
                &EmuMttkrpConfig {
                    layout,
                    rank: 1,
                    nthreads: 512,
                },
            )
            .unwrap()
            .bandwidth
            .mb_per_sec()
        };
        let one_d = bw(TensorLayout::OneD);
        let blocked = bw(TensorLayout::SliceBlocked);
        assert!(
            blocked > 1.05 * one_d,
            "blocked {blocked} should beat 1D {one_d} under saturation"
        );
    }

    #[test]
    fn skewed_tensor_still_exact() {
        let t = Arc::new(skewed_tensor([24, 12, 12], 48, 3));
        check(Arc::clone(&t), TensorLayout::SliceBlocked, 6);
        check(t, TensorLayout::OneD, 6);
    }

    #[test]
    fn rank_one_works() {
        let t = Arc::new(random_tensor([8, 8, 8], 100, 4));
        check(t, TensorLayout::SliceBlocked, 1);
    }

    #[test]
    fn deterministic() {
        let t = Arc::new(random_tensor([16, 8, 8], 200, 5));
        let a = check(Arc::clone(&t), TensorLayout::SliceBlocked, 4);
        let b = check(t, TensorLayout::SliceBlocked, 4);
        assert_eq!(a.report.makespan, b.report.makespan);
    }
}
