//! FROSTT `.tns` I/O — the text format of the sparse-tensor collection
//! ParTI consumes: one nonzero per line, `i j k value`, 1-based indices.

use crate::coo::{SparseTensor, TensorEntry};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};

/// Parse a `.tns` stream (3-mode). Dimensions are inferred as the max
/// index per mode unless `dims` is given.
pub fn read_tns<R: Read>(r: R, dims: Option<[u32; 3]>) -> Result<SparseTensor, String> {
    let mut raw = Vec::new();
    let mut maxes = [0u32; 3];
    for line in BufReader::new(r).lines() {
        let line = line.map_err(|e| e.to_string())?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let f: Vec<&str> = t.split_whitespace().collect();
        if f.len() != 4 {
            return Err(format!("expected `i j k value`, got {t:?}"));
        }
        let idx: Vec<u64> = f[..3]
            .iter()
            .map(|x| x.parse().map_err(|_| format!("bad index in {t:?}")))
            .collect::<Result<_, _>>()?;
        if idx.contains(&0) {
            return Err(format!("indices are 1-based, got 0 in {t:?}"));
        }
        if idx.iter().any(|&x| x > u32::MAX as u64) {
            return Err("index too large for u32".into());
        }
        let val: f64 = f[3].parse().map_err(|_| format!("bad value in {t:?}"))?;
        let (i, j, k) = (idx[0] as u32 - 1, idx[1] as u32 - 1, idx[2] as u32 - 1);
        maxes[0] = maxes[0].max(i + 1);
        maxes[1] = maxes[1].max(j + 1);
        maxes[2] = maxes[2].max(k + 1);
        raw.push(TensorEntry { i, j, k, val });
    }
    let dims = dims.unwrap_or(maxes);
    for (m, (&have, &need)) in dims.iter().zip(&maxes).enumerate() {
        if need > have {
            return Err(format!("mode {m}: index {need} exceeds dim {have}"));
        }
    }
    if dims.contains(&0) {
        return Err("empty tensor with no explicit dims".into());
    }
    Ok(SparseTensor::from_entries(dims, raw))
}

/// Write a tensor as `.tns` (1-based).
pub fn write_tns<W: Write>(t: &SparseTensor, w: W) -> std::io::Result<()> {
    let mut out = BufWriter::new(w);
    for e in t.entries() {
        writeln!(out, "{} {} {} {:.17e}", e.i + 1, e.j + 1, e.k + 1, e.val)?;
    }
    out.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::random_tensor;

    #[test]
    fn round_trip() {
        let t = random_tensor([9, 7, 5], 60, 3);
        let mut buf = Vec::new();
        write_tns(&t, &mut buf).unwrap();
        let back = read_tns(&buf[..], Some(t.dims)).unwrap();
        assert_eq!(t.dims, back.dims);
        assert_eq!(t.entries(), back.entries());
    }

    #[test]
    fn infers_dims() {
        let src = "1 2 3 1.5\n4 1 1 2.0\n# comment\n";
        let t = read_tns(src.as_bytes(), None).unwrap();
        assert_eq!(t.dims, [4, 2, 3]);
        assert_eq!(t.nnz(), 2);
    }

    #[test]
    fn rejects_bad_lines() {
        assert!(read_tns("1 2 3\n".as_bytes(), None).is_err()); // short
        assert!(read_tns("0 1 1 5.0\n".as_bytes(), None).is_err()); // 0-based
        assert!(read_tns("1 1 x 5.0\n".as_bytes(), None).is_err()); // junk
        assert!(read_tns("".as_bytes(), None).is_err()); // empty, no dims
        assert!(read_tns("5 1 1 1.0\n".as_bytes(), Some([2, 2, 2])).is_err()); // oob
    }
}
