//! MTTKRP on the Xeon comparison platform: contiguous COO streams with
//! factor-row gathers — prefetch-friendly over the entry arrays, gathery
//! over B and C, exactly the mixed pattern ParTI tunes around.

use crate::coo::{b_value, c_value, SparseTensor};
use desim::stats::Bandwidth;
use std::sync::{Arc, Mutex};
use xeon_sim::prelude::*;

/// Configuration of one CPU MTTKRP run.
#[derive(Clone, Debug)]
pub struct CpuMttkrpConfig {
    /// CP rank.
    pub rank: u32,
    /// Worker threads (contiguous entry ranges).
    pub nthreads: usize,
}

impl Default for CpuMttkrpConfig {
    fn default() -> Self {
        CpuMttkrpConfig {
            rank: 8,
            nthreads: 16,
        }
    }
}

/// Result of one CPU MTTKRP run.
#[derive(Debug)]
pub struct CpuMttkrpResult {
    /// Computed Y (I×R row-major).
    pub y: Vec<f64>,
    /// Effective bandwidth.
    pub bandwidth: Bandwidth,
    /// Full platform report.
    pub report: CpuReport,
}

const ENTRIES_BASE: u64 = 0x10_0000_0000;
const B_BASE: u64 = 0x20_0000_0000;
const C_BASE: u64 = 0x30_0000_0000;
const Y_BASE: u64 = 0x40_0000_0000;

struct Worker {
    t: Arc<SparseTensor>,
    rank: u32,
    range: std::ops::Range<usize>,
    e: usize,
    r: u32,
    phase: u8,
    acc: f64,
    y_out: Arc<Mutex<Vec<f64>>>,
}

impl CpuKernel for Worker {
    fn step(&mut self, _ctx: &CpuCtx) -> CpuOp {
        loop {
            if self.e >= self.range.end {
                return CpuOp::Quit;
            }
            let entry = self.t.entries()[self.e];
            match self.phase {
                0 => {
                    self.phase = 1;
                    self.r = 0;
                    // 24 B entry at a 32 B-aligned slot (never crosses a line).
                    return CpuOp::Load {
                        addr: ENTRIES_BASE + self.e as u64 * 32,
                        bytes: 24,
                    };
                }
                1 => {
                    if self.r >= self.rank {
                        self.e += 1;
                        self.phase = 0;
                        continue;
                    }
                    self.phase = 2;
                    let idx = entry.j as u64 * self.rank as u64 + self.r as u64;
                    return CpuOp::Load {
                        addr: B_BASE + idx * 8,
                        bytes: 8,
                    };
                }
                2 => {
                    self.phase = 3;
                    let idx = entry.k as u64 * self.rank as u64 + self.r as u64;
                    return CpuOp::Load {
                        addr: C_BASE + idx * 8,
                        bytes: 8,
                    };
                }
                3 => {
                    self.phase = 4;
                    self.acc = entry.val * b_value(entry.j, self.r) * c_value(entry.k, self.r);
                    return CpuOp::Compute { cycles: 2 };
                }
                4 => {
                    let y_idx = entry.i as usize * self.rank as usize + self.r as usize;
                    self.y_out.lock().unwrap()[y_idx] += self.acc;
                    self.r += 1;
                    self.phase = 1;
                    return CpuOp::Store {
                        addr: Y_BASE + y_idx as u64 * 8,
                        bytes: 8,
                    };
                }
                _ => unreachable!(),
            }
        }
    }
}

/// Run MTTKRP on the CPU platform `cfg`.
///
/// Entries are partitioned into contiguous ranges at mode-0 slice
/// boundaries, so no two threads update the same Y row (the real
/// privatization strategy) — the functional accumulation needs no
/// atomicity and the result is exact.
pub fn run_mttkrp_cpu(
    cfg: &CpuConfig,
    t: Arc<SparseTensor>,
    mc: &CpuMttkrpConfig,
) -> CpuMttkrpResult {
    assert!(mc.rank > 0 && mc.nthreads > 0);
    let y_out = Arc::new(Mutex::new(vec![0.0; t.dims[0] as usize * mc.rank as usize]));
    let nnz = t.nnz();
    let mut engine = CpuEngine::new(cfg.clone());
    // Split at slice boundaries nearest the even cut points.
    let mut cuts = vec![0usize];
    for w in 1..mc.nthreads {
        let target = w * nnz / mc.nthreads;
        // Round up to the end of the slice containing `target`.
        let cut = if target >= nnz {
            nnz
        } else {
            let i = t.entries()[target].i;
            t.slice_range(i).end
        };
        cuts.push(cut.max(*cuts.last().unwrap()));
    }
    cuts.push(nnz);
    for w in 0..mc.nthreads {
        let range = cuts[w]..cuts[w + 1];
        if range.is_empty() {
            continue;
        }
        engine.add_thread(Box::new(Worker {
            t: Arc::clone(&t),
            rank: mc.rank,
            e: range.start,
            range,
            r: 0,
            phase: 0,
            acc: 0.0,
            y_out: Arc::clone(&y_out),
        }));
    }
    let report = engine.run();
    let y = y_out.lock().unwrap().clone();
    CpuMttkrpResult {
        y,
        bandwidth: report.bandwidth_for(t.mttkrp_bytes(mc.rank)),
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::{mttkrp_reference, random_tensor};
    use xeon_sim::config::haswell;

    #[test]
    fn cpu_mttkrp_exact() {
        let t = Arc::new(random_tensor([24, 16, 16], 500, 1));
        let reference = mttkrp_reference(&t, 4);
        let r = run_mttkrp_cpu(
            &haswell(),
            Arc::clone(&t),
            &CpuMttkrpConfig {
                rank: 4,
                nthreads: 8,
            },
        );
        let err = reference
            .iter()
            .zip(&r.y)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(err < 1e-9, "err {err}");
    }

    #[test]
    fn slice_boundary_partition_never_splits_a_row() {
        // With slice-aligned cuts, parallel and serial Y agree exactly
        // even without atomic accumulation — validated by exactness above,
        // but also check the cut structure directly.
        let t = Arc::new(random_tensor([10, 8, 8], 300, 2));
        let r1 = run_mttkrp_cpu(
            &haswell(),
            Arc::clone(&t),
            &CpuMttkrpConfig {
                rank: 2,
                nthreads: 1,
            },
        );
        let r4 = run_mttkrp_cpu(
            &haswell(),
            Arc::clone(&t),
            &CpuMttkrpConfig {
                rank: 2,
                nthreads: 4,
            },
        );
        assert_eq!(r1.y, r4.y);
        assert!(r4.report.makespan < r1.report.makespan);
    }

    #[test]
    fn more_threads_help() {
        let t = Arc::new(random_tensor([64, 32, 32], 4000, 3));
        let t1 = run_mttkrp_cpu(
            &haswell(),
            Arc::clone(&t),
            &CpuMttkrpConfig {
                rank: 8,
                nthreads: 1,
            },
        );
        let t16 = run_mttkrp_cpu(
            &haswell(),
            Arc::clone(&t),
            &CpuMttkrpConfig {
                rank: 8,
                nthreads: 16,
            },
        );
        assert!(t16.bandwidth.mb_per_sec() > 4.0 * t1.bandwidth.mb_per_sec());
    }
}
