//! Shared scaffolding for the workspace's property-style test suites.
//!
//! Every crate carries a `tests/props.rs` that sweeps a fixed set of
//! seeds — deterministic, reproducible randomized testing without an
//! external property-testing framework. The seeded-case loop used to be
//! copy-pasted into each suite; [`cases`] is that loop, once.
//!
//! This crate is a dev-dependency only: it must never appear in a
//! non-test build graph.

pub use desim::rng::{rng_from_seed, Rng64};

/// Run `n` seeded cases of a property.
///
/// Case `i` receives a fresh [`Rng64`] seeded with `tag + i` — exactly
/// the stream the hand-rolled `for case in 0..CASES` loops produced, so
/// a suite refactored onto this helper generates byte-identical inputs.
/// `tag` is the suite-specific constant (conventionally a hex pun like
/// `0xF1F0`); keeping tags distinct keeps the suites' streams
/// independent.
///
/// The case index is passed to the closure for use in failure messages:
/// re-running a single failing case means seeding `tag + i` directly.
pub fn cases(n: u64, tag: u64, mut f: impl FnMut(u64, &mut Rng64)) {
    for case in 0..n {
        let mut rng = rng_from_seed(tag.wrapping_add(case));
        f(case, &mut rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_runs_each_seed_once_with_the_legacy_stream() {
        let mut seen = Vec::new();
        cases(4, 0xABCD, |case, rng| seen.push((case, rng.next_u64())));
        assert_eq!(seen.len(), 4);
        for (case, draw) in seen {
            // Byte-compatible with the replaced hand-rolled loops.
            assert_eq!(draw, rng_from_seed(0xABCD + case).next_u64());
        }
    }
}
