//! Property-based tests of the Emu machine model's invariants.

use emu_core::prelude::*;
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Strategy for a random little op program over an 8-nodelet machine.
fn arb_ops() -> impl Strategy<Value = Vec<OpSpec>> {
    prop::collection::vec(
        prop_oneof![
            (0u32..8, 1u32..64).prop_map(|(n, b)| OpSpec::Load(n, b)),
            (0u32..8, 1u32..64).prop_map(|(n, b)| OpSpec::Store(n, b)),
            (0u32..8, 1u32..64).prop_map(|(n, b)| OpSpec::Atomic(n, b)),
            (1u32..200).prop_map(OpSpec::Compute),
            (0u32..8).prop_map(OpSpec::Migrate),
        ],
        0..40,
    )
}

/// Serializable op description (Op itself holds boxed kernels).
#[derive(Clone, Debug)]
enum OpSpec {
    Load(u32, u32),
    Store(u32, u32),
    Atomic(u32, u32),
    Compute(u32),
    Migrate(u32),
}

impl OpSpec {
    fn to_op(&self) -> Op {
        match *self {
            OpSpec::Load(n, b) => Op::Load {
                addr: GlobalAddr::new(NodeletId(n), 0x40),
                bytes: b,
            },
            OpSpec::Store(n, b) => Op::Store {
                addr: GlobalAddr::new(NodeletId(n), 0x80),
                bytes: b,
            },
            OpSpec::Atomic(n, b) => Op::AtomicAdd {
                addr: GlobalAddr::new(NodeletId(n), 0xc0),
                bytes: b,
            },
            OpSpec::Compute(c) => Op::Compute { cycles: c },
            OpSpec::Migrate(n) => Op::MigrateTo {
                nodelet: NodeletId(n),
            },
        }
    }
}

/// Replay the op specs off-line to compute the expected counters.
fn expected(specs: &[OpSpec], start: u32) -> (u64, u64, u64) {
    let mut loc = start;
    let (mut migrations, mut bytes_loaded, mut bytes_stored) = (0u64, 0u64, 0u64);
    for s in specs {
        match *s {
            OpSpec::Load(n, b) => {
                if n != loc {
                    migrations += 1;
                    loc = n;
                }
                bytes_loaded += b as u64;
            }
            OpSpec::Store(n, b) | OpSpec::Atomic(n, b) => {
                let _ = n;
                bytes_stored += b as u64;
            }
            OpSpec::Compute(_) => {}
            OpSpec::Migrate(n) => {
                if n != loc {
                    migrations += 1;
                    loc = n;
                }
            }
        }
    }
    (migrations, bytes_loaded, bytes_stored)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For any program: the engine terminates, and migrations and byte
    /// counters match an offline replay of the op semantics exactly.
    #[test]
    fn engine_counters_match_offline_replay(
        specs in arb_ops(),
        start in 0u32..8
    ) {
        let mut e = Engine::new(presets::chick_prototype());
        let ops: Vec<Op> = specs.iter().map(OpSpec::to_op).collect();
        e.spawn_at(NodeletId(start), Box::new(ScriptKernel::new(ops)));
        let r = e.run();
        let (migs, loaded, stored) = expected(&specs, start);
        prop_assert_eq!(r.total_migrations(), migs);
        let got_loaded: u64 = r.nodelets.iter().map(|n| n.bytes_loaded).sum();
        let got_stored: u64 = r.nodelets.iter().map(|n| n.bytes_stored).sum();
        prop_assert_eq!(got_loaded, loaded);
        prop_assert_eq!(got_stored, stored);
        // Time moved if any op ran.
        if !specs.is_empty() {
            prop_assert!(r.makespan > desim::Time::ZERO);
        }
    }

    /// Two concurrent threads with arbitrary programs also terminate with
    /// exact aggregate accounting (no lost or duplicated work).
    #[test]
    fn engine_two_threads_accounting(
        a in arb_ops(),
        b in arb_ops(),
    ) {
        let mut e = Engine::new(presets::chick_prototype());
        e.spawn_at(NodeletId(0), Box::new(ScriptKernel::new(a.iter().map(OpSpec::to_op).collect())));
        e.spawn_at(NodeletId(3), Box::new(ScriptKernel::new(b.iter().map(OpSpec::to_op).collect())));
        let r = e.run();
        let (m1, l1, s1) = expected(&a, 0);
        let (m2, l2, s2) = expected(&b, 3);
        prop_assert_eq!(r.total_migrations(), m1 + m2);
        let got_loaded: u64 = r.nodelets.iter().map(|n| n.bytes_loaded).sum();
        let got_stored: u64 = r.nodelets.iter().map(|n| n.bytes_stored).sum();
        prop_assert_eq!(got_loaded, l1 + l2);
        prop_assert_eq!(got_stored, s1 + s2);
        prop_assert_eq!(r.threads, 2);
    }

    /// Spawn strategies run every worker exactly once on the machine,
    /// for arbitrary worker counts.
    #[test]
    fn spawn_strategies_complete(
        nworkers in 1usize..80,
        strategy_idx in 0usize..4
    ) {
        let strategy = SpawnStrategy::ALL[strategy_idx];
        let ran = Arc::new(AtomicUsize::new(0));
        let factory: WorkerFactory = {
            let ran = Arc::clone(&ran);
            Arc::new(move |_i| {
                let ran = Arc::clone(&ran);
                let mut fired = false;
                Box::new(move |_ctx: &KernelCtx| {
                    if !fired {
                        fired = true;
                        ran.fetch_add(1, Ordering::Relaxed);
                    }
                    Op::Quit
                })
            })
        };
        let mut e = Engine::new(presets::chick_prototype());
        e.spawn_at(NodeletId(0), root_kernel(strategy, nworkers, 8, factory));
        let r = e.run();
        prop_assert_eq!(ran.load(Ordering::Relaxed), nworkers);
        // Thread accounting: every thread the engine created terminated.
        prop_assert!(r.threads >= nworkers as u64);
    }

    /// Striped allocations deal element i to nodelet i % N and replicated
    /// allocations always resolve locally, for arbitrary geometry.
    #[test]
    fn allocation_owner_laws(
        nodelets in 1u32..64,
        len in 1u64..10_000,
        here in 0u32..64
    ) {
        let here = NodeletId(here % nodelets);
        let mut ms = MemSpace::new(nodelets);
        let striped = ms.striped(len, 8);
        let replicated = ms.replicated(len, 8);
        for i in (0..len).step_by((len as usize / 17).max(1)) {
            prop_assert_eq!(striped.owner(i, here).0, (i % nodelets as u64) as u32);
            prop_assert_eq!(replicated.owner(i, here), here);
        }
    }

    /// Engine determinism over arbitrary programs.
    #[test]
    fn engine_is_deterministic(specs in arb_ops()) {
        let run = || {
            let mut e = Engine::new(presets::chick_prototype());
            e.spawn_at(
                NodeletId(1),
                Box::new(ScriptKernel::new(specs.iter().map(OpSpec::to_op).collect())),
            );
            e.run().makespan
        };
        prop_assert_eq!(run(), run());
    }
}
