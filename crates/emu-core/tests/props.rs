//! Randomized (seeded, deterministic) tests of the Emu machine model's
//! invariants. Each test sweeps a fixed set of seeds so failures are
//! reproducible without any external property-testing framework.

use emu_core::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use test_support::{cases, Rng64};

const CASES: u64 = 64;

/// Serializable op description (Op itself holds boxed kernels).
#[derive(Clone, Debug)]
enum OpSpec {
    Load(u32, u32),
    Store(u32, u32),
    Atomic(u32, u32),
    Compute(u32),
    Migrate(u32),
}

/// A random little op program over an 8-nodelet machine.
fn arb_ops(rng: &mut Rng64) -> Vec<OpSpec> {
    let len = rng.gen_range(0..40usize);
    (0..len)
        .map(|_| match rng.gen_range(0..5u32) {
            0 => OpSpec::Load(rng.gen_range(0..8), rng.gen_range(1..64)),
            1 => OpSpec::Store(rng.gen_range(0..8), rng.gen_range(1..64)),
            2 => OpSpec::Atomic(rng.gen_range(0..8), rng.gen_range(1..64)),
            3 => OpSpec::Compute(rng.gen_range(1..200)),
            _ => OpSpec::Migrate(rng.gen_range(0..8)),
        })
        .collect()
}

impl OpSpec {
    fn to_op(&self) -> Op {
        match *self {
            OpSpec::Load(n, b) => Op::Load {
                addr: GlobalAddr::new(NodeletId(n), 0x40),
                bytes: b,
            },
            OpSpec::Store(n, b) => Op::Store {
                addr: GlobalAddr::new(NodeletId(n), 0x80),
                bytes: b,
            },
            OpSpec::Atomic(n, b) => Op::AtomicAdd {
                addr: GlobalAddr::new(NodeletId(n), 0xc0),
                bytes: b,
            },
            OpSpec::Compute(c) => Op::Compute { cycles: c },
            OpSpec::Migrate(n) => Op::MigrateTo {
                nodelet: NodeletId(n),
            },
        }
    }
}

/// Replay the op specs off-line to compute the expected counters.
fn expected(specs: &[OpSpec], start: u32) -> (u64, u64, u64) {
    let mut loc = start;
    let (mut migrations, mut bytes_loaded, mut bytes_stored) = (0u64, 0u64, 0u64);
    for s in specs {
        match *s {
            OpSpec::Load(n, b) => {
                if n != loc {
                    migrations += 1;
                    loc = n;
                }
                bytes_loaded += b as u64;
            }
            OpSpec::Store(n, b) | OpSpec::Atomic(n, b) => {
                let _ = n;
                bytes_stored += b as u64;
            }
            OpSpec::Compute(_) => {}
            OpSpec::Migrate(n) => {
                if n != loc {
                    migrations += 1;
                    loc = n;
                }
            }
        }
    }
    (migrations, bytes_loaded, bytes_stored)
}

/// For any program: the engine terminates, and migrations and byte
/// counters match an offline replay of the op semantics exactly.
#[test]
fn engine_counters_match_offline_replay() {
    cases(CASES, 0xC047, |_case, rng| {
        let specs = arb_ops(rng);
        let start = rng.gen_range(0..8u32);
        let mut e = Engine::new(presets::chick_prototype()).unwrap();
        let ops: Vec<Op> = specs.iter().map(OpSpec::to_op).collect();
        e.spawn_at(NodeletId(start), Box::new(ScriptKernel::new(ops)))
            .unwrap();
        let r = e.run().unwrap();
        let (migs, loaded, stored) = expected(&specs, start);
        assert_eq!(r.total_migrations(), migs);
        let got_loaded: u64 = r.nodelets.iter().map(|n| n.bytes_loaded).sum();
        let got_stored: u64 = r.nodelets.iter().map(|n| n.bytes_stored).sum();
        assert_eq!(got_loaded, loaded);
        assert_eq!(got_stored, stored);
        // Time moved if any op ran.
        if !specs.is_empty() {
            assert!(r.makespan > desim::Time::ZERO);
        }
    });
}

/// Two concurrent threads with arbitrary programs also terminate with
/// exact aggregate accounting (no lost or duplicated work).
#[test]
fn engine_two_threads_accounting() {
    cases(CASES, 0x2788, |_case, rng| {
        let a = arb_ops(rng);
        let b = arb_ops(rng);
        let mut e = Engine::new(presets::chick_prototype()).unwrap();
        e.spawn_at(
            NodeletId(0),
            Box::new(ScriptKernel::new(a.iter().map(OpSpec::to_op).collect())),
        )
        .unwrap();
        e.spawn_at(
            NodeletId(3),
            Box::new(ScriptKernel::new(b.iter().map(OpSpec::to_op).collect())),
        )
        .unwrap();
        let r = e.run().unwrap();
        let (m1, l1, s1) = expected(&a, 0);
        let (m2, l2, s2) = expected(&b, 3);
        assert_eq!(r.total_migrations(), m1 + m2);
        let got_loaded: u64 = r.nodelets.iter().map(|n| n.bytes_loaded).sum();
        let got_stored: u64 = r.nodelets.iter().map(|n| n.bytes_stored).sum();
        assert_eq!(got_loaded, l1 + l2);
        assert_eq!(got_stored, s1 + s2);
        assert_eq!(r.threads, 2);
    });
}

/// Spawn strategies run every worker exactly once on the machine,
/// for arbitrary worker counts.
#[test]
fn spawn_strategies_complete() {
    cases(CASES, 0x59A3, |_case, rng| {
        let nworkers = rng.gen_range(1..80usize);
        let strategy = SpawnStrategy::ALL[rng.gen_range(0..SpawnStrategy::ALL.len())];
        let ran = Arc::new(AtomicUsize::new(0));
        let factory: WorkerFactory = {
            let ran = Arc::clone(&ran);
            Arc::new(move |_i| {
                let ran = Arc::clone(&ran);
                let mut fired = false;
                Box::new(move |_ctx: &KernelCtx| {
                    if !fired {
                        fired = true;
                        ran.fetch_add(1, Ordering::Relaxed);
                    }
                    Op::Quit
                })
            })
        };
        let mut e = Engine::new(presets::chick_prototype()).unwrap();
        e.spawn_at(NodeletId(0), root_kernel(strategy, nworkers, 8, factory))
            .unwrap();
        let r = e.run().unwrap();
        assert_eq!(ran.load(Ordering::Relaxed), nworkers);
        // Thread accounting: every thread the engine created terminated.
        assert!(r.threads >= nworkers as u64);
    });
}

/// Striped allocations deal element i to nodelet i % N and replicated
/// allocations always resolve locally, for arbitrary geometry.
#[test]
fn allocation_owner_laws() {
    cases(CASES, 0xA110, |_case, rng| {
        let nodelets = rng.gen_range(1..64u32);
        let len = rng.gen_range(1..10_000u64);
        let here = NodeletId(rng.gen_range(0..64u32) % nodelets);
        let mut ms = MemSpace::new(nodelets);
        let striped = ms.striped(len, 8);
        let replicated = ms.replicated(len, 8);
        for i in (0..len).step_by((len as usize / 17).max(1)) {
            assert_eq!(striped.owner(i, here).0, (i % nodelets as u64) as u32);
            assert_eq!(replicated.owner(i, here), here);
        }
    });
}

/// Engine determinism over arbitrary programs.
#[test]
fn engine_is_deterministic() {
    cases(CASES, 0xDE7E, |_case, rng| {
        let specs = arb_ops(rng);
        let run = || {
            let mut e = Engine::new(presets::chick_prototype()).unwrap();
            e.spawn_at(
                NodeletId(1),
                Box::new(ScriptKernel::new(specs.iter().map(OpSpec::to_op).collect())),
            )
            .unwrap();
            e.run().unwrap().makespan
        };
        assert_eq!(run(), run());
    });
}
