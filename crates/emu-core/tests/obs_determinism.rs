//! Live-registry determinism and reconciliation: identical runs must
//! grow the `obs` registry by identical amounts (histograms compared
//! bucket-wise), and the growth must reconcile against the
//! [`RunReport`] the run produced.
//!
//! Every test serializes on one mutex: the registry is process-global,
//! so concurrent engine runs inside this binary would pollute the
//! deltas being compared.

use emu_core::obs;
use emu_core::prelude::*;
use std::sync::Mutex;

static REGISTRY_LOCK: Mutex<()> = Mutex::new(());

/// A small cross-nodelet workload (migrating loads + remote atomics),
/// identical on every call.
fn seed(engine: &mut Engine) {
    for t in 0..6u32 {
        let here = NodeletId(t % 4);
        let there = NodeletId((t + 5) % 8);
        engine
            .spawn_at(
                here,
                Box::new(ScriptKernel::new(vec![
                    Op::Load {
                        addr: GlobalAddr::new(there, 0x40),
                        bytes: 16,
                    },
                    Op::AtomicAdd {
                        addr: GlobalAddr::new(there, 0x80),
                        bytes: 8,
                    },
                    Op::Store {
                        addr: GlobalAddr::new(here, 0x10),
                        bytes: 8,
                    },
                ])),
            )
            .unwrap();
    }
}

fn run_once_measured() -> (RunReport, obs::Snapshot) {
    let base = obs::snapshot();
    let mut engine = Engine::new(presets::chick_prototype()).unwrap();
    seed(&mut engine);
    let report = engine.run().unwrap();
    (report, obs::snapshot().delta(&base))
}

/// The engine-owned series every delta comparison keys on.
const ENGINE_COUNTERS: &[&str] = &[
    "emu_engine_runs_total",
    "emu_engine_failed_runs_total",
    "emu_engine_events_total",
    "emu_pdes_epochs_total",
    "emu_pdes_mailbox_sent_total",
    "emu_pdes_mailbox_delivered_total",
];

#[test]
fn identical_runs_grow_identical_counters() {
    let _guard = REGISTRY_LOCK.lock().unwrap();
    let (report_a, delta_a) = run_once_measured();
    let (report_b, delta_b) = run_once_measured();
    assert_eq!(
        format!("{report_a:?}"),
        format!("{report_b:?}"),
        "identical runs must produce identical reports"
    );
    for name in ENGINE_COUNTERS {
        assert_eq!(
            delta_a.counter(name),
            delta_b.counter(name),
            "counter {name} must grow identically for identical runs"
        );
    }
    // Bucket-wise histogram equality: the per-run event-count sample is
    // deterministic, so the whole sparse bucket vector must match.
    let ha = delta_a.hist("emu_engine_run_events").unwrap();
    let hb = delta_b.hist("emu_engine_run_events").unwrap();
    assert_eq!(ha.count, 1);
    assert_eq!(ha.buckets, hb.buckets, "bucket-wise histogram mismatch");
    assert_eq!(ha.sum, hb.sum);
}

#[test]
fn obs_growth_reconciles_with_the_run_report() {
    let _guard = REGISTRY_LOCK.lock().unwrap();
    let (report, delta) = run_once_measured();
    assert_eq!(delta.counter("emu_engine_runs_total"), 1);
    assert_eq!(delta.counter("emu_engine_failed_runs_total"), 0);
    assert_eq!(delta.counter("emu_engine_events_total"), report.events);
    assert_eq!(delta.counter("emu_pdes_epochs_total"), report.pdes.epochs);
    assert_eq!(
        delta.counter("emu_pdes_mailbox_sent_total"),
        report.pdes.mailbox_sent
    );
    assert_eq!(
        delta.counter("emu_pdes_mailbox_delivered_total"),
        report.pdes.mailbox_delivered
    );
    // The gauge is a process-lifetime high-water mark, so it can only
    // be at or above what this single run observed.
    assert!(report.pdes.mailbox_depth_hwm > 0, "workload crosses shards");
    assert!(
        delta.gauge("emu_pdes_mailbox_depth_hwm") >= report.pdes.mailbox_depth_hwm as i64,
        "hwm gauge must cover the run's own mark"
    );
    // The run's event count landed as one histogram sample.
    let h = delta.hist("emu_engine_run_events").unwrap();
    assert_eq!(h.count, 1);
    assert_eq!(h.sum, report.events);
}

#[test]
fn failed_runs_count_separately() {
    let _guard = REGISTRY_LOCK.lock().unwrap();
    let base = obs::snapshot();
    let mut engine = Engine::new(presets::chick_prototype()).unwrap();
    seed(&mut engine);
    engine.set_event_cap(Some(3));
    let err = engine.run_once();
    assert!(matches!(err, Err(SimError::EventCapExceeded { .. })));
    let delta = obs::snapshot().delta(&base);
    assert_eq!(delta.counter("emu_engine_runs_total"), 0);
    assert_eq!(delta.counter("emu_engine_failed_runs_total"), 1);
}

#[test]
fn disabled_registry_records_nothing() {
    let _guard = REGISTRY_LOCK.lock().unwrap();
    obs::set_enabled(false);
    let base = obs::snapshot();
    let mut engine = Engine::new(presets::chick_prototype()).unwrap();
    seed(&mut engine);
    engine.run_once().unwrap();
    let delta = obs::snapshot().delta(&base);
    obs::set_enabled(true);
    for name in ENGINE_COUNTERS {
        assert_eq!(delta.counter(name), 0, "{name} must not move while off");
    }
}

#[test]
fn phase_profile_is_opt_in_and_recorded() {
    let _guard = REGISTRY_LOCK.lock().unwrap();
    // Off by default: no profile in the report, no profiled-run count.
    let (report, delta) = run_once_measured();
    assert!(report.phases.is_none(), "profiling must be opt-in");
    assert_eq!(delta.counter("emu_pdes_profiled_runs_total"), 0);
    // On: profile present, audits clean, phase time lands in obs.
    let base = obs::snapshot();
    let mut engine = Engine::new(presets::chick_prototype()).unwrap();
    engine.enable_phase_profile(true);
    seed(&mut engine);
    let profiled = engine.run_once().unwrap();
    let delta = obs::snapshot().delta(&base);
    let phases = profiled.phases.as_ref().expect("profiling enabled");
    assert_eq!(phases.epochs, profiled.pdes.epochs);
    assert_consistent(&presets::chick_prototype(), &profiled);
    assert_eq!(delta.counter("emu_pdes_profiled_runs_total"), 1);
    let recorded: u64 = [
        "emu_pdes_phase_ns_total{phase=\"drain\"}",
        "emu_pdes_phase_ns_total{phase=\"barrier\"}",
        "emu_pdes_phase_ns_total{phase=\"exchange\"}",
        "emu_pdes_phase_ns_total{phase=\"merge\"}",
    ]
    .iter()
    .map(|n| delta.counter(n))
    .sum();
    let attributed: u64 = phases.workers.iter().map(|w| w.phase_sum_ns()).sum();
    assert_eq!(recorded, attributed, "obs phase totals mirror the profile");
    // Everything the profiled report says is otherwise byte-identical
    // to the unprofiled run.
    let mut stripped = profiled.clone();
    stripped.phases = None;
    assert_eq!(format!("{stripped:?}"), format!("{report:?}"));
}
