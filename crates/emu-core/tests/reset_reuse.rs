//! Warm-engine reuse safety: an [`Engine`] that ran a workload and was
//! [`Engine::reset`] must be indistinguishable from a cold
//! [`Engine::new`] — down to the serialized report bytes — on every
//! preset. This is the invariant the `simd` daemon's warm worker pool
//! rests on: reusing an engine must never leak state between requests.

use emu_core::json::{json_ok, report_json};
use emu_core::prelude::*;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

/// A migration-heavy mixed workload: every nodelet hosts a threadlet
/// that loads locally, reads a remote word (migrating), computes, posts
/// a remote store and atomic, and hops home. `scale` varies the op
/// counts so consecutive requests differ.
fn seed_workload(engine: &mut Engine, scale: u32) {
    let total = engine.cfg().total_nodelets();
    for n in 0..total {
        let next = NodeletId((n + 1) % total);
        let here = NodeletId(n);
        let mut ops = Vec::new();
        for k in 0..scale {
            ops.push(Op::Load {
                addr: GlobalAddr::new(here, 0x40 + 8 * k as u64),
                bytes: 8,
            });
            ops.push(Op::Load {
                addr: GlobalAddr::new(next, 0x80),
                bytes: 8,
            });
            ops.push(Op::Compute { cycles: 5 + k });
            ops.push(Op::Store {
                addr: GlobalAddr::new(next, 0xc0),
                bytes: 8,
            });
            ops.push(Op::AtomicAdd {
                addr: GlobalAddr::new(here, 0x100),
                bytes: 8,
            });
            ops.push(Op::MigrateTo { nodelet: here });
        }
        engine
            .spawn_at(here, Box::new(ScriptKernel::new(ops)))
            .unwrap();
    }
}

fn cold_report(cfg: &MachineConfig, scale: u32) -> String {
    let mut engine = Engine::new(cfg.clone()).unwrap();
    seed_workload(&mut engine, scale);
    report_json("run", &engine.run_once().unwrap())
}

#[test]
fn warm_reset_matches_cold_on_all_presets() {
    let presets: [(&str, MachineConfig); 5] = [
        ("chick_prototype", presets::chick_prototype()),
        ("chick_toolchain_sim", presets::chick_toolchain_sim()),
        ("chick_full_speed", presets::chick_full_speed()),
        ("emu64_full_speed", presets::emu64_full_speed()),
        ("chick_8node_prototype", presets::chick_8node_prototype()),
    ];
    for (name, cfg) in presets {
        let cold = cold_report(&cfg, 3);
        assert!(json_ok(&cold), "{name}: cold report not valid JSON");

        // Dirty the warm engine with a *different* workload first, so a
        // leak of any shard state (queues, counters, histograms, fault
        // draws, tids) would show up in the comparison.
        let mut warm = Engine::new(cfg.clone()).unwrap();
        seed_workload(&mut warm, 5);
        warm.run_once().unwrap();
        warm.reset();
        seed_workload(&mut warm, 3);
        let warm_json = report_json("run", &warm.run_once().unwrap());
        assert_eq!(cold, warm_json, "{name}: warm reuse diverged from cold");
    }
}

#[test]
fn warm_reset_matches_cold_with_trace_and_timelines() {
    let cfg = presets::chick_prototype();
    let mk = || {
        let mut e = Engine::new(cfg.clone()).unwrap();
        e.enable_trace(4096);
        e.enable_timeline(desim::time::Time::from_us(5)).unwrap();
        e
    };
    let mut cold = mk();
    seed_workload(&mut cold, 2);
    let cold_json = report_json("run", &cold.run_once().unwrap());

    let mut warm = mk();
    seed_workload(&mut warm, 7);
    warm.run_once().unwrap();
    warm.reset();
    seed_workload(&mut warm, 2);
    let warm_json = report_json("run", &warm.run_once().unwrap());
    assert!(
        cold_json.contains("\"trace\":{"),
        "trace missing from report"
    );
    assert!(
        cold_json.contains("\"timelines\":{"),
        "timelines missing from report"
    );
    assert_eq!(cold_json, warm_json);
}

#[test]
fn warm_reset_matches_cold_after_error() {
    // A run killed by the per-request event cap must not poison the
    // engine for the next request.
    let cfg = presets::chick_prototype();
    let cold = cold_report(&cfg, 2);

    let mut warm = Engine::new(cfg.clone()).unwrap();
    warm.set_event_cap(Some(10));
    seed_workload(&mut warm, 6);
    assert!(matches!(
        warm.run_once(),
        Err(SimError::EventCapExceeded { cap: 10 })
    ));
    warm.reset();
    seed_workload(&mut warm, 2);
    assert_eq!(cold, report_json("run", &warm.run_once().unwrap()));
}

#[test]
fn event_cap_override_beats_fault_plan_and_resets() {
    let cfg = presets::chick_prototype();
    let mut e = Engine::new(cfg).unwrap();
    e.set_event_cap(Some(5));
    seed_workload(&mut e, 4);
    assert!(matches!(
        e.run_once(),
        Err(SimError::EventCapExceeded { cap: 5 })
    ));
    // reset() clears the override: the same workload now completes.
    e.reset();
    seed_workload(&mut e, 4);
    assert!(e.run_once().is_ok());
}

#[test]
fn tripped_cancel_flag_raises_deadline_exceeded() {
    let cfg = presets::chick_prototype();
    let mut e = Engine::new(cfg).unwrap();
    let flag = Arc::new(AtomicBool::new(true));
    e.set_cancel(Arc::clone(&flag), 123);
    seed_workload(&mut e, 4);
    assert!(matches!(
        e.run_once(),
        Err(SimError::DeadlineExceeded { deadline_ms: 123 })
    ));
    // An unset flag leaves the run untouched and byte-identical.
    e.reset();
    let calm = Arc::new(AtomicBool::new(false));
    e.set_cancel(calm, 123);
    seed_workload(&mut e, 2);
    let guarded = report_json("run", &e.run_once().unwrap());
    assert_eq!(guarded, cold_report(e.cfg(), 2));
}
