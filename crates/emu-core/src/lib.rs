//! # emu-core — a discrete-event model of the Emu Chick
//!
//! The Emu architecture (Dysart et al., IA³ 2016; characterized by Hein
//! et al. 2018, the paper this workspace reproduces) inverts the usual
//! relationship between threads and memory: instead of caching remote
//! data, a lightweight *Gossamer threadlet* (<200 B of context) **migrates
//! to the nodelet that owns the data** on every remote read. Nodelets
//! pair cache-less multithreaded cores with narrow (8-bit) DRAM channels,
//! so fine-grained accesses never over-fetch.
//!
//! This crate models that machine faithfully enough to reproduce the
//! paper's bandwidth characterization:
//!
//! * [`addr`] / [`alloc`] — the partitioned global address space and the
//!   `mw_localmalloc` / `mw_malloc1dlong` / two-stage-2D / replicated
//!   allocation strategies;
//! * [`kernel`] — the threadlet op model (local loads, migrating remote
//!   loads, posted remote stores, memory-side atomics, spawns);
//! * [`engine`] — the deterministic discrete-event machine: Gossamer
//!   issue, hardware thread slots, NCDRAM channels, migration engines,
//!   RapidIO links;
//! * [`spawn`] — the paper's four spawn-tree strategies;
//! * [`config`] / [`presets`] — the Chick prototype, the Emu toolchain
//!   simulator's idealized machine, and full-speed projections;
//! * [`fault`] — deterministic fault injection (dead/slow nodelets,
//!   migration NACKs, ECC retries, link drops) and the [`fault::SimError`]
//!   type every engine failure surfaces as — the Chick the paper measured
//!   was itself a degraded machine (Fig 10);
//! * [`metrics`] — the per-nodelet counters and bandwidth reductions the
//!   paper reports;
//! * [`obs`] — an always-on process-global metrics registry (counters,
//!   gauges, log-bucketed latency histograms) feeding the `simd`
//!   daemon's live `metrics` op, the Prometheus `/metrics` exporter,
//!   and `simctl top`;
//! * [`trace`] — optional structured event tracing (spawns, migrations,
//!   NACKs, stalls with nodelet/thread/timestamp), zero-cost when off;
//! * [`json`] — dependency-free JSON serializers for [`metrics::RunReport`]
//!   (report JSON, JSONL event logs, Chrome traces) plus a minimal
//!   syntax validator, shared by the bench harness and the `simd`
//!   daemon;
//! * [`jsonread`] — the workspace's one strict JSON reader (duplicate
//!   keys, lone surrogates, and non-finite numbers rejected), behind
//!   both [`json::json_ok`] and the `simd` protocol parser;
//! * [`audit`] — post-run invariant checking (threadlet/migration
//!   conservation, trace/counter reconciliation, occupancy bounds),
//!   the referee behind the `simctl fuzz` conformance fuzzer.
//!
//! ## Quick example
//!
//! ```
//! use emu_core::prelude::*;
//!
//! # fn main() -> Result<(), SimError> {
//! // One threadlet on nodelet 0 reads a word owned by nodelet 3:
//! // the *thread* moves, not the data.
//! let mut engine = Engine::new(presets::chick_prototype())?;
//! let addr = GlobalAddr::new(NodeletId(3), 0x40);
//! engine.spawn_at(
//!     NodeletId(0),
//!     Box::new(ScriptKernel::new(vec![Op::Load { addr, bytes: 8 }])),
//! )?;
//! let report = engine.run()?;
//! assert_eq!(report.total_migrations(), 1);
//! assert_eq!(report.nodelets[3].local_loads, 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod addr;
pub mod alloc;
pub mod audit;
pub mod config;
pub mod engine;
pub mod fault;
pub mod json;
pub mod jsonread;
pub mod kernel;
pub mod metrics;
pub mod obs;
pub mod presets;
pub mod spawn;
pub mod trace;

/// Convenient glob import for downstream crates and examples.
pub mod prelude {
    pub use crate::addr::{GlobalAddr, NodeletId};
    pub use crate::alloc::{ArrayHandle, Layout, MemSpace};
    pub use crate::audit::{assert_consistent, audit, Violation};
    pub use crate::config::{CostModel, MachineConfig};
    pub use crate::engine::Engine;
    pub use crate::fault::{FaultPlan, SimError};
    pub use crate::kernel::{Kernel, KernelCtx, Op, Placement, ScriptKernel, ThreadId};
    pub use crate::metrics::{FaultTotals, NodeletCounters, PdesSummary, RunReport};
    pub use crate::presets;
    pub use crate::spawn::{root_kernel, SpawnStrategy, WorkerFactory};
    pub use crate::trace::{TelemetryConfig, TraceEvent, TraceKind, TraceLog};
}
