//! Post-run invariant auditing of a [`RunReport`].
//!
//! The engine's counters, trace, and occupancy figures are redundant by
//! construction: a lossless trace summed by kind must reproduce the
//! per-nodelet counters exactly, every spawned threadlet must quit,
//! every migration that departs must arrive, and no resource can be
//! busy for longer than the run lasted. [`audit`] checks all of that on
//! a finished report and returns the list of violated invariants — an
//! independent referee used by the conformance fuzzer (`simctl fuzz`)
//! and available to any test that wants to assert a run is internally
//! consistent.
//!
//! The checks degrade gracefully: trace-based reconciliation runs only
//! when a trace is attached and lossless (a ring that dropped events
//! cannot be summed), while the counter- and occupancy-level checks
//! always run.

use crate::config::MachineConfig;
use crate::metrics::RunReport;
use crate::trace::TraceKind;
use desim::time::Time;
use std::fmt;

/// One violated invariant found by [`audit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable name of the invariant (e.g. `"trace-counter-reconciliation"`).
    pub invariant: &'static str,
    /// Human-readable description of the discrepancy.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.invariant, self.detail)
    }
}

/// Audit a finished run against `cfg` (the configuration it ran under).
///
/// Returns every violated invariant; an empty vector means the report is
/// internally consistent. The checks are:
///
/// * **threadlet conservation** — spawns recorded == threadlets run, and
///   (with a lossless trace) every threadlet quit exactly once;
/// * **migration conservation** — departures == arrivals, and every
///   arrival left a latency sample;
/// * **counter reconciliation** — with a lossless trace, the per-nodelet
///   event counts of all 14 [`TraceKind`]s equal the matching
///   [`crate::metrics::NodeletCounters`] fields (NACK/retry paths
///   included);
/// * **monotone sim-time** — trace events are in nondecreasing time
///   order and never stamped after the makespan;
/// * **no negative queue residency** — per-nodelet core/channel/
///   migration busy time never exceeds the run's capacity for it, and
///   the threadlet time breakdown fits within `threads x makespan`;
/// * **fault-totals consistency** — fault classes the plan disabled
///   recorded zero events, every NACK of a completed run was retried,
///   and dead nodelets stayed silent;
/// * **sharded-scheduler conservation** — every cross-shard event posted
///   to a mailbox was delivered, no cross-shard event was scheduled
///   below the conservative lookahead horizon, and a zero-lookahead
///   machine never entered epoch mode;
/// * **fused-epoch conservation** — the clean-window count is bounded by
///   the epoch count, agrees with the mailbox totals (an all-local run
///   is all clean, a run that posted mail is not), and every dirty
///   window is backed by at least one posted event;
/// * **shard-merge-map validity** — with a phase profile attached, the
///   adaptive merge planner's shard→worker map is total: one owner per
///   shard, every owner inside the group pool, no empty group.
pub fn audit(cfg: &MachineConfig, report: &RunReport) -> Vec<Violation> {
    fn fail(v: &mut Vec<Violation>, invariant: &'static str, detail: String) {
        v.push(Violation { invariant, detail });
    }
    let mut v = Vec::new();

    // -- Threadlet conservation --------------------------------------
    let spawns = report.total_spawns();
    if spawns != report.threads {
        fail(
            &mut v,
            "threadlet-conservation",
            format!(
                "{} spawns recorded but {} threadlets ran",
                spawns, report.threads
            ),
        );
    }
    if report.threads > 0 && report.events < report.threads {
        fail(
            &mut v,
            "threadlet-conservation",
            format!(
                "{} threadlets ran but only {} events were processed",
                report.threads, report.events
            ),
        );
    }

    // -- Migration conservation --------------------------------------
    let out: u64 = report.nodelets.iter().map(|n| n.migrations_out).sum();
    let inn: u64 = report.nodelets.iter().map(|n| n.migrations_in).sum();
    if out != inn {
        fail(
            &mut v,
            "migration-conservation",
            format!("{out} migrations departed but {inn} arrived"),
        );
    }
    if report.migration_latency.count() != inn {
        fail(
            &mut v,
            "migration-conservation",
            format!(
                "{} arrivals but {} latency samples",
                inn,
                report.migration_latency.count()
            ),
        );
    }

    // -- Queue residency / occupancy bounds --------------------------
    let span = report.makespan;
    for (i, occ) in report.occupancy.iter().enumerate() {
        let core_cap = span.ps() as u128 * report.gcs_per_nodelet as u128;
        if occ.core_busy.ps() as u128 > core_cap {
            fail(
                &mut v,
                "queue-residency",
                format!(
                    "nodelet {i} cores busy {} beyond capacity {} x {}",
                    occ.core_busy, report.gcs_per_nodelet, span
                ),
            );
        }
        for (what, busy) in [
            ("channel", occ.channel_busy),
            ("migration", occ.migration_busy),
        ] {
            if busy > span {
                fail(
                    &mut v,
                    "queue-residency",
                    format!("nodelet {i} {what} busy {busy} beyond makespan {span}"),
                );
            }
        }
    }
    let accounted = report.breakdown.total().ps() as u128;
    if accounted > report.threads as u128 * span.ps() as u128 {
        fail(
            &mut v,
            "queue-residency",
            format!(
                "breakdown accounts {} ps across {} threadlets in a {} run",
                accounted, report.threads, span
            ),
        );
    }

    // -- Fault-totals consistency ------------------------------------
    let plan = &cfg.faults;
    let totals = report.fault_totals();
    for (what, prob, got) in [
        ("mig_nack_prob", plan.mig_nack_prob, totals.nacks),
        ("ecc_prob", plan.ecc_prob, totals.ecc_retries),
        (
            "link_drop_prob",
            plan.link_drop_prob,
            totals.link_retransmits,
        ),
    ] {
        if prob == 0.0 && got != 0 {
            fail(
                &mut v,
                "fault-consistency",
                format!("{what} is 0 but {got} events were recorded"),
            );
        }
    }
    if plan.dead_count() == 0 && totals.redirects != 0 {
        fail(
            &mut v,
            "fault-consistency",
            format!(
                "no dead nodelets but {} redirects recorded",
                totals.redirects
            ),
        );
    }
    // A run that finished never exhausted a retry budget, so every NACK
    // was followed by exactly one scheduled retry.
    if totals.nacks != totals.retries {
        fail(
            &mut v,
            "fault-consistency",
            format!(
                "{} NACKs but {} retries on a completed run",
                totals.nacks, totals.retries
            ),
        );
    }
    for (i, n) in report.nodelets.iter().enumerate() {
        if !plan.is_dead(i) {
            continue;
        }
        let activity = n.spawns
            + n.migrations_out
            + n.migrations_in
            + n.local_loads
            + n.local_stores
            + n.atomics
            + n.remote_packets_in
            + n.bytes_loaded
            + n.bytes_stored
            + n.slot_waits
            + n.mig_nacks
            + n.mig_retries
            + n.ecc_retries
            + n.link_retransmits
            + n.redirects;
        if activity != 0 {
            fail(
                &mut v,
                "fault-consistency",
                format!("dead nodelet {i} recorded activity ({activity} counter units)"),
            );
        }
    }

    // -- Sharded-scheduler conservation ------------------------------
    let pdes = &report.pdes;
    if pdes.mailbox_sent != pdes.mailbox_delivered {
        fail(
            &mut v,
            "pdes-mailbox-conservation",
            format!(
                "{} cross-shard events posted but {} delivered",
                pdes.mailbox_sent, pdes.mailbox_delivered
            ),
        );
    }
    // Conservatism: with epoch barriers active, every cross-shard event
    // must land at or beyond the lookahead horizon from its send time.
    // `min_cross_delay_ps` is u64::MAX when nothing crossed a shard.
    if pdes.epochs > 0 && pdes.min_cross_delay_ps < pdes.lookahead_ps {
        fail(
            &mut v,
            "pdes-lookahead-horizon",
            format!(
                "cross-shard event delayed only {} ps under a {} ps lookahead",
                pdes.min_cross_delay_ps, pdes.lookahead_ps
            ),
        );
    }
    // A machine with zero lookahead cannot run epochs at all — the
    // engine must fall back to the merged (sequential) scheduler.
    if pdes.lookahead_ps == 0 && pdes.epochs != 0 {
        fail(
            &mut v,
            "pdes-epoch-mode",
            format!(
                "{} epochs recorded on a zero-lookahead machine",
                pdes.epochs
            ),
        );
    }
    // The depth high-water mark counts deliveries within one exchange,
    // so it can never exceed the lifetime delivery total — and a run
    // that delivered anything must have a nonzero mark.
    if pdes.mailbox_depth_hwm > pdes.mailbox_delivered
        || (pdes.mailbox_delivered > 0 && pdes.mailbox_depth_hwm == 0)
    {
        fail(
            &mut v,
            "pdes-mailbox-hwm-bound",
            format!(
                "depth high-water mark {} inconsistent with {} total deliveries",
                pdes.mailbox_depth_hwm, pdes.mailbox_delivered
            ),
        );
    }

    // Fused-epoch conservation: a clean window is one that crossed the
    // gate with no cross-shard mail in flight. There can never be more
    // clean windows than windows; a run that never posted mail is all
    // clean; a run that posted any mail has at least one dirty window;
    // and every dirty window carries at least one posted event. All
    // four hold for every scheduler (fused, two-sync, inline) because
    // cleanliness depends only on simulated content — the merged
    // fallback (epochs == 0) is exempt from the emptiness checks since
    // it never opens a window at all.
    if pdes.clean_windows > pdes.epochs {
        fail(
            &mut v,
            "pdes-clean-window-bound",
            format!(
                "{} clean windows out of {} epochs",
                pdes.clean_windows, pdes.epochs
            ),
        );
    }
    if pdes.epochs > 0 && pdes.mailbox_sent == 0 && pdes.clean_windows != pdes.epochs {
        fail(
            &mut v,
            "pdes-clean-window-bound",
            format!(
                "no cross-shard mail but only {} of {} windows were clean",
                pdes.clean_windows, pdes.epochs
            ),
        );
    }
    if pdes.epochs > 0 && pdes.mailbox_sent > 0 && pdes.clean_windows == pdes.epochs {
        fail(
            &mut v,
            "pdes-clean-window-bound",
            format!(
                "{} cross-shard events posted yet all {} windows claim to be clean",
                pdes.mailbox_sent, pdes.epochs
            ),
        );
    }
    if pdes.mailbox_sent < pdes.epochs.saturating_sub(pdes.clean_windows) {
        fail(
            &mut v,
            "pdes-clean-window-bound",
            format!(
                "{} dirty windows but only {} events were ever posted",
                pdes.epochs - pdes.clean_windows,
                pdes.mailbox_sent
            ),
        );
    }

    // -- Phase-profile reconciliation --------------------------------
    // Wall-clock phase attribution (present only when profiling was
    // enabled): the four phases partition each worker's loop, so their
    // sum must reconcile with the measured loop time, and no worker
    // can have looped longer than the whole scheduler ran.
    if let Some(phases) = report.phases.as_ref() {
        for w in &phases.workers {
            let sum = w.phase_sum_ns();
            let tolerance = (w.loop_ns / 10).max(2_000_000);
            if sum.abs_diff(w.loop_ns) > tolerance {
                fail(
                    &mut v,
                    "pdes-phase-reconcile",
                    format!(
                        "worker {}: phases sum to {} ns but the loop took {} ns (tolerance {} ns)",
                        w.worker, sum, w.loop_ns, tolerance
                    ),
                );
            }
            if w.loop_ns > phases.wall_ns + tolerance {
                fail(
                    &mut v,
                    "pdes-phase-wall-bound",
                    format!(
                        "worker {}: loop {} ns exceeds scheduler wall time {} ns",
                        w.worker, w.loop_ns, phases.wall_ns
                    ),
                );
            }
        }
        if phases.epochs != pdes.epochs {
            fail(
                &mut v,
                "pdes-phase-epochs",
                format!(
                    "profile counted {} epochs but the summary has {}",
                    phases.epochs, pdes.epochs
                ),
            );
        }
        // Shard-merge-map validity: the adaptive merge planner must
        // have produced a total map — one owning worker per shard,
        // every owner inside the group pool, and no empty group (an
        // empty group would mean a worker spinning on the gate for the
        // whole run, contributing nothing but synchronization cost).
        if phases.merge_groups == 0 {
            fail(
                &mut v,
                "pdes-merge-map",
                "profile records zero merge groups".to_string(),
            );
        } else {
            if phases.shard_owners.len() as u64 != pdes.shards {
                fail(
                    &mut v,
                    "pdes-merge-map",
                    format!(
                        "merge map covers {} shards but the machine has {}",
                        phases.shard_owners.len(),
                        pdes.shards
                    ),
                );
            }
            let groups = phases.merge_groups;
            let mut seen = vec![false; groups as usize];
            for (shard, &owner) in phases.shard_owners.iter().enumerate() {
                if (owner as u64) < groups {
                    seen[owner as usize] = true;
                } else {
                    fail(
                        &mut v,
                        "pdes-merge-map",
                        format!("shard {shard} assigned to worker {owner} outside {groups} groups"),
                    );
                }
            }
            if let Some(empty) = seen.iter().position(|&s| !s) {
                fail(
                    &mut v,
                    "pdes-merge-map",
                    format!("merge group {empty} owns no shards"),
                );
            }
        }
    }

    // -- Trace checks ------------------------------------------------
    let Some(log) = report.trace.as_ref() else {
        return v;
    };
    let mut last = Time::ZERO;
    for (i, ev) in log.events.iter().enumerate() {
        if ev.at < last {
            fail(
                &mut v,
                "monotone-time",
                format!("trace event {i} at {} after one at {last}", ev.at),
            );
            break;
        }
        last = ev.at;
    }
    if let Some(ev) = log.events.last() {
        if ev.at > span {
            fail(
                &mut v,
                "monotone-time",
                format!("trace event at {} beyond makespan {span}", ev.at),
            );
        }
    }
    if !log.is_lossless() {
        // A ring that evicted events cannot be reconciled against the
        // counters; the remaining checks need the full stream.
        return v;
    }

    // Per-(nodelet, kind) event counts, reconciled field by field.
    let n = report.nodelets.len();
    let mut counts = vec![[0u64; TraceKind::ALL.len()]; n];
    for ev in &log.events {
        let nl = ev.nodelet.idx();
        if nl >= n {
            fail(
                &mut v,
                "trace-counter-reconciliation",
                format!("trace event on nodelet {nl} outside machine of {n}"),
            );
            return v;
        }
        counts[nl][ev.kind as usize] += 1;
    }
    let quits: u64 = counts.iter().map(|c| c[TraceKind::Quit as usize]).sum();
    if quits != report.threads {
        fail(
            &mut v,
            "threadlet-conservation",
            format!(
                "{} threadlets ran but {quits} quit events traced",
                report.threads
            ),
        );
    }
    for (i, c) in report.nodelets.iter().enumerate() {
        let expected: [(TraceKind, u64); 13] = [
            (TraceKind::Spawn, c.spawns),
            (TraceKind::MigrateOut, c.migrations_out),
            (TraceKind::MigrateIn, c.migrations_in),
            (TraceKind::LocalLoad, c.local_loads),
            (TraceKind::LocalStore, c.local_stores),
            (TraceKind::Atomic, c.atomics),
            (TraceKind::RemotePacket, c.remote_packets_in),
            (TraceKind::SlotWait, c.slot_waits),
            (TraceKind::MigNack, c.mig_nacks),
            (TraceKind::MigRetry, c.mig_retries),
            (TraceKind::EccRetry, c.ecc_retries),
            (TraceKind::LinkRetransmit, c.link_retransmits),
            (TraceKind::Redirect, c.redirects),
        ];
        for (kind, counter) in expected {
            let traced = counts[i][kind as usize];
            if traced != counter {
                fail(
                    &mut v,
                    "trace-counter-reconciliation",
                    format!(
                        "nodelet {i} {}: {traced} traced vs counter {counter}",
                        kind.name()
                    ),
                );
            }
        }
    }
    v
}

/// Audit and panic with a readable listing on any violation — the
/// one-liner for tests.
///
/// # Panics
/// Panics if [`audit`] reports at least one violation.
pub fn assert_consistent(cfg: &MachineConfig, report: &RunReport) {
    let violations = audit(cfg, report);
    assert!(
        violations.is_empty(),
        "run report violates {} invariant(s):\n{}",
        violations.len(),
        violations
            .iter()
            .map(|v| format!("  - {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{GlobalAddr, NodeletId};
    use crate::engine::Engine;
    use crate::kernel::{Op, ScriptKernel};
    use crate::presets;

    /// A small faulted run touching every counter class: local loads,
    /// remote loads (migrations), stores, atomics, NACKs and ECC retries.
    fn traced_run() -> (MachineConfig, RunReport) {
        let mut cfg = presets::chick_prototype();
        cfg.faults.mig_nack_prob = 0.3;
        cfg.faults.ecc_prob = 0.2;
        cfg.faults.mig_retry_budget = 64;
        let mut engine = Engine::new(cfg.clone()).unwrap();
        engine.enable_trace(1 << 16);
        for t in 0..6u32 {
            let here = NodeletId(t % 4);
            let there = NodeletId((t + 3) % 8);
            engine
                .spawn_at(
                    here,
                    Box::new(ScriptKernel::new(vec![
                        Op::Load {
                            addr: GlobalAddr::new(here, 0x10),
                            bytes: 8,
                        },
                        Op::Load {
                            addr: GlobalAddr::new(there, 0x20),
                            bytes: 16,
                        },
                        Op::Store {
                            addr: GlobalAddr::new(here, 0x30),
                            bytes: 8,
                        },
                        Op::AtomicAdd {
                            addr: GlobalAddr::new(there, 0x40),
                            bytes: 8,
                        },
                        Op::Compute { cycles: 12 },
                    ])),
                )
                .unwrap();
        }
        let report = engine.run().unwrap();
        assert!(report.trace.as_ref().unwrap().is_lossless());
        (cfg, report)
    }

    #[test]
    fn clean_run_audits_clean() {
        let (cfg, report) = traced_run();
        assert!(report.total_migrations() > 0, "workload must migrate");
        assert_consistent(&cfg, &report);
    }

    #[test]
    fn seeded_counter_bug_is_caught() {
        // Simulate an engine that forgets to count a class of loads —
        // the mutation-check required of the invariant checker.
        let (cfg, mut report) = traced_run();
        report.nodelets[0].local_loads += 1;
        let v = audit(&cfg, &report);
        assert!(
            v.iter()
                .any(|v| v.invariant == "trace-counter-reconciliation"),
            "got {v:?}"
        );
    }

    #[test]
    fn seeded_lost_quit_is_caught() {
        let (cfg, mut report) = traced_run();
        // A threadlet that never quit (leaked context).
        report.threads += 1;
        let v = audit(&cfg, &report);
        assert!(
            v.iter().any(|v| v.invariant == "threadlet-conservation"),
            "got {v:?}"
        );
    }

    #[test]
    fn seeded_migration_imbalance_is_caught() {
        let (cfg, mut report) = traced_run();
        report.nodelets[1].migrations_in += 2;
        let v = audit(&cfg, &report);
        assert!(
            v.iter().any(|v| v.invariant == "migration-conservation"),
            "got {v:?}"
        );
    }

    #[test]
    fn seeded_time_travel_is_caught() {
        let (cfg, mut report) = traced_run();
        let log = report.trace.as_mut().unwrap();
        assert!(log.events.len() > 2);
        log.events.swap(0, 1);
        // Make the swap observable: ensure the two differ in time.
        if log.events[0].at == log.events[1].at {
            log.events[0].at = log.events[1].at + Time::from_ns(1);
        }
        let v = audit(&cfg, &report);
        assert!(
            v.iter().any(|v| v.invariant == "monotone-time"),
            "got {v:?}"
        );
    }

    #[test]
    fn seeded_phantom_fault_is_caught() {
        // ECC retries reported under a plan that never injects them.
        let (cfg, report) = traced_run();
        let mut clean_cfg = cfg.clone();
        clean_cfg.faults.ecc_prob = 0.0;
        assert!(report.total_ecc_retries() > 0, "need ECC activity");
        let v = audit(&clean_cfg, &report);
        assert!(
            v.iter().any(|v| v.invariant == "fault-consistency"),
            "got {v:?}"
        );
    }

    #[test]
    fn seeded_overfull_occupancy_is_caught() {
        let (cfg, mut report) = traced_run();
        report.occupancy[0].channel_busy = report.makespan + Time::from_ns(1);
        let v = audit(&cfg, &report);
        assert!(
            v.iter().any(|v| v.invariant == "queue-residency"),
            "got {v:?}"
        );
    }

    #[test]
    fn seeded_mailbox_leak_is_caught() {
        // A cross-shard event that was posted but never delivered.
        let (cfg, mut report) = traced_run();
        report.pdes.mailbox_sent += 1;
        let v = audit(&cfg, &report);
        assert!(
            v.iter().any(|v| v.invariant == "pdes-mailbox-conservation"),
            "got {v:?}"
        );
    }

    #[test]
    fn seeded_lookahead_violation_is_caught() {
        // An event that crossed shards below the conservative horizon.
        let (cfg, mut report) = traced_run();
        assert!(report.pdes.epochs > 0, "workload must run in epoch mode");
        assert!(report.pdes.lookahead_ps > 0);
        report.pdes.min_cross_delay_ps = report.pdes.lookahead_ps - 1;
        let v = audit(&cfg, &report);
        assert!(
            v.iter().any(|v| v.invariant == "pdes-lookahead-horizon"),
            "got {v:?}"
        );
    }

    #[test]
    fn seeded_zero_lookahead_epochs_are_caught() {
        let (cfg, mut report) = traced_run();
        report.pdes.lookahead_ps = 0;
        report.pdes.min_cross_delay_ps = 0;
        assert!(report.pdes.epochs > 0);
        let v = audit(&cfg, &report);
        assert!(
            v.iter().any(|v| v.invariant == "pdes-epoch-mode"),
            "got {v:?}"
        );
    }

    #[test]
    fn seeded_mailbox_hwm_overflow_is_caught() {
        let (cfg, mut report) = traced_run();
        assert!(report.pdes.mailbox_delivered > 0, "need cross-shard mail");
        report.pdes.mailbox_depth_hwm = report.pdes.mailbox_delivered + 1;
        let v = audit(&cfg, &report);
        assert!(
            v.iter().any(|v| v.invariant == "pdes-mailbox-hwm-bound"),
            "got {v:?}"
        );
        // And zeroing the mark while deliveries exist is also a bug.
        report.pdes.mailbox_depth_hwm = 0;
        let v = audit(&cfg, &report);
        assert!(
            v.iter().any(|v| v.invariant == "pdes-mailbox-hwm-bound"),
            "got {v:?}"
        );
    }

    #[test]
    fn seeded_clean_window_overcount_is_caught() {
        // A scheduler bug that flags every window clean (skipping the
        // exchange) on a run that demonstrably posted cross-shard mail.
        let (cfg, mut report) = traced_run();
        assert!(report.pdes.epochs > 0, "workload must run in epoch mode");
        assert!(report.pdes.mailbox_sent > 0, "workload must cross shards");
        report.pdes.clean_windows = report.pdes.epochs;
        let v = audit(&cfg, &report);
        assert!(
            v.iter().any(|v| v.invariant == "pdes-clean-window-bound"),
            "got {v:?}"
        );
        // And more clean windows than windows is nonsense outright.
        report.pdes.clean_windows = report.pdes.epochs + 1;
        let v = audit(&cfg, &report);
        assert!(
            v.iter().any(|v| v.invariant == "pdes-clean-window-bound"),
            "got {v:?}"
        );
    }

    #[test]
    fn seeded_phantom_dirty_windows_are_caught() {
        // The dual bug: a scheduler that marks windows dirty (forcing
        // ring drains) although nothing was ever posted — legal only if
        // the mailbox totals back it up.
        let (cfg, mut report) = traced_run();
        assert!(report.pdes.epochs > 1);
        report.pdes.mailbox_sent = 0;
        report.pdes.mailbox_delivered = 0;
        report.pdes.mailbox_depth_hwm = 0;
        report.pdes.min_cross_delay_ps = u64::MAX;
        report.pdes.clean_windows = report.pdes.epochs - 1;
        let v = audit(&cfg, &report);
        assert!(
            v.iter().any(|v| v.invariant == "pdes-clean-window-bound"),
            "got {v:?}"
        );
    }

    /// Like [`traced_run`] but with wall-clock phase profiling on, so
    /// the report carries a [`crate::metrics::PdesPhaseProfile`].
    fn profiled_run() -> (MachineConfig, RunReport) {
        let cfg = presets::chick_prototype();
        let mut engine = Engine::new(cfg.clone()).unwrap();
        engine.enable_phase_profile(true);
        for t in 0..4u32 {
            let here = NodeletId(t % 4);
            let there = NodeletId((t + 3) % 8);
            engine
                .spawn_at(
                    here,
                    Box::new(ScriptKernel::new(vec![
                        Op::Load {
                            addr: GlobalAddr::new(there, 0x20),
                            bytes: 16,
                        },
                        Op::Store {
                            addr: GlobalAddr::new(here, 0x30),
                            bytes: 8,
                        },
                    ])),
                )
                .unwrap();
        }
        let report = engine.run().unwrap();
        (cfg, report)
    }

    #[test]
    fn profiled_run_reconciles_clean() {
        let (cfg, report) = profiled_run();
        let phases = report.phases.as_ref().expect("profiling was enabled");
        assert!(!phases.workers.is_empty(), "epoch path must profile");
        assert_eq!(phases.epochs, report.pdes.epochs);
        let v = audit(&cfg, &report);
        assert!(v.is_empty(), "clean profiled run must audit clean: {v:?}");
    }

    #[test]
    fn seeded_phase_imbalance_is_caught() {
        // Corrupt one phase by more than the reconciliation tolerance:
        // the phases no longer sum to the measured loop time.
        let (cfg, mut report) = profiled_run();
        let phases = report.phases.as_mut().unwrap();
        let w = &mut phases.workers[0];
        w.drain_ns += w.loop_ns + 1_000_000_000;
        let v = audit(&cfg, &report);
        assert!(
            v.iter().any(|v| v.invariant == "pdes-phase-reconcile"),
            "got {v:?}"
        );
    }

    #[test]
    fn seeded_phase_epoch_mismatch_is_caught() {
        let (cfg, mut report) = profiled_run();
        report.phases.as_mut().unwrap().epochs += 1;
        let v = audit(&cfg, &report);
        assert!(
            v.iter().any(|v| v.invariant == "pdes-phase-epochs"),
            "got {v:?}"
        );
    }

    #[test]
    fn seeded_phase_wall_overrun_is_caught() {
        // A worker claiming to have looped far longer than the whole
        // scheduler ran is measuring nonsense.
        let (cfg, mut report) = profiled_run();
        let phases = report.phases.as_mut().unwrap();
        let wall = phases.wall_ns;
        let w = &mut phases.workers[0];
        w.loop_ns = wall + 10_000_000_000;
        // Keep the phase sum consistent so only the wall bound trips.
        w.drain_ns = w.loop_ns;
        w.barrier_ns = 0;
        w.exchange_ns = 0;
        w.merge_ns = 0;
        let v = audit(&cfg, &report);
        assert!(
            v.iter().any(|v| v.invariant == "pdes-phase-wall-bound"),
            "got {v:?}"
        );
    }

    #[test]
    fn seeded_partial_merge_map_is_caught() {
        // A merge planner that drops a shard from the map.
        let (cfg, mut report) = profiled_run();
        let phases = report.phases.as_mut().unwrap();
        assert!(!phases.shard_owners.is_empty());
        phases.shard_owners.pop();
        let v = audit(&cfg, &report);
        assert!(
            v.iter().any(|v| v.invariant == "pdes-merge-map"),
            "got {v:?}"
        );
    }

    #[test]
    fn seeded_out_of_pool_owner_is_caught() {
        // A shard assigned to a worker id beyond the group pool.
        let (cfg, mut report) = profiled_run();
        let phases = report.phases.as_mut().unwrap();
        let groups = phases.merge_groups as u32;
        phases.shard_owners[0] = groups;
        let v = audit(&cfg, &report);
        assert!(
            v.iter().any(|v| v.invariant == "pdes-merge-map"),
            "got {v:?}"
        );
    }

    #[test]
    fn seeded_empty_merge_group_is_caught() {
        // A group pool wider than the set of workers that actually own
        // shards: the extra worker would spin on the gate all run.
        let (cfg, mut report) = profiled_run();
        let phases = report.phases.as_mut().unwrap();
        phases.merge_groups += 1;
        let v = audit(&cfg, &report);
        assert!(
            v.iter().any(|v| v.invariant == "pdes-merge-map"),
            "got {v:?}"
        );
        // And zero groups with a profile attached is never valid.
        report.phases.as_mut().unwrap().merge_groups = 0;
        let v = audit(&cfg, &report);
        assert!(
            v.iter().any(|v| v.invariant == "pdes-merge-map"),
            "got {v:?}"
        );
    }

    #[test]
    fn lossy_trace_skips_reconciliation_but_keeps_counter_checks() {
        let mut cfg = presets::chick_prototype();
        cfg.faults.mig_nack_prob = 0.2;
        cfg.faults.mig_retry_budget = 64;
        let mut engine = Engine::new(cfg.clone()).unwrap();
        engine.enable_trace(4); // tiny ring: guaranteed eviction
        engine
            .spawn_at(
                NodeletId(0),
                Box::new(ScriptKernel::new(
                    (0..16)
                        .map(|i| Op::Load {
                            addr: GlobalAddr::new(NodeletId(i % 8), 0x8),
                            bytes: 8,
                        })
                        .collect(),
                )),
            )
            .unwrap();
        let report = engine.run().unwrap();
        assert!(!report.trace.as_ref().unwrap().is_lossless());
        assert_consistent(&cfg, &report);
    }
}
