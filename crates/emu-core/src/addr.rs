//! Global address space of an Emu system.
//!
//! Emu exposes a partitioned global address space (PGAS): every 8-byte
//! word lives on exactly one *nodelet* (a memory channel plus its
//! Gossamer cores). A thread reading a word that lives elsewhere does not
//! fetch the data — the *thread* moves. The simulator therefore only
//! needs to know, for each access, which nodelet owns the address; the
//! data itself is computed functionally by the benchmark kernels.

use std::fmt;

/// Identifies one nodelet in the whole system.
///
/// Nodelets are numbered globally: nodelet `g` lives on node
/// `g / nodelets_per_node` at local index `g % nodelets_per_node`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeletId(pub u32);

impl NodeletId {
    /// Global index as usize, for table lookups.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }

    /// The node card this nodelet resides on.
    #[inline]
    pub fn node(self, nodelets_per_node: u32) -> u32 {
        self.0 / nodelets_per_node
    }

    /// Whether two nodelets share a node card (migrations between them do
    /// not cross the RapidIO fabric).
    #[inline]
    pub fn same_node(self, other: NodeletId, nodelets_per_node: u32) -> bool {
        self.node(nodelets_per_node) == other.node(nodelets_per_node)
    }
}

impl fmt::Debug for NodeletId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "nlet{}", self.0)
    }
}

impl fmt::Display for NodeletId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "nodelet {}", self.0)
    }
}

/// A global address: an owning nodelet plus an offset within that
/// nodelet's local memory.
///
/// The simulator never dereferences addresses — kernels carry their own
/// functional state — so `offset` exists for realism of DRAM-row/bank
/// behaviour hooks and for debugging, while `nodelet` drives all
/// migration and channel routing decisions.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct GlobalAddr {
    /// The nodelet whose memory channel owns this address.
    pub nodelet: NodeletId,
    /// Byte offset within the nodelet's local memory.
    pub offset: u64,
}

impl GlobalAddr {
    /// Construct an address.
    #[inline]
    pub fn new(nodelet: NodeletId, offset: u64) -> GlobalAddr {
        GlobalAddr { nodelet, offset }
    }

    /// Whether this address is local to `here` (no migration to read it).
    #[inline]
    pub fn is_local_to(self, here: NodeletId) -> bool {
        self.nodelet == here
    }
}

impl fmt::Debug for GlobalAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}+{:#x}", self.nodelet, self.offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_mapping() {
        let n = NodeletId(19);
        assert_eq!(n.node(8), 2);
        assert!(n.same_node(NodeletId(16), 8));
        assert!(!n.same_node(NodeletId(15), 8));
        assert_eq!(NodeletId(0).node(8), 0);
    }

    #[test]
    fn locality() {
        let a = GlobalAddr::new(NodeletId(3), 0x100);
        assert!(a.is_local_to(NodeletId(3)));
        assert!(!a.is_local_to(NodeletId(4)));
    }

    #[test]
    fn debug_formats() {
        let a = GlobalAddr::new(NodeletId(7), 64);
        assert_eq!(format!("{a:?}"), "nlet7+0x40");
    }
}
