//! The threadlet programming model.
//!
//! Benchmarks are expressed as [`Kernel`]s: resumable state machines that
//! the engine drives one operation at a time. A kernel both *computes the
//! real answer* (so results are verifiable — e.g. the SpMV kernels
//! produce the actual output vector) and *emits the timed operation
//! stream* that the machine model charges for.
//!
//! The operation vocabulary mirrors what the Emu ISA exposes to a
//! Gossamer threadlet:
//!
//! * local loads/stores through the nodelet's narrow memory channel;
//! * **remote loads, which migrate the thread** (the defining Emu
//!   mechanism — data never moves toward the thread);
//! * posted remote stores and memory-side atomics, which travel to the
//!   target nodelet as small packets *without* migrating the thread;
//! * spawns, local or remote (remote spawn creates the child directly at
//!   the target nodelet — Section IV-A shows this is essential for
//!   bandwidth);
//! * pure compute.

use crate::addr::{GlobalAddr, NodeletId};
use desim::time::Time;

/// Thread identifier within one engine run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ThreadId(pub u32);

impl ThreadId {
    /// Index into the engine's thread table.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Where a spawned threadlet begins execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Placement {
    /// On the spawning thread's current nodelet (plain `cilk_spawn`).
    Here,
    /// On an explicit nodelet (a *remote spawn*): the child's context —
    /// and crucially its stack home — is created at the target.
    On(NodeletId),
}

/// One operation emitted by a kernel.
pub enum Op {
    /// Read `bytes` at `addr`. If `addr` is remote, the thread **migrates**
    /// to the owning nodelet and performs the read there.
    Load {
        /// Target address.
        addr: GlobalAddr,
        /// Access width in bytes.
        bytes: u32,
    },
    /// Write `bytes` at `addr`. Local stores are posted to the local
    /// channel; remote stores travel as fire-and-forget packets handled by
    /// the destination's memory-side processor (no migration).
    Store {
        /// Target address.
        addr: GlobalAddr,
        /// Access width in bytes.
        bytes: u32,
    },
    /// Memory-side atomic (e.g. remote add): like a store, but occupies
    /// the destination channel slightly longer. Never migrates.
    AtomicAdd {
        /// Target address.
        addr: GlobalAddr,
        /// Access width in bytes.
        bytes: u32,
    },
    /// Occupy the core for `cycles` of real work; the issuing thread is
    /// blocked for `cycles * compute_latency_factor` (see
    /// [`crate::config::CostModel`]).
    Compute {
        /// Core cycles of real work.
        cycles: u32,
    },
    /// Explicitly migrate to a nodelet without touching memory
    /// (used by the ping-pong microbenchmark).
    MigrateTo {
        /// Destination nodelet.
        nodelet: NodeletId,
    },
    /// Create a new threadlet running `kernel` at `place`.
    Spawn {
        /// The child's program.
        kernel: Box<dyn Kernel>,
        /// Where the child starts (and where its stack lives).
        place: Placement,
    },
    /// Terminate this threadlet, releasing its hardware context.
    Quit,
}

impl std::fmt::Debug for Op {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Op::Load { addr, bytes } => write!(f, "Load({addr:?},{bytes}B)"),
            Op::Store { addr, bytes } => write!(f, "Store({addr:?},{bytes}B)"),
            Op::AtomicAdd { addr, bytes } => write!(f, "AtomicAdd({addr:?},{bytes}B)"),
            Op::Compute { cycles } => write!(f, "Compute({cycles}cyc)"),
            Op::MigrateTo { nodelet } => write!(f, "MigrateTo({nodelet:?})"),
            Op::Spawn { place, .. } => write!(f, "Spawn(@{place:?})"),
            Op::Quit => write!(f, "Quit"),
        }
    }
}

/// Execution context handed to a kernel at each step.
#[derive(Clone, Copy, Debug)]
pub struct KernelCtx {
    /// This thread's id.
    pub tid: ThreadId,
    /// The nodelet the thread currently occupies. Replicated data
    /// resolves against this.
    pub here: NodeletId,
    /// The nodelet the thread was spawned on. Its *stack* lives here; a
    /// kernel that models stack traffic (Cilk frame bookkeeping) reads
    /// from `home`, which drags serially-spawned threads back to the
    /// spawning nodelet — the mechanism behind Fig 5's remote-spawn gap.
    pub home: NodeletId,
    /// Current simulated time.
    pub now: Time,
}

/// A resumable threadlet program.
///
/// `step` is called exactly once per operation; the engine completes the
/// returned operation (including any migration it implies) before calling
/// `step` again, which models the stall-on-use, one-outstanding-op
/// behaviour of a Gossamer threadlet.
pub trait Kernel: Send {
    /// Produce the next operation. Must eventually return [`Op::Quit`].
    fn step(&mut self, ctx: &KernelCtx) -> Op;

    /// Duplicate this kernel at its *current* resume point, if it can.
    ///
    /// Engine checkpoints clone live threadlets at an epoch barrier; a
    /// kernel that can reproduce its mid-run state returns an
    /// independent copy that will emit the same remaining op stream.
    /// The default declines, which makes the enclosing snapshot attempt
    /// fail cleanly rather than silently diverge — only kernels that
    /// opt in participate in checkpoint/restore.
    fn fork(&self) -> Option<Box<dyn Kernel>> {
        None
    }
}

/// Duplicate a pending [`Op`], if every kernel it carries can fork.
/// Everything except `Spawn` is a plain field copy; `Spawn` forks the
/// child kernel recursively.
pub fn fork_op(op: &Op) -> Option<Op> {
    Some(match op {
        Op::Load { addr, bytes } => Op::Load {
            addr: *addr,
            bytes: *bytes,
        },
        Op::Store { addr, bytes } => Op::Store {
            addr: *addr,
            bytes: *bytes,
        },
        Op::AtomicAdd { addr, bytes } => Op::AtomicAdd {
            addr: *addr,
            bytes: *bytes,
        },
        Op::Compute { cycles } => Op::Compute { cycles: *cycles },
        Op::MigrateTo { nodelet } => Op::MigrateTo { nodelet: *nodelet },
        Op::Spawn { kernel, place } => Op::Spawn {
            kernel: kernel.fork()?,
            place: *place,
        },
        Op::Quit => Op::Quit,
    })
}

/// Blanket impl so closures can serve as quick kernels in tests.
/// Closure kernels keep the default `fork` (decline): their captured
/// state is opaque, so they cannot participate in checkpoints.
impl<F> Kernel for F
where
    F: FnMut(&KernelCtx) -> Op + Send,
{
    fn step(&mut self, ctx: &KernelCtx) -> Op {
        self(ctx)
    }
}

/// A kernel that performs a fixed list of operations, then quits.
/// Useful for tests and microbenchmarks.
pub struct ScriptKernel {
    ops: Vec<Option<Op>>,
    pos: usize,
}

impl ScriptKernel {
    /// Wrap an explicit op list (a trailing `Quit` is appended implicitly).
    pub fn new(ops: Vec<Op>) -> Self {
        ScriptKernel {
            ops: ops.into_iter().map(Some).collect(),
            pos: 0,
        }
    }
}

impl Kernel for ScriptKernel {
    fn step(&mut self, _ctx: &KernelCtx) -> Op {
        let op = self.ops.get_mut(self.pos).and_then(Option::take);
        self.pos += 1;
        op.unwrap_or(Op::Quit)
    }

    fn fork(&self) -> Option<Box<dyn Kernel>> {
        // Duplicate only the un-consumed tail; already-taken slots are
        // behind `pos` and never revisited.
        let mut ops = Vec::with_capacity(self.ops.len() - self.pos);
        for slot in &self.ops[self.pos..] {
            match slot {
                Some(op) => ops.push(Some(fork_op(op)?)),
                None => ops.push(None),
            }
        }
        Some(Box::new(ScriptKernel { ops, pos: 0 }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_kernel_replays_then_quits() {
        let mut k = ScriptKernel::new(vec![Op::Compute { cycles: 3 }]);
        let ctx = KernelCtx {
            tid: ThreadId(0),
            here: NodeletId(0),
            home: NodeletId(0),
            now: Time::ZERO,
        };
        assert!(matches!(k.step(&ctx), Op::Compute { cycles: 3 }));
        assert!(matches!(k.step(&ctx), Op::Quit));
        assert!(matches!(k.step(&ctx), Op::Quit));
    }

    #[test]
    fn closures_are_kernels() {
        let mut n = 0;
        let mut k = move |_ctx: &KernelCtx| {
            n += 1;
            if n > 2 {
                Op::Quit
            } else {
                Op::Compute { cycles: n }
            }
        };
        let ctx = KernelCtx {
            tid: ThreadId(1),
            here: NodeletId(2),
            home: NodeletId(2),
            now: Time::ZERO,
        };
        assert!(matches!(
            Kernel::step(&mut k, &ctx),
            Op::Compute { cycles: 1 }
        ));
        assert!(matches!(
            Kernel::step(&mut k, &ctx),
            Op::Compute { cycles: 2 }
        ));
        assert!(matches!(Kernel::step(&mut k, &ctx), Op::Quit));
    }

    #[test]
    fn script_kernel_fork_resumes_mid_script() {
        let ctx = KernelCtx {
            tid: ThreadId(0),
            here: NodeletId(0),
            home: NodeletId(0),
            now: Time::ZERO,
        };
        let mut k = ScriptKernel::new(vec![
            Op::Compute { cycles: 1 },
            Op::Compute { cycles: 2 },
            Op::Compute { cycles: 3 },
        ]);
        assert!(matches!(k.step(&ctx), Op::Compute { cycles: 1 }));
        let mut forked = k.fork().expect("script kernels fork");
        // The fork resumes exactly where the original stood, and the
        // two advance independently.
        assert!(matches!(forked.step(&ctx), Op::Compute { cycles: 2 }));
        assert!(matches!(k.step(&ctx), Op::Compute { cycles: 2 }));
        assert!(matches!(forked.step(&ctx), Op::Compute { cycles: 3 }));
        assert!(matches!(forked.step(&ctx), Op::Quit));
        assert!(matches!(k.step(&ctx), Op::Compute { cycles: 3 }));
    }

    #[test]
    fn spawn_of_script_kernel_forks_recursively() {
        let child = ScriptKernel::new(vec![Op::Compute { cycles: 7 }]);
        let op = Op::Spawn {
            kernel: Box::new(child),
            place: Placement::Here,
        };
        let forked = fork_op(&op).expect("script children fork");
        assert!(matches!(forked, Op::Spawn { .. }));
    }

    #[test]
    fn closure_kernels_decline_to_fork() {
        let k = |_ctx: &KernelCtx| Op::Quit;
        assert!(Kernel::fork(&k).is_none());
        let op = Op::Spawn {
            kernel: Box::new(k),
            place: Placement::Here,
        };
        assert!(fork_op(&op).is_none());
    }

    #[test]
    fn op_debug_strings() {
        let a = GlobalAddr::new(NodeletId(1), 8);
        assert_eq!(
            format!("{:?}", Op::Load { addr: a, bytes: 8 }),
            "Load(nlet1+0x8,8B)"
        );
        assert_eq!(format!("{:?}", Op::Quit), "Quit");
    }
}
