//! Per-run measurement: the counters the Emu toolchain simulator exposes
//! (spawns, migrations, memory ops per nodelet) plus the bandwidth and
//! latency reductions the paper reports.

use desim::stats::{Bandwidth, LogHistogram, Summary};
use desim::time::Time;

/// Event counters for one nodelet.
#[derive(Debug, Clone, Default)]
pub struct NodeletCounters {
    /// Threadlets created on this nodelet (local + remote spawns landing here).
    pub spawns: u64,
    /// Thread contexts that migrated away from this nodelet.
    pub migrations_out: u64,
    /// Thread contexts that arrived by migration.
    pub migrations_in: u64,
    /// Loads served by the local memory channel.
    pub local_loads: u64,
    /// Stores served by the local memory channel.
    pub local_stores: u64,
    /// Memory-side atomics served by the local channel.
    pub atomics: u64,
    /// Remote packets (stores/atomics) that arrived from other nodelets.
    pub remote_packets_in: u64,
    /// Bytes read from this nodelet's memory.
    pub bytes_loaded: u64,
    /// Bytes written to this nodelet's memory.
    pub bytes_stored: u64,
    /// Times a thread had to wait for a free hardware context (slot).
    pub slot_waits: u64,
    /// Migration-engine NACKs issued by this nodelet's engine.
    pub mig_nacks: u64,
    /// Migration retries scheduled after a NACK (backoff re-offers).
    pub mig_retries: u64,
    /// ECC-style retries on this nodelet's memory channel.
    pub ecc_retries: u64,
    /// Packets retransmitted on this node's outbound link.
    pub link_retransmits: u64,
    /// Arrivals/accesses absorbed here on behalf of a dead nodelet.
    pub redirects: u64,
}

impl NodeletCounters {
    /// Total bytes moved through this nodelet's channel.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_loaded + self.bytes_stored
    }

    /// Total memory operations on this nodelet's channel.
    pub fn mem_ops(&self) -> u64 {
        self.local_loads + self.local_stores + self.atomics
    }

    /// Total fault-recovery events recorded on this nodelet.
    pub fn fault_events(&self) -> u64 {
        self.mig_nacks + self.ecc_retries + self.link_retransmits + self.redirects
    }
}

/// Machine-wide fault-recovery totals, aggregated from the per-nodelet
/// counters — one value per injected-fault class, in the order the
/// degradation sweeps report them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultTotals {
    /// Migration-engine NACKs.
    pub nacks: u64,
    /// Migration retries (backoff re-offers).
    pub retries: u64,
    /// ECC-style memory-channel retries.
    pub ecc_retries: u64,
    /// Inter-node link retransmits.
    pub link_retransmits: u64,
    /// Arrivals/accesses redirected away from dead nodelets.
    pub redirects: u64,
}

impl FaultTotals {
    /// Sum of every fault-recovery event class.
    pub fn total(&self) -> u64 {
        self.nacks + self.retries + self.ecc_retries + self.link_retransmits + self.redirects
    }
}

/// Resource occupancy for one nodelet over a run.
#[derive(Debug, Clone, Default)]
pub struct NodeletOccupancy {
    /// Gossamer-core busy time (summed over cores).
    pub core_busy: Time,
    /// Memory-channel busy time.
    pub channel_busy: Time,
    /// Migration-engine busy time.
    pub migration_busy: Time,
    /// Mean queueing delay at the memory channel.
    pub channel_mean_wait: Time,
    /// Mean queueing delay at the migration engine.
    pub migration_mean_wait: Time,
}

/// Complete report of one engine run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Time of the final event (the makespan of the whole run).
    pub makespan: Time,
    /// Per-nodelet event counters.
    pub nodelets: Vec<NodeletCounters>,
    /// Per-nodelet resource occupancy.
    pub occupancy: Vec<NodeletOccupancy>,
    /// Number of Gossamer cores per nodelet (for utilization math).
    pub gcs_per_nodelet: u32,
    /// Total threadlets that ran.
    pub threads: u64,
    /// Discrete events the engine processed (the scheduler's unit of
    /// work; events/sec is the simulator's own throughput metric).
    pub events: u64,
    /// Distribution of single-migration latency (issue to arrival).
    pub migration_latency: LogHistogram,
    /// Distribution of per-thread lifetime migration counts.
    pub migrations_per_thread: Summary,
    /// Per-nodelet time series, when timeline tracing was enabled
    /// (see [`crate::engine::Engine::enable_timeline`]).
    pub timelines: Option<crate::engine::RunTimelines>,
    /// Where threadlet wall-time went, summed across threads.
    pub breakdown: crate::engine::TimeBreakdown,
    /// Structured event log, when event tracing was enabled
    /// (see [`crate::engine::Engine::enable_trace`]).
    pub trace: Option<crate::trace::TraceLog>,
    /// How the sharded scheduler ran. Worker-count-invariant by
    /// construction: the same config yields the same summary whether
    /// the run used one worker or many.
    pub pdes: PdesSummary,
    /// Wall-clock phase breakdown of the epoch loop, present only when
    /// phase profiling was explicitly enabled (see
    /// [`crate::engine::Engine::enable_phase_profile`]). `None` by
    /// default so reports stay byte-identical across worker counts.
    pub phases: Option<PdesPhaseProfile>,
}

/// Summary of the conservative parallel scheduler for one run.
///
/// Every field is a function of the configuration and workload alone —
/// not of the worker count — because shards, lookahead, and the epoch
/// schedule are decided before any worker starts, and mailbox traffic
/// is the deterministic cross-shard event stream. The audit leans on
/// this: any worker-count-dependent value here is a scheduler bug.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PdesSummary {
    /// Number of nodelet shards (always the total nodelet count).
    pub shards: u64,
    /// Conservative lookahead window in picoseconds: the minimum
    /// latency any cross-shard interaction can incur. `Time::MAX.ps()`
    /// when the machine has a single shard (no cross-shard path).
    pub lookahead_ps: u64,
    /// Epoch barriers crossed. Zero when the run used the merged
    /// fallback scheduler (zero lookahead leaves no window to exploit).
    pub epochs: u64,
    /// Windows after which no shard had posted any cross-shard event —
    /// the all-local case epoch fusion commits on a single gate
    /// crossing. A function of the simulated event stream (which shards
    /// talk when), not of worker placement, so it is worker-count-,
    /// fusion-, and merge-invariant like every other field here.
    pub clean_windows: u64,
    /// Cross-shard events posted to mailboxes.
    pub mailbox_sent: u64,
    /// Cross-shard events delivered out of mailboxes.
    pub mailbox_delivered: u64,
    /// Smallest cross-shard scheduling delay observed, in picoseconds.
    /// `u64::MAX` when no cross-shard event occurred. Must never fall
    /// below `lookahead_ps` — that would falsify the conservatism the
    /// epoch windows rely on.
    pub min_cross_delay_ps: u64,
    /// High-water mark of mailbox depth: the most cross-shard events
    /// any single shard had delivered to it in one exchange. Counted
    /// per destination shard per epoch (per dispatch batch under the
    /// merged fallback), so it is worker-count-invariant like every
    /// other field here.
    pub mailbox_depth_hwm: u64,
}

/// Wall-clock time split of one epoch-scheduler worker's loop.
///
/// Unlike [`PdesSummary`], these are *measurements of the host*, not
/// of the simulated machine: they vary run to run and with the worker
/// count. They exist to diagnose where real time goes — the ROADMAP's
/// "make PDES win" item needs exactly this split.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseBreakdown {
    /// Worker index (0-based; the inline scheduler reports worker 0).
    pub worker: u32,
    /// Time spent draining shard calendars inside epoch windows.
    pub drain_ns: u64,
    /// Time spent blocked at the sense-reversing barrier.
    pub barrier_ns: u64,
    /// Time spent posting to and delivering from mailboxes.
    pub exchange_ns: u64,
    /// Time spent in the per-epoch decision/merge step (reading every
    /// worker's published earliest-event slot, picking the next window).
    pub merge_ns: u64,
    /// Total wall-clock time of this worker's epoch loop. The audit
    /// checks the four phases above sum to this within tolerance.
    pub loop_ns: u64,
}

impl PhaseBreakdown {
    /// Sum of the four measured phases.
    pub fn phase_sum_ns(&self) -> u64 {
        self.drain_ns + self.barrier_ns + self.exchange_ns + self.merge_ns
    }
}

/// Per-worker wall-clock phase profile of the PDES epoch loop, plus
/// loop-level throughput. Attached to [`RunReport::phases`] only when
/// profiling is enabled; absent otherwise so byte-identity across
/// `--sim-threads` is preserved.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PdesPhaseProfile {
    /// One breakdown per worker, ascending by worker index.
    pub workers: Vec<PhaseBreakdown>,
    /// Epoch barriers crossed (mirrors [`PdesSummary::epochs`]).
    pub epochs: u64,
    /// Wall-clock duration of the whole epoch scheduler, in ns.
    pub wall_ns: u64,
    /// Gate crossings the worker pool performed: one per window with
    /// epoch fusion on, two with it off, zero for inline/merged runs.
    pub barrier_crossings: u64,
    /// Clean windows committed on the single-crossing fast path (zero
    /// when fusion was off or the run was inline/merged).
    pub fused_windows: u64,
    /// Worker-pool size the run-start merge planner chose (1 for
    /// inline and merged runs).
    pub merge_groups: u64,
    /// Owning worker of each shard, indexed by shard id — the merge
    /// map the audit validates against `merge_groups`.
    pub shard_owners: Vec<u32>,
}

impl PdesPhaseProfile {
    /// Epochs per wall-clock second (0 for an instantaneous run).
    pub fn epochs_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.epochs as f64 / (self.wall_ns as f64 / 1e9)
        }
    }
}

impl RunReport {
    /// Total bytes moved through all memory channels.
    pub fn total_bytes(&self) -> u64 {
        self.nodelets.iter().map(NodeletCounters::bytes_total).sum()
    }

    /// Total thread migrations (counted at the source).
    pub fn total_migrations(&self) -> u64 {
        self.nodelets.iter().map(|n| n.migrations_out).sum()
    }

    /// Total threadlet spawns.
    pub fn total_spawns(&self) -> u64 {
        self.nodelets.iter().map(|n| n.spawns).sum()
    }

    /// Total migration-engine NACKs across the machine.
    pub fn total_nacks(&self) -> u64 {
        self.nodelets.iter().map(|n| n.mig_nacks).sum()
    }

    /// Total migration retries (backoff re-offers) across the machine.
    pub fn total_retries(&self) -> u64 {
        self.nodelets.iter().map(|n| n.mig_retries).sum()
    }

    /// Total ECC-style channel retries across the machine.
    pub fn total_ecc_retries(&self) -> u64 {
        self.nodelets.iter().map(|n| n.ecc_retries).sum()
    }

    /// Total link retransmits across the machine.
    pub fn total_link_retransmits(&self) -> u64 {
        self.nodelets.iter().map(|n| n.link_retransmits).sum()
    }

    /// Total redirected arrivals/accesses absorbed for dead nodelets.
    pub fn total_redirects(&self) -> u64 {
        self.nodelets.iter().map(|n| n.redirects).sum()
    }

    /// Machine-wide fault-recovery totals as one copyable record.
    pub fn fault_totals(&self) -> FaultTotals {
        FaultTotals {
            nacks: self.total_nacks(),
            retries: self.total_retries(),
            ecc_retries: self.total_ecc_retries(),
            link_retransmits: self.total_link_retransmits(),
            redirects: self.total_redirects(),
        }
    }

    /// Aggregate memory bandwidth over the run (channel traffic).
    pub fn memory_bandwidth(&self) -> Bandwidth {
        Bandwidth::from_bytes(self.total_bytes(), self.makespan)
    }

    /// Bandwidth for an externally accounted byte count (benchmarks count
    /// their *semantic* bytes, e.g. 24 B per STREAM-ADD element).
    pub fn bandwidth_for(&self, semantic_bytes: u64) -> Bandwidth {
        Bandwidth::from_bytes(semantic_bytes, self.makespan)
    }

    /// Migrations per second over the run.
    pub fn migration_rate(&self) -> f64 {
        if self.makespan == Time::ZERO {
            0.0
        } else {
            self.total_migrations() as f64 / self.makespan.secs_f64()
        }
    }

    /// Aggregate Gossamer-core utilization in [0, 1].
    pub fn core_utilization(&self) -> f64 {
        if self.makespan == Time::ZERO {
            return 0.0;
        }
        let busy: Time = self.occupancy.iter().map(|o| o.core_busy).sum();
        let capacity =
            self.makespan.ps() as f64 * self.nodelets.len() as f64 * self.gcs_per_nodelet as f64;
        busy.ps() as f64 / capacity
    }

    /// Aggregate memory-channel utilization in [0, 1].
    pub fn channel_utilization(&self) -> f64 {
        if self.makespan == Time::ZERO {
            return 0.0;
        }
        let busy: Time = self.occupancy.iter().map(|o| o.channel_busy).sum();
        busy.ps() as f64 / (self.makespan.ps() as f64 * self.nodelets.len() as f64)
    }

    /// Coefficient of variation of per-nodelet channel traffic — a
    /// load-balance indicator (0 = perfectly balanced).
    pub fn channel_balance_cv(&self) -> f64 {
        let mut s = Summary::new();
        for n in &self.nodelets {
            s.record(n.bytes_total() as f64);
        }
        if s.mean() == 0.0 {
            0.0
        } else {
            s.stddev() / s.mean()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with(counters: Vec<NodeletCounters>, makespan: Time) -> RunReport {
        let n = counters.len();
        RunReport {
            makespan,
            nodelets: counters,
            occupancy: vec![NodeletOccupancy::default(); n],
            gcs_per_nodelet: 1,
            threads: 0,
            events: 0,
            migration_latency: LogHistogram::new(),
            migrations_per_thread: Summary::new(),
            timelines: None,
            breakdown: crate::engine::TimeBreakdown::default(),
            trace: None,
            pdes: PdesSummary::default(),
            phases: None,
        }
    }

    #[test]
    fn totals_and_bandwidth() {
        let a = NodeletCounters {
            bytes_loaded: 600,
            bytes_stored: 400,
            migrations_out: 5,
            ..Default::default()
        };
        let b = NodeletCounters {
            bytes_loaded: 1000,
            migrations_out: 3,
            ..Default::default()
        };
        let r = report_with(vec![a, b], Time::from_us(2));
        assert_eq!(r.total_bytes(), 2000);
        assert_eq!(r.total_migrations(), 8);
        // 2000 B / 2 us = 1e9 B/s.
        assert!((r.memory_bandwidth().bytes_per_sec - 1e9).abs() < 1.0);
        assert!((r.migration_rate() - 4e6).abs() < 1.0);
    }

    #[test]
    fn balance_cv_zero_when_even() {
        let a = NodeletCounters {
            bytes_loaded: 500,
            ..Default::default()
        };
        let r = report_with(vec![a.clone(), a], Time::from_us(1));
        assert_eq!(r.channel_balance_cv(), 0.0);
    }

    #[test]
    fn empty_run_is_safe() {
        let r = report_with(vec![NodeletCounters::default()], Time::ZERO);
        assert_eq!(r.memory_bandwidth().bytes_per_sec, 0.0);
        assert_eq!(r.migration_rate(), 0.0);
        assert_eq!(r.core_utilization(), 0.0);
    }
}
