//! Hand-rolled JSON serialization of run reports (the workspace is
//! dependency-free), shared by the bench harness and the `simd` daemon:
//!
//! * **machine-readable report JSON** ([`report_json`]) — the full
//!   [`RunReport`] (counters, occupancy, breakdown, histograms);
//! * **a JSONL event log** ([`trace_jsonl`]) — one object per trace
//!   event, preceded by a meta line with the drop count;
//! * **Chrome `trace_event` JSON** ([`chrome_trace`]) — loadable in
//!   Perfetto / `chrome://tracing`, one process per nodelet with counter
//!   tracks for core/channel/migration-engine occupancy plus the slot
//!   gauges, and instant events for the structured trace.
//!
//! All serializers are pure functions of the report, so a deterministic
//! simulation yields byte-identical artifacts — the property the `simd`
//! warm pool's "warm responses equal cold responses" invariant is stated
//! in terms of. [`json_ok`] is a syntax validator used to sanity-check
//! emitted documents without a JSON dependency; it is a thin wrapper
//! over the workspace's one strict reader, [`crate::jsonread`], so the
//! validator and the `simd` daemon's request parser cannot drift apart.

use crate::metrics::RunReport;
use crate::trace::TraceKind;
use desim::stats::{LogHistogram, Summary};
use desim::timeline::{Gauge, Timeline};
use std::fmt::Write as _;

/// Escape `s` as the *contents* of a JSON string (no surrounding quotes).
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A JSON string literal (quoted and escaped).
pub fn jstr(s: &str) -> String {
    format!("\"{}\"", esc(s))
}

/// A JSON number from an `f64`; non-finite values (which JSON cannot
/// represent) become `null`.
pub fn jnum(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// A JSON array of `f64` values (non-finite entries become `null`).
pub fn jarr_f64(xs: &[f64]) -> String {
    let items: Vec<String> = xs.iter().map(|&x| jnum(x)).collect();
    format!("[{}]", items.join(","))
}

/// A JSON array of `u64` values.
pub fn jarr_u64(xs: &[u64]) -> String {
    let items: Vec<String> = xs.iter().map(|x| x.to_string()).collect();
    format!("[{}]", items.join(","))
}

/// Serialize a [`Summary`] as a JSON object.
pub fn summary_json(s: &Summary) -> String {
    format!(
        "{{\"count\":{},\"mean\":{},\"min\":{},\"max\":{},\"stddev\":{}}}",
        s.count(),
        jnum(s.mean()),
        jnum(s.min()),
        jnum(s.max()),
        jnum(s.stddev())
    )
}

/// Serialize a [`LogHistogram`] as a JSON object (count, summary,
/// quantiles, trimmed log2 buckets).
pub fn histogram_json(h: &LogHistogram) -> String {
    // Trim trailing empty log2 buckets; the index in the trimmed array
    // still equals the bucket exponent.
    let buckets = h.buckets();
    let last = buckets.iter().rposition(|&c| c > 0).map_or(0, |i| i + 1);
    format!(
        "{{\"count\":{},\"summary_ns\":{},\"p50_ps\":{},\"p90_ps\":{},\"p99_ps\":{},\"log2_ps_buckets\":{}}}",
        h.count(),
        summary_json(h.summary()),
        h.quantile(0.5).ps(),
        h.quantile(0.9).ps(),
        h.quantile(0.99).ps(),
        jarr_u64(&buckets[..last])
    )
}

fn gauge_series(g: &Gauge) -> (Vec<f64>, Vec<u64>) {
    let means = g.means();
    let peaks: Vec<u64> = (0..g.len()).map(|b| g.peak(b)).collect();
    (means, peaks)
}

fn timeline_profile(t: &Timeline, capacity: u32) -> Vec<f64> {
    t.profile(capacity)
}

/// Serialize one run's [`RunReport`] as a JSON object.
pub fn report_json(label: &str, r: &RunReport) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"label\":{},\"makespan_ps\":{},\"threads\":{},\"events\":{},\"gcs_per_nodelet\":{}",
        jstr(label),
        r.makespan.ps(),
        r.threads,
        r.events,
        r.gcs_per_nodelet
    );
    let ft = r.fault_totals();
    let _ = write!(
        out,
        ",\"totals\":{{\"bytes\":{},\"spawns\":{},\"migrations\":{},\"nacks\":{},\"retries\":{},\"ecc_retries\":{},\"link_retransmits\":{},\"redirects\":{}}}",
        r.total_bytes(),
        r.total_spawns(),
        r.total_migrations(),
        ft.nacks,
        ft.retries,
        ft.ecc_retries,
        ft.link_retransmits,
        ft.redirects
    );
    let _ = write!(
        out,
        ",\"memory_bandwidth_mbs\":{},\"migration_rate_per_sec\":{},\"core_utilization\":{},\"channel_utilization\":{},\"channel_balance_cv\":{}",
        jnum(r.memory_bandwidth().mb_per_sec()),
        jnum(r.migration_rate()),
        jnum(r.core_utilization()),
        jnum(r.channel_utilization()),
        jnum(r.channel_balance_cv())
    );
    let b = &r.breakdown;
    let _ = write!(
        out,
        ",\"breakdown_ps\":{{\"compute\":{},\"memory\":{},\"migration\":{},\"store_issue\":{},\"spawn\":{}}}",
        b.compute.ps(),
        b.memory.ps(),
        b.migration.ps(),
        b.store_issue.ps(),
        b.spawn.ps()
    );
    let _ = write!(
        out,
        ",\"migration_latency\":{},\"migrations_per_thread\":{}",
        histogram_json(&r.migration_latency),
        summary_json(&r.migrations_per_thread)
    );
    let p = &r.pdes;
    let _ = write!(
        out,
        ",\"pdes\":{{\"shards\":{},\"lookahead_ps\":{},\"epochs\":{},\"mailbox_sent\":{},\"mailbox_delivered\":{},\"min_cross_delay_ps\":{},\"mailbox_depth_hwm\":{},\"clean_windows\":{}}}",
        p.shards,
        p.lookahead_ps,
        p.epochs,
        p.mailbox_sent,
        p.mailbox_delivered,
        p.min_cross_delay_ps,
        p.mailbox_depth_hwm,
        p.clean_windows
    );
    // Wall-clock phase profile: emitted only when profiling was
    // enabled, so un-profiled reports stay byte-identical run to run.
    if let Some(ph) = &r.phases {
        let _ = write!(
            out,
            ",\"pdes_phases\":{{\"epochs\":{},\"wall_ns\":{},\"epochs_per_sec\":{},\"barrier_crossings\":{},\"fused_windows\":{},\"merge_groups\":{},\"shard_owners\":{},\"workers\":[",
            ph.epochs,
            ph.wall_ns,
            jnum(ph.epochs_per_sec()),
            ph.barrier_crossings,
            ph.fused_windows,
            ph.merge_groups,
            jarr_u64(&ph.shard_owners.iter().map(|&o| o as u64).collect::<Vec<_>>())
        );
        for (i, w) in ph.workers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"worker\":{},\"drain_ns\":{},\"barrier_ns\":{},\"exchange_ns\":{},\"merge_ns\":{},\"loop_ns\":{}}}",
                w.worker, w.drain_ns, w.barrier_ns, w.exchange_ns, w.merge_ns, w.loop_ns
            );
        }
        out.push_str("]}");
    }
    out.push_str(",\"nodelets\":[");
    for (i, (c, o)) in r.nodelets.iter().zip(&r.occupancy).enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"spawns\":{},\"migrations_out\":{},\"migrations_in\":{},\"local_loads\":{},\"local_stores\":{},\"atomics\":{},\"remote_packets_in\":{},\"bytes_loaded\":{},\"bytes_stored\":{},\"slot_waits\":{},\"mig_nacks\":{},\"mig_retries\":{},\"ecc_retries\":{},\"link_retransmits\":{},\"redirects\":{},\"core_busy_ps\":{},\"channel_busy_ps\":{},\"migration_busy_ps\":{},\"channel_mean_wait_ps\":{},\"migration_mean_wait_ps\":{}}}",
            c.spawns,
            c.migrations_out,
            c.migrations_in,
            c.local_loads,
            c.local_stores,
            c.atomics,
            c.remote_packets_in,
            c.bytes_loaded,
            c.bytes_stored,
            c.slot_waits,
            c.mig_nacks,
            c.mig_retries,
            c.ecc_retries,
            c.link_retransmits,
            c.redirects,
            o.core_busy.ps(),
            o.channel_busy.ps(),
            o.migration_busy.ps(),
            o.channel_mean_wait.ps(),
            o.migration_mean_wait.ps()
        );
    }
    out.push(']');
    match &r.trace {
        None => out.push_str(",\"trace\":null"),
        Some(log) => {
            let _ = write!(
                out,
                ",\"trace\":{{\"capacity\":{},\"dropped\":{},\"emitted\":{},\"events_by_kind\":{{",
                log.capacity,
                log.dropped,
                log.emitted()
            );
            for (i, kind) in TraceKind::ALL.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}:{}", jstr(kind.name()), log.count_of(*kind));
            }
            out.push_str("}}");
        }
    }
    match &r.timelines {
        None => out.push_str(",\"timelines\":null"),
        Some(tl) => {
            let _ = write!(
                out,
                ",\"timelines\":{{\"bucket_ps\":{},\"nodelets\":[",
                tl.bucket.ps()
            );
            for i in 0..tl.core.len() {
                if i > 0 {
                    out.push(',');
                }
                let (qd_mean, qd_peak) = gauge_series(&tl.queue_depth[i]);
                let (live_mean, live_peak) = gauge_series(&tl.live_threads[i]);
                let _ = write!(
                    out,
                    "{{\"core_util\":{},\"channel_util\":{},\"migration_util\":{},\"queue_depth_mean\":{},\"queue_depth_peak\":{},\"live_threads_mean\":{},\"live_threads_peak\":{}}}",
                    jarr_f64(&timeline_profile(&tl.core[i], r.gcs_per_nodelet)),
                    jarr_f64(&timeline_profile(&tl.channel[i], 1)),
                    jarr_f64(&timeline_profile(&tl.migration[i], 1)),
                    jarr_f64(&qd_mean),
                    jarr_u64(&qd_peak),
                    jarr_f64(&live_mean),
                    jarr_u64(&live_peak)
                );
            }
            out.push_str("]}");
        }
    }
    out.push('}');
    out
}

/// JSONL event log of one run: a meta line, then one line per retained
/// trace event (`{"ts_ps":..,"nodelet":..,"thread":..,"kind":".."}`).
/// Empty trace (tracing disabled) yields just the meta line.
pub fn trace_jsonl(r: &RunReport) -> String {
    let mut out = String::new();
    let (cap, dropped, retained) = match &r.trace {
        Some(log) => (log.capacity, log.dropped, log.events.len()),
        None => (0, 0, 0),
    };
    let _ = writeln!(
        out,
        "{{\"meta\":{{\"makespan_ps\":{},\"threads\":{},\"capacity\":{},\"dropped\":{},\"retained\":{}}}}}",
        r.makespan.ps(),
        r.threads,
        cap,
        dropped,
        retained
    );
    if let Some(log) = &r.trace {
        for e in &log.events {
            let thread = match e.thread {
                Some(t) => t.0.to_string(),
                None => "null".to_string(),
            };
            let _ = writeln!(
                out,
                "{{\"ts_ps\":{},\"nodelet\":{},\"thread\":{},\"kind\":{}}}",
                e.at.ps(),
                e.nodelet.0,
                thread,
                jstr(e.kind.name())
            );
        }
    }
    out
}

/// One Chrome `trace_event` entry shared by the helpers below.
fn chrome_event(out: &mut String, first: &mut bool, body: &str) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    out.push_str(body);
}

/// Chrome `trace_event` JSON for one run, loadable in Perfetto or
/// `chrome://tracing`. One process per nodelet; occupancy timelines and
/// slot gauges become counter tracks, structured trace events become
/// thread-scoped instants.
pub fn chrome_trace(r: &RunReport) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    let mut first = true;
    let nodelets = r.nodelets.len();
    for pid in 0..nodelets {
        chrome_event(
            &mut out,
            &mut first,
            &format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"args\":{{\"name\":\"nodelet {pid}\"}}}}"
            ),
        );
        chrome_event(
            &mut out,
            &mut first,
            &format!(
                "{{\"name\":\"process_sort_index\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"args\":{{\"sort_index\":{pid}}}}}"
            ),
        );
        chrome_event(
            &mut out,
            &mut first,
            &format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"args\":{{\"name\":\"events\"}}}}"
            ),
        );
    }
    if let Some(tl) = &r.timelines {
        let bucket_us = tl.bucket.us_f64();
        for pid in 0..nodelets {
            let series: [(&str, Vec<f64>); 5] = [
                (
                    "core occupancy",
                    timeline_profile(&tl.core[pid], r.gcs_per_nodelet),
                ),
                ("channel occupancy", timeline_profile(&tl.channel[pid], 1)),
                (
                    "migration engine occupancy",
                    timeline_profile(&tl.migration[pid], 1),
                ),
                ("slot queue depth", tl.queue_depth[pid].means()),
                ("live threadlets", tl.live_threads[pid].means()),
            ];
            for (name, values) in &series {
                for (b, v) in values.iter().enumerate() {
                    chrome_event(
                        &mut out,
                        &mut first,
                        &format!(
                            "{{\"name\":\"{name}\",\"ph\":\"C\",\"pid\":{pid},\"tid\":0,\"ts\":{},\"args\":{{\"value\":{}}}}}",
                            jnum(b as f64 * bucket_us),
                            jnum(*v)
                        ),
                    );
                }
            }
        }
    }
    if let Some(log) = &r.trace {
        for e in &log.events {
            let thread = match e.thread {
                Some(t) => t.0.to_string(),
                None => "null".to_string(),
            };
            chrome_event(
                &mut out,
                &mut first,
                &format!(
                    "{{\"name\":{},\"cat\":\"emu\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{},\"tid\":0,\"ts\":{},\"args\":{{\"thread\":{}}}}}",
                    jstr(e.kind.name()),
                    e.nodelet.0,
                    jnum(e.at.us_f64()),
                    thread
                ),
            );
        }
    }
    let _ = write!(
        out,
        "\n],\"otherData\":{{\"makespan_ps\":{},\"threads\":{},\"dropped_events\":{}}}}}",
        r.makespan.ps(),
        r.threads,
        r.trace.as_ref().map_or(0, |l| l.dropped)
    );
    out
}

// ---- minimal JSON syntax validator -------------------------------------

/// Whether `s` is a single syntactically valid JSON document.
///
/// Delegates to the strict shared reader in [`crate::jsonread`]: one
/// grammar for the whole workspace means a document this validator
/// blesses is exactly a document the `simd` protocol parser accepts
/// (duplicate keys, lone surrogates, and non-finite numbers all
/// rejected).
pub fn json_ok(s: &str) -> bool {
    crate::jsonread::parse(s).is_ok()
}

/// Whether every line of `s` is a valid JSON document (JSONL).
pub fn jsonl_ok(s: &str) -> bool {
    s.lines().all(json_ok)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_controls_and_quotes() {
        assert_eq!(esc("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(esc("x\ny"), "x\\ny");
        assert_eq!(esc("\u{1}"), "\\u0001");
        assert_eq!(jstr("hi"), "\"hi\"");
    }

    #[test]
    fn nonfinite_numbers_become_null() {
        assert_eq!(jnum(1.5), "1.5");
        assert_eq!(jnum(f64::NAN), "null");
        assert_eq!(jnum(f64::INFINITY), "null");
    }

    #[test]
    fn validator_accepts_valid_documents() {
        for ok in [
            "{}",
            "[]",
            "null",
            "-1.5e-3",
            "[1,2,3]",
            "{\"a\":[true,false,null],\"b\":{\"c\":\"d\\\"e\"}}",
            "  { \"x\" : 1 }  ",
        ] {
            assert!(json_ok(ok), "should accept {ok:?}");
        }
    }

    #[test]
    fn validator_rejects_invalid_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "1 2",
            "\"unterminated",
            "{\"a\":1,}",
            "[1 2]",
            "1.",
            "1e",
            "1e+",
        ] {
            assert!(!json_ok(bad), "should reject {bad:?}");
        }
    }

    #[test]
    fn validator_rejects_nonfinite_literals() {
        for bad in [
            "NaN",
            "Infinity",
            "-Infinity",
            "[1,NaN]",
            "{\"x\":Infinity}",
            "{\"x\":-Infinity}",
        ] {
            assert!(!json_ok(bad), "should reject {bad:?}");
        }
    }

    #[test]
    fn validator_rejects_duplicate_object_keys() {
        assert!(!json_ok("{\"a\":1,\"a\":2}"));
        assert!(!json_ok("{\"a\":1,\"b\":{\"c\":1,\"c\":2}}"));
        assert!(!json_ok("[{\"k\":1,\"k\":1}]"));
        // Same key in sibling objects is fine.
        assert!(json_ok("{\"a\":{\"k\":1},\"b\":{\"k\":2}}"));
        assert!(json_ok("[{\"k\":1},{\"k\":2}]"));
    }

    #[test]
    fn jsonl_validator_checks_every_line() {
        assert!(jsonl_ok("{\"a\":1}\n{\"b\":2}\n"));
        assert!(!jsonl_ok("{\"a\":1}\nnot json\n"));
    }

    #[test]
    fn report_json_round_trips_the_validator() {
        let engine = crate::engine::Engine::new(crate::presets::chick_prototype()).unwrap();
        let mut engine = engine;
        engine
            .spawn_at(
                crate::addr::NodeletId(0),
                Box::new(crate::kernel::ScriptKernel::new(vec![
                    crate::kernel::Op::Compute { cycles: 10 },
                ])),
            )
            .unwrap();
        let report = engine.run().unwrap();
        let j = report_json("unit", &report);
        assert!(json_ok(&j), "{j}");
        assert!(jsonl_ok(&trace_jsonl(&report)));
        assert!(json_ok(&chrome_trace(&report)));
    }
}
