//! Process-global, lock-light live metrics: counters, gauges, and
//! log-bucketed latency histograms.
//!
//! [`trace`](crate::trace) answers "what happened inside one run" with
//! a per-run event log; this module answers "what is the process doing
//! right now" with monotonic aggregates cheap enough to stay always-on.
//! The registry hands out `&'static` handles (registration takes a
//! mutex once per name; every subsequent update is a single relaxed
//! atomic), so instrumented hot paths never contend. The `simd` daemon
//! snapshots the registry for its `{"op":"metrics"}` protocol op and
//! the Prometheus `/metrics` exporter, and `simctl top` renders the
//! same snapshots as a terminal dashboard.
//!
//! Conventions:
//!
//! * counter names end in `_total` (or `_ns_total` for accumulated
//!   durations) and only ever increase;
//! * histogram samples are durations in nanoseconds, bucketed by
//!   `floor(log2(ns))` — 64 buckets cover the full `u64` range;
//! * a name may carry one `{key="value"}` label suffix (for per-worker
//!   or per-phase series); histogram names must be label-free.
//!
//! The registry is always-on by default. [`set_enabled`] exists so the
//! overhead gate (`obs_overhead` in emu-bench) can prove the quiet
//! path costs <2%: recording sites that do more than bump an atomic
//! (e.g. read a clock) check [`enabled`] first.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Mutex;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous signed value (set / add / running maximum).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjust by `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Raise the value to `v` if `v` is larger (high-water mark).
    #[inline]
    pub fn record_max(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of log2 buckets (covers the whole `u64` range).
pub const HIST_BUCKETS: usize = 64;

/// A log2-bucketed histogram of `u64` samples (durations in ns).
///
/// Bucket `i` counts samples with `floor(log2(v)) == i` (`v == 0`
/// lands in bucket 0). Quantiles report the bucket's inclusive upper
/// bound, so they over-estimate by at most 2x — plenty for dashboards.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [(); HIST_BUCKETS].map(|()| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        let idx = if v == 0 {
            0
        } else {
            63 - v.leading_zeros() as usize
        };
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Capture the current bucket contents.
    pub fn snapshot(&self) -> HistSnapshot {
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                buckets.push((i as u32, n));
            }
        }
        HistSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Inclusive upper bound of log2 bucket `i`.
fn bucket_upper(i: u32) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    }
}

/// A point-in-time copy of one histogram (sparse bucket list).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Non-empty `(bucket_index, count)` pairs, ascending by index.
    pub buckets: Vec<(u32, u64)>,
}

impl HistSnapshot {
    /// Upper bound of the bucket holding quantile `q` in `[0, 1]`
    /// (0 for an empty histogram).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(i, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bucket_upper(i);
            }
        }
        bucket_upper(self.buckets.last().map(|&(i, _)| i).unwrap_or(0))
    }

    /// Mean sample value (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Bucket-wise difference `self - base` (saturating).
    fn delta(&self, base: &HistSnapshot) -> HistSnapshot {
        let mut map: BTreeMap<u32, u64> = self.buckets.iter().copied().collect();
        for &(i, n) in &base.buckets {
            let e = map.entry(i).or_insert(0);
            *e = e.saturating_sub(n);
        }
        HistSnapshot {
            count: self.count.saturating_sub(base.count),
            sum: self.sum.saturating_sub(base.sum),
            buckets: map.into_iter().filter(|&(_, n)| n > 0).collect(),
        }
    }
}

/// The global registry: name → leaked `&'static` metric.
#[derive(Default)]
struct Registry {
    counters: BTreeMap<String, &'static Counter>,
    gauges: BTreeMap<String, &'static Gauge>,
    hists: BTreeMap<String, &'static Histogram>,
}

fn registry() -> &'static Mutex<Registry> {
    static REG: std::sync::OnceLock<Mutex<Registry>> = std::sync::OnceLock::new();
    REG.get_or_init(|| Mutex::new(Registry::default()))
}

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Turn recording on or off process-wide. Handles stay valid either
/// way; instrumentation sites that pay for more than an atomic bump
/// (clock reads, allocation) consult [`enabled`] first.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// Whether the registry is recording (default: yes).
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Get or register the counter named `name`. The handle is `'static`:
/// call once and cache it next to the hot path.
pub fn counter(name: impl Into<String>) -> &'static Counter {
    let name = name.into();
    let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    reg.counters
        .entry(name)
        .or_insert_with(|| Box::leak(Box::default()))
}

/// Get or register the gauge named `name`.
pub fn gauge(name: impl Into<String>) -> &'static Gauge {
    let name = name.into();
    let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    reg.gauges
        .entry(name)
        .or_insert_with(|| Box::leak(Box::default()))
}

/// Get or register the histogram named `name` (label-free names only;
/// the Prometheus renderer merges quantile labels into the name).
pub fn histogram(name: impl Into<String>) -> &'static Histogram {
    let name = name.into();
    let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    reg.hists
        .entry(name)
        .or_insert_with(|| Box::leak(Box::default()))
}

/// A point-in-time copy of every registered metric, sorted by name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// `(name, value)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge.
    pub gauges: Vec<(String, i64)>,
    /// `(name, snapshot)` for every histogram.
    pub hists: Vec<(String, HistSnapshot)>,
}

/// Capture the whole registry. Values are read metric-by-metric (no
/// global pause), so a snapshot under load is approximately — not
/// transactionally — consistent, which is fine for monitoring.
pub fn snapshot() -> Snapshot {
    let reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    Snapshot {
        counters: reg
            .counters
            .iter()
            .map(|(k, c)| (k.clone(), c.get()))
            .collect(),
        gauges: reg
            .gauges
            .iter()
            .map(|(k, g)| (k.clone(), g.get()))
            .collect(),
        hists: reg
            .hists
            .iter()
            .map(|(k, h)| (k.clone(), h.snapshot()))
            .collect(),
    }
}

impl Snapshot {
    /// Value of a counter by exact name (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    }

    /// Value of a gauge by exact name (0 if absent).
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    }

    /// Histogram snapshot by exact name.
    pub fn hist(&self, name: &str) -> Option<&HistSnapshot> {
        self.hists.iter().find(|(k, _)| k == name).map(|(_, h)| h)
    }

    /// Counter and histogram growth since `base` (gauges keep their
    /// current value — deltas of instantaneous values are meaningless).
    pub fn delta(&self, base: &Snapshot) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.saturating_sub(base.counter(k))))
                .collect(),
            gauges: self.gauges.clone(),
            hists: self
                .hists
                .iter()
                .map(|(k, h)| {
                    let d = match base.hist(k) {
                        Some(b) => h.delta(b),
                        None => h.clone(),
                    };
                    (k.clone(), d)
                })
                .collect(),
        }
    }

    /// Serialize as one JSON object (stable key order — snapshots of
    /// identical registries render byte-identically).
    pub fn json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{}:{v}", crate::json::jstr(k));
        }
        s.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{}:{v}", crate::json::jstr(k));
        }
        s.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.hists.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{}:{{\"count\":{},\"sum\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[",
                crate::json::jstr(k),
                h.count,
                h.sum,
                h.quantile(0.50),
                h.quantile(0.90),
                h.quantile(0.99),
            );
            for (j, (b, n)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                let _ = write!(s, "[{b},{n}]");
            }
            s.push_str("]}");
        }
        s.push_str("}}");
        s
    }

    /// Render in the Prometheus text exposition format (version 0.0.4).
    /// Histograms are exported as `summary` series with p50/p90/p99
    /// quantiles plus `_sum` and `_count`.
    pub fn prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let mut typed: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
        for (k, v) in &self.counters {
            let base = k.split('{').next().unwrap_or(k);
            if typed.insert(base.to_string()) {
                let _ = writeln!(s, "# TYPE {base} counter");
            }
            let _ = writeln!(s, "{k} {v}");
        }
        for (k, v) in &self.gauges {
            let base = k.split('{').next().unwrap_or(k);
            if typed.insert(base.to_string()) {
                let _ = writeln!(s, "# TYPE {base} gauge");
            }
            let _ = writeln!(s, "{k} {v}");
        }
        for (k, h) in &self.hists {
            let _ = writeln!(s, "# TYPE {k} summary");
            for (q, label) in [(0.50, "0.5"), (0.90, "0.9"), (0.99, "0.99")] {
                let _ = writeln!(s, "{k}{{quantile=\"{label}\"}} {}", h.quantile(q));
            }
            let _ = writeln!(s, "{k}_sum {}", h.sum);
            let _ = writeln!(s, "{k}_count {}", h.count);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_register_once_and_accumulate() {
        let c = counter("obs_test_counter_total");
        let again = counter("obs_test_counter_total");
        assert!(std::ptr::eq(c, again), "same name must alias one counter");
        let before = c.get();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), before + 5);

        let g = gauge("obs_test_gauge");
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
        g.record_max(2);
        assert_eq!(g.get(), 4, "record_max must not lower the value");
        g.record_max(11);
        assert_eq!(g.get(), 11);
    }

    #[test]
    fn histogram_buckets_by_log2_and_reports_quantiles() {
        let h = Histogram::default();
        for v in [0u64, 1, 2, 3, 4, 1000, 1_000_000] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 7);
        assert_eq!(snap.sum, 1_001_010);
        // 0 and 1 share bucket 0; 2 and 3 land in bucket 1; 4 in 2.
        assert_eq!(snap.buckets[0], (0, 2));
        assert_eq!(snap.buckets[1], (1, 2));
        assert_eq!(snap.buckets[2], (2, 1));
        // p50 = 4th of 7 samples → bucket 1 upper bound.
        assert_eq!(snap.quantile(0.5), 3);
        // p99 → last bucket (1e6 → bucket 19, upper 2^20-1).
        assert_eq!(snap.quantile(0.99), (1 << 20) - 1);
        assert_eq!(HistSnapshot::default().quantile(0.5), 0);
    }

    #[test]
    fn snapshot_delta_subtracts_counters_and_buckets() {
        let c = counter("obs_test_delta_total");
        let h = histogram("obs_test_delta_ns");
        c.add(2);
        h.record(10);
        let base = snapshot();
        c.add(3);
        h.record(10);
        h.record(100_000);
        let d = snapshot().delta(&base);
        assert_eq!(d.counter("obs_test_delta_total"), 3);
        let dh = d.hist("obs_test_delta_ns").unwrap();
        assert_eq!(dh.count, 2);
        assert_eq!(dh.buckets, vec![(3, 1), (16, 1)]);
    }

    #[test]
    fn snapshot_json_is_valid_and_stable() {
        counter("obs_test_json_total").inc();
        gauge("obs_test_json_gauge").set(-5);
        histogram("obs_test_json_ns").record(42);
        let a = snapshot();
        let b = snapshot();
        assert!(crate::json::json_ok(&a.json()), "snapshot JSON must parse");
        assert_eq!(a.json(), b.json(), "idle registry must render stably");
    }

    #[test]
    fn prometheus_exposition_has_types_and_quantiles() {
        counter("obs_prom_total{worker=\"0\"}").add(9);
        counter("obs_prom_total{worker=\"1\"}").add(1);
        histogram("obs_prom_lat_ns").record(100);
        let text = snapshot().prometheus();
        assert!(text.contains("# TYPE obs_prom_total counter"));
        assert_eq!(
            text.matches("# TYPE obs_prom_total counter").count(),
            1,
            "one TYPE line per metric family"
        );
        assert!(text.contains("obs_prom_total{worker=\"0\"} 9"));
        assert!(text.contains("# TYPE obs_prom_lat_ns summary"));
        assert!(text.contains("obs_prom_lat_ns{quantile=\"0.99\"} 127"));
        assert!(text.contains("obs_prom_lat_ns_count 1"));
        for line in text.lines() {
            assert!(
                line.starts_with('#')
                    || line
                        .split_whitespace()
                        .nth(1)
                        .is_some_and(|v| v.parse::<i64>().is_ok()),
                "every sample line carries a numeric value: {line}"
            );
        }
    }

    #[test]
    fn disabling_is_observable() {
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
        set_enabled(true);
    }
}
