//! Machine description and timing cost model.
//!
//! Everything the paper varies between hardware generations — Gossamer
//! core count and clock, threadlet capacity, DRAM speed, migration-engine
//! rate — is a field here, so the same engine reproduces the Chick
//! prototype, the Emu toolchain simulator's idealized machine, and the
//! projected full-speed systems (see [`crate::presets`]).

use crate::fault::FaultPlan;
use desim::time::{Clock, Time};

/// Structural and timing description of an Emu system.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Number of node cards. The Chick has 8, but firmware bugs limited
    /// the paper's hardware runs to a single node.
    pub nodes: u32,
    /// Nodelets per node card (8 on the Chick).
    pub nodelets_per_node: u32,
    /// Gossamer cores per nodelet (1 on the prototype, 4 planned).
    pub gcs_per_nodelet: u32,
    /// Concurrent threadlet contexts per Gossamer core (64).
    pub threadlets_per_gc: u32,
    /// Gossamer core clock (150 MHz prototype, 300 MHz planned).
    pub gc_clock: Clock,
    /// Narrow-channel DRAM bandwidth per nodelet, bytes/second.
    /// 8-bit bus at 1600 MT/s = 1.6 GB/s on the prototype.
    pub ncdram_bytes_per_sec: u64,
    /// Fixed DRAM access latency (controller + CAS) after channel grant.
    pub dram_latency: Time,
    /// Per-access channel overhead (command/row handling) added to the
    /// bus occupancy of every request.
    pub dram_access_overhead: Time,
    /// Minimum burst size on the narrow channel, bytes. Requests smaller
    /// than this still occupy one burst (8 B = one beat-group).
    pub dram_burst_bytes: u32,
    /// Sustained migration-engine throughput per nodelet, migrations/sec.
    pub migration_rate_per_sec: u64,
    /// One-way network latency for a migration between nodelets on the
    /// same node card.
    pub intra_node_hop: Time,
    /// One-way latency across the RapidIO fabric between node cards.
    pub inter_node_hop: Time,
    /// RapidIO per-node link bandwidth (bytes/sec) for inter-node
    /// migrations and remote packets.
    pub rapidio_bytes_per_sec: u64,
    /// Size of a migrated threadlet context, bytes (< 200 B on Emu:
    /// 16 GPRs + PC + SP + status).
    pub context_bytes: u32,
    /// Timing cost model for instruction issue.
    pub costs: CostModel,
    /// Fault-injection plan. [`FaultPlan::none`] (the default) leaves the
    /// machine pristine and the engine's timing bit-for-bit unchanged.
    pub faults: FaultPlan,
}

/// Instruction-level timing of the Gossamer cores.
///
/// The Gossamer core is an in-order, fine-grained multithreaded, cache-less
/// core: a threadlet has at most one operation in flight, and single-thread
/// latency is much worse than aggregate issue throughput (that gap is what
/// the thread-count scaling curves in Figs 4–5 measure). Two numbers model
/// this: `*_issue_cycles` is how long an op occupies the core's issue
/// machinery (sets saturated throughput); `*_latency_cycles` is the
/// additional time before the *same thread* may proceed (sets single-thread
/// performance and thus the saturation knee).
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Core-occupancy cycles to issue a memory operation.
    pub mem_issue_cycles: u32,
    /// Extra thread-blocking cycles for a memory op before it reaches the
    /// memory channel (pipeline traversal, address translation).
    pub mem_pipeline_cycles: u32,
    /// Multiplier on `Compute` cycles for thread-side latency: a compute
    /// op occupies the core for `cycles` but blocks its thread for
    /// `cycles * compute_latency_factor` (no forwarding; threads are
    /// descheduled between dependent instructions).
    pub compute_latency_factor: u32,
    /// Core-occupancy cycles to execute a spawn instruction.
    pub spawn_issue_cycles: u32,
    /// Latency before a locally spawned threadlet is runnable.
    pub spawn_local_latency: Time,
    /// Core-occupancy cycles to issue a migration (packing the context).
    pub migrate_issue_cycles: u32,
    /// Extra channel service time for a memory-side atomic
    /// (read-modify-write occupies the channel longer than a write).
    pub atomic_extra: Time,
}

impl MachineConfig {
    /// Total number of nodelets in the system.
    #[inline]
    pub fn total_nodelets(&self) -> u32 {
        self.nodes * self.nodelets_per_node
    }

    /// Maximum concurrent threadlets per nodelet.
    #[inline]
    pub fn slots_per_nodelet(&self) -> u32 {
        self.gcs_per_nodelet * self.threadlets_per_gc
    }

    /// Maximum concurrent threadlets in the whole system.
    #[inline]
    pub fn total_slots(&self) -> u64 {
        self.total_nodelets() as u64 * self.slots_per_nodelet() as u64
    }

    /// Duration of `n` Gossamer-core cycles.
    #[inline]
    pub fn cycles(&self, n: u32) -> Time {
        self.gc_clock.cycles(n as u64)
    }

    /// Mean service time of one migration at the migration engine.
    #[inline]
    pub fn migration_service(&self) -> Time {
        Time::from_ps(desim::time::PS_PER_S / self.migration_rate_per_sec)
    }

    /// NCDRAM channel occupancy of a request of `bytes` (rounded up to
    /// whole bursts), excluding the per-access overhead.
    pub fn channel_transfer(&self, bytes: u32) -> Time {
        let burst = self.dram_burst_bytes.max(1);
        let rounded = bytes.div_ceil(burst) * burst;
        // ps = bytes * 1e12 / B/s, computed in u128 to avoid overflow.
        let ps =
            rounded as u128 * desim::time::PS_PER_S as u128 / self.ncdram_bytes_per_sec as u128;
        Time::from_ps(ps as u64)
    }

    /// Total channel service time for a request (overhead + transfer).
    pub fn channel_service(&self, bytes: u32) -> Time {
        self.dram_access_overhead + self.channel_transfer(bytes)
    }

    /// Network hop latency between two nodelets (zero if same nodelet).
    pub fn hop_latency(&self, from: crate::addr::NodeletId, to: crate::addr::NodeletId) -> Time {
        if from == to {
            Time::ZERO
        } else if from.same_node(to, self.nodelets_per_node) {
            self.intra_node_hop
        } else {
            self.inter_node_hop
        }
    }

    /// Aggregate peak NCDRAM bandwidth of the system, bytes/sec.
    pub fn peak_memory_bandwidth(&self) -> u64 {
        self.total_nodelets() as u64 * self.ncdram_bytes_per_sec
    }

    /// Validate structural invariants; returns a description of the first
    /// violation, if any. Called by the engine constructor.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes == 0 {
            return Err("nodes must be > 0".into());
        }
        if self.nodelets_per_node == 0 {
            return Err("nodelets_per_node must be > 0".into());
        }
        if self.gcs_per_nodelet == 0 {
            return Err("gcs_per_nodelet must be > 0".into());
        }
        if self.threadlets_per_gc == 0 {
            return Err("threadlets_per_gc must be > 0".into());
        }
        if self.ncdram_bytes_per_sec == 0 {
            return Err("ncdram_bytes_per_sec must be > 0".into());
        }
        if self.migration_rate_per_sec == 0 {
            return Err("migration_rate_per_sec must be > 0".into());
        }
        if self.dram_burst_bytes == 0 {
            return Err("dram_burst_bytes must be > 0".into());
        }
        if self.rapidio_bytes_per_sec == 0 {
            return Err("rapidio_bytes_per_sec must be > 0".into());
        }
        if self.context_bytes == 0 {
            return Err("context_bytes must be > 0".into());
        }
        self.faults.validate(self.total_nodelets())?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn chick_prototype_shape() {
        let c = presets::chick_prototype();
        assert_eq!(c.total_nodelets(), 8);
        assert_eq!(c.slots_per_nodelet(), 64);
        assert_eq!(c.total_slots(), 512);
        c.validate().unwrap();
    }

    #[test]
    fn channel_service_rounds_to_bursts() {
        let c = presets::chick_prototype();
        // 1.6 GB/s, 8 B burst: 8 bytes = 5 ns transfer.
        assert_eq!(c.channel_transfer(8), Time::from_ns(5));
        // 1 byte still occupies a full burst.
        assert_eq!(c.channel_transfer(1), c.channel_transfer(8));
        // 16 bytes = two bursts.
        assert_eq!(c.channel_transfer(16), Time::from_ns(10));
        assert!(c.channel_service(8) > c.channel_transfer(8));
    }

    #[test]
    fn migration_service_matches_rate() {
        let mut c = presets::chick_prototype();
        c.migration_rate_per_sec = 4_500_000;
        let s = c.migration_service();
        // 1/4.5e6 s = 222222 ps
        assert_eq!(s.ps(), 222_222);
    }

    #[test]
    fn hop_latency_tiers() {
        let c = presets::emu64_full_speed();
        use crate::addr::NodeletId;
        assert_eq!(c.hop_latency(NodeletId(0), NodeletId(0)), Time::ZERO);
        assert_eq!(c.hop_latency(NodeletId(0), NodeletId(7)), c.intra_node_hop);
        assert_eq!(c.hop_latency(NodeletId(0), NodeletId(8)), c.inter_node_hop);
        assert!(c.inter_node_hop > c.intra_node_hop);
    }

    #[test]
    fn validation_catches_zeroes() {
        let mut c = presets::chick_prototype();
        c.gcs_per_nodelet = 0;
        assert!(c.validate().is_err());
        let mut c = presets::chick_prototype();
        c.migration_rate_per_sec = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn peak_bandwidth() {
        let c = presets::chick_prototype();
        // 8 nodelets x 1.6 GB/s
        assert_eq!(c.peak_memory_bandwidth(), 8 * 1_600_000_000);
    }
}
