//! The workspace's one strict JSON *reader*.
//!
//! [`crate::json`] owns the writer side (serializers); this module owns
//! reading text back into a value tree. It is strict everywhere a
//! protocol or an artifact check could silently diverge: duplicate
//! object keys rejected, lone surrogates rejected, non-finite numbers
//! rejected, the exact JSON number grammar enforced (no `1.`, no bare
//! exponent, no leading zeros), nesting bounded. Both consumers —
//! [`crate::json::json_ok`]'s validating scan and the `simd` daemon's
//! request parser — go through [`parse`], so they accept and reject the
//! same corpus by construction.

use std::collections::BTreeSet;

/// Maximum nesting depth accepted.
const MAX_DEPTH: usize = 128;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always finite).
    Num(f64),
    /// A string with escapes resolved.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object in source order (keys are unique).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in an object; `None` for absent keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parse one complete JSON document. Trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at offset {}", b as char, self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".into());
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected {:?} at offset {}", c as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, text: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        let mut seen = BTreeSet::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if !seen.insert(key.clone()) {
                return Err(format!("duplicate key {key:?}"));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value(depth + 1)?;
            pairs.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| "unterminated string".to_string())?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // A high surrogate must pair with \uDC00..\uDFFF.
                                if self.peek() != Some(b'\\') {
                                    return Err("lone high surrogate".into());
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err("lone high surrogate".into());
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("bad low surrogate".into());
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp).ok_or("bad surrogate pair")?
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err("lone low surrogate".into());
                            } else {
                                char::from_u32(hi).ok_or("bad \\u escape")?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(format!("bad escape \\{}", other as char));
                        }
                    }
                }
                _ if b < 0x20 => return Err("raw control character in string".into()),
                _ => {
                    // Re-borrow the source so multi-byte UTF-8 stays intact.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len()
                        && self.bytes[end] != b'"'
                        && self.bytes[end] != b'\\'
                        && self.bytes[end] >= 0x20
                    {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        if self.pos + 4 > self.bytes.len() {
            return Err("truncated \\u escape".into());
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| "bad \\u escape".to_string())?;
        let v = u32::from_str_radix(s, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        // Enforce the exact JSON grammar before handing the span to the
        // float parser: Rust's `f64::from_str` is laxer (accepts `1.`,
        // `+1`, leading zeros) and silently widening the accepted
        // language here is how readers drift apart.
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let int_digits = self.digits();
        if int_digits == 0 {
            return Err(format!("bad number at offset {start}"));
        }
        if int_digits > 1 && self.bytes[start + (self.bytes[start] == b'-') as usize] == b'0' {
            return Err(format!("leading zero in number at offset {start}"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if self.digits() == 0 {
                return Err(format!("bad number at offset {start}"));
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            if self.digits() == 0 {
                return Err(format!("bad number at offset {start}"));
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        let n: f64 = s
            .parse()
            .map_err(|_| format!("bad number {s:?} at offset {start}"))?;
        if !n.is_finite() {
            return Err(format!("non-finite number {s:?}"));
        }
        Ok(Value::Num(n))
    }

    fn digits(&mut self) -> usize {
        let start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        self.pos - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_protocol_shapes() {
        let v =
            parse(r#"{"op":"run","id":7,"spec":{"kind":"case","case":"a\nb"},"deadline_ms":250}"#)
                .unwrap();
        assert_eq!(v.get("op").unwrap().as_str(), Some("run"));
        assert_eq!(v.get("id").unwrap().as_u64(), Some(7));
        let spec = v.get("spec").unwrap();
        assert_eq!(spec.get("kind").unwrap().as_str(), Some("case"));
        assert_eq!(spec.get("case").unwrap().as_str(), Some("a\nb"));
        assert_eq!(v.get("deadline_ms").unwrap().as_u64(), Some(250));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn resolves_escapes_and_surrogates() {
        let v = parse(r#""\u0041\u00e9\ud83d\ude00\t""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé😀\t"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "{\"a\":1,}",
            "{\"a\":1}{",
            "{\"a\":1,\"a\":2}",
            "\"\\ud800x\"",
            "1e999",
            "nul",
            "[1 2]",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn enforces_the_json_number_grammar() {
        for bad in ["1.", ".5", "1e", "1e+", "01", "-01", "+1", "00.5"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
        for ok in ["0", "-0", "0.5", "10", "1e9", "-1.25e-3"] {
            assert!(parse(ok).is_ok(), "rejected {ok:?}");
        }
    }

    #[test]
    fn round_trips_the_writer_output() {
        let s = crate::json::jstr("quote \" slash \\ nl \n tab \t");
        let v = parse(&s).unwrap();
        assert_eq!(v.as_str(), Some("quote \" slash \\ nl \n tab \t"));
    }

    #[test]
    fn depth_cap_holds() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(64) + &"]".repeat(64);
        assert!(parse(&ok).is_ok());
    }
}
