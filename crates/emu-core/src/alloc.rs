//! Memory layout strategies over the partitioned global address space.
//!
//! Mirrors the allocation intrinsics the paper exercises:
//!
//! | Emu intrinsic        | Here                        |
//! |----------------------|-----------------------------|
//! | `mw_localmalloc`     | [`Layout::Local`]           |
//! | `mw_malloc1dlong`    | [`Layout::Striped`]         |
//! | two-stage 2D alloc   | [`Layout::Blocked`]         |
//! | replicated allocation| [`Layout::Replicated`]      |
//!
//! An [`ArrayHandle`] maps an element index to the [`GlobalAddr`] a
//! threadlet would touch; the engine uses only the owning nodelet, but
//! offsets are kept distinct per allocation for debuggability.

use crate::addr::{GlobalAddr, NodeletId};

/// How an allocation's elements are distributed across nodelets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Layout {
    /// All elements contiguous on one nodelet (`mw_localmalloc`).
    Local(NodeletId),
    /// Element `i` on nodelet `i % nodelets` (`mw_malloc1dlong` — 8-byte
    /// round-robin striping across the whole system).
    Striped {
        /// Number of nodelets in the stripe.
        nodelets: u32,
    },
    /// Contiguous blocks of `block_elems` elements, block `b` on nodelet
    /// `owners[b]`. This is the paper's custom two-stage "2D" allocation:
    /// per-nodelet row segments sized after a first pass computed each
    /// nodelet's share.
    Blocked {
        /// Owner nodelet of each consecutive block.
        owners: Vec<NodeletId>,
        /// Elements per block (the last block may be short).
        block_elems: u64,
    },
    /// One copy on every nodelet; reads resolve to the reader's copy
    /// (used for the SpMV input vector `x`).
    Replicated {
        /// Number of nodelets holding a copy.
        nodelets: u32,
    },
}

/// A simulated allocation: element geometry plus a [`Layout`].
#[derive(Clone, Debug)]
pub struct ArrayHandle {
    elem_bytes: u32,
    len: u64,
    layout: Layout,
    /// Base offset within each owning nodelet, so distinct allocations
    /// have distinct address ranges.
    base: u64,
}

impl ArrayHandle {
    /// Number of elements.
    #[inline]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the allocation is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bytes per element.
    #[inline]
    pub fn elem_bytes(&self) -> u32 {
        self.elem_bytes
    }

    /// The layout strategy.
    #[inline]
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// The nodelet owning element `i`, from the perspective of a reader
    /// currently on `here` (only [`Layout::Replicated`] depends on the
    /// reader's location).
    pub fn owner(&self, i: u64, here: NodeletId) -> NodeletId {
        debug_assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        match &self.layout {
            Layout::Local(n) => *n,
            Layout::Striped { nodelets } => NodeletId((i % *nodelets as u64) as u32),
            Layout::Blocked {
                owners,
                block_elems,
            } => {
                let b = (i / block_elems) as usize;
                owners[b.min(owners.len() - 1)]
            }
            Layout::Replicated { .. } => here,
        }
    }

    /// The global address of element `i` as seen by a reader on `here`.
    pub fn addr(&self, i: u64, here: NodeletId) -> GlobalAddr {
        let nodelet = self.owner(i, here);
        let offset = match &self.layout {
            // Striped allocations advance one element per round across the
            // stripe; local/blocked are contiguous per owner. Offsets are
            // approximate within the owner but unique per (alloc, index).
            Layout::Striped { nodelets } => {
                self.base + (i / *nodelets as u64) * self.elem_bytes as u64
            }
            _ => self.base + i * self.elem_bytes as u64,
        };
        GlobalAddr::new(nodelet, offset)
    }

    /// Total footprint in bytes (counting every replica).
    pub fn footprint_bytes(&self) -> u64 {
        let one = self.len * self.elem_bytes as u64;
        match &self.layout {
            Layout::Replicated { nodelets } => one * *nodelets as u64,
            _ => one,
        }
    }
}

/// Bump allocator over the global address space: hands out
/// [`ArrayHandle`]s with non-overlapping base offsets.
#[derive(Debug)]
pub struct MemSpace {
    nodelets: u32,
    next_base: u64,
}

impl MemSpace {
    /// A fresh address space over `nodelets` nodelets.
    pub fn new(nodelets: u32) -> Self {
        assert!(nodelets > 0, "need at least one nodelet");
        MemSpace {
            nodelets,
            next_base: 0x1000, // skip a guard page, purely cosmetic
        }
    }

    /// Number of nodelets this space spans.
    pub fn nodelets(&self) -> u32 {
        self.nodelets
    }

    fn reserve(&mut self, bytes: u64) -> u64 {
        let base = self.next_base;
        // Round each allocation to 4 KiB so bases stay readable in traces.
        self.next_base += bytes.div_ceil(4096).max(1) * 4096;
        base
    }

    /// `mw_localmalloc`: `len` elements contiguous on `nodelet`.
    pub fn local(&mut self, nodelet: NodeletId, len: u64, elem_bytes: u32) -> ArrayHandle {
        assert!(nodelet.0 < self.nodelets, "nodelet out of range");
        let base = self.reserve(len * elem_bytes as u64);
        ArrayHandle {
            elem_bytes,
            len,
            layout: Layout::Local(nodelet),
            base,
        }
    }

    /// `mw_malloc1dlong`: `len` elements striped element-wise round-robin
    /// across all nodelets.
    pub fn striped(&mut self, len: u64, elem_bytes: u32) -> ArrayHandle {
        let per = len.div_ceil(self.nodelets as u64) * elem_bytes as u64;
        let base = self.reserve(per);
        ArrayHandle {
            elem_bytes,
            len,
            layout: Layout::Striped {
                nodelets: self.nodelets,
            },
            base,
        }
    }

    /// The paper's two-stage "2D" allocation: caller supplies the owner of
    /// each consecutive block of `block_elems` elements (e.g. the nodelet
    /// that owns each matrix row).
    pub fn blocked(
        &mut self,
        owners: Vec<NodeletId>,
        block_elems: u64,
        len: u64,
        elem_bytes: u32,
    ) -> ArrayHandle {
        assert!(block_elems > 0, "block_elems must be > 0");
        assert!(!owners.is_empty(), "owners must be non-empty");
        assert!(
            owners.len() as u64 * block_elems >= len,
            "owners x block_elems must cover len"
        );
        assert!(
            owners.iter().all(|n| n.0 < self.nodelets),
            "owner nodelet out of range"
        );
        let base = self.reserve(block_elems * elem_bytes as u64 * owners.len() as u64);
        ArrayHandle {
            elem_bytes,
            len,
            layout: Layout::Blocked {
                owners,
                block_elems,
            },
            base,
        }
    }

    /// A replicated allocation: a private copy on every nodelet, reads
    /// resolve locally.
    pub fn replicated(&mut self, len: u64, elem_bytes: u32) -> ArrayHandle {
        let base = self.reserve(len * elem_bytes as u64);
        ArrayHandle {
            elem_bytes,
            len,
            layout: Layout::Replicated {
                nodelets: self.nodelets,
            },
            base,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn here(n: u32) -> NodeletId {
        NodeletId(n)
    }

    #[test]
    fn local_always_one_owner() {
        let mut ms = MemSpace::new(8);
        let a = ms.local(here(3), 100, 8);
        for i in 0..100 {
            assert_eq!(a.owner(i, here(0)), here(3));
        }
        assert_eq!(a.footprint_bytes(), 800);
    }

    #[test]
    fn striped_round_robin() {
        let mut ms = MemSpace::new(8);
        let a = ms.striped(64, 8);
        for i in 0..64u64 {
            assert_eq!(a.owner(i, here(0)), here((i % 8) as u32));
        }
        // Consecutive elements land on different nodelets — the cause of
        // per-element migrations in the 1D SpMV layout.
        assert_ne!(a.owner(0, here(0)), a.owner(1, here(0)));
    }

    #[test]
    fn striped_offsets_advance_per_round() {
        let mut ms = MemSpace::new(4);
        let a = ms.striped(16, 8);
        let a0 = a.addr(0, here(0));
        let a4 = a.addr(4, here(0));
        assert_eq!(a0.nodelet, a4.nodelet);
        assert_eq!(a4.offset - a0.offset, 8);
    }

    #[test]
    fn blocked_respects_owner_list() {
        let mut ms = MemSpace::new(8);
        let owners = vec![here(5), here(2), here(7)];
        let a = ms.blocked(owners, 10, 30, 8);
        assert_eq!(a.owner(0, here(0)), here(5));
        assert_eq!(a.owner(9, here(0)), here(5));
        assert_eq!(a.owner(10, here(0)), here(2));
        assert_eq!(a.owner(29, here(0)), here(7));
    }

    #[test]
    fn replicated_resolves_to_reader() {
        let mut ms = MemSpace::new(8);
        let a = ms.replicated(100, 8);
        assert_eq!(a.owner(42, here(6)), here(6));
        assert_eq!(a.owner(42, here(1)), here(1));
        assert_eq!(a.footprint_bytes(), 100 * 8 * 8);
    }

    #[test]
    fn allocations_do_not_alias() {
        let mut ms = MemSpace::new(8);
        let a = ms.local(here(0), 512, 8);
        let b = ms.local(here(0), 512, 8);
        let last_a = a.addr(511, here(0)).offset;
        let first_b = b.addr(0, here(0)).offset;
        assert!(first_b > last_a);
    }

    #[test]
    #[should_panic(expected = "cover len")]
    fn blocked_coverage_checked() {
        let mut ms = MemSpace::new(8);
        let _ = ms.blocked(vec![here(0)], 4, 30, 8);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    #[cfg(debug_assertions)]
    fn owner_bounds_checked() {
        let mut ms = MemSpace::new(8);
        let a = ms.local(here(0), 4, 8);
        let _ = a.owner(4, here(0));
    }
}
