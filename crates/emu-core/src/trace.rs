//! Structured event tracing for engine runs.
//!
//! The per-run counters in [`crate::metrics`] say *how much* happened;
//! this module records *when and where*: a cheap, optionally-enabled
//! stream of [`TraceEvent`]s (spawns, migrations, memory ops, NACKs,
//! retries, slot stalls) stamped with the simulated time, the nodelet,
//! and — where one is in scope — the threadlet.
//!
//! ## Cost model
//!
//! Tracing is **zero-cost when disabled**: the engine holds an
//! `Option<TraceRecorder>` and every emission site is a single
//! `is_some` branch on the off path (verified by the `trace_overhead`
//! microbench in `crates/bench`). When enabled, the recorder is a
//! bounded ring buffer: once `capacity` events are held, the oldest is
//! evicted and [`TraceLog::dropped`] counts the loss, so a trace can
//! never exhaust memory on a long run — and never lies about being
//! complete.
//!
//! Recording never touches simulated time, so enabling a trace cannot
//! change the timing, counters, or checksum of a run.
//!
//! ## Process-global enablement
//!
//! The benchmark runners construct their own engines internally; to
//! trace them without threading a flag through every call signature,
//! [`set_global`] arms a process-wide [`TelemetryConfig`] that
//! [`crate::engine::Engine::new`] consults once at construction. Use
//! [`GlobalTelemetryGuard`] to scope it.

use crate::addr::NodeletId;
use crate::kernel::ThreadId;
use crate::metrics::RunReport;
use desim::time::Time;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// What happened. One variant per instrumented engine site; each maps
/// 1:1 onto a [`crate::metrics::NodeletCounters`] field, so summing a
/// lossless trace by kind reproduces the counters exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceKind {
    /// A threadlet was created (counted at the nodelet it lands on).
    Spawn,
    /// A context departed through the local migration engine.
    MigrateOut,
    /// A migrated context arrived at its destination.
    MigrateIn,
    /// A load was served by the local memory channel.
    LocalLoad,
    /// A store was served by the local memory channel.
    LocalStore,
    /// A memory-side atomic was served by the local channel.
    Atomic,
    /// A remote store/atomic packet arrived from another nodelet.
    RemotePacket,
    /// An arrival had to wait for a free hardware thread slot.
    SlotWait,
    /// The migration engine refused a context (injected NACK).
    MigNack,
    /// A NACKed migration was re-offered after backoff.
    MigRetry,
    /// The memory channel absorbed an ECC-style scrub-and-retry.
    EccRetry,
    /// A packet was retransmitted on the node's outbound link.
    LinkRetransmit,
    /// Traffic for a dead nodelet was absorbed here.
    Redirect,
    /// A threadlet ran to completion and released its slot.
    Quit,
}

impl TraceKind {
    /// Every kind, in declaration order (for reductions and reports).
    pub const ALL: [TraceKind; 14] = [
        TraceKind::Spawn,
        TraceKind::MigrateOut,
        TraceKind::MigrateIn,
        TraceKind::LocalLoad,
        TraceKind::LocalStore,
        TraceKind::Atomic,
        TraceKind::RemotePacket,
        TraceKind::SlotWait,
        TraceKind::MigNack,
        TraceKind::MigRetry,
        TraceKind::EccRetry,
        TraceKind::LinkRetransmit,
        TraceKind::Redirect,
        TraceKind::Quit,
    ];

    /// Stable snake_case name, used verbatim in the JSONL and Chrome
    /// trace exports.
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::Spawn => "spawn",
            TraceKind::MigrateOut => "migrate_out",
            TraceKind::MigrateIn => "migrate_in",
            TraceKind::LocalLoad => "local_load",
            TraceKind::LocalStore => "local_store",
            TraceKind::Atomic => "atomic",
            TraceKind::RemotePacket => "remote_packet",
            TraceKind::SlotWait => "slot_wait",
            TraceKind::MigNack => "mig_nack",
            TraceKind::MigRetry => "mig_retry",
            TraceKind::EccRetry => "ecc_retry",
            TraceKind::LinkRetransmit => "link_retransmit",
            TraceKind::Redirect => "redirect",
            TraceKind::Quit => "quit",
        }
    }
}

/// One recorded engine event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated time of the event.
    pub at: Time,
    /// Nodelet the event is attributed to (same attribution as the
    /// matching [`crate::metrics::NodeletCounters`] field).
    pub nodelet: NodeletId,
    /// The threadlet involved, when one is in scope (channel-level
    /// events like remote packets and ECC retries have none).
    pub thread: Option<ThreadId>,
    /// What happened.
    pub kind: TraceKind,
}

/// A bounded ring buffer of [`TraceEvent`]s with a drop count.
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl TraceRecorder {
    /// A recorder holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TraceRecorder {
            capacity,
            events: VecDeque::with_capacity(capacity.min(1 << 16)),
            dropped: 0,
        }
    }

    /// Record one event, evicting the oldest when full.
    #[inline]
    pub fn record(&mut self, ev: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Finalize into an immutable [`TraceLog`].
    pub fn into_log(self) -> TraceLog {
        TraceLog {
            events: self.events.into(),
            dropped: self.dropped,
            capacity: self.capacity,
        }
    }
}

/// The finalized event stream of one run, attached to
/// [`crate::metrics::RunReport::trace`].
#[derive(Debug, Clone)]
pub struct TraceLog {
    /// Retained events, in nondecreasing time order.
    pub events: Vec<TraceEvent>,
    /// Events evicted because the ring was full. A nonzero value means
    /// the *oldest* part of the run is missing from `events`.
    pub dropped: u64,
    /// Ring capacity the run was recorded with.
    pub capacity: usize,
}

impl TraceLog {
    /// Number of retained events of `kind`.
    pub fn count_of(&self, kind: TraceKind) -> u64 {
        self.events.iter().filter(|e| e.kind == kind).count() as u64
    }

    /// Whether every emitted event was retained (no ring eviction).
    pub fn is_lossless(&self) -> bool {
        self.dropped == 0
    }

    /// Total events emitted by the run (retained + dropped).
    pub fn emitted(&self) -> u64 {
        self.events.len() as u64 + self.dropped
    }
}

/// What telemetry an engine should collect, applied at construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TelemetryConfig {
    /// Ring capacity for the event recorder; 0 disables event tracing.
    pub event_capacity: usize,
    /// Bucket width for per-nodelet time series (occupancy timelines,
    /// queue-depth and live-threadlet gauges); `None` disables them.
    pub timeline_bucket: Option<Time>,
}

impl TelemetryConfig {
    /// Everything disabled (the default).
    pub fn off() -> Self {
        TelemetryConfig::default()
    }

    /// Whether any collection is enabled.
    pub fn enabled(&self) -> bool {
        self.event_capacity > 0 || self.timeline_bucket.is_some()
    }
}

// The process-global config is two atomics (not a lock) so the read in
// `Engine::new` stays trivially cheap and panic-free.
static GLOBAL_EVENT_CAP: AtomicUsize = AtomicUsize::new(0);
static GLOBAL_BUCKET_PS: AtomicU64 = AtomicU64::new(0);

/// Arm process-global telemetry: every [`crate::engine::Engine`]
/// constructed afterwards collects per `cfg` until [`clear_global`].
pub fn set_global(cfg: TelemetryConfig) {
    GLOBAL_EVENT_CAP.store(cfg.event_capacity, Ordering::SeqCst);
    GLOBAL_BUCKET_PS.store(cfg.timeline_bucket.map_or(0, |b| b.ps()), Ordering::SeqCst);
}

/// Disarm process-global telemetry.
pub fn clear_global() {
    set_global(TelemetryConfig::off());
}

/// The currently armed process-global telemetry config.
pub fn global() -> TelemetryConfig {
    let ps = GLOBAL_BUCKET_PS.load(Ordering::SeqCst);
    TelemetryConfig {
        event_capacity: GLOBAL_EVENT_CAP.load(Ordering::SeqCst),
        timeline_bucket: (ps > 0).then_some(Time::from_ps(ps)),
    }
}

// ---- report collection -------------------------------------------------
//
// The benchmark runners return *reductions* (bandwidths, checksums) and
// drop the underlying [`RunReport`]s; armed collection lets the harness
// capture every finished run's report for artifact export without
// changing any runner signature. Off-path cost: one atomic load per
// completed run (not per event).

static COLLECT: AtomicBool = AtomicBool::new(false);
static COLLECTED: Mutex<Collected> = Mutex::new(Collected::new());

/// Point id of a run outside any keyed scope. Unkeyed runs sort after
/// every keyed run, in completion order.
pub const UNKEYED: u64 = u64::MAX;

/// Collected reports plus the bookkeeping that makes their export order
/// deterministic under concurrent sweeps: each report is tagged with the
/// run key (sweep-point id + retry attempt) of the thread that ran the
/// engine, and [`take_reports`] sorts by `(point, seq)` — so `-j N`
/// produces the same `runs` array as `-j 1`.
struct Collected {
    /// `(point, attempt, arrival seq, report)` per finished run.
    runs: Vec<(u64, u32, u64, RunReport)>,
    next_seq: u64,
    /// Points whose outcome is decided: only the recorded attempt's
    /// reports are kept (`u32::MAX` = point abandoned, keep none). This
    /// is what silences detached stragglers: a timed-out attempt that
    /// finishes late offers a report, but its `(point, attempt)` is no
    /// longer accepted.
    accepted: Vec<(u64, u32)>,
}

impl Collected {
    const fn new() -> Self {
        Collected {
            runs: Vec::new(),
            next_seq: 0,
            accepted: Vec::new(),
        }
    }

    fn accepts(&self, point: u64, attempt: u32) -> bool {
        self.accepted
            .iter()
            .all(|&(p, a)| p != point || a == attempt)
    }
}

std::thread_local! {
    /// Run key of the current thread: which sweep point (and which retry
    /// attempt of it) any engine run on this thread belongs to.
    static RUN_KEY: std::cell::Cell<(u64, u32)> = const { std::cell::Cell::new((UNKEYED, 0)) };
}

/// Run `f` with this thread's run key set to `(point, attempt)`,
/// restoring the previous key afterwards. Sweep executors wrap each
/// point in this so concurrent runs' reports can be re-ordered into
/// sweep order at export.
pub fn with_run_key<R>(point: u64, attempt: u32, f: impl FnOnce() -> R) -> R {
    let prev = RUN_KEY.with(|k| k.replace((point, attempt)));
    struct Restore((u64, u32));
    impl Drop for Restore {
        fn drop(&mut self) {
            RUN_KEY.with(|k| k.set(self.0));
        }
    }
    let _restore = Restore(prev);
    f()
}

/// The current thread's sweep-point id ([`UNKEYED`] outside any
/// [`with_run_key`] scope).
pub fn current_point() -> u64 {
    RUN_KEY.with(|k| k.get().0)
}

/// Decide point `point`: keep only reports from `attempt`, drop the
/// rest (already-collected and future — e.g. a detached straggler from
/// a timed-out earlier attempt). `attempt = u32::MAX` abandons the
/// point entirely.
pub fn accept_attempt(point: u64, attempt: u32) {
    if point == UNKEYED {
        return;
    }
    let mut c = collected();
    c.runs.retain(|&(p, a, _, _)| p != point || a == attempt);
    c.accepted.push((point, attempt));
}

/// Start (or stop) collecting a clone of every finished run's report.
/// Starting clears anything previously collected, including decided
/// points.
pub fn collect_reports(on: bool) {
    if on {
        *collected() = Collected::new();
    }
    COLLECT.store(on, Ordering::SeqCst);
}

/// Whether report collection is armed.
pub fn collecting_reports() -> bool {
    COLLECT.load(Ordering::SeqCst)
}

/// Take every report collected since [`collect_reports`]`(true)`, in
/// deterministic sweep order: sorted by `(point, arrival)`, with
/// unkeyed runs last in completion order.
pub fn take_reports() -> Vec<RunReport> {
    let mut c = collected();
    let mut runs = std::mem::take(&mut c.runs);
    c.next_seq = 0;
    drop(c);
    runs.sort_by_key(|&(point, _, seq, _)| (point, seq));
    runs.into_iter().map(|(_, _, _, r)| r).collect()
}

fn collected() -> std::sync::MutexGuard<'static, Collected> {
    // A poisoned lock only means a panic mid-push; the data is still a
    // valid state, so recover rather than propagate the panic.
    COLLECTED.lock().unwrap_or_else(|e| e.into_inner())
}

/// Called by the engine when a run completes; a no-op unless armed.
pub(crate) fn offer_report(report: &RunReport) {
    if COLLECT.load(Ordering::Relaxed) {
        let (point, attempt) = RUN_KEY.with(|k| k.get());
        let mut c = collected();
        if !c.accepts(point, attempt) {
            return;
        }
        let seq = c.next_seq;
        c.next_seq += 1;
        c.runs.push((point, attempt, seq, report.clone()));
    }
}

/// RAII scope for the process-global config: arms on construction,
/// clears on drop.
#[derive(Debug)]
pub struct GlobalTelemetryGuard(());

impl GlobalTelemetryGuard {
    /// Arm `cfg` globally until the guard drops.
    pub fn arm(cfg: TelemetryConfig) -> Self {
        set_global(cfg);
        GlobalTelemetryGuard(())
    }
}

impl Drop for GlobalTelemetryGuard {
    fn drop(&mut self) {
        clear_global();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ps: u64, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            at: Time::from_ps(ps),
            nodelet: NodeletId(0),
            thread: Some(ThreadId(7)),
            kind,
        }
    }

    #[test]
    fn ring_keeps_newest_and_counts_drops() {
        let mut r = TraceRecorder::new(3);
        for i in 0..5 {
            r.record(ev(i, TraceKind::Spawn));
        }
        let log = r.into_log();
        assert_eq!(log.events.len(), 3);
        assert_eq!(log.dropped, 2);
        assert_eq!(log.emitted(), 5);
        assert!(!log.is_lossless());
        // The newest events survive.
        assert_eq!(log.events[0].at, Time::from_ps(2));
        assert_eq!(log.events[2].at, Time::from_ps(4));
    }

    #[test]
    fn lossless_below_capacity() {
        let mut r = TraceRecorder::new(8);
        r.record(ev(1, TraceKind::MigrateOut));
        r.record(ev(2, TraceKind::MigNack));
        let log = r.into_log();
        assert!(log.is_lossless());
        assert_eq!(log.count_of(TraceKind::MigrateOut), 1);
        assert_eq!(log.count_of(TraceKind::MigNack), 1);
        assert_eq!(log.count_of(TraceKind::Quit), 0);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut r = TraceRecorder::new(0);
        r.record(ev(1, TraceKind::Quit));
        r.record(ev(2, TraceKind::Quit));
        let log = r.into_log();
        assert_eq!(log.events.len(), 1);
        assert_eq!(log.dropped, 1);
    }

    #[test]
    fn global_config_round_trips_and_guard_clears() {
        assert_eq!(global(), TelemetryConfig::off());
        {
            let _g = GlobalTelemetryGuard::arm(TelemetryConfig {
                event_capacity: 1024,
                timeline_bucket: Some(Time::from_us(5)),
            });
            let got = global();
            assert_eq!(got.event_capacity, 1024);
            assert_eq!(got.timeline_bucket, Some(Time::from_us(5)));
            assert!(got.enabled());
        }
        assert!(!global().enabled());
    }

    #[test]
    fn kind_names_are_stable_and_unique() {
        let names: Vec<_> = TraceKind::ALL.iter().map(|k| k.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
        assert_eq!(TraceKind::Spawn.name(), "spawn");
    }
}
