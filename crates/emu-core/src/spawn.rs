//! The paper's four thread-spawn strategies (Section III-E, Figs 4–5).
//!
//! `cilk_for` was unsupported on the Chick, so the benchmarks hand-roll
//! spawn trees out of `cilk_spawn`:
//!
//! * **serial_spawn** — one thread for-loops over `cilk_spawn`, creating
//!   every worker locally;
//! * **recursive_spawn** — a local binary spawn tree;
//! * **serial_remote_spawn** — one *leader* is remote-spawned onto each
//!   nodelet, then each leader serially spawns its local workers;
//! * **recursive_remote_spawn** — leaders are created by a recursive
//!   remote-spawn tree over nodelets, and each leader spawns its local
//!   workers with a recursive tree.
//!
//! Workers are numbered `0..nworkers`; worker `i`'s *intended* nodelet is
//! `i % nodelets`, matching how the benchmarks stripe data. The
//! non-remote strategies create every worker on the root's nodelet — the
//! workers' stacks stay there, and any kernel that touches its stack
//! (`KernelCtx::home`) keeps migrating back: the mechanism behind the
//! remote-spawn bandwidth gap in Fig 5.

use crate::addr::NodeletId;
use crate::kernel::{Kernel, KernelCtx, Op, Placement};
use std::sync::Arc;

/// Produces the kernel for worker `i`. Shared by every node of a spawn
/// tree, hence `Arc` + `Sync`.
pub type WorkerFactory = Arc<dyn Fn(usize) -> Box<dyn Kernel> + Send + Sync>;

/// Which spawn tree to use (Figs 4–5 compare all four).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SpawnStrategy {
    /// `serial_spawn`: local for-loop of spawns.
    Serial,
    /// `recursive_spawn`: local binary spawn tree.
    Recursive,
    /// `serial_remote_spawn`: serial loop of remote spawns, one leader
    /// per nodelet, each leader loops locally.
    SerialRemote,
    /// `recursive_remote_spawn`: recursive remote tree over nodelets,
    /// recursive local tree per nodelet.
    RecursiveRemote,
}

impl SpawnStrategy {
    /// All strategies, in the paper's presentation order.
    pub const ALL: [SpawnStrategy; 4] = [
        SpawnStrategy::Serial,
        SpawnStrategy::Recursive,
        SpawnStrategy::SerialRemote,
        SpawnStrategy::RecursiveRemote,
    ];

    /// The paper's name for this strategy.
    pub fn name(self) -> &'static str {
        match self {
            SpawnStrategy::Serial => "serial_spawn",
            SpawnStrategy::Recursive => "recursive_spawn",
            SpawnStrategy::SerialRemote => "serial_remote_spawn",
            SpawnStrategy::RecursiveRemote => "recursive_remote_spawn",
        }
    }

    /// Whether this strategy uses remote spawns.
    pub fn is_remote(self) -> bool {
        matches!(
            self,
            SpawnStrategy::SerialRemote | SpawnStrategy::RecursiveRemote
        )
    }
}

/// Number of workers assigned to `nodelet` when `nworkers` workers are
/// dealt round-robin over `nodelets`.
pub fn workers_on(nodelet: u32, nworkers: usize, nodelets: u32) -> usize {
    let k = nodelet as usize;
    let n = nodelets as usize;
    if k >= nworkers {
        0
    } else {
        (nworkers - k - 1) / n + 1
    }
}

/// Build the root kernel implementing `strategy` for `nworkers` workers
/// over `nodelets` nodelets. Spawn the result on nodelet 0.
pub fn root_kernel(
    strategy: SpawnStrategy,
    nworkers: usize,
    nodelets: u32,
    factory: WorkerFactory,
) -> Box<dyn Kernel> {
    assert!(nworkers > 0, "need at least one worker");
    assert!(nodelets > 0, "need at least one nodelet");
    match strategy {
        SpawnStrategy::Serial => Box::new(SerialSpawner {
            next: 0,
            nworkers,
            factory,
        }),
        SpawnStrategy::Recursive => Box::new(RecursiveSpawner::new(0, nworkers, factory)),
        SpawnStrategy::SerialRemote => Box::new(SerialRemoteSpawner {
            next_nodelet: 0,
            nworkers,
            nodelets,
            factory,
        }),
        SpawnStrategy::RecursiveRemote => Box::new(RecursiveRemoteSpawner {
            lo: 0,
            hi: nodelets,
            nworkers,
            nodelets,
            factory,
            leader: None,
        }),
    }
}

/// `serial_spawn`: worker `i` is created locally for each `i` in turn.
struct SerialSpawner {
    next: usize,
    nworkers: usize,
    factory: WorkerFactory,
}

impl Kernel for SerialSpawner {
    fn step(&mut self, _ctx: &KernelCtx) -> Op {
        if self.next < self.nworkers {
            let k = (self.factory)(self.next);
            self.next += 1;
            Op::Spawn {
                kernel: k,
                place: Placement::Here,
            }
        } else {
            Op::Quit
        }
    }
}

/// `recursive_spawn`: splits `[lo, hi)` in half, spawning the upper half
/// and recursing into the lower until this thread *becomes* worker `lo`.
struct RecursiveSpawner {
    lo: usize,
    hi: usize,
    factory: WorkerFactory,
    /// Once the range narrows to one worker, the kernel delegates to it.
    worker: Option<Box<dyn Kernel>>,
}

impl RecursiveSpawner {
    fn new(lo: usize, hi: usize, factory: WorkerFactory) -> Self {
        RecursiveSpawner {
            lo,
            hi,
            factory,
            worker: None,
        }
    }
}

impl Kernel for RecursiveSpawner {
    fn step(&mut self, ctx: &KernelCtx) -> Op {
        if let Some(w) = self.worker.as_mut() {
            return w.step(ctx);
        }
        if self.hi - self.lo > 1 {
            let mid = self.lo + (self.hi - self.lo) / 2;
            let child = Box::new(RecursiveSpawner::new(
                mid,
                self.hi,
                Arc::clone(&self.factory),
            ));
            self.hi = mid;
            return Op::Spawn {
                kernel: child,
                place: Placement::Here,
            };
        }
        // Range is a single worker: become it.
        self.worker = Some((self.factory)(self.lo));
        self.worker.as_mut().unwrap().step(ctx)
    }
}

/// A per-nodelet leader that serially spawns its local workers
/// (`i = nodelet, nodelet + nodelets, …`).
struct SerialLeader {
    nodelet: u32,
    next_local: usize,
    nworkers: usize,
    nodelets: u32,
    factory: WorkerFactory,
}

impl Kernel for SerialLeader {
    fn step(&mut self, _ctx: &KernelCtx) -> Op {
        let i = self.nodelet as usize + self.next_local * self.nodelets as usize;
        if i < self.nworkers {
            self.next_local += 1;
            Op::Spawn {
                kernel: (self.factory)(i),
                place: Placement::Here,
            }
        } else {
            Op::Quit
        }
    }
}

/// `serial_remote_spawn`: remote-spawn one [`SerialLeader`] per nodelet.
struct SerialRemoteSpawner {
    next_nodelet: u32,
    nworkers: usize,
    nodelets: u32,
    factory: WorkerFactory,
}

impl Kernel for SerialRemoteSpawner {
    fn step(&mut self, _ctx: &KernelCtx) -> Op {
        while self.next_nodelet < self.nodelets {
            let k = self.next_nodelet;
            self.next_nodelet += 1;
            if workers_on(k, self.nworkers, self.nodelets) == 0 {
                continue;
            }
            return Op::Spawn {
                kernel: Box::new(SerialLeader {
                    nodelet: k,
                    next_local: 0,
                    nworkers: self.nworkers,
                    nodelets: self.nodelets,
                    factory: Arc::clone(&self.factory),
                }),
                place: Placement::On(NodeletId(k)),
            };
        }
        Op::Quit
    }
}

/// A per-nodelet leader that spawns local workers with a recursive tree,
/// becoming its first local worker.
struct RecursiveLeader {
    nodelet: u32,
    lo: usize,
    hi: usize, // local worker indices [lo, hi)
    nworkers: usize,
    nodelets: u32,
    factory: WorkerFactory,
    worker: Option<Box<dyn Kernel>>,
}

impl RecursiveLeader {
    fn worker_index(&self, local: usize) -> usize {
        self.nodelet as usize + local * self.nodelets as usize
    }
}

impl Kernel for RecursiveLeader {
    fn step(&mut self, ctx: &KernelCtx) -> Op {
        if let Some(w) = self.worker.as_mut() {
            return w.step(ctx);
        }
        if self.hi - self.lo > 1 {
            let mid = self.lo + (self.hi - self.lo) / 2;
            let child = Box::new(RecursiveLeader {
                nodelet: self.nodelet,
                lo: mid,
                hi: self.hi,
                nworkers: self.nworkers,
                nodelets: self.nodelets,
                factory: Arc::clone(&self.factory),
                worker: None,
            });
            self.hi = mid;
            return Op::Spawn {
                kernel: child,
                place: Placement::Here,
            };
        }
        let i = self.worker_index(self.lo);
        debug_assert!(i < self.nworkers);
        self.worker = Some((self.factory)(i));
        self.worker.as_mut().unwrap().step(ctx)
    }
}

/// `recursive_remote_spawn`: splits the nodelet range in half with remote
/// spawns, then becomes the [`RecursiveLeader`] of its own nodelet.
struct RecursiveRemoteSpawner {
    lo: u32,
    hi: u32, // nodelet range [lo, hi)
    nworkers: usize,
    nodelets: u32,
    factory: WorkerFactory,
    leader: Option<RecursiveLeader>,
}

impl Kernel for RecursiveRemoteSpawner {
    fn step(&mut self, ctx: &KernelCtx) -> Op {
        if let Some(l) = self.leader.as_mut() {
            return l.step(ctx);
        }
        while self.hi - self.lo > 1 {
            let mid = self.lo + (self.hi - self.lo) / 2;
            // Skip empty upper halves (more nodelets than workers).
            if (mid..self.hi).all(|k| workers_on(k, self.nworkers, self.nodelets) == 0) {
                self.hi = mid;
                continue;
            }
            let child = Box::new(RecursiveRemoteSpawner {
                lo: mid,
                hi: self.hi,
                nworkers: self.nworkers,
                nodelets: self.nodelets,
                factory: Arc::clone(&self.factory),
                leader: None,
            });
            self.hi = mid;
            return Op::Spawn {
                kernel: child,
                place: Placement::On(NodeletId(mid)),
            };
        }
        let k = self.lo;
        let m = workers_on(k, self.nworkers, self.nodelets);
        if m == 0 {
            return Op::Quit;
        }
        self.leader = Some(RecursiveLeader {
            nodelet: k,
            lo: 0,
            hi: m,
            nworkers: self.nworkers,
            nodelets: self.nodelets,
            factory: Arc::clone(&self.factory),
            worker: None,
        });
        self.leader.as_mut().unwrap().step(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::presets;
    use std::sync::Mutex;

    /// A worker that records where it ran, then quits.
    fn probe_factory(log: Arc<Mutex<Vec<(usize, u32)>>>) -> WorkerFactory {
        Arc::new(move |i| {
            let log = Arc::clone(&log);
            let mut fired = false;
            Box::new(move |ctx: &KernelCtx| {
                if !fired {
                    fired = true;
                    log.lock().unwrap().push((i, ctx.here.0));
                }
                Op::Quit
            })
        })
    }

    fn run_strategy(strategy: SpawnStrategy, nworkers: usize) -> Vec<(usize, u32)> {
        let log = Arc::new(Mutex::new(Vec::new()));
        let factory = probe_factory(Arc::clone(&log));
        let mut e = Engine::new(presets::chick_prototype()).unwrap();
        let root = root_kernel(strategy, nworkers, 8, factory);
        e.spawn_at(NodeletId(0), root).unwrap();
        let _ = e.run().unwrap();
        let mut out = log.lock().unwrap().clone();
        out.sort_unstable();
        out
    }

    #[test]
    fn workers_on_deals_round_robin() {
        // 10 workers over 8 nodelets: nodelets 0,1 get 2; rest get 1.
        assert_eq!(workers_on(0, 10, 8), 2);
        assert_eq!(workers_on(1, 10, 8), 2);
        assert_eq!(workers_on(2, 10, 8), 1);
        assert_eq!(workers_on(7, 10, 8), 1);
        // 4 workers over 8 nodelets: high nodelets idle.
        assert_eq!(workers_on(5, 4, 8), 0);
        let total: usize = (0..8).map(|k| workers_on(k, 13, 8)).sum();
        assert_eq!(total, 13);
    }

    #[test]
    fn every_strategy_runs_every_worker_exactly_once() {
        for s in SpawnStrategy::ALL {
            for n in [1usize, 2, 7, 8, 16, 65] {
                let ran = run_strategy(s, n);
                let ids: Vec<usize> = ran.iter().map(|&(i, _)| i).collect();
                assert_eq!(ids, (0..n).collect::<Vec<_>>(), "{} n={}", s.name(), n);
            }
        }
    }

    #[test]
    fn local_strategies_start_workers_on_nodelet_zero() {
        for s in [SpawnStrategy::Serial, SpawnStrategy::Recursive] {
            let ran = run_strategy(s, 16);
            assert!(
                ran.iter().all(|&(_, here)| here == 0),
                "{} should create all workers on nodelet 0",
                s.name()
            );
        }
    }

    #[test]
    fn remote_strategies_start_workers_on_their_data_nodelet() {
        for s in [SpawnStrategy::SerialRemote, SpawnStrategy::RecursiveRemote] {
            let ran = run_strategy(s, 16);
            for &(i, here) in &ran {
                assert_eq!(
                    here,
                    (i % 8) as u32,
                    "{}: worker {} on wrong nodelet",
                    s.name(),
                    i
                );
            }
        }
    }

    #[test]
    fn remote_strategies_fewer_workers_than_nodelets() {
        for s in [SpawnStrategy::SerialRemote, SpawnStrategy::RecursiveRemote] {
            let ran = run_strategy(s, 3);
            assert_eq!(ran.len(), 3, "{}", s.name());
            for &(i, here) in &ran {
                assert_eq!(here, (i % 8) as u32);
            }
        }
    }

    #[test]
    fn recursive_ramp_is_faster_than_serial() {
        // With many workers that do trivial work, the recursive tree's
        // logarithmic depth must beat the serial loop's linear ramp.
        let time_of = |s: SpawnStrategy| {
            let factory: WorkerFactory =
                Arc::new(|_| Box::new(crate::kernel::ScriptKernel::new(vec![])));
            let mut e = Engine::new(presets::chick_prototype()).unwrap();
            e.spawn_at(NodeletId(0), root_kernel(s, 64, 8, factory))
                .unwrap();
            e.run().unwrap().makespan
        };
        let serial = time_of(SpawnStrategy::Serial);
        let recursive = time_of(SpawnStrategy::Recursive);
        assert!(
            recursive < serial,
            "recursive {recursive} should beat serial {serial}"
        );
    }

    #[test]
    fn strategy_names() {
        assert_eq!(SpawnStrategy::Serial.name(), "serial_spawn");
        assert_eq!(
            SpawnStrategy::RecursiveRemote.name(),
            "recursive_remote_spawn"
        );
        assert!(SpawnStrategy::SerialRemote.is_remote());
        assert!(!SpawnStrategy::Recursive.is_remote());
    }
}
