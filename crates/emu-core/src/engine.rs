//! The discrete-event engine that executes threadlet kernels on the
//! machine model.
//!
//! ## Execution model
//!
//! Each threadlet is driven through a sequence of operations (its
//! [`Kernel`]'s op stream). One event pop re-activates one threadlet (or
//! completes one in-flight transaction); the handler routes the operation
//! through the analytic resources of the owning nodelet:
//!
//! * **Gossamer cores** — a [`MultiServer`] per nodelet. Every op occupies
//!   the issue machinery for its issue cycles; the *issuing thread* is
//!   additionally blocked for the op's pipeline latency. The gap between
//!   aggregate issue throughput and single-thread latency is what makes
//!   bandwidth scale with thread count (Figs 4–5).
//! * **NCDRAM channel** — a [`FifoServer`] per nodelet with 8-byte burst
//!   granularity: fine-grained accesses never over-fetch, the core Emu
//!   advantage in the pointer-chasing comparison.
//! * **Migration engine** — a [`FifoServer`] per nodelet with a finite
//!   migration rate; **any remote load migrates the thread** through it.
//! * **Hardware thread slots** — at most `gcs × 64` threadlet contexts per
//!   nodelet; arrivals beyond that wait, which serializes naive
//!   single-nodelet spawn strategies.
//!
//! All state changes happen inside event handlers, so resources see
//! arrivals in nondecreasing time order and FIFO semantics hold.
//!
//! ## Intra-run parallelism
//!
//! The machine is sharded **one nodelet per shard**: every nodelet owns
//! its own calendar queue, servers, counters, and trace ring, and every
//! handler touches only its own shard's state. Events destined for
//! another nodelet are *sent* — buffered into a per-shard outbox and
//! delivered into the destination's queue at a deterministic exchange
//! point.
//!
//! Time advances with a conservative lookahead `L`
//! ([`Engine::lookahead`]): the minimum latency any cross-nodelet
//! interaction can incur (the smaller of the intra-node and inter-node
//! hop latencies). When `L > 0`, the run proceeds in *epochs*: each
//! window spans `[min next event, min next event + L)`, and within it
//! every shard drains its own queue independently — conservatism
//! guarantees no other shard can inject an event below the horizon.
//! Workers (see [`set_sim_threads`]) each own a contiguous block of
//! shards and exchange cross-shard events through [`Mailboxes`] at a
//! [`SpinBarrier`] between windows. When `L == 0` (degenerate zero-hop
//! configs) the engine falls back to a merged scheduler that interleaves
//! the shards sequentially.
//!
//! Determinism does not depend on the worker count: every event carries
//! an intrinsic `(time, key)` pair — the key namespaces the sending
//! shard above its per-shard send sequence — so the merged event order,
//! every counter, and every trace byte are identical whether the run
//! used one worker or many. The [`PdesSummary`] on the report records
//! how the sharded scheduler ran.

use crate::addr::{GlobalAddr, NodeletId};
use crate::config::MachineConfig;
use crate::fault::{self, SimError};
use crate::kernel::{Kernel, KernelCtx, Op, Placement, ThreadId};
use crate::metrics::{
    NodeletCounters, NodeletOccupancy, PdesPhaseProfile, PdesSummary, PhaseBreakdown, RunReport,
};
use crate::trace::{self, TraceEvent, TraceKind, TraceLog, TraceRecorder};
use desim::arena::{Arena, Idx as TRef};
use desim::pdes::{EdgeRings, EpochGate, GATE_DIRTY, GATE_ERROR};
use desim::queue::EventQueue;
use desim::server::{FifoServer, Grant, Link, MultiServer};
use desim::stats::{LogHistogram, Summary};
use desim::time::Time;
use desim::timeline::{Gauge, Timeline};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Process-global default worker count for [`Engine::run`]; `0` means
/// "not yet resolved" (falls back to `EMU_SIM_THREADS`, then 1).
static SIM_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Set the process-global default number of simulation workers used by
/// every subsequently-run engine that did not call
/// [`Engine::set_sim_threads`]. Values are clamped to at least 1.
pub fn set_sim_threads(n: usize) {
    SIM_THREADS.store(n.max(1), Ordering::Relaxed);
}

/// The process-global default simulation worker count: the last value
/// passed to [`set_sim_threads`], else `EMU_SIM_THREADS` from the
/// environment, else 1 (fully sequential).
pub fn sim_threads() -> usize {
    let v = SIM_THREADS.load(Ordering::Relaxed);
    if v != 0 {
        return v;
    }
    let n = std::env::var("EMU_SIM_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1);
    SIM_THREADS.store(n, Ordering::Relaxed);
    n
}

/// Process-global default for PDES phase profiling; 0 = unresolved
/// (falls back to `EMU_PDES_PHASES`), 1 = off, 2 = on.
static PHASE_PROFILE: AtomicUsize = AtomicUsize::new(0);

/// Set the process-global default for wall-clock phase profiling of
/// the epoch scheduler, used by every subsequently constructed engine
/// that does not call [`Engine::enable_phase_profile`]. Off by
/// default: profiled reports carry host timings and are therefore not
/// byte-identical run to run.
pub fn set_phase_profile(on: bool) {
    PHASE_PROFILE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// The process-global phase-profiling default: the last value passed
/// to [`set_phase_profile`], else `EMU_PDES_PHASES=1` from the
/// environment, else off.
pub fn phase_profile() -> bool {
    match PHASE_PROFILE.load(Ordering::Relaxed) {
        0 => {
            let on = std::env::var("EMU_PDES_PHASES").is_ok_and(|v| v == "1");
            PHASE_PROFILE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
            on
        }
        v => v == 2,
    }
}

/// Process-global default for epoch fusion; 0 = unresolved (falls back
/// to `EMU_PDES_FUSE`), 1 = off, 2 = on.
static PDES_FUSE: AtomicUsize = AtomicUsize::new(0);

/// Set the process-global default for epoch fusion (committing clean
/// windows on a single gate crossing instead of two), used by every
/// subsequently constructed engine that does not call
/// [`Engine::enable_fuse`]. Fusion changes only wall-clock behavior;
/// results are byte-identical either way.
pub fn set_pdes_fuse(on: bool) {
    PDES_FUSE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// The process-global epoch-fusion default: the last value passed to
/// [`set_pdes_fuse`], else `EMU_PDES_FUSE` from the environment (`0`
/// disables), else on.
pub fn pdes_fuse() -> bool {
    match PDES_FUSE.load(Ordering::Relaxed) {
        0 => {
            let on = std::env::var("EMU_PDES_FUSE").map_or(true, |v| v != "0");
            PDES_FUSE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
            on
        }
        v => v == 2,
    }
}

/// Process-global default for adaptive shard merging; 0 = unresolved
/// (falls back to `EMU_PDES_MERGE`), 1 = off, 2 = on.
static PDES_MERGE: AtomicUsize = AtomicUsize::new(0);

/// Set the process-global default for adaptive shard merging (collapsing
/// under-loaded shards onto shared workers), used by every subsequently
/// constructed engine that does not call [`Engine::enable_merge`].
/// Merging changes only worker placement; results are byte-identical
/// either way.
pub fn set_pdes_merge(on: bool) {
    PDES_MERGE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// The process-global shard-merging default: the last value passed to
/// [`set_pdes_merge`], else `EMU_PDES_MERGE` from the environment (`0`
/// disables), else on.
pub fn pdes_merge() -> bool {
    match PDES_MERGE.load(Ordering::Relaxed) {
        0 => {
            let on = std::env::var("EMU_PDES_MERGE").map_or(true, |v| v != "0");
            PDES_MERGE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
            on
        }
        v => v == 2,
    }
}

/// Process-global default per-edge ring capacity; 0 = unresolved (falls
/// back to `EMU_PDES_RING`, then 512).
static PDES_RING: AtomicUsize = AtomicUsize::new(0);

/// Set the process-global default capacity (in messages) of each SPSC
/// exchange ring, clamped to at least 1 and rounded up to a power of
/// two at ring construction. Overflow past the capacity spills to a
/// mutex-guarded side list, so any capacity is correct; bigger rings
/// just lock less.
pub fn set_pdes_ring(capacity: usize) {
    PDES_RING.store(capacity.max(1), Ordering::Relaxed);
}

/// The process-global ring-capacity default: the last value passed to
/// [`set_pdes_ring`], else `EMU_PDES_RING` from the environment, else
/// 512.
pub fn pdes_ring() -> usize {
    let v = PDES_RING.load(Ordering::Relaxed);
    if v != 0 {
        return v;
    }
    let n = std::env::var("EMU_PDES_RING")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(512);
    PDES_RING.store(n, Ordering::Relaxed);
    n
}

/// Process-global default merge threshold, stored as `threshold + 1`;
/// 0 = unresolved (falls back to `EMU_PDES_MERGE_MIN`, then 16).
static PDES_MERGE_MIN: AtomicU64 = AtomicU64::new(0);

/// Set the process-global merge threshold: a shard counts as *loaded*
/// when it holds at least this many pending events at run start, and
/// the merge planner sizes the worker pool to the loaded-shard count.
pub fn set_pdes_merge_min(threshold: u64) {
    PDES_MERGE_MIN.store(threshold.saturating_add(1), Ordering::Relaxed);
}

/// The process-global merge-threshold default: the last value passed to
/// [`set_pdes_merge_min`], else `EMU_PDES_MERGE_MIN` from the
/// environment, else 16.
pub fn pdes_merge_min() -> u64 {
    let v = PDES_MERGE_MIN.load(Ordering::Relaxed);
    if v != 0 {
        return v - 1;
    }
    let n = std::env::var("EMU_PDES_MERGE_MIN")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(16);
    PDES_MERGE_MIN.store(n.saturating_add(1), Ordering::Relaxed);
    n
}

/// Bit position of the shard namespace within an event key. Runtime keys
/// are `(shard + 1) << KEY_SHIFT | send_seq`; pre-run spawns use bare
/// sequence numbers (namespace 0), which sort before all runtime keys.
const KEY_SHIFT: u32 = 40;

/// Internal engine events. One pop = one state transition. Thread
/// contexts live in their shard's [`Arena`]; events carry only the
/// 8-byte generational handle, so the hot pop loop moves no boxes and
/// chases no per-event heap pointers.
#[derive(Clone)]
enum Event {
    /// Thread context arrives at a nodelet (spawn or migration); it must
    /// acquire a hardware slot before issuing.
    Arrive(TRef),
    /// Thread holds a slot and may issue its next operation.
    Ready(TRef),
    /// A load issued earlier now reaches the memory channel.
    ChannelRead(TRef, u32),
    /// A (possibly remote) store/atomic packet reaches this nodelet's
    /// channel (the destination is the shard the event is scheduled on).
    ChannelWrite {
        bytes: u32,
        atomic: bool,
        from_remote: bool,
    },
    /// A departing context reaches its migration engine.
    MigrateOut(TRef),
    /// A cross-node migration leaves the migration engine toward the
    /// RapidIO fabric (drop/retransmit decisions happen here, on the
    /// source nodelet).
    LinkSend(TRef),
    /// A cross-node migration enters the node's RapidIO interface, which
    /// lives on the node's head nodelet.
    LinkTransit(TRef),
    /// A hardware slot frees on this nodelet (context departed or quit).
    SlotRelease,
}

/// The cross-shard wire format. Arena handles are meaningless outside
/// their shard, so a departing context is extracted from the source
/// arena, shipped by value, and re-inserted at the destination. Only
/// three event kinds ever cross shards: thread arrivals, link transits
/// toward a remote head nodelet, and posted store/atomic packets.
enum WireEv {
    /// A migrating (or remotely spawned) context arriving at `dest`.
    Arrive(Thread),
    /// A context entering a remote node's RapidIO interface.
    LinkTransit(Thread),
    /// A posted store/atomic packet (no thread context attached).
    ChannelWrite {
        bytes: u32,
        atomic: bool,
        from_remote: bool,
    },
}

struct Thread {
    tid: ThreadId,
    kernel: Option<Box<dyn Kernel>>,
    loc: NodeletId,
    home: NodeletId,
    dest: NodeletId,
    /// Operation to re-execute after a migration completes.
    resume: Option<Op>,
    in_flight_migration: bool,
    mig_issue_at: Time,
    migrations: u64,
    /// Consecutive NACKs of the currently outstanding migration.
    mig_attempts: u32,
    /// Consecutive drops of the currently outstanding link packet.
    link_attempts: u32,
    /// Remote-spawned context that has not yet reached its target; the
    /// spawn is counted (and traced) on arrival so it lands on the shard
    /// that owns the counter.
    newborn: bool,
    /// When the currently outstanding operation began.
    op_started: Time,
    /// What kind of delay the outstanding operation is charged to.
    op_kind: OpKind,
}

impl Thread {
    /// Duplicate this context for an engine snapshot, if its kernel
    /// (and any kernel riding in a pending `resume` op) can fork.
    fn try_fork(&self) -> Option<Thread> {
        let kernel = match &self.kernel {
            Some(k) => Some(k.fork()?),
            None => None,
        };
        let resume = match &self.resume {
            Some(op) => Some(crate::kernel::fork_op(op)?),
            None => None,
        };
        Some(Thread {
            tid: self.tid,
            kernel,
            loc: self.loc,
            home: self.home,
            dest: self.dest,
            resume,
            in_flight_migration: self.in_flight_migration,
            mig_issue_at: self.mig_issue_at,
            migrations: self.migrations,
            mig_attempts: self.mig_attempts,
            link_attempts: self.link_attempts,
            newborn: self.newborn,
            op_started: self.op_started,
            op_kind: self.op_kind,
        })
    }
}

/// Where a threadlet's wall time goes — the paper's §III-D "other system
/// overheads" made measurable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum OpKind {
    None,
    Compute,
    Memory,
    Migration,
    StoreIssue,
    Spawn,
}

/// Aggregate threadlet time by activity, summed over all threads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimeBreakdown {
    /// Blocked on compute (including core queueing and pipeline latency).
    pub compute: Time,
    /// Blocked on local loads (issue, pipeline, channel queue, DRAM).
    pub memory: Time,
    /// Blocked migrating (issue, engine queue, hops, destination slot
    /// wait, and re-executing the interrupted read locally).
    pub migration: Time,
    /// Blocked posting stores/atomics (issue + pipeline only).
    pub store_issue: Time,
    /// Blocked executing spawn instructions.
    pub spawn: Time,
}

impl TimeBreakdown {
    /// Total accounted thread-time.
    pub fn total(&self) -> Time {
        self.compute + self.memory + self.migration + self.store_issue + self.spawn
    }

    /// Fraction of total thread-time in `part` (helper for reports).
    pub fn fraction(&self, part: Time) -> f64 {
        let t = self.total();
        if t == Time::ZERO {
            0.0
        } else {
            part.ps() as f64 / t.ps() as f64
        }
    }

    fn absorb(&mut self, other: &TimeBreakdown) {
        self.compute += other.compute;
        self.memory += other.memory;
        self.migration += other.migration;
        self.store_issue += other.store_issue;
        self.spawn += other.spawn;
    }
}

#[derive(Clone)]
struct Nodelet {
    cores: MultiServer,
    channel: FifoServer,
    mig_engine: FifoServer,
    slots_free: u32,
    /// Hardware slots currently held by resident threadlets (the
    /// live-threadlet gauge samples this).
    in_use: u32,
    waiters: VecDeque<TRef>,
    counters: NodeletCounters,
}

/// Optional per-shard time series (enabled via [`Engine::enable_timeline`]).
#[derive(Clone)]
struct ShardTl {
    core: Timeline,
    channel: Timeline,
    migration: Timeline,
    queue_depth: Gauge,
    live_threads: Gauge,
}

/// One cross-shard event in flight between epoch gate crossings.
struct OutMsg {
    dest: u32,
    at: Time,
    key: u64,
    /// Window the message was posted in, stamped by the scheduler at
    /// post time. The depth high-water mark batches deliveries by this
    /// field rather than by drain round: a fused drain may pick up mail
    /// another worker published moments after the crossing (harmless
    /// for results — the event lies beyond the open window and queues
    /// order by intrinsic key), so only the posting window is a
    /// deterministic batch identity.
    epoch: u64,
    ev: WireEv,
}

/// One nodelet's slice of the machine: its event queue, resources,
/// counters, statistics, and cross-shard outbox. Handlers may touch only
/// their own shard, which is what makes window execution race-free.
struct Shard {
    id: u32,
    q: EventQueue<Event>,
    /// Resident thread contexts, in one flat slab; queued events refer
    /// into it by generational handle.
    arena: Arena<Thread>,
    nl: Nodelet,
    /// The node's RapidIO link; present only on head nodelets
    /// (`id % nodelets_per_node == 0`), which own the node's interface.
    link: Option<Link>,
    mig_latency: LogHistogram,
    /// Lifetime migration counts, recorded as threadlets quit here.
    migs_per_thread: Summary,
    /// Alive-thread delta contributed by this shard (spawns here minus
    /// quits here); the machine-wide sum is the live population.
    live: i64,
    spawned: u64,
    next_tid: u32,
    /// Per-shard event sequence; every schedule (local or remote)
    /// consumes one, so within-shard order equals insertion order.
    send_seq: u64,
    events: u64,
    fault_draws: u64,
    /// Key of the event currently dispatching (error attribution).
    cur_key: u64,
    breakdown: TimeBreakdown,
    recorder: Option<TraceRecorder>,
    tl: Option<ShardTl>,
    outbox: Vec<OutMsg>,
    /// Cross-shard events sent / delivered (conservation-checked).
    sent: u64,
    delivered: u64,
    /// Per-batch delivery counts for the two most recent exchange
    /// batches, as `(mark, count)` slots. Two batches can be live at
    /// once: a drain may pick up the next window's early-published
    /// mail interleaved (per-edge) with the previous window's, so the
    /// count must key on the mark, not on delivery adjacency.
    mail_batch: [(u64, u64); 2],
    /// Most deliveries this shard absorbed in any single exchange
    /// batch — deterministic, so it lives in [`PdesSummary`].
    mail_hwm: u64,
    /// Smallest cross-shard scheduling delay this shard produced.
    min_cross_delay: Time,
    /// Simulated time of this shard's last dispatched event.
    now: Time,
    /// First fatal error raised by a handler, tagged with the `(time,
    /// key)` of the event that raised it so the globally-first error
    /// wins regardless of worker count.
    error: Option<(Time, u64, SimError)>,
}

impl Shard {
    /// Deliver one cross-shard message into this shard's queue,
    /// tracking the per-exchange-batch depth high-water mark. `mark`
    /// identifies the exchange batch — the posting window under the
    /// epoch schedulers, the dispatch count under the merged fallback.
    /// It must be a function of simulated content only (never of drain
    /// timing), or the high-water mark stops being deterministic.
    #[inline]
    fn absorb_mail(&mut self, mark: u64, m: OutMsg) {
        let slot = if self.mail_batch[0].0 == mark {
            0
        } else if self.mail_batch[1].0 == mark {
            1
        } else {
            // Evict the older batch: marks only move forward, so a
            // mark smaller than both live ones can never recur.
            let older = usize::from(self.mail_batch[0].0 > self.mail_batch[1].0);
            self.mail_batch[older] = (mark, 0);
            older
        };
        self.mail_batch[slot].1 += 1;
        if self.mail_batch[slot].1 > self.mail_hwm {
            self.mail_hwm = self.mail_batch[slot].1;
        }
        let ev = match m.ev {
            WireEv::Arrive(t) => Event::Arrive(self.arena.insert(t)),
            WireEv::LinkTransit(t) => Event::LinkTransit(self.arena.insert(t)),
            WireEv::ChannelWrite {
                bytes,
                atomic,
                from_remote,
            } => Event::ChannelWrite {
                bytes,
                atomic,
                from_remote,
            },
        };
        self.q.schedule_keyed(m.at, m.key, ev);
        self.delivered += 1;
    }

    /// Duplicate this shard for an engine snapshot. Callable only at an
    /// epoch barrier (outbox empty — in-flight mail has no stable
    /// serialization). Returns `None` if any resident kernel declines
    /// to fork.
    fn try_clone(&self) -> Option<Shard> {
        debug_assert!(self.outbox.is_empty(), "snapshot with mail in flight");
        Some(Shard {
            id: self.id,
            q: self.q.clone(),
            arena: self.arena.try_clone_with(Thread::try_fork)?,
            nl: self.nl.clone(),
            link: self.link.clone(),
            mig_latency: self.mig_latency.clone(),
            migs_per_thread: self.migs_per_thread.clone(),
            live: self.live,
            spawned: self.spawned,
            next_tid: self.next_tid,
            send_seq: self.send_seq,
            events: self.events,
            fault_draws: self.fault_draws,
            cur_key: self.cur_key,
            breakdown: self.breakdown,
            recorder: self.recorder.clone(),
            tl: self.tl.clone(),
            outbox: Vec::new(),
            sent: self.sent,
            delivered: self.delivered,
            mail_batch: self.mail_batch,
            mail_hwm: self.mail_hwm,
            min_cross_delay: self.min_cross_delay,
            now: self.now,
            error: self.error.clone(),
        })
    }
}

/// Wall-clock phase attribution for one epoch-loop worker. When
/// disarmed (`on == false`) every call is a predictable branch — the
/// un-profiled scheduler never reads the clock.
struct PhaseClock {
    on: bool,
    start: std::time::Instant,
    last: std::time::Instant,
    drain: u64,
    barrier: u64,
    exchange: u64,
    merge: u64,
}

/// Which phase the time since the previous mark belongs to.
#[derive(Clone, Copy)]
enum Phase {
    Drain,
    Barrier,
    Exchange,
    Merge,
}

impl PhaseClock {
    fn new(on: bool) -> Self {
        let now = std::time::Instant::now();
        PhaseClock {
            on,
            start: now,
            last: now,
            drain: 0,
            barrier: 0,
            exchange: 0,
            merge: 0,
        }
    }

    /// Attribute the time since the previous mark to `phase`.
    #[inline]
    fn mark(&mut self, phase: Phase) {
        if !self.on {
            return;
        }
        let now = std::time::Instant::now();
        let ns = now.duration_since(self.last).as_nanos() as u64;
        self.last = now;
        match phase {
            Phase::Drain => self.drain += ns,
            Phase::Barrier => self.barrier += ns,
            Phase::Exchange => self.exchange += ns,
            Phase::Merge => self.merge += ns,
        }
    }

    /// The finished breakdown; `loop_ns` spans first to last mark, so
    /// the four phases partition it exactly.
    fn into_breakdown(self, worker: u32) -> PhaseBreakdown {
        PhaseBreakdown {
            worker,
            drain_ns: self.drain,
            barrier_ns: self.barrier,
            exchange_ns: self.exchange,
            merge_ns: self.merge,
            loop_ns: self.last.duration_since(self.start).as_nanos() as u64,
        }
    }
}

/// What one scheduler run did, beyond the per-shard counters: the epoch
/// count plus the synchronization stats that feed [`PdesSummary`] and
/// [`PdesPhaseProfile`]. `epochs` and `clean` depend only on simulated
/// content, so every scheduler produces the same values for the same
/// workload; `crossings` and `fused` describe how the run was executed.
#[derive(Default, Clone, Copy)]
struct SchedStats {
    /// Lookahead windows drained.
    epochs: u64,
    /// Windows after which no shard had posted cross-shard mail.
    clean: u64,
    /// Gate/barrier crossings the workers performed (0 when inline).
    crossings: u64,
    /// Clean windows committed on a single gate crossing (0 when epoch
    /// fusion is disabled or the run was inline/merged).
    fused: u64,
}

/// A cooperative cancellation flag paired with the wall-clock deadline
/// (in milliseconds) it stands for — see [`Engine::set_cancel`].
type Cancel = (Arc<AtomicBool>, u64);

/// The Emu machine simulator. Construct, seed initial threadlets with
/// [`Engine::spawn_at`], then [`Engine::run`] to completion — or keep
/// the engine warm across runs with [`Engine::run_once`] +
/// [`Engine::reset`].
pub struct Engine {
    cfg: MachineConfig,
    shards: Vec<Shard>,
    /// Nearest-live-nodelet map for dead-nodelet redirection (identity
    /// when the fault plan marks nothing dead).
    redirect: Vec<u32>,
    /// Pre-run spawn sequence; bare keys in namespace 0 sort before all
    /// runtime keys, so initial arrivals pop first at time zero.
    init_seq: u64,
    /// Per-engine worker-count override (else the process global).
    sim_threads: Option<usize>,
    /// Ring capacity for the merged trace (0 when tracing is off).
    trace_capacity: usize,
    /// Timeline bucket width, remembered so [`Engine::reset`] can re-arm
    /// the per-shard series ([`None`] when timelines are off).
    timeline_bucket: Option<Time>,
    /// Per-run event-cap override (takes precedence over the fault
    /// plan's `max_events`; [`None`] defers to the plan).
    event_cap: Option<u64>,
    /// Cooperative wall-clock cancellation flag for the current run.
    cancel: Option<Cancel>,
    /// Whether the epoch schedulers measure their wall-clock phase
    /// split (see [`Engine::enable_phase_profile`]).
    phase_profile: bool,
    /// Whether clean windows commit on a single gate crossing (see
    /// [`Engine::enable_fuse`]).
    fuse: bool,
    /// Whether the run-start planner may collapse under-loaded shards
    /// onto shared workers (see [`Engine::enable_merge`]).
    merge: bool,
    /// Pending events a shard needs at run start to count as loaded for
    /// the merge planner.
    merge_min: u64,
    /// Per-edge SPSC exchange-ring capacity in messages.
    ring_capacity: usize,
    /// Profile captured by the last run, consumed by the report.
    pending_phases: Option<PdesPhaseProfile>,
    /// Clean-window count of the last run, consumed by the report.
    pending_clean: u64,
    /// Capture a barrier snapshot every this many epochs (0 = never).
    checkpoint_every: u64,
    /// Most recent barrier snapshot of the current/last run.
    pending_snapshot: Option<EngineSnapshot>,
    /// `(epochs, clean)` already accounted by the run a restored
    /// snapshot came from; the next run continues from these.
    resume_base: Option<(u64, u64)>,
}

/// A consistent cut of a running engine, captured at a PDES epoch
/// barrier (see [`Engine::set_checkpoint_every`]): per-shard event
/// queues, thread arenas, servers, counters, and fault-RNG draw
/// counters, plus the scheduler progress needed to resume. Opaque —
/// produce with [`Engine::take_snapshot`], consume with
/// [`Engine::restore`]. A restored run replays the remaining windows
/// exactly, so its report is byte-identical to the uninterrupted run's;
/// one snapshot can seed many runs (warm-started variants forking from
/// a common prefix).
pub struct EngineSnapshot {
    /// Debug rendering of the owning config; restore refuses a
    /// mismatched engine.
    cfg_key: String,
    shards: Vec<Shard>,
    init_seq: u64,
    /// Epoch windows drained before the cut.
    epochs: u64,
    /// Clean windows counted before the cut.
    clean: u64,
}

impl EngineSnapshot {
    /// Epoch windows the captured run had drained at the cut.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }
}

/// Per-nodelet time series of one run (present when
/// [`Engine::enable_timeline`] was called).
#[derive(Debug, Clone)]
pub struct RunTimelines {
    /// Bucket width used.
    pub bucket: Time,
    /// Gossamer-core occupancy per nodelet.
    pub core: Vec<Timeline>,
    /// Memory-channel occupancy per nodelet.
    pub channel: Vec<Timeline>,
    /// Migration-engine occupancy per nodelet.
    pub migration: Vec<Timeline>,
    /// Slot-wait queue depth per nodelet (threads parked for a context).
    pub queue_depth: Vec<Gauge>,
    /// Resident (slot-holding) threadlets per nodelet.
    pub live_threads: Vec<Gauge>,
}

impl Engine {
    /// Build an engine over `cfg`.
    ///
    /// # Errors
    /// [`SimError::InvalidConfig`] if the configuration fails
    /// [`MachineConfig::validate`] or exceeds the sharded scheduler's
    /// nodelet limit; [`SimError::AllNodeletsDead`] if the fault plan
    /// leaves no live nodelet.
    pub fn new(cfg: MachineConfig) -> Result<Self, SimError> {
        cfg.validate().map_err(SimError::InvalidConfig)?;
        if cfg.total_nodelets() >= (1 << (64 - KEY_SHIFT as u64)) as u32 {
            return Err(SimError::InvalidConfig(format!(
                "total nodelets {} exceeds the sharded scheduler's limit of {}",
                cfg.total_nodelets(),
                (1u64 << (64 - KEY_SHIFT as u64)) - 1
            )));
        }
        let redirect = fault::redirect_map(&cfg.faults, cfg.total_nodelets())?;
        let shards = Self::build_shards(&cfg);
        let mut engine = Engine {
            cfg,
            shards,
            redirect,
            init_seq: 0,
            sim_threads: None,
            trace_capacity: 0,
            timeline_bucket: None,
            event_cap: None,
            cancel: None,
            phase_profile: phase_profile(),
            fuse: pdes_fuse(),
            merge: pdes_merge(),
            merge_min: pdes_merge_min(),
            ring_capacity: pdes_ring(),
            pending_phases: None,
            pending_clean: 0,
            checkpoint_every: 0,
            pending_snapshot: None,
            resume_base: None,
        };
        // Benchmark runners build engines internally; the process-global
        // telemetry config (see [`crate::trace::set_global`]) lets the
        // harness trace them without plumbing flags through every runner.
        let telemetry = trace::global();
        if telemetry.event_capacity > 0 {
            engine.enable_trace(telemetry.event_capacity);
        }
        if let Some(bucket) = telemetry.timeline_bucket {
            engine.enable_timeline(bucket)?;
        }
        Ok(engine)
    }

    /// Fresh per-nodelet shards for `cfg` — the zero state every run
    /// starts from, shared by [`Engine::new`] and [`Engine::reset`].
    fn build_shards(cfg: &MachineConfig) -> Vec<Shard> {
        let n = cfg.total_nodelets() as usize;
        // Pending events and live contexts on a shard are both bounded
        // by its slot population (plus in-flight posted stores), so
        // sizing off the per-nodelet slots keeps steady-state scheduling
        // away from reallocation; the cap keeps tiny runs cheap.
        let reserve = (cfg.slots_per_nodelet() as usize).min(4096);
        (0..n as u32)
            .map(|id| Shard {
                id,
                q: EventQueue::with_capacity(reserve),
                arena: Arena::with_capacity(reserve),
                nl: Nodelet {
                    cores: MultiServer::new(cfg.gcs_per_nodelet as usize),
                    channel: FifoServer::new(),
                    mig_engine: FifoServer::new(),
                    slots_free: cfg.slots_per_nodelet(),
                    in_use: 0,
                    waiters: VecDeque::new(),
                    counters: NodeletCounters::default(),
                },
                link: (id % cfg.nodelets_per_node == 0)
                    .then(|| Link::new(cfg.rapidio_bytes_per_sec, Time::ZERO)),
                mig_latency: LogHistogram::new(),
                migs_per_thread: Summary::new(),
                live: 0,
                spawned: 0,
                next_tid: 0,
                send_seq: 0,
                events: 0,
                fault_draws: 0,
                cur_key: 0,
                breakdown: TimeBreakdown::default(),
                recorder: None,
                tl: None,
                outbox: Vec::new(),
                sent: 0,
                delivered: 0,
                // Mark 0 never occurs (batch identifiers start at 1),
                // so zeroed slots are evictable empties.
                mail_batch: [(0, 0), (0, 0)],
                mail_hwm: 0,
                min_cross_delay: Time::MAX,
                now: Time::ZERO,
                error: None,
            })
            .collect()
    }

    /// The machine configuration this engine simulates.
    pub fn cfg(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Return the engine to its just-constructed state so it can run
    /// another workload: every shard is rebuilt from the configuration
    /// (fresh queues, servers, counters, statistics), the pre-run spawn
    /// sequence restarts at zero, and any per-run event cap or
    /// cancellation flag is cleared. Trace/timeline settings and the
    /// worker-count override survive. A reset engine is
    /// indistinguishable from a cold [`Engine::new`] of the same
    /// configuration — reports from warm reuse are byte-identical to
    /// cold runs (the `simd` warm pool's safety invariant).
    pub fn reset(&mut self) {
        self.shards = Self::build_shards(&self.cfg);
        self.init_seq = 0;
        self.event_cap = None;
        self.cancel = None;
        self.pending_phases = None;
        self.pending_clean = 0;
        self.pending_snapshot = None;
        self.resume_base = None;
        let cap = self.trace_capacity;
        if cap > 0 {
            for s in &mut self.shards {
                s.recorder = Some(TraceRecorder::new(cap));
            }
        }
        if let Some(bucket) = self.timeline_bucket {
            self.enable_timeline(bucket)
                .expect("bucket was valid when first enabled");
        }
    }

    /// Cap the next run at `cap` dispatched events, overriding the fault
    /// plan's `max_events` watchdog. `Some(0)` and [`None`] both restore
    /// the plan's own setting (0 there means uncapped). The cap trips as
    /// [`SimError::EventCapExceeded`] — deterministic, unlike the
    /// wall-clock deadline of [`Engine::set_cancel`].
    pub fn set_event_cap(&mut self, cap: Option<u64>) {
        self.event_cap = cap.filter(|&n| n > 0);
    }

    /// Arm cooperative wall-clock cancellation: the schedulers poll
    /// `flag` every ~1k events and abort the run with
    /// [`SimError::DeadlineExceeded`] (reporting `deadline_ms`) once it
    /// reads `true`. The flag is typically set by an external timer
    /// thread; the engine itself never measures wall time, so runs that
    /// finish before the flag trips stay byte-identical to uncancelled
    /// runs. Cleared by [`Engine::reset`] or [`Engine::clear_cancel`].
    pub fn set_cancel(&mut self, flag: Arc<AtomicBool>, deadline_ms: u64) {
        self.cancel = Some((flag, deadline_ms));
    }

    /// Disarm [`Engine::set_cancel`]'s cancellation flag.
    pub fn clear_cancel(&mut self) {
        self.cancel = None;
    }

    /// Override the worker count for this engine's run (clamped to at
    /// least 1), independent of the process-global [`set_sim_threads`].
    /// Any count yields byte-identical results; counts above the shard
    /// count are truncated to one shard per worker.
    pub fn set_sim_threads(&mut self, n: usize) {
        self.sim_threads = Some(n.max(1));
    }

    /// Turn wall-clock phase profiling of the epoch scheduler on or
    /// off for this engine (overriding the process-global
    /// [`set_phase_profile`] default captured at construction). When
    /// on, [`RunReport::phases`](crate::metrics::RunReport::phases)
    /// carries a [`PdesPhaseProfile`]; when off (the default) it is
    /// `None`, keeping reports byte-identical across worker counts and
    /// repeat runs. Survives [`Engine::reset`] like the trace settings.
    pub fn enable_phase_profile(&mut self, on: bool) {
        self.phase_profile = on;
    }

    /// Turn epoch fusion on or off for this engine (overriding the
    /// process-global [`set_pdes_fuse`] default captured at
    /// construction). Fusion commits windows after which no cross-shard
    /// mail was posted on a single gate crossing instead of two — a
    /// pure wall-clock optimization; results are byte-identical either
    /// way. Survives [`Engine::reset`].
    pub fn enable_fuse(&mut self, on: bool) {
        self.fuse = on;
    }

    /// Turn adaptive shard merging on or off for this engine
    /// (overriding the process-global [`set_pdes_merge`] default
    /// captured at construction). When on, the run-start planner sizes
    /// the worker pool to the shards that actually hold work and
    /// balances shards across it by pending-event count; placement is
    /// deterministic and recorded in the phase profile. Results are
    /// byte-identical either way. Survives [`Engine::reset`].
    pub fn enable_merge(&mut self, on: bool) {
        self.merge = on;
    }

    /// Override the merge planner's loaded-shard threshold for this
    /// engine (see [`set_pdes_merge_min`]). Survives [`Engine::reset`].
    pub fn set_merge_min(&mut self, threshold: u64) {
        self.merge_min = threshold;
    }

    /// Override the per-edge SPSC exchange-ring capacity for this
    /// engine (clamped to at least 1; see [`set_pdes_ring`]). Survives
    /// [`Engine::reset`].
    pub fn set_ring_capacity(&mut self, capacity: usize) {
        self.ring_capacity = capacity.max(1);
    }

    /// Capture a barrier snapshot every `n` epoch windows during runs
    /// (0 disables). Checkpointing forces the inline epoch scheduler —
    /// the cut must be taken between windows with no worker mid-drain —
    /// but cannot change results: every scheduler commits the identical
    /// window sequence. Only kernels that implement
    /// [`Kernel::fork`](crate::kernel::Kernel::fork) can be captured; a
    /// barrier where some resident kernel declines keeps the previous
    /// snapshot instead. Survives [`Engine::reset`] like the trace
    /// settings.
    pub fn set_checkpoint_every(&mut self, n: u64) {
        self.checkpoint_every = n;
    }

    /// Take the most recent epoch-barrier snapshot captured during the
    /// last run (then forget it). `None` if checkpointing was off, the
    /// run never reached a checkpointed barrier, or a resident kernel
    /// declined to fork at every eligible barrier.
    pub fn take_snapshot(&mut self) -> Option<EngineSnapshot> {
        self.pending_snapshot.take()
    }

    /// Rewind this engine to `snap`'s barrier cut. The next
    /// [`Engine::run_once`] resumes the captured run from that barrier
    /// and produces a report byte-identical to the uninterrupted run's.
    /// The snapshot is cloned, not consumed — several engines (or
    /// repeated runs) can fork from the same prefix.
    ///
    /// # Errors
    /// [`SimError::InvalidConfig`] if `snap` came from a different
    /// machine configuration, or if a captured kernel can no longer be
    /// duplicated.
    pub fn restore(&mut self, snap: &EngineSnapshot) -> Result<(), SimError> {
        let key = format!("{:?}", self.cfg);
        if key != snap.cfg_key {
            return Err(SimError::InvalidConfig(
                "snapshot was captured under a different machine configuration".into(),
            ));
        }
        let mut shards = Vec::with_capacity(snap.shards.len());
        for s in &snap.shards {
            shards.push(s.try_clone().ok_or_else(|| {
                SimError::InvalidConfig("snapshot holds a kernel that cannot fork".into())
            })?);
        }
        self.shards = shards;
        self.init_seq = snap.init_seq;
        self.resume_base = Some((snap.epochs, snap.clean));
        self.pending_snapshot = None;
        self.pending_phases = None;
        self.pending_clean = 0;
        Ok(())
    }

    /// Capture the current barrier state as the pending snapshot.
    /// Callable only between windows (outboxes empty). Silently keeps
    /// the previous snapshot when a resident kernel declines to fork.
    fn capture_snapshot(&mut self, epochs: u64, clean: u64) {
        let mut shards = Vec::with_capacity(self.shards.len());
        for s in &self.shards {
            match s.try_clone() {
                Some(c) => shards.push(c),
                None => return,
            }
        }
        self.pending_snapshot = Some(EngineSnapshot {
            cfg_key: format!("{:?}", self.cfg),
            shards,
            init_seq: self.init_seq,
            epochs,
            clean,
        });
    }

    /// The conservative lookahead of this machine: the minimum simulated
    /// latency any cross-nodelet interaction can incur. Epoch windows
    /// are exactly this wide. [`Time::MAX`] on a single-nodelet machine
    /// (no cross-shard path exists); [`Time::ZERO`] forces the merged
    /// sequential scheduler.
    pub fn lookahead(&self) -> Time {
        let multi_nodelet = self.cfg.nodelets_per_node > 1;
        let multi_node = self.cfg.nodes > 1;
        match (multi_nodelet, multi_node) {
            (true, true) => self.cfg.intra_node_hop.min(self.cfg.inter_node_hop),
            (true, false) => self.cfg.intra_node_hop,
            (false, true) => self.cfg.inter_node_hop,
            (false, false) => Time::MAX,
        }
    }

    /// Record per-nodelet time series (occupancy timelines plus
    /// queue-depth and live-threadlet gauges) with buckets of `bucket`
    /// width (see [`RunTimelines`] on the report).
    ///
    /// # Errors
    /// [`SimError::InvalidConfig`] if `bucket` is zero.
    pub fn enable_timeline(&mut self, bucket: Time) -> Result<(), SimError> {
        let invalid = |e: desim::timeline::ZeroBucket| {
            SimError::InvalidConfig(format!("timeline bucket: {e}"))
        };
        let tl = Timeline::new(bucket).map_err(invalid)?;
        let gauge = Gauge::new(bucket).map_err(invalid)?;
        self.timeline_bucket = Some(bucket);
        for s in &mut self.shards {
            s.tl = Some(ShardTl {
                core: tl.clone(),
                channel: tl.clone(),
                migration: tl.clone(),
                queue_depth: gauge.clone(),
                live_threads: gauge.clone(),
            });
        }
        Ok(())
    }

    /// Record structured trace events into a ring of at most `capacity`
    /// entries (0 disables). See [`crate::trace`]; the finalized log is
    /// attached to [`RunReport::trace`](crate::metrics::RunReport::trace).
    /// Each shard records into its own ring of the full capacity; the
    /// merged log keeps the globally-last `capacity` events.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace_capacity = capacity;
        for s in &mut self.shards {
            s.recorder = (capacity > 0).then(|| TraceRecorder::new(capacity));
        }
    }

    /// Swap every shard's event scheduler onto the reference binary-heap
    /// backend (see [`EventQueue::heap_backed`]). Already-scheduled
    /// events are carried over in `(time, key)` order, so this may be
    /// called at any point before [`Engine::run`]; a given workload must
    /// pop the exact same event sequence on either backend, which is
    /// what the conformance fuzzer's lockstep comparison checks.
    pub fn use_reference_queue(&mut self) {
        for s in &mut self.shards {
            let mut q = EventQueue::heap_backed();
            while let Some((at, key, ev)) = s.q.pop_keyed() {
                q.schedule_keyed(at, key, ev);
            }
            s.q = q;
        }
    }

    /// Create an initial threadlet on `nodelet` at time zero. May be
    /// called multiple times before [`Engine::run`]. A spawn aimed at a
    /// dead nodelet lands on its nearest live stand-in.
    ///
    /// # Errors
    /// [`SimError::SpawnOutOfRange`] if `nodelet` is outside the machine.
    pub fn spawn_at(
        &mut self,
        nodelet: NodeletId,
        kernel: Box<dyn Kernel>,
    ) -> Result<ThreadId, SimError> {
        if nodelet.0 >= self.cfg.total_nodelets() {
            return Err(SimError::SpawnOutOfRange {
                nodelet,
                total: self.cfg.total_nodelets(),
            });
        }
        let total = self.cfg.total_nodelets();
        let to = NodeletId(self.redirect[nodelet.idx()]);
        if to != nodelet {
            let sh = &mut self.shards[to.idx()];
            sh.nl.counters.redirects += 1;
            if let Some(r) = sh.recorder.as_mut() {
                r.record(TraceEvent {
                    at: Time::ZERO,
                    nodelet: to,
                    thread: None,
                    kind: TraceKind::Redirect,
                });
            }
        }
        let sh = &mut self.shards[to.idx()];
        let tid = ThreadId(sh.next_tid.wrapping_mul(total).wrapping_add(to.0));
        sh.next_tid += 1;
        sh.live += 1;
        sh.spawned += 1;
        sh.nl.counters.spawns += 1;
        if let Some(r) = sh.recorder.as_mut() {
            r.record(TraceEvent {
                at: Time::ZERO,
                nodelet: to,
                thread: Some(tid),
                kind: TraceKind::Spawn,
            });
        }
        let r = sh.arena.insert(Thread {
            tid,
            kernel: Some(kernel),
            loc: to,
            home: to,
            dest: to,
            resume: None,
            in_flight_migration: false,
            mig_issue_at: Time::ZERO,
            migrations: 0,
            mig_attempts: 0,
            link_attempts: 0,
            newborn: false,
            op_started: Time::ZERO,
            op_kind: OpKind::None,
        });
        let key = self.init_seq;
        self.init_seq += 1;
        sh.q.schedule_keyed(Time::ZERO, key, Event::Arrive(r));
        Ok(tid)
    }

    /// Run until every threadlet has quit; returns the measurement report.
    ///
    /// The run is sharded one nodelet per shard and driven by the worker
    /// count from [`Engine::set_sim_threads`] (else the process-global
    /// [`set_sim_threads`], default 1). Results are byte-identical at
    /// every worker count.
    ///
    /// # Errors
    /// A watchdog converts every no-progress condition into a structured
    /// error instead of hanging or panicking:
    /// [`SimError::Stalled`] if the event queues drain while threads are
    /// still alive (a deadlock), [`SimError::EventCapExceeded`] if the
    /// fault plan's wall-event cap trips (a livelock),
    /// [`SimError::RetryBudgetExhausted`] if injected NACKs/drops outlast
    /// their retry budget, and [`SimError::MissingKernel`] on engine-state
    /// corruption.
    pub fn run(mut self) -> Result<RunReport, SimError> {
        self.run_once()
    }

    /// [`Engine::run`] for a borrowed engine: runs the seeded workload to
    /// completion and assembles the report, leaving the engine drained.
    /// Call [`Engine::reset`] before seeding and running it again — this
    /// is the warm-reuse path (a reset engine skips allocation-heavy
    /// construction but reports byte-identically to a cold one).
    ///
    /// # Errors
    /// As [`Engine::run`], plus [`SimError::DeadlineExceeded`] when a
    /// flag armed via [`Engine::set_cancel`] trips mid-run.
    pub fn run_once(&mut self) -> Result<RunReport, SimError> {
        let cap = match self.event_cap {
            Some(n) => n,
            None => match self.cfg.faults.max_events {
                0 => u64::MAX,
                n => n,
            },
        };
        let lookahead = self.lookahead();
        let workers = self.sim_threads.unwrap_or_else(sim_threads).max(1);
        let profile = self.phase_profile;
        // Base scheduler progress from a restored snapshot: epoch marks
        // and final counts continue from the captured run's absolutes
        // (cloned mailbox-batch slots hold absolute marks, so a resumed
        // run restarting at relative zero could collide with them).
        let base = self.resume_base.take().unwrap_or((0, 0));
        let t0 = profile.then(std::time::Instant::now);
        let (stats, phase_workers, owners, groups) = if lookahead == Time::ZERO {
            self.run_merged(cap);
            (
                SchedStats::default(),
                Vec::new(),
                vec![0u32; self.shards.len()],
                1,
            )
        } else {
            // Checkpointing and resuming both pin the inline scheduler:
            // the barrier cut needs no worker mid-window, and the
            // threaded path stamps relative epoch marks that a resumed
            // run cannot reconcile with the snapshot's absolute ones.
            // Window sequence and results are identical either way.
            let (owners, groups) = if self.checkpoint_every > 0 || base != (0, 0) {
                (vec![0u32; self.shards.len()], 1)
            } else {
                self.plan_groups(workers)
            };
            if groups <= 1 {
                let (stats, ph) = self.run_epochs_inline(cap, lookahead, profile, base);
                (stats, ph, owners, 1)
            } else {
                let (stats, ph) =
                    self.run_epochs_threaded(cap, lookahead, &owners, groups, profile);
                (stats, ph, owners, groups)
            }
        };
        self.pending_phases = t0.map(|t0| PdesPhaseProfile {
            workers: phase_workers,
            epochs: base.0 + stats.epochs,
            wall_ns: t0.elapsed().as_nanos() as u64,
            barrier_crossings: stats.crossings,
            fused_windows: stats.fused,
            merge_groups: groups as u64,
            shard_owners: owners,
        });
        self.pending_clean = base.1 + stats.clean;
        self.finish(cap, lookahead, base.0 + stats.epochs)
    }

    /// Run-start placement of shards onto workers. Returns one owning
    /// worker per shard plus the worker-pool size. Deterministic: the
    /// decision reads only shard ids, pending-event counts, and the
    /// host's core count — all fixed for the duration of a run, and
    /// none of which can alter results (grouping decides execution
    /// strategy, never simulated content).
    ///
    /// When merging is enabled, the pool is first capped at the host's
    /// available parallelism — gate workers beyond the core count can
    /// only take turns spinning at the barrier, so an oversubscribed
    /// request (say 4 sim-threads on a 1-core box) collapses toward
    /// the inline scheduler instead of paying synchronization for no
    /// overlap. Then, if some shards are *loaded* (at least
    /// [`Engine::set_merge_min`] pending events), the pool shrinks to
    /// the loaded-shard count and shards are balanced across it
    /// greedily by pending-event weight — so 64 shards with 4 busy ones
    /// get 4 workers carrying similar load instead of 64÷workers
    /// arbitrary blocks. Otherwise (merging off, one worker, or a run
    /// whose work hasn't fanned out yet) shards are chunked
    /// contiguously, preserving the pre-merge placement. With merging
    /// disabled the requested worker count is honored exactly, which
    /// is how tests pin the threaded scheduler on small hosts.
    fn plan_groups(&self, workers: usize) -> (Vec<u32>, usize) {
        let n = self.shards.len();
        let mut workers = workers.clamp(1, n.max(1));
        if self.merge {
            let host = std::thread::available_parallelism().map_or(1, |c| c.get());
            workers = workers.min(host);
        }
        let loaded = if self.merge && workers > 1 {
            self.shards
                .iter()
                .filter(|s| s.q.len() as u64 >= self.merge_min.max(1))
                .count()
        } else {
            0
        };
        if loaded == 0 {
            let chunk = n.div_ceil(workers);
            let owners: Vec<u32> = (0..n).map(|i| (i / chunk) as u32).collect();
            let groups = owners.last().map_or(1, |&o| o as usize + 1);
            return (owners, groups);
        }
        let groups = workers.min(loaded);
        let mut owners = vec![0u32; n];
        let mut load = vec![0u64; groups];
        for (i, s) in self.shards.iter().enumerate() {
            // Greedy balance in shard-id order: each shard lands on the
            // currently lightest worker (ties to the lowest id). The +1
            // spreads empty shards instead of piling them on worker 0.
            let g = (0..groups)
                .min_by_key(|&g| (load[g], g))
                .expect("groups >= 1");
            owners[i] = g as u32;
            load[g] += s.q.len() as u64 + 1;
        }
        (owners, groups)
    }

    /// Merged fallback scheduler for zero-lookahead machines: one global
    /// loop popping the minimum `(time, key)` across all shards, with
    /// immediate cross-shard delivery — sequential, but identical
    /// semantics to the epoch schedulers.
    fn run_merged(&mut self, cap: u64) {
        let mut total = 0u64;
        loop {
            let mut best: Option<(Time, u64, usize)> = None;
            for (i, s) in self.shards.iter().enumerate() {
                if let Some((t, k)) = s.q.peek_key() {
                    if best.is_none_or(|(bt, bk, _)| (t, k) < (bt, bk)) {
                        best = Some((t, k, i));
                    }
                }
            }
            let Some((_, _, i)) = best else { break };
            if total & 0x3FF == 0 {
                if let Some((flag, ms)) = &self.cancel {
                    if flag.load(Ordering::Relaxed) {
                        let s = &mut self.shards[i];
                        let e = SimError::DeadlineExceeded { deadline_ms: *ms };
                        s.error = Some((s.now, s.cur_key, e));
                        break;
                    }
                }
            }
            let cfg = &self.cfg;
            let redirect = &self.redirect[..];
            let s = &mut self.shards[i];
            let Some((at, key, ev)) = s.q.pop_keyed() else {
                break;
            };
            s.now = at;
            s.cur_key = key;
            s.events += 1;
            total += 1;
            if total > cap {
                // The popped event is counted but not dispatched,
                // matching the sequential watchdog's trip point.
                s.error = Some((at, key, SimError::EventCapExceeded { cap }));
                break;
            }
            ShardCtx { cfg, redirect, s }.dispatch(ev, at);
            if self.shards[i].error.is_some() {
                break;
            }
            let msgs = std::mem::take(&mut self.shards[i].outbox);
            for m in msgs {
                self.shards[m.dest as usize].absorb_mail(total, m);
            }
        }
    }

    /// Deliver every pending outbox message into its destination queue
    /// (single-worker epoch exchange). `mark` identifies the exchange
    /// batch for mailbox-depth tracking.
    fn deliver_all(&mut self, mark: u64) {
        let mut msgs = Vec::new();
        for s in &mut self.shards {
            msgs.append(&mut s.outbox);
        }
        for m in msgs {
            self.shards[m.dest as usize].absorb_mail(mark, m);
        }
    }

    /// Epoch scheduler, single worker: the identical protocol to the
    /// threaded path (deliver → decide → drain windows) run inline, so
    /// the epoch count and every result byte match any worker count.
    fn run_epochs_inline(
        &mut self,
        cap: u64,
        lookahead: Time,
        profile: bool,
        base: (u64, u64),
    ) -> (SchedStats, Vec<PhaseBreakdown>) {
        let mut stats = SchedStats::default();
        let mut clk = PhaseClock::new(profile);
        let mut drained = false;
        loop {
            // A window is clean when the drain that just finished posted
            // no cross-shard mail; the first iteration precedes any
            // drain and counts for nobody.
            if drained && self.shards.iter().all(|s| s.outbox.is_empty()) {
                stats.clean += 1;
            }
            // Exchange marks are absolute (resume-safe): cloned
            // mailbox-batch slots in a restored snapshot carry the
            // original run's marks, and marks must only move forward.
            self.deliver_all(base.0 + stats.epochs);
            clk.mark(Phase::Exchange);
            let any_error = self.shards.iter().any(|s| s.error.is_some());
            let total: u64 = self.shards.iter().map(|s| s.events).sum();
            let next = self
                .shards
                .iter()
                .filter_map(|s| s.q.peek_key())
                .map(|(t, _)| t)
                .min();
            clk.mark(Phase::Merge);
            if any_error || total > cap {
                break;
            }
            let Some(next) = next else { break };
            // The barrier cut: mail fully delivered, nothing mutated
            // since (peeks only), and at least one more window will
            // run — the exact state a restored engine re-enters at.
            let abs_epoch = base.0 + stats.epochs;
            if self.checkpoint_every > 0
                && abs_epoch > 0
                && abs_epoch.is_multiple_of(self.checkpoint_every)
            {
                self.capture_snapshot(abs_epoch, base.1 + stats.clean);
            }
            let end = Time::from_ps(next.ps().saturating_add(lookahead.ps()));
            stats.epochs += 1;
            for s in &mut self.shards {
                run_window(&self.cfg, &self.redirect, s, end, cap, self.cancel.as_ref());
            }
            drained = true;
            clk.mark(Phase::Drain);
        }
        let workers = profile.then(|| vec![clk.into_breakdown(0)]);
        (stats, workers.unwrap_or_default())
    }

    /// Epoch scheduler over a scoped worker pool. Each worker owns the
    /// shards [`Engine::plan_groups`] assigned it; cross-shard mail
    /// moves over per-edge SPSC rings and the workers agree on every
    /// window through an [`EpochGate`].
    ///
    /// With fusion on, one gate crossing commits each window: every
    /// worker's digest carries `min(own queue minima, earliest mail it
    /// just posted)`, whose gate-wide minimum equals the post-delivery
    /// global minimum — so the window decision is correct *before*
    /// delivery, and rings are drained only when somebody's dirty flag
    /// says there is mail at all. With fusion off, the scheduler falls
    /// back to the classic two crossings per window (deliver first,
    /// then agree on the post-delivery minimum). Both commit the exact
    /// same window sequence; only wall-clock behavior differs.
    fn run_epochs_threaded(
        &mut self,
        cap: u64,
        lookahead: Time,
        owners: &[u32],
        groups: usize,
        profile: bool,
    ) -> (SchedStats, Vec<PhaseBreakdown>) {
        // Route table: a message for shard `d` is posted on edge
        // (worker, owners[d]) and delivered to that group's
        // `local_idx[d]`-th shard (groups keep ascending shard order).
        let mut local_idx = vec![0u32; self.shards.len()];
        let mut counts = vec![0u32; groups];
        for (i, &o) in owners.iter().enumerate() {
            local_idx[i] = counts[o as usize];
            counts[o as usize] += 1;
        }
        let mut grouped: Vec<Vec<&mut Shard>> = (0..groups).map(|_| Vec::new()).collect();
        for (s, &o) in self.shards.iter_mut().zip(owners.iter()) {
            grouped[o as usize].push(s);
        }
        let rings: EdgeRings<OutMsg> = EdgeRings::new(groups, self.ring_capacity);
        let gate = EpochGate::new(groups);
        let stats_out = Mutex::new(SchedStats::default());
        let breakdowns: Vec<Mutex<Option<PhaseBreakdown>>> =
            (0..groups).map(|_| Mutex::new(None)).collect();
        let fuse = self.fuse;
        let cfg = &self.cfg;
        let redirect = &self.redirect[..];
        let cancel = self.cancel.as_ref();
        let local_idx = &local_idx[..];
        std::thread::scope(|scope| {
            for (g, mut mine) in grouped.into_iter().enumerate() {
                let (rings, gate, stats_out) = (&rings, &gate, &stats_out);
                let breakdowns = &breakdowns;
                scope.spawn(move || {
                    let mut clk = PhaseClock::new(profile);
                    let mut stats = SchedStats::default();
                    let mut round = 0u64;
                    let mut drained = false;
                    let mut dirty_me = false;
                    let mut out_min: Option<Time> = None;
                    let mut inbox: Vec<OutMsg> = Vec::new();
                    loop {
                        // Digest: events, error flag, dirty flag, and
                        // the earliest time this group could still act
                        // at — its queue minima and (fused) the mail it
                        // posted last window, which is not yet in any
                        // queue.
                        let local_next = mine
                            .iter()
                            .filter_map(|s| s.q.peek_key())
                            .map(|(t, _)| t)
                            .min();
                        let next = match (local_next, out_min) {
                            (Some(a), Some(b)) => Some(a.min(b)),
                            (a, b) => a.or(b),
                        };
                        let events: u64 = mine.iter().map(|s| s.events).sum();
                        let mut flags = 0u64;
                        if mine.iter().any(|s| s.error.is_some()) {
                            flags |= GATE_ERROR;
                        }
                        if dirty_me {
                            flags |= GATE_DIRTY;
                        }
                        clk.mark(Phase::Exchange);
                        let view = gate.sync(g, round, events, next.map(|t| t.ps()), flags);
                        round += 1;
                        stats.crossings += 1;
                        clk.mark(Phase::Barrier);
                        // Clean accounting: the dirty flags describe the
                        // window drained just before this crossing.
                        if drained && !view.any_dirty() {
                            stats.clean += 1;
                            if fuse {
                                stats.fused += 1;
                            }
                        }
                        let (total, next_ps, err) = if fuse {
                            if view.any_dirty() {
                                rings.drain_into(g, &mut inbox);
                                for m in inbox.drain(..) {
                                    let mark = m.epoch;
                                    mine[local_idx[m.dest as usize] as usize].absorb_mail(mark, m);
                                }
                                clk.mark(Phase::Exchange);
                            }
                            (view.events, view.next_ps, view.any_error())
                        } else {
                            // Two-crossing fallback: deliver first, then
                            // agree on the post-delivery minimum.
                            rings.drain_into(g, &mut inbox);
                            for m in inbox.drain(..) {
                                let mark = m.epoch;
                                mine[local_idx[m.dest as usize] as usize].absorb_mail(mark, m);
                            }
                            clk.mark(Phase::Exchange);
                            let next2 = mine
                                .iter()
                                .filter_map(|s| s.q.peek_key())
                                .map(|(t, _)| t.ps())
                                .min();
                            let err2 = if mine.iter().any(|s| s.error.is_some()) {
                                GATE_ERROR
                            } else {
                                0
                            };
                            let view2 = gate.sync(g, round, 0, next2, err2);
                            round += 1;
                            stats.crossings += 1;
                            clk.mark(Phase::Barrier);
                            (
                                view.events,
                                view2.next_ps,
                                view.any_error() || view2.any_error(),
                            )
                        };
                        clk.mark(Phase::Merge);
                        // Decision: identical on every worker (it reads
                        // only gate views), so all workers break
                        // together and nobody is left at the gate.
                        if err || total > cap {
                            break;
                        }
                        let Some(next_ps) = next_ps else { break };
                        let end = Time::from_ps(next_ps.saturating_add(lookahead.ps()));
                        stats.epochs += 1;
                        for s in mine.iter_mut() {
                            run_window(cfg, redirect, s, end, cap, cancel);
                        }
                        drained = true;
                        clk.mark(Phase::Drain);
                        dirty_me = false;
                        out_min = None;
                        for s in mine.iter_mut() {
                            for mut m in s.outbox.drain(..) {
                                if out_min.is_none_or(|o| m.at < o) {
                                    out_min = Some(m.at);
                                }
                                dirty_me = true;
                                m.epoch = stats.epochs;
                                rings.post(g, owners[m.dest as usize] as usize, [m]);
                            }
                        }
                        rings.publish_from(g);
                        clk.mark(Phase::Exchange);
                    }
                    if profile {
                        *breakdowns[g].lock().expect("breakdown slot poisoned") =
                            Some(clk.into_breakdown(g as u32));
                    }
                    if g == 0 {
                        // Every worker derives the same stats from the
                        // same gate views; one representative reports.
                        *stats_out.lock().expect("stats slot poisoned") = stats;
                    }
                });
            }
        });
        let phases = breakdowns
            .into_iter()
            .filter_map(|m| m.into_inner().expect("breakdown slot poisoned"))
            .collect();
        let stats = *stats_out.lock().expect("stats slot poisoned");
        (stats, phases)
    }

    /// Post-run epilogue shared by all schedulers: surface the globally
    /// first error (by event `(time, key)`), then the watchdog verdicts,
    /// else assemble the report.
    fn finish(&mut self, cap: u64, lookahead: Time, epochs: u64) -> Result<RunReport, SimError> {
        if let Some((_, _, e)) = self
            .shards
            .iter_mut()
            .filter_map(|s| s.error.take())
            .min_by_key(|&(t, k, _)| (t, k))
        {
            record_obs_failure();
            return Err(e);
        }
        let total: u64 = self.shards.iter().map(|s| s.events).sum();
        if total > cap {
            record_obs_failure();
            return Err(SimError::EventCapExceeded { cap });
        }
        let live: i64 = self.shards.iter().map(|s| s.live).sum();
        if live != 0 {
            let at = self
                .shards
                .iter()
                .map(|s| s.now)
                .max()
                .unwrap_or(Time::ZERO);
            record_obs_failure();
            return Err(SimError::Stalled {
                live: live.unsigned_abs(),
                at,
            });
        }
        let report = self.take_report(lookahead, epochs);
        record_obs_run(&report);
        trace::offer_report(&report);
        Ok(report)
    }

    /// Merge per-shard trace rings into one log holding the globally
    /// last `capacity` events in `(time, shard, emission)` order. Exact:
    /// within a shard the ring is nondecreasing in time, so the global
    /// tail is always inside the per-shard retained tails.
    fn take_merged_trace(&mut self) -> Option<TraceLog> {
        if self.trace_capacity == 0 {
            return None;
        }
        let cap = self.trace_capacity;
        let mut emitted = 0u64;
        let mut all: Vec<(Time, u32, usize, TraceEvent)> = Vec::new();
        for s in &mut self.shards {
            if let Some(r) = s.recorder.take() {
                let log = r.into_log();
                emitted += log.emitted();
                for (pos, ev) in log.events.into_iter().enumerate() {
                    all.push((ev.at, s.id, pos, ev));
                }
            }
        }
        all.sort_unstable_by_key(|&(at, shard, pos, _)| (at, shard, pos));
        let drop_n = all.len().saturating_sub(cap);
        let events: Vec<TraceEvent> = all.into_iter().skip(drop_n).map(|e| e.3).collect();
        let dropped = emitted - events.len() as u64;
        Some(TraceLog {
            events,
            dropped,
            capacity: cap,
        })
    }

    fn take_report(&mut self, lookahead: Time, epochs: u64) -> RunReport {
        let trace = self.take_merged_trace();
        // Drain the shards into the report; [`Engine::reset`] rebuilds
        // them before the next warm run.
        let shards = std::mem::take(&mut self.shards);
        let makespan = shards.iter().map(|s| s.now).max().unwrap_or(Time::ZERO);
        let pdes = PdesSummary {
            shards: shards.len() as u64,
            lookahead_ps: lookahead.ps(),
            epochs,
            clean_windows: self.pending_clean,
            mailbox_sent: shards.iter().map(|s| s.sent).sum(),
            mailbox_delivered: shards.iter().map(|s| s.delivered).sum(),
            min_cross_delay_ps: shards
                .iter()
                .map(|s| s.min_cross_delay.ps())
                .min()
                .unwrap_or(u64::MAX),
            mailbox_depth_hwm: shards.iter().map(|s| s.mail_hwm).max().unwrap_or(0),
        };
        let has_tl = shards.first().is_some_and(|s| s.tl.is_some());
        let mut nodelets = Vec::with_capacity(shards.len());
        let mut occupancy = Vec::with_capacity(shards.len());
        let mut mig_latency = LogHistogram::new();
        let mut migs_per_thread = Summary::new();
        let mut breakdown = TimeBreakdown::default();
        let mut threads = 0u64;
        let mut events = 0u64;
        let mut timelines = has_tl.then(|| RunTimelines {
            bucket: Time::from_us(1),
            core: Vec::new(),
            channel: Vec::new(),
            migration: Vec::new(),
            queue_depth: Vec::new(),
            live_threads: Vec::new(),
        });
        for s in shards {
            occupancy.push(NodeletOccupancy {
                core_busy: s.nl.cores.busy_time(),
                channel_busy: s.nl.channel.busy_time(),
                migration_busy: s.nl.mig_engine.busy_time(),
                channel_mean_wait: s.nl.channel.mean_wait(),
                migration_mean_wait: s.nl.mig_engine.mean_wait(),
            });
            nodelets.push(s.nl.counters);
            mig_latency.merge(&s.mig_latency);
            migs_per_thread.merge(&s.migs_per_thread);
            breakdown.absorb(&s.breakdown);
            threads += s.spawned;
            events += s.events;
            if let (Some(out), Some(mut tl)) = (timelines.as_mut(), s.tl) {
                // Account the final plateau of every gauge out to the
                // end of the run, so trailing idle time is not lost.
                tl.queue_depth.finish(makespan);
                tl.live_threads.finish(makespan);
                out.bucket = tl.core.bucket();
                out.core.push(tl.core);
                out.channel.push(tl.channel);
                out.migration.push(tl.migration);
                out.queue_depth.push(tl.queue_depth);
                out.live_threads.push(tl.live_threads);
            }
        }
        RunReport {
            makespan,
            nodelets,
            occupancy,
            gcs_per_nodelet: self.cfg.gcs_per_nodelet,
            threads,
            events,
            migration_latency: mig_latency,
            migrations_per_thread: migs_per_thread,
            timelines,
            breakdown,
            trace,
            pdes,
            phases: self.pending_phases.take(),
        }
    }
}

/// The engine's registered live metrics (see [`crate::obs`]): handles
/// are resolved once and cached so per-run recording is a handful of
/// relaxed atomic adds.
struct EngineObs {
    runs: &'static crate::obs::Counter,
    failed_runs: &'static crate::obs::Counter,
    events: &'static crate::obs::Counter,
    epochs: &'static crate::obs::Counter,
    clean_windows: &'static crate::obs::Counter,
    mailbox_sent: &'static crate::obs::Counter,
    mailbox_delivered: &'static crate::obs::Counter,
    mailbox_depth_hwm: &'static crate::obs::Gauge,
    run_events: &'static crate::obs::Histogram,
    profiled_runs: &'static crate::obs::Counter,
    barrier_crossings: &'static crate::obs::Counter,
    fused_windows: &'static crate::obs::Counter,
    phase_drain: &'static crate::obs::Counter,
    phase_barrier: &'static crate::obs::Counter,
    phase_exchange: &'static crate::obs::Counter,
    phase_merge: &'static crate::obs::Counter,
}

fn engine_obs() -> &'static EngineObs {
    static CELLS: std::sync::OnceLock<EngineObs> = std::sync::OnceLock::new();
    CELLS.get_or_init(|| EngineObs {
        runs: crate::obs::counter("emu_engine_runs_total"),
        failed_runs: crate::obs::counter("emu_engine_failed_runs_total"),
        events: crate::obs::counter("emu_engine_events_total"),
        epochs: crate::obs::counter("emu_pdes_epochs_total"),
        clean_windows: crate::obs::counter("emu_pdes_clean_windows_total"),
        mailbox_sent: crate::obs::counter("emu_pdes_mailbox_sent_total"),
        mailbox_delivered: crate::obs::counter("emu_pdes_mailbox_delivered_total"),
        mailbox_depth_hwm: crate::obs::gauge("emu_pdes_mailbox_depth_hwm"),
        run_events: crate::obs::histogram("emu_engine_run_events"),
        profiled_runs: crate::obs::counter("emu_pdes_profiled_runs_total"),
        barrier_crossings: crate::obs::counter("emu_pdes_barrier_crossings_total"),
        fused_windows: crate::obs::counter("emu_pdes_fused_windows_total"),
        phase_drain: crate::obs::counter("emu_pdes_phase_ns_total{phase=\"drain\"}"),
        phase_barrier: crate::obs::counter("emu_pdes_phase_ns_total{phase=\"barrier\"}"),
        phase_exchange: crate::obs::counter("emu_pdes_phase_ns_total{phase=\"exchange\"}"),
        phase_merge: crate::obs::counter("emu_pdes_phase_ns_total{phase=\"merge\"}"),
    })
}

/// Fold one completed run into the live registry. All values come from
/// the already-assembled report, so this is off the simulation hot
/// path entirely; the [`crate::obs::enabled`] guard makes the quiet
/// path (registry disabled) a single relaxed load.
fn record_obs_run(report: &RunReport) {
    if !crate::obs::enabled() {
        return;
    }
    let m = engine_obs();
    m.runs.inc();
    m.events.add(report.events);
    m.epochs.add(report.pdes.epochs);
    m.clean_windows.add(report.pdes.clean_windows);
    m.mailbox_sent.add(report.pdes.mailbox_sent);
    m.mailbox_delivered.add(report.pdes.mailbox_delivered);
    m.mailbox_depth_hwm
        .record_max(report.pdes.mailbox_depth_hwm.min(i64::MAX as u64) as i64);
    m.run_events.record(report.events);
    if let Some(phases) = &report.phases {
        m.profiled_runs.inc();
        m.barrier_crossings.add(phases.barrier_crossings);
        m.fused_windows.add(phases.fused_windows);
        for w in &phases.workers {
            m.phase_drain.add(w.drain_ns);
            m.phase_barrier.add(w.barrier_ns);
            m.phase_exchange.add(w.exchange_ns);
            m.phase_merge.add(w.merge_ns);
        }
    }
}

/// Count a run that ended in a structured error.
fn record_obs_failure() {
    if crate::obs::enabled() {
        engine_obs().failed_runs.inc();
    }
}

/// Drain one shard's events strictly below `end`. Conservatism
/// guarantees no other shard can deliver an event below `end` while this
/// runs, so the window needs no synchronization.
fn run_window(
    cfg: &MachineConfig,
    redirect: &[u32],
    s: &mut Shard,
    end: Time,
    cap: u64,
    cancel: Option<&Cancel>,
) {
    loop {
        if s.error.is_some() {
            break;
        }
        if let Some((flag, ms)) = cancel {
            if s.events & 0x3FF == 0 && flag.load(Ordering::Relaxed) {
                let e = SimError::DeadlineExceeded { deadline_ms: *ms };
                s.error = Some((s.now, s.cur_key, e));
                break;
            }
        }
        let Some((at, _)) = s.q.peek_key() else { break };
        if at >= end {
            break;
        }
        let Some((at, key, ev)) = s.q.pop_keyed() else {
            break;
        };
        s.now = at;
        s.cur_key = key;
        s.events += 1;
        if s.events > cap {
            // This shard alone blew the cap; the aggregate check at the
            // barrier catches caps split across shards.
            s.error = Some((at, key, SimError::EventCapExceeded { cap }));
            break;
        }
        ShardCtx { cfg, redirect, s }.dispatch(ev, at);
    }
}

/// One event dispatch's view of its shard: all handler state plus the
/// read-only machine configuration and redirect map.
struct ShardCtx<'a> {
    cfg: &'a MachineConfig,
    redirect: &'a [u32],
    s: &'a mut Shard,
}

impl ShardCtx<'_> {
    fn dispatch(&mut self, ev: Event, now: Time) {
        match ev {
            Event::Arrive(t) => self.on_arrive(t, now),
            Event::Ready(t) => self.on_ready(t, now),
            Event::ChannelRead(t, bytes) => self.on_channel_read(t, bytes, now),
            Event::ChannelWrite {
                bytes,
                atomic,
                from_remote,
            } => self.on_channel_write(bytes, atomic, from_remote, now),
            Event::MigrateOut(t) => self.on_migrate_out(t, now),
            Event::LinkSend(t) => self.on_link_send(t, now),
            Event::LinkTransit(t) => self.on_link_transit(t, now),
            Event::SlotRelease => self.on_slot_release(now),
        }
    }

    /// This shard's nodelet identity.
    #[inline]
    fn here(&self) -> NodeletId {
        NodeletId(self.s.id)
    }

    /// Record a fatal error, tagged with the current event's `(time,
    /// key)`; the schedulers stop at the next exchange point and the
    /// globally-first error wins.
    fn fail(&mut self, e: SimError) {
        if self.s.error.is_none() {
            self.s.error = Some((self.s.now, self.s.cur_key, e));
        }
    }

    /// Next deterministic fault draw in `[0, 1)` from this shard's lane.
    #[inline]
    fn fdraw(&mut self) -> f64 {
        let n = self.s.fault_draws;
        self.s.fault_draws += 1;
        fault::unit_draw_for(self.cfg.faults.seed, self.s.id, n)
    }

    /// Scale a service time by this nodelet's slowdown factor (exact
    /// identity at the nominal factor of 1.0).
    #[inline]
    fn scaled(&self, t: Time) -> Time {
        let f = self.cfg.faults.slow_factor(self.s.id as usize);
        if f == 1.0 {
            t
        } else {
            Time::from_ps((t.ps() as f64 * f).round() as u64)
        }
    }

    /// The next intrinsic event key. Every schedule — local or cross —
    /// consumes exactly one, so within-shard order equals issue order
    /// regardless of destination.
    #[inline]
    fn next_key(&mut self) -> u64 {
        let s = &mut *self.s;
        let key = ((s.id as u64 + 1) << KEY_SHIFT) | s.send_seq;
        s.send_seq += 1;
        key
    }

    /// Schedule `ev` on this shard at `at` with the next intrinsic key.
    fn send_local(&mut self, at: Time, ev: Event) {
        let key = self.next_key();
        self.s.q.schedule_keyed(at, key, ev);
    }

    /// Buffer `ev` for delivery to shard `dest` at the next exchange,
    /// consuming the next intrinsic key.
    fn send_cross(&mut self, dest: NodeletId, at: Time, ev: WireEv) {
        let key = self.next_key();
        let s = &mut *self.s;
        let delay = at.saturating_sub(s.now);
        if delay < s.min_cross_delay {
            s.min_cross_delay = delay;
        }
        s.sent += 1;
        s.outbox.push(OutMsg {
            dest: dest.0,
            at,
            key,
            epoch: 0,
            ev,
        });
    }

    /// Ship thread `r` to `dest` as an arrival: it stays in the arena
    /// for a same-shard hop, and is extracted onto the wire (to be
    /// re-inserted at the destination) for a cross-shard one.
    fn send_arrive(&mut self, dest: NodeletId, at: Time, r: TRef) {
        if dest.0 == self.s.id {
            self.send_local(at, Event::Arrive(r));
        } else {
            let t = self
                .s
                .arena
                .remove(r)
                .expect("departing thread context is live");
            self.send_cross(dest, at, WireEv::Arrive(t));
        }
    }

    /// Ship thread `r` to head nodelet `dest` as a link transit.
    fn send_transit(&mut self, dest: NodeletId, at: Time, r: TRef) {
        if dest.0 == self.s.id {
            self.send_local(at, Event::LinkTransit(r));
        } else {
            let t = self
                .s
                .arena
                .remove(r)
                .expect("transiting thread context is live");
            self.send_cross(dest, at, WireEv::LinkTransit(t));
        }
    }

    /// Route a posted store/atomic packet to `dest`'s memory channel.
    fn send_packet(&mut self, dest: NodeletId, at: Time, bytes: u32, atomic: bool, remote: bool) {
        if dest.0 == self.s.id {
            self.send_local(
                at,
                Event::ChannelWrite {
                    bytes,
                    atomic,
                    from_remote: remote,
                },
            );
        } else {
            self.send_cross(
                dest,
                at,
                WireEv::ChannelWrite {
                    bytes,
                    atomic,
                    from_remote: remote,
                },
            );
        }
    }

    /// Record one structured trace event (a single branch when tracing
    /// is off — the zero-cost-when-disabled guarantee).
    #[inline]
    fn emit(&mut self, at: Time, nodelet: NodeletId, thread: Option<ThreadId>, kind: TraceKind) {
        if let Some(r) = self.s.recorder.as_mut() {
            r.record(TraceEvent {
                at,
                nodelet,
                thread,
                kind,
            });
        }
    }

    /// Sample the slot gauges (call after the waiter queue or resident
    /// count changes).
    #[inline]
    fn sample_slots(&mut self, now: Time) {
        let s = &mut *self.s;
        if let Some(tl) = s.tl.as_mut() {
            tl.queue_depth.set(now, s.nl.waiters.len() as u64);
            tl.live_threads.set(now, s.nl.in_use as u64);
        }
    }

    /// Offer scaled service to this nodelet's cores, tracing the grant.
    fn core_offer(&mut self, now: Time, service: Time) -> Grant {
        let service = self.scaled(service);
        let grant = self.s.nl.cores.offer(now, service);
        if let Some(tl) = self.s.tl.as_mut() {
            tl.core.record(grant.start, grant.done - grant.start);
        }
        grant
    }

    #[inline]
    fn trace_channel(&mut self, grant: Grant) {
        if let Some(tl) = self.s.tl.as_mut() {
            tl.channel.record(grant.start, grant.done - grant.start);
        }
    }

    #[inline]
    fn trace_migration(&mut self, grant: Grant) {
        if let Some(tl) = self.s.tl.as_mut() {
            tl.migration.record(grant.start, grant.done - grant.start);
        }
    }

    /// Where traffic aimed at `n` actually lands (dead-nodelet
    /// redirect). Counted on the *requesting* shard — the only state a
    /// window may touch — which also keeps dead nodelets silent in the
    /// counters.
    fn redirected(&mut self, n: NodeletId, now: Time) -> NodeletId {
        let to = NodeletId(self.redirect[n.idx()]);
        if to != n {
            self.s.nl.counters.redirects += 1;
            let here = self.here();
            self.emit(now, here, None, TraceKind::Redirect);
        }
        to
    }

    /// Remap an address owned by a dead nodelet to its live stand-in.
    fn remap_addr(&mut self, addr: GlobalAddr, now: Time) -> GlobalAddr {
        if self.redirect[addr.nodelet.idx()] == addr.nodelet.0 {
            addr
        } else {
            GlobalAddr::new(self.redirected(addr.nodelet, now), addr.offset)
        }
    }

    /// A fresh thread context spawned on this shard. IDs are strided by
    /// the machine width so every shard mints from a disjoint namespace
    /// without coordination.
    fn alloc_thread(&mut self, kernel: Box<dyn Kernel>, loc: NodeletId, home: NodeletId) -> TRef {
        let s = &mut *self.s;
        let tid = ThreadId(
            s.next_tid
                .wrapping_mul(self.cfg.total_nodelets())
                .wrapping_add(s.id),
        );
        s.next_tid += 1;
        s.live += 1;
        s.spawned += 1;
        s.arena.insert(Thread {
            tid,
            kernel: Some(kernel),
            loc,
            home,
            dest: loc,
            resume: None,
            in_flight_migration: false,
            mig_issue_at: Time::ZERO,
            migrations: 0,
            mig_attempts: 0,
            link_attempts: 0,
            newborn: false,
            op_started: Time::ZERO,
            op_kind: OpKind::None,
        })
    }

    fn on_arrive(&mut self, r: TRef, now: Time) {
        let (loc, tid, newborn, migrated, issued) = {
            let t = self
                .s
                .arena
                .get_mut(r)
                .expect("arriving thread context is live");
            let newborn = std::mem::take(&mut t.newborn);
            let migrated = std::mem::take(&mut t.in_flight_migration);
            (t.loc, t.tid, newborn, migrated, t.mig_issue_at)
        };
        if newborn {
            // Remote spawn: the spawn is counted where the child lands,
            // on the shard that owns that counter.
            self.s.nl.counters.spawns += 1;
            self.emit(now, loc, Some(tid), TraceKind::Spawn);
        }
        if migrated {
            self.s.mig_latency.record(now - issued);
            self.s.nl.counters.migrations_in += 1;
            self.emit(now, loc, Some(tid), TraceKind::MigrateIn);
        }
        if self.s.nl.slots_free > 0 {
            self.s.nl.slots_free -= 1;
            self.s.nl.in_use += 1;
            self.send_local(now, Event::Ready(r));
        } else {
            self.s.nl.counters.slot_waits += 1;
            self.emit(now, loc, Some(tid), TraceKind::SlotWait);
            self.s.nl.waiters.push_back(r);
        }
        self.sample_slots(now);
    }

    fn on_slot_release(&mut self, now: Time) {
        if let Some(waiter) = self.s.nl.waiters.pop_front() {
            // Slot transfers directly to the waiter; the departing
            // context's slot is immediately re-occupied, so `in_use`
            // is unchanged.
            self.send_local(now, Event::Ready(waiter));
        } else {
            self.s.nl.slots_free += 1;
            self.s.nl.in_use -= 1;
        }
        self.sample_slots(now);
    }

    fn on_ready(&mut self, r: TRef, now: Time) {
        self.charge(r, now);
        let stepped = {
            let t = self
                .s
                .arena
                .get_mut(r)
                .expect("ready thread context is live");
            match t.resume.take() {
                Some(op) => Ok(op),
                None => {
                    let ctx = KernelCtx {
                        tid: t.tid,
                        here: t.loc,
                        home: t.home,
                        now,
                    };
                    match t.kernel.as_mut() {
                        Some(kernel) => Ok(kernel.step(&ctx)),
                        None => Err(t.tid),
                    }
                }
            }
        };
        match stepped {
            Ok(op) => self.execute(r, op, now),
            Err(thread) => self.fail(SimError::MissingKernel { thread }),
        }
    }

    /// Attribute the elapsed time of the finished operation (if any) to
    /// its activity class.
    fn charge(&mut self, r: TRef, now: Time) {
        let (kind, elapsed) = {
            let t = self
                .s
                .arena
                .get_mut(r)
                .expect("charged thread context is live");
            let kind = t.op_kind;
            t.op_kind = OpKind::None;
            (kind, now.saturating_sub(t.op_started))
        };
        let b = &mut self.s.breakdown;
        match kind {
            OpKind::None => {}
            OpKind::Compute => b.compute += elapsed,
            OpKind::Memory => b.memory += elapsed,
            OpKind::Migration => b.migration += elapsed,
            OpKind::StoreIssue => b.store_issue += elapsed,
            OpKind::Spawn => b.spawn += elapsed,
        }
    }

    fn execute(&mut self, r: TRef, op: Op, now: Time) {
        let loc = self
            .s
            .arena
            .get(r)
            .expect("executing thread context is live")
            .loc;
        let costs = self.cfg.costs;
        let target = match &op {
            Op::Load { addr, .. } | Op::Store { addr, .. } | Op::AtomicAdd { addr, .. } => {
                Some(addr.nodelet)
            }
            Op::MigrateTo { nodelet } => Some(*nodelet),
            Op::Spawn {
                place: Placement::On(t),
                ..
            } => Some(*t),
            _ => None,
        };
        if let Some(tgt) = target {
            if tgt.0 >= self.cfg.total_nodelets() {
                self.fail(SimError::TargetOutOfRange {
                    nodelet: tgt,
                    total: self.cfg.total_nodelets(),
                });
                return;
            }
        }
        // Memory and migration targets on dead nodelets are served by
        // their live stand-ins (see [`crate::fault::FaultPlan::dead`]).
        let op = match op {
            Op::Load { addr, bytes } => Op::Load {
                addr: self.remap_addr(addr, now),
                bytes,
            },
            Op::Store { addr, bytes } => Op::Store {
                addr: self.remap_addr(addr, now),
                bytes,
            },
            Op::AtomicAdd { addr, bytes } => Op::AtomicAdd {
                addr: self.remap_addr(addr, now),
                bytes,
            },
            Op::MigrateTo { nodelet } => Op::MigrateTo {
                nodelet: self.redirected(nodelet, now),
            },
            Op::Spawn { kernel, place } => Op::Spawn {
                kernel,
                place: match place {
                    Placement::Here => Placement::Here,
                    Placement::On(tgt) => Placement::On(self.redirected(tgt, now)),
                },
            },
            other => other,
        };
        match &op {
            Op::Compute { .. } => self.begin(r, OpKind::Compute, now),
            Op::Load { addr, .. } => {
                let kind = if addr.is_local_to(loc) {
                    OpKind::Memory
                } else {
                    OpKind::Migration
                };
                self.begin(r, kind, now);
            }
            Op::Store { .. } | Op::AtomicAdd { .. } => self.begin(r, OpKind::StoreIssue, now),
            Op::MigrateTo { .. } => self.begin(r, OpKind::Migration, now),
            Op::Spawn { .. } => self.begin(r, OpKind::Spawn, now),
            Op::Quit => {}
        }
        match op {
            Op::Compute { cycles } => {
                let occ = self.cfg.cycles(cycles);
                let grant = self.core_offer(now, occ);
                let extra = self
                    .cfg
                    .cycles(cycles.saturating_mul(costs.compute_latency_factor.saturating_sub(1)));
                self.send_local(grant.done + extra, Event::Ready(r));
            }
            Op::Load { addr, bytes } => {
                if addr.is_local_to(loc) {
                    let grant = self.core_offer(now, self.cfg.cycles(costs.mem_issue_cycles));
                    let at_channel = grant.done + self.cfg.cycles(costs.mem_pipeline_cycles);
                    self.send_local(at_channel, Event::ChannelRead(r, bytes));
                } else {
                    self.start_migration(r, addr.nodelet, Some(Op::Load { addr, bytes }), now);
                }
            }
            Op::Store { addr, bytes } | Op::AtomicAdd { addr, bytes } => {
                let atomic = matches!(op, Op::AtomicAdd { .. });
                let grant = self.core_offer(now, self.cfg.cycles(costs.mem_issue_cycles));
                let pipelined = grant.done + self.cfg.cycles(costs.mem_pipeline_cycles);
                let (arrive, remote) = if addr.is_local_to(loc) {
                    (pipelined, false)
                } else {
                    // Posted remote packet: traverses the network, handled
                    // by the destination's memory-side processor. The
                    // issuing thread does NOT migrate or wait.
                    (pipelined + self.cfg.hop_latency(loc, addr.nodelet), true)
                };
                self.send_packet(addr.nodelet, arrive, bytes, atomic, remote);
                // The thread continues once the store clears its pipeline.
                self.send_local(pipelined, Event::Ready(r));
            }
            Op::MigrateTo { nodelet } => {
                if nodelet == loc {
                    // Degenerate self-migration: costs one issue.
                    let grant = self.core_offer(now, self.cfg.cycles(costs.migrate_issue_cycles));
                    self.send_local(grant.done, Event::Ready(r));
                } else {
                    self.start_migration(r, nodelet, None, now);
                }
            }
            Op::Spawn { kernel, place } => {
                let grant = self.core_offer(now, self.cfg.cycles(costs.spawn_issue_cycles));
                match place {
                    Placement::Here => self.spawn_local(kernel, loc, grant.done, now),
                    Placement::On(target) if target == loc => {
                        // "Remote" spawn onto the current nodelet is just
                        // a local spawn — no engine traffic.
                        self.spawn_local(kernel, loc, grant.done, now);
                    }
                    Placement::On(target) => {
                        // A remote spawn ships the newborn context through
                        // the local migration engine, exactly like a
                        // migration; the child's home (stack) is the target.
                        let child = self.alloc_thread(kernel, loc, target);
                        let ctid = {
                            let c = self
                                .s
                                .arena
                                .get_mut(child)
                                .expect("just-allocated child is live");
                            c.newborn = true;
                            c.dest = target;
                            c.in_flight_migration = true;
                            c.mig_issue_at = grant.done;
                            c.migrations = 1;
                            c.tid
                        };
                        self.s.nl.counters.migrations_out += 1;
                        self.emit(now, loc, Some(ctid), TraceKind::MigrateOut);
                        self.send_local(grant.done, Event::MigrateOut(child));
                    }
                }
                // The parent resumes after the spawn clears its pipeline.
                let resume = grant.done + self.cfg.cycles(costs.mem_pipeline_cycles);
                self.send_local(resume, Event::Ready(r));
            }
            Op::Quit => {
                let t = self
                    .s
                    .arena
                    .remove(r)
                    .expect("quitting thread context is live");
                self.s.migs_per_thread.record(t.migrations as f64);
                self.s.live -= 1;
                self.emit(now, loc, Some(t.tid), TraceKind::Quit);
                self.send_local(now, Event::SlotRelease);
            }
        }
    }

    /// Spawn a child on this nodelet; it arrives after the local spawn
    /// latency past the issuing grant.
    fn spawn_local(&mut self, kernel: Box<dyn Kernel>, loc: NodeletId, done: Time, now: Time) {
        let child = self.alloc_thread(kernel, loc, loc);
        let ctid = self
            .s
            .arena
            .get(child)
            .expect("just-allocated child is live")
            .tid;
        self.s.nl.counters.spawns += 1;
        self.emit(now, loc, Some(ctid), TraceKind::Spawn);
        let latency = self.cfg.costs.spawn_local_latency;
        self.send_local(done + latency, Event::Arrive(child));
    }

    fn begin(&mut self, r: TRef, kind: OpKind, now: Time) {
        let t = self
            .s
            .arena
            .get_mut(r)
            .expect("beginning thread context is live");
        t.op_started = now;
        t.op_kind = kind;
    }

    /// Issue a migration of `r` toward `dest`; `resume` (if any) is
    /// re-executed on arrival.
    fn start_migration(&mut self, r: TRef, dest: NodeletId, resume: Option<Op>, now: Time) {
        let grant = self.core_offer(now, self.cfg.cycles(self.cfg.costs.migrate_issue_cycles));
        let (loc, tid) = {
            let t = self
                .s
                .arena
                .get_mut(r)
                .expect("migrating thread context is live");
            t.resume = resume;
            t.dest = dest;
            t.in_flight_migration = true;
            t.mig_issue_at = grant.done;
            t.migrations += 1;
            (t.loc, t.tid)
        };
        debug_assert_ne!(loc, dest, "migration to current nodelet");
        self.s.nl.counters.migrations_out += 1;
        self.emit(now, loc, Some(tid), TraceKind::MigrateOut);
        // The context departs the core at grant.done: its slot frees and
        // it enters the migration engine.
        self.send_local(grant.done, Event::SlotRelease);
        self.send_local(grant.done, Event::MigrateOut(r));
    }

    fn on_migrate_out(&mut self, r: TRef, now: Time) {
        let (loc, dest, tid, attempts) = {
            let t = self
                .s
                .arena
                .get(r)
                .expect("departing thread context is live");
            (t.loc, t.dest, t.tid, t.mig_attempts)
        };
        let faults = &self.cfg.faults;
        if faults.mig_nack_prob > 0.0 {
            let (prob, backoff, budget) = (
                faults.mig_nack_prob,
                faults.mig_backoff,
                faults.mig_retry_budget,
            );
            if self.fdraw() < prob {
                // The engine refuses the context: back off exponentially
                // (capped at 64x) and retry, up to the budget.
                self.s.nl.counters.mig_nacks += 1;
                self.emit(now, loc, Some(tid), TraceKind::MigNack);
                if attempts >= budget {
                    self.fail(SimError::RetryBudgetExhausted {
                        thread: tid,
                        nodelet: loc,
                        retries: attempts,
                    });
                    return;
                }
                self.s
                    .arena
                    .get_mut(r)
                    .expect("departing thread context is live")
                    .mig_attempts = attempts + 1;
                self.s.nl.counters.mig_retries += 1;
                self.emit(now, loc, Some(tid), TraceKind::MigRetry);
                let delay = backoff * (1u64 << attempts.min(6));
                self.send_local(now + delay, Event::MigrateOut(r));
                return;
            }
        }
        self.s
            .arena
            .get_mut(r)
            .expect("departing thread context is live")
            .mig_attempts = 0;
        let service = self.scaled(self.cfg.migration_service());
        let grant = self.s.nl.mig_engine.offer(now, service);
        self.trace_migration(grant);
        if loc.same_node(dest, self.cfg.nodelets_per_node) {
            let arrival = grant.done + self.cfg.hop_latency(loc, dest);
            self.s
                .arena
                .get_mut(r)
                .expect("departing thread context is live")
                .loc = dest;
            self.send_arrive(dest, arrival, r);
        } else {
            // Cross-node: after the engine, the context crosses the
            // RapidIO fabric, a shared per-node link.
            self.send_local(grant.done, Event::LinkSend(r));
        }
    }

    fn on_link_send(&mut self, r: TRef, now: Time) {
        let (loc, tid, attempts) = {
            let t = self.s.arena.get(r).expect("sending thread context is live");
            (t.loc, t.tid, t.link_attempts)
        };
        let faults = &self.cfg.faults;
        if faults.link_drop_prob > 0.0 {
            let (prob, budget) = (faults.link_drop_prob, faults.link_retry_budget);
            if self.fdraw() < prob {
                // Packet lost on the fabric: detected after a round-trip
                // hop and retransmitted, up to the budget. Attributed to
                // the (alive, sending) nodelet.
                self.s.nl.counters.link_retransmits += 1;
                self.emit(now, loc, Some(tid), TraceKind::LinkRetransmit);
                if attempts >= budget {
                    self.fail(SimError::RetryBudgetExhausted {
                        thread: tid,
                        nodelet: loc,
                        retries: attempts,
                    });
                    return;
                }
                self.s
                    .arena
                    .get_mut(r)
                    .expect("sending thread context is live")
                    .link_attempts = attempts + 1;
                let retry = now + self.cfg.inter_node_hop * 2;
                self.send_local(retry, Event::LinkSend(r));
                return;
            }
        }
        self.s
            .arena
            .get_mut(r)
            .expect("sending thread context is live")
            .link_attempts = 0;
        // The node's RapidIO interface lives on its head nodelet; a
        // packet from any other nodelet first hops there on the fabric.
        let head = NodeletId(loc.node(self.cfg.nodelets_per_node) * self.cfg.nodelets_per_node);
        if head == loc {
            self.send_local(now, Event::LinkTransit(r));
        } else {
            let at = now + self.cfg.intra_node_hop;
            self.send_transit(head, at, r);
        }
    }

    fn on_link_transit(&mut self, r: TRef, now: Time) {
        debug_assert!(
            self.s.link.is_some(),
            "LinkTransit routed to a non-head nodelet"
        );
        let dest = self
            .s
            .arena
            .get(r)
            .expect("transiting thread context is live")
            .dest;
        let bytes = self.cfg.context_bytes as u64;
        let delivered = self
            .s
            .link
            .as_mut()
            .map(|l| l.send(now, bytes))
            .unwrap_or(now);
        let arrival = delivered + self.cfg.inter_node_hop;
        self.s
            .arena
            .get_mut(r)
            .expect("transiting thread context is live")
            .loc = dest;
        self.send_arrive(dest, arrival, r);
    }

    fn on_channel_read(&mut self, r: TRef, bytes: u32, now: Time) {
        let (loc, tid) = {
            let t = self.s.arena.get(r).expect("loading thread context is live");
            (t.loc, t.tid)
        };
        let service = self.channel_service_faulted(bytes, Time::ZERO, now);
        let s = &mut *self.s;
        let grant = s.nl.channel.offer(now, service);
        s.nl.counters.local_loads += 1;
        s.nl.counters.bytes_loaded += bytes as u64;
        self.emit(now, loc, Some(tid), TraceKind::LocalLoad);
        self.trace_channel(grant);
        let done = grant.done + self.cfg.dram_latency;
        self.send_local(done, Event::Ready(r));
    }

    /// Channel service time for one access on this nodelet, including
    /// the slowdown factor and (probabilistically) an ECC-style retry.
    fn channel_service_faulted(&mut self, bytes: u32, extra: Time, now: Time) -> Time {
        let mut service = self.scaled(self.cfg.channel_service(bytes) + extra);
        let faults = &self.cfg.faults;
        if faults.ecc_prob > 0.0 {
            let (prob, latency) = (faults.ecc_prob, faults.ecc_latency);
            if self.fdraw() < prob {
                // Correctable error: the access occupies the channel for
                // one extra scrub-and-retry.
                self.s.nl.counters.ecc_retries += 1;
                let here = self.here();
                self.emit(now, here, None, TraceKind::EccRetry);
                service += latency;
            }
        }
        service
    }

    fn on_channel_write(&mut self, bytes: u32, atomic: bool, from_remote: bool, now: Time) {
        let nodelet = self.here();
        let extra = if atomic {
            self.cfg.costs.atomic_extra
        } else {
            Time::ZERO
        };
        let service = self.channel_service_faulted(bytes, extra, now);
        let s = &mut *self.s;
        let grant = s.nl.channel.offer(now, service);
        if atomic {
            s.nl.counters.atomics += 1;
        } else {
            s.nl.counters.local_stores += 1;
        }
        if from_remote {
            s.nl.counters.remote_packets_in += 1;
        }
        s.nl.counters.bytes_stored += bytes as u64;
        // Posted packets are detached from their issuing thread by the
        // time they reach the channel, so these events carry no tid.
        let kind = if atomic {
            TraceKind::Atomic
        } else {
            TraceKind::LocalStore
        };
        self.emit(now, nodelet, None, kind);
        if from_remote {
            self.emit(now, nodelet, None, TraceKind::RemotePacket);
        }
        self.trace_channel(grant);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::GlobalAddr;
    use crate::kernel::ScriptKernel;
    use crate::presets;

    fn nl(n: u32) -> NodeletId {
        NodeletId(n)
    }

    fn run_script_on(cfg: MachineConfig, ops: Vec<Op>) -> RunReport {
        let mut e = Engine::new(cfg).unwrap();
        e.spawn_at(nl(0), Box::new(ScriptKernel::new(ops))).unwrap();
        e.run().unwrap()
    }

    fn run_script(ops: Vec<Op>) -> RunReport {
        run_script_on(presets::chick_prototype(), ops)
    }

    #[test]
    fn empty_kernel_terminates() {
        let r = run_script(vec![]);
        assert_eq!(r.threads, 1);
        assert_eq!(r.total_migrations(), 0);
    }

    #[test]
    fn local_load_counts_bytes_no_migration() {
        let r = run_script(vec![Op::Load {
            addr: GlobalAddr::new(nl(0), 64),
            bytes: 8,
        }]);
        assert_eq!(r.nodelets[0].local_loads, 1);
        assert_eq!(r.nodelets[0].bytes_loaded, 8);
        assert_eq!(r.total_migrations(), 0);
        assert!(r.makespan > Time::ZERO);
    }

    #[test]
    fn remote_load_migrates_thread() {
        let r = run_script(vec![Op::Load {
            addr: GlobalAddr::new(nl(3), 64),
            bytes: 8,
        }]);
        assert_eq!(r.total_migrations(), 1);
        assert_eq!(r.nodelets[0].migrations_out, 1);
        assert_eq!(r.nodelets[3].migrations_in, 1);
        // The load executed at the destination.
        assert_eq!(r.nodelets[3].local_loads, 1);
        assert_eq!(r.nodelets[0].local_loads, 0);
        assert_eq!(r.migration_latency.count(), 1);
    }

    #[test]
    fn remote_store_does_not_migrate() {
        let r = run_script(vec![Op::Store {
            addr: GlobalAddr::new(nl(5), 0),
            bytes: 8,
        }]);
        assert_eq!(r.total_migrations(), 0);
        assert_eq!(r.nodelets[5].local_stores, 1);
        assert_eq!(r.nodelets[5].remote_packets_in, 1);
        assert_eq!(r.nodelets[5].bytes_stored, 8);
    }

    #[test]
    fn remote_atomic_counts_as_atomic() {
        let r = run_script(vec![Op::AtomicAdd {
            addr: GlobalAddr::new(nl(2), 0),
            bytes: 8,
        }]);
        assert_eq!(r.total_migrations(), 0);
        assert_eq!(r.nodelets[2].atomics, 1);
        assert_eq!(r.nodelets[2].remote_packets_in, 1);
    }

    #[test]
    fn migrate_to_bounces() {
        let r = run_script(vec![
            Op::MigrateTo { nodelet: nl(1) },
            Op::MigrateTo { nodelet: nl(0) },
            Op::MigrateTo { nodelet: nl(1) },
        ]);
        assert_eq!(r.total_migrations(), 3);
        assert_eq!(r.nodelets[0].migrations_out, 2);
        assert_eq!(r.nodelets[1].migrations_out, 1);
        assert!((r.migrations_per_thread.mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn local_spawn_runs_child() {
        let child = ScriptKernel::new(vec![Op::Compute { cycles: 10 }]);
        let r = run_script(vec![Op::Spawn {
            kernel: Box::new(child),
            place: Placement::Here,
        }]);
        assert_eq!(r.threads, 2);
        assert_eq!(r.total_spawns(), 2); // initial + child
        assert_eq!(r.total_migrations(), 0);
    }

    #[test]
    fn remote_spawn_travels_through_migration_engine() {
        let child = ScriptKernel::new(vec![Op::Load {
            addr: GlobalAddr::new(nl(4), 0),
            bytes: 8,
        }]);
        let r = run_script(vec![Op::Spawn {
            kernel: Box::new(child),
            place: Placement::On(nl(4)),
        }]);
        assert_eq!(r.threads, 2);
        // Child landed on nodelet 4 and its load was local there.
        assert_eq!(r.nodelets[4].local_loads, 1);
        assert_eq!(r.nodelets[4].spawns, 1);
        // The remote spawn consumed the source migration engine once and
        // needed no further migration for the load.
        assert_eq!(r.nodelets[0].migrations_out, 1);
    }

    #[test]
    fn slot_cap_serializes_arrivals() {
        // Spawn 3 children on a machine with 2 slots per nodelet; each
        // child computes. With only 2 slots, at least one child waits.
        let mut cfg = presets::chick_prototype();
        cfg.threadlets_per_gc = 2;
        let mut ops = Vec::new();
        for _ in 0..3 {
            ops.push(Op::Spawn {
                kernel: Box::new(ScriptKernel::new(vec![Op::Compute { cycles: 1000 }])),
                place: Placement::Here,
            });
        }
        let r = run_script_on(cfg, ops);
        assert_eq!(r.threads, 4);
        assert!(r.nodelets[0].slot_waits > 0, "expected slot contention");
    }

    #[test]
    fn cross_node_migration_uses_link() {
        let r = run_script_on(
            presets::emu64_full_speed(),
            vec![Op::Load {
                addr: GlobalAddr::new(nl(12), 0), // node 1
                bytes: 8,
            }],
        );
        assert_eq!(r.total_migrations(), 1);
        assert_eq!(r.nodelets[12].local_loads, 1);
    }

    #[test]
    fn deterministic_repeat() {
        let mk = || {
            run_script(vec![
                Op::Load {
                    addr: GlobalAddr::new(nl(2), 0),
                    bytes: 16,
                },
                Op::Compute { cycles: 7 },
                Op::Store {
                    addr: GlobalAddr::new(nl(1), 8),
                    bytes: 8,
                },
            ])
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.total_bytes(), b.total_bytes());
    }

    #[test]
    fn breakdown_attributes_time_to_the_right_class() {
        // Pure compute.
        let r = run_script(vec![Op::Compute { cycles: 100 }]);
        assert!(r.breakdown.compute > Time::ZERO);
        assert_eq!(r.breakdown.migration, Time::ZERO);
        assert_eq!(r.breakdown.memory, Time::ZERO);
        // Local load.
        let r = run_script(vec![Op::Load {
            addr: GlobalAddr::new(nl(0), 0),
            bytes: 8,
        }]);
        assert!(r.breakdown.memory > Time::ZERO);
        assert_eq!(r.breakdown.migration, Time::ZERO);
        // Remote load: migration plus the re-executed (now local) read.
        let r = run_script(vec![Op::Load {
            addr: GlobalAddr::new(nl(5), 0),
            bytes: 8,
        }]);
        assert!(r.breakdown.migration > Time::ZERO);
        assert!(r.breakdown.memory > Time::ZERO);
        assert!(
            r.breakdown.migration > r.breakdown.store_issue,
            "{:?}",
            r.breakdown
        );
        // Posted store.
        let r = run_script(vec![Op::Store {
            addr: GlobalAddr::new(nl(3), 0),
            bytes: 8,
        }]);
        assert!(r.breakdown.store_issue > Time::ZERO);
        assert_eq!(r.breakdown.migration, Time::ZERO);
    }

    #[test]
    fn breakdown_total_close_to_thread_busy_time() {
        // A single thread's breakdown total equals its makespan minus the
        // initial arrival instant (every op interval is accounted).
        let r = run_script(vec![
            Op::Compute { cycles: 50 },
            Op::Load {
                addr: GlobalAddr::new(nl(2), 0),
                bytes: 8,
            },
            Op::Store {
                addr: GlobalAddr::new(nl(2), 8),
                bytes: 8,
            },
            Op::Compute { cycles: 10 },
        ]);
        let total = r.breakdown.total();
        assert!(
            total <= r.makespan && total >= r.makespan / 2,
            "breakdown {total} vs makespan {}",
            r.makespan
        );
    }

    #[test]
    fn compute_occupancy_vs_latency() {
        // A single thread computing 100 cycles is blocked for
        // 100 * factor cycles, but the core is only busy 100 cycles.
        let cfg = presets::chick_prototype();
        let factor = cfg.costs.compute_latency_factor;
        let r = run_script_on(cfg.clone(), vec![Op::Compute { cycles: 100 }]);
        assert_eq!(r.occupancy[0].core_busy, cfg.cycles(100));
        assert!(r.makespan >= cfg.cycles(100 * factor));
    }

    // ---- tracing and telemetry ----

    #[test]
    fn zero_timeline_bucket_is_an_error_not_a_panic() {
        let mut e = Engine::new(presets::chick_prototype()).unwrap();
        match e.enable_timeline(Time::ZERO) {
            Err(SimError::InvalidConfig(why)) => assert!(why.contains("bucket")),
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    fn traced_script(cfg: MachineConfig, ops: Vec<Op>) -> RunReport {
        let mut e = Engine::new(cfg).unwrap();
        e.enable_trace(1 << 16);
        e.enable_timeline(Time::from_us(1)).unwrap();
        e.spawn_at(nl(0), Box::new(ScriptKernel::new(ops))).unwrap();
        e.run().unwrap()
    }

    fn busy_script() -> Vec<Op> {
        let mut ops = Vec::new();
        for i in 0..6u32 {
            ops.push(Op::Spawn {
                kernel: Box::new(ScriptKernel::new(vec![
                    Op::Load {
                        addr: GlobalAddr::new(nl(i % 8), 0),
                        bytes: 8,
                    },
                    Op::Store {
                        addr: GlobalAddr::new(nl((i + 3) % 8), 0),
                        bytes: 8,
                    },
                ])),
                place: Placement::On(nl(i % 8)),
            });
        }
        ops.push(Op::AtomicAdd {
            addr: GlobalAddr::new(nl(7), 0),
            bytes: 8,
        });
        ops
    }

    #[test]
    fn trace_event_counts_reconcile_with_counters() {
        use crate::trace::TraceKind;
        let r = traced_script(presets::chick_prototype(), busy_script());
        let log = r.trace.as_ref().unwrap();
        assert!(log.is_lossless());
        assert_eq!(log.count_of(TraceKind::Spawn), r.total_spawns());
        assert_eq!(log.count_of(TraceKind::MigrateOut), r.total_migrations());
        let sums = |f: fn(&NodeletCounters) -> u64| r.nodelets.iter().map(f).sum::<u64>();
        assert_eq!(
            log.count_of(TraceKind::MigrateIn),
            sums(|n| n.migrations_in)
        );
        assert_eq!(log.count_of(TraceKind::LocalLoad), sums(|n| n.local_loads));
        assert_eq!(
            log.count_of(TraceKind::LocalStore),
            sums(|n| n.local_stores)
        );
        assert_eq!(log.count_of(TraceKind::Atomic), sums(|n| n.atomics));
        assert_eq!(
            log.count_of(TraceKind::RemotePacket),
            sums(|n| n.remote_packets_in)
        );
        assert_eq!(log.count_of(TraceKind::SlotWait), sums(|n| n.slot_waits));
        assert_eq!(log.count_of(TraceKind::Quit), r.threads);
        // Events arrive in nondecreasing simulated-time order.
        assert!(log.events.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn faulted_trace_counts_nacks_and_retries() {
        use crate::trace::TraceKind;
        let mut cfg = presets::chick_prototype();
        cfg.faults.mig_nack_prob = 0.5;
        cfg.faults.mig_retry_budget = 64;
        let mut ops = Vec::new();
        for _ in 0..10 {
            ops.push(Op::MigrateTo { nodelet: nl(1) });
            ops.push(Op::MigrateTo { nodelet: nl(0) });
        }
        let r = traced_script(cfg, ops);
        let log = r.trace.as_ref().unwrap();
        assert!(r.total_nacks() > 0);
        assert_eq!(log.count_of(TraceKind::MigNack), r.total_nacks());
        assert_eq!(log.count_of(TraceKind::MigRetry), r.total_retries());
    }

    #[test]
    fn tracing_does_not_perturb_the_simulation() {
        let base = run_script(busy_script());
        let traced = traced_script(presets::chick_prototype(), busy_script());
        assert_eq!(base.makespan, traced.makespan);
        assert_eq!(
            format!("{:?}", base.nodelets),
            format!("{:?}", traced.nodelets)
        );
        assert_eq!(
            format!("{:?}", base.breakdown),
            format!("{:?}", traced.breakdown)
        );
    }

    #[test]
    fn ring_capacity_bounds_the_log_and_counts_drops() {
        let mut e = Engine::new(presets::chick_prototype()).unwrap();
        e.enable_trace(4);
        e.spawn_at(nl(0), Box::new(ScriptKernel::new(busy_script())))
            .unwrap();
        let r = e.run().unwrap();
        let log = r.trace.unwrap();
        assert_eq!(log.events.len(), 4);
        assert!(log.dropped > 0);
        let full = traced_script(presets::chick_prototype(), busy_script());
        assert_eq!(log.emitted(), full.trace.unwrap().emitted());
    }

    #[test]
    fn slot_gauges_observe_contention() {
        let mut cfg = presets::chick_prototype();
        cfg.threadlets_per_gc = 2;
        let mut ops = Vec::new();
        for _ in 0..4 {
            ops.push(Op::Spawn {
                kernel: Box::new(ScriptKernel::new(vec![Op::Compute { cycles: 5000 }])),
                place: Placement::Here,
            });
        }
        let mut e = Engine::new(cfg.clone()).unwrap();
        e.enable_timeline(Time::from_ns(100)).unwrap();
        e.spawn_at(nl(0), Box::new(ScriptKernel::new(ops))).unwrap();
        let r = e.run().unwrap();
        assert!(r.nodelets[0].slot_waits > 0, "expected slot contention");
        let tl = r.timelines.unwrap();
        let peak_depth = (0..tl.queue_depth[0].len())
            .map(|b| tl.queue_depth[0].peak(b))
            .max()
            .unwrap_or(0);
        let peak_live = (0..tl.live_threads[0].len())
            .map(|b| tl.live_threads[0].peak(b))
            .max()
            .unwrap_or(0);
        assert!(peak_depth > 0, "queue-depth gauge missed the wait");
        assert_eq!(peak_live as u32, cfg.slots_per_nodelet());
        // Gauges on idle nodelets stay flat at zero.
        let idle_peak = (0..tl.live_threads[5].len())
            .map(|b| tl.live_threads[5].peak(b))
            .max()
            .unwrap_or(0);
        assert_eq!(idle_peak, 0);
    }

    // ---- fault injection and watchdog ----

    use crate::fault::FaultPlan;

    /// A kernel that migrates between two nodelets forever — a crafted
    /// livelock for the watchdog's wall-event cap.
    struct PingPongForever {
        a: NodeletId,
        b: NodeletId,
    }

    impl Kernel for PingPongForever {
        fn step(&mut self, ctx: &KernelCtx) -> Op {
            Op::MigrateTo {
                nodelet: if ctx.here == self.a { self.b } else { self.a },
            }
        }
    }

    #[test]
    fn invalid_config_is_an_error_not_a_panic() {
        let mut cfg = presets::chick_prototype();
        cfg.gcs_per_nodelet = 0;
        match Engine::new(cfg) {
            Err(SimError::InvalidConfig(why)) => assert!(why.contains("gcs_per_nodelet")),
            other => panic!("expected InvalidConfig, got {:?}", other.err()),
        }
    }

    #[test]
    fn bad_fault_plan_is_rejected() {
        let mut cfg = presets::chick_prototype();
        cfg.faults.ecc_prob = 2.0;
        assert!(matches!(Engine::new(cfg), Err(SimError::InvalidConfig(_))));
        let mut cfg = presets::chick_prototype();
        cfg.faults.dead = vec![true; 8];
        assert!(matches!(Engine::new(cfg), Err(SimError::AllNodeletsDead)));
    }

    #[test]
    fn spawn_out_of_range_is_an_error() {
        let mut e = Engine::new(presets::chick_prototype()).unwrap();
        let r = e.spawn_at(nl(99), Box::new(ScriptKernel::new(vec![])));
        assert!(matches!(r, Err(SimError::SpawnOutOfRange { .. })));
    }

    #[test]
    fn kernel_target_out_of_range_is_an_error() {
        let mut e = Engine::new(presets::chick_prototype()).unwrap();
        e.spawn_at(
            nl(0),
            Box::new(ScriptKernel::new(vec![Op::Load {
                addr: GlobalAddr::new(nl(64), 0),
                bytes: 8,
            }])),
        )
        .unwrap();
        assert!(matches!(e.run(), Err(SimError::TargetOutOfRange { .. })));
    }

    #[test]
    fn dead_nodelet_traffic_is_redirected() {
        let mut cfg = presets::chick_prototype();
        cfg.faults.dead = vec![false, false, false, true, false, false, false, false];
        let r = run_script_on(
            cfg,
            vec![Op::Load {
                addr: GlobalAddr::new(nl(3), 0),
                bytes: 8,
            }],
        );
        // Nodelet 3's memory is served by its live neighbor, nodelet 4.
        assert_eq!(r.nodelets[3].local_loads, 0);
        assert_eq!(r.nodelets[4].local_loads, 1);
        assert_eq!(r.total_redirects(), 1);
    }

    #[test]
    fn spawn_on_dead_nodelet_lands_on_live_neighbor() {
        let mut cfg = presets::chick_prototype();
        cfg.faults.dead = vec![true];
        let mut e = Engine::new(cfg).unwrap();
        e.spawn_at(nl(0), Box::new(ScriptKernel::new(vec![])))
            .unwrap();
        let r = e.run().unwrap();
        assert_eq!(r.nodelets[0].spawns, 0);
        assert_eq!(r.nodelets[1].spawns, 1);
        assert!(r.total_redirects() >= 1);
    }

    #[test]
    fn slowdown_stretches_the_run() {
        let script = || {
            vec![
                Op::Compute { cycles: 1000 },
                Op::Load {
                    addr: GlobalAddr::new(nl(0), 0),
                    bytes: 64,
                },
            ]
        };
        let base = run_script(script());
        let mut cfg = presets::chick_prototype();
        cfg.faults.slowdown = vec![4.0];
        let slow = run_script_on(cfg, script());
        assert!(
            slow.makespan > base.makespan,
            "slow {} vs base {}",
            slow.makespan,
            base.makespan
        );
    }

    #[test]
    fn nacks_are_counted_and_retried() {
        let mut cfg = presets::chick_prototype();
        cfg.faults.mig_nack_prob = 0.5;
        cfg.faults.mig_retry_budget = 64;
        let mut ops = Vec::new();
        for _ in 0..10 {
            ops.push(Op::MigrateTo { nodelet: nl(1) });
            ops.push(Op::MigrateTo { nodelet: nl(0) });
        }
        let r = run_script_on(cfg, ops);
        assert!(
            r.total_nacks() > 0,
            "expected NACKs at p=0.5 over 20 migrations"
        );
        assert_eq!(r.total_nacks(), r.total_retries());
        assert_eq!(r.total_migrations(), 20);
    }

    #[test]
    fn retry_budget_exhaustion_is_an_error_not_a_hang() {
        let mut cfg = presets::chick_prototype();
        cfg.faults.mig_nack_prob = 1.0;
        cfg.faults.mig_retry_budget = 3;
        let mut e = Engine::new(cfg).unwrap();
        e.spawn_at(
            nl(0),
            Box::new(ScriptKernel::new(vec![Op::MigrateTo { nodelet: nl(1) }])),
        )
        .unwrap();
        match e.run() {
            Err(SimError::RetryBudgetExhausted { retries, .. }) => assert_eq!(retries, 3),
            other => panic!("expected RetryBudgetExhausted, got {other:?}"),
        }
    }

    #[test]
    fn watchdog_event_cap_catches_livelock() {
        let mut cfg = presets::chick_prototype();
        cfg.faults.max_events = 10_000;
        let mut e = Engine::new(cfg).unwrap();
        e.spawn_at(nl(0), Box::new(PingPongForever { a: nl(0), b: nl(1) }))
            .unwrap();
        match e.run() {
            Err(SimError::EventCapExceeded { cap }) => assert_eq!(cap, 10_000),
            other => panic!(
                "expected EventCapExceeded, got {:?}",
                other.map(|r| r.makespan)
            ),
        }
    }

    #[test]
    fn ecc_retries_slow_the_channel() {
        let script = || {
            (0..50)
                .map(|i| Op::Load {
                    addr: GlobalAddr::new(nl(0), i * 8),
                    bytes: 8,
                })
                .collect::<Vec<_>>()
        };
        let base = run_script(script());
        let mut cfg = presets::chick_prototype();
        cfg.faults.ecc_prob = 1.0;
        let faulted = run_script_on(cfg, script());
        assert_eq!(faulted.nodelets[0].ecc_retries, 50);
        assert!(faulted.makespan > base.makespan);
    }

    #[test]
    fn link_drops_are_retransmitted() {
        let mut cfg = presets::emu64_full_speed();
        cfg.faults.link_drop_prob = 0.5;
        cfg.faults.link_retry_budget = 64;
        let mut ops = Vec::new();
        for _ in 0..10 {
            ops.push(Op::MigrateTo { nodelet: nl(12) });
            ops.push(Op::MigrateTo { nodelet: nl(0) });
        }
        let r = run_script_on(cfg, ops);
        assert!(r.total_link_retransmits() > 0);
        assert_eq!(r.total_migrations(), 20);
    }

    #[test]
    fn faulted_runs_replay_byte_for_byte() {
        let mk = || {
            let mut cfg = presets::chick_prototype();
            cfg.faults = FaultPlan {
                seed: 77,
                mig_nack_prob: 0.3,
                ecc_prob: 0.2,
                ..FaultPlan::none()
            }
            .with_dead_fraction(8, 0.25)
            .with_slow_fraction(8, 0.25, 3.0);
            let mut ops = Vec::new();
            for i in 0..8u32 {
                ops.push(Op::Load {
                    addr: GlobalAddr::new(nl(i % 8), (i as u64) * 8),
                    bytes: 8,
                });
            }
            run_script_on(cfg, ops)
        };
        let (a, b) = (mk(), mk());
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(format!("{:?}", a.nodelets), format!("{:?}", b.nodelets));
        assert_eq!(format!("{:?}", a.breakdown), format!("{:?}", b.breakdown));
    }

    #[test]
    fn zero_fault_plan_matches_baseline_exactly() {
        let script = || {
            vec![
                Op::Load {
                    addr: GlobalAddr::new(nl(5), 0),
                    bytes: 16,
                },
                Op::Compute { cycles: 30 },
                Op::Store {
                    addr: GlobalAddr::new(nl(2), 0),
                    bytes: 8,
                },
            ]
        };
        let base = run_script(script());
        let mut cfg = presets::chick_prototype();
        // An explicitly-spelled-out zero plan, plus a (non-injecting)
        // watchdog cap, must not perturb timing at all.
        cfg.faults = FaultPlan {
            seed: 12345,
            max_events: 1_000_000,
            slowdown: vec![1.0; 8],
            dead: vec![false; 8],
            ..FaultPlan::none()
        };
        let zero = run_script_on(cfg, script());
        assert_eq!(base.makespan, zero.makespan);
        assert_eq!(
            format!("{:?}", base.nodelets),
            format!("{:?}", zero.nodelets)
        );
    }

    // ---- sharded scheduler (PDES) ----

    /// A faulted, traced, timelined multi-node workload; the strongest
    /// worker-count-invariance check we can express in one test.
    fn pdes_workload(cfg: MachineConfig, sim_threads: usize) -> RunReport {
        pdes_workload_with(cfg, sim_threads, |_| {})
    }

    /// [`pdes_workload`] with an engine-tweak hook, used to flip the
    /// scheduler knobs (fusion, merging, ring capacity) per run.
    fn pdes_workload_with(
        cfg: MachineConfig,
        sim_threads: usize,
        tweak: impl FnOnce(&mut Engine),
    ) -> RunReport {
        let mut e = Engine::new(cfg).unwrap();
        e.set_sim_threads(sim_threads);
        tweak(&mut e);
        e.enable_trace(1 << 14);
        e.enable_timeline(Time::from_us(1)).unwrap();
        for n in 0..4u32 {
            let mut ops = Vec::new();
            for i in 0..6u32 {
                ops.push(Op::Load {
                    addr: GlobalAddr::new(nl((n * 13 + i * 7) % 64), (i as u64) * 8),
                    bytes: 8,
                });
                ops.push(Op::Store {
                    addr: GlobalAddr::new(nl((n * 5 + i * 11) % 64), 0),
                    bytes: 8,
                });
            }
            ops.push(Op::Spawn {
                kernel: Box::new(ScriptKernel::new(vec![Op::AtomicAdd {
                    addr: GlobalAddr::new(nl(63 - n), 0),
                    bytes: 8,
                }])),
                place: Placement::On(nl((n * 16 + 3) % 64)),
            });
            e.spawn_at(nl(n * 16), Box::new(ScriptKernel::new(ops)))
                .unwrap();
        }
        e.run().unwrap()
    }

    #[test]
    fn worker_counts_produce_identical_reports() {
        let mut cfg = presets::emu64_full_speed();
        cfg.faults.mig_nack_prob = 0.2;
        cfg.faults.mig_retry_budget = 64;
        cfg.faults.ecc_prob = 0.1;
        cfg.faults.seed = 42;
        let one = pdes_workload(cfg.clone(), 1);
        let two = pdes_workload(cfg.clone(), 2);
        let four = pdes_workload(cfg.clone(), 4);
        let many = pdes_workload(cfg, 999);
        let dump = |r: &RunReport| format!("{r:?}");
        assert_eq!(dump(&one), dump(&two));
        assert_eq!(dump(&one), dump(&four));
        assert_eq!(dump(&one), dump(&many));
        // And the run actually crossed shards and epochs.
        assert!(one.pdes.epochs > 0);
        assert!(one.pdes.mailbox_sent > 0);
        assert_eq!(one.pdes.mailbox_sent, one.pdes.mailbox_delivered);
    }

    #[test]
    fn scheduler_knobs_produce_identical_reports() {
        // Every execution-strategy knob — epoch fusion, adaptive shard
        // merging, ring capacity down to the always-spilling minimum —
        // must leave the report byte-identical: they decide how the
        // scheduler synchronizes, never what it simulates.
        let mut cfg = presets::emu64_full_speed();
        cfg.faults.mig_nack_prob = 0.2;
        cfg.faults.mig_retry_budget = 64;
        cfg.faults.ecc_prob = 0.1;
        cfg.faults.seed = 42;
        let base = pdes_workload(cfg.clone(), 4);
        let unfused = pdes_workload_with(cfg.clone(), 4, |e| e.enable_fuse(false));
        let unmerged = pdes_workload_with(cfg.clone(), 4, |e| e.enable_merge(false));
        let merged_low = pdes_workload_with(cfg.clone(), 4, |e| {
            e.enable_merge(true);
            e.set_merge_min(1);
        });
        let tiny_rings = pdes_workload_with(cfg, 4, |e| e.set_ring_capacity(1));
        let dump = |r: &RunReport| format!("{r:?}");
        assert_eq!(dump(&base), dump(&unfused), "fusion changed the report");
        assert_eq!(dump(&base), dump(&unmerged), "merging changed the report");
        assert_eq!(
            dump(&base),
            dump(&merged_low),
            "merge threshold changed the report"
        );
        assert_eq!(
            dump(&base),
            dump(&tiny_rings),
            "ring capacity changed the report"
        );
        assert!(base.pdes.mailbox_sent > 0, "workload must cross shards");
        assert!(
            base.pdes.clean_windows < base.pdes.epochs,
            "workload must have dirty windows for the knobs to matter"
        );
    }

    /// Seed a cross-shard script workload scaled to the machine's
    /// nodelet count, with tracing, timelines, and faults armed — the
    /// most state a snapshot could have to carry.
    fn seed_snapshot_workload(e: &mut Engine) {
        e.enable_trace(1 << 12);
        e.enable_timeline(Time::from_us(1)).unwrap();
        let total = e.cfg().total_nodelets();
        for n in 0..4u32 {
            let mut ops = Vec::new();
            for i in 0..6u32 {
                ops.push(Op::Load {
                    addr: GlobalAddr::new(nl((n * 13 + i * 7) % total), (i as u64) * 8),
                    bytes: 8,
                });
                ops.push(Op::Store {
                    addr: GlobalAddr::new(nl((n * 5 + i * 11) % total), 0),
                    bytes: 8,
                });
            }
            ops.push(Op::Spawn {
                kernel: Box::new(ScriptKernel::new(vec![Op::AtomicAdd {
                    addr: GlobalAddr::new(nl((total - 1 - n) % total), 0),
                    bytes: 8,
                }])),
                place: Placement::On(nl((n * 16 + 3) % total)),
            });
            e.spawn_at(
                nl((n * (total / 4).max(1)) % total),
                Box::new(ScriptKernel::new(ops)),
            )
            .unwrap();
        }
    }

    #[test]
    fn snapshot_restore_is_byte_identical_on_all_presets() {
        let presets: [(&str, MachineConfig); 5] = [
            ("chick", presets::chick_prototype()),
            ("chick-sim", presets::chick_toolchain_sim()),
            ("full-speed", presets::chick_full_speed()),
            ("emu64", presets::emu64_full_speed()),
            ("chick-8node", presets::chick_8node_prototype()),
        ];
        for (name, mut cfg) in presets {
            cfg.faults.mig_nack_prob = 0.2;
            cfg.faults.mig_retry_budget = 64;
            cfg.faults.ecc_prob = 0.1;
            cfg.faults.seed = 42;
            let dump = |r: &RunReport| format!("{r:?}");

            // The uninterrupted reference run.
            let mut a = Engine::new(cfg.clone()).unwrap();
            seed_snapshot_workload(&mut a);
            let ra = a.run_once().unwrap();
            assert!(
                ra.pdes.epochs > 2,
                "{name}: workload too short to checkpoint"
            );

            // Checkpointing must not perturb the run it rides on.
            let mut b = Engine::new(cfg.clone()).unwrap();
            b.set_checkpoint_every(2);
            seed_snapshot_workload(&mut b);
            let rb = b.run_once().unwrap();
            assert_eq!(
                dump(&ra),
                dump(&rb),
                "{name}: checkpointing perturbed the report"
            );
            let snap = b
                .take_snapshot()
                .expect("checkpointed run leaves a snapshot");
            assert!(snap.epochs() > 0 && snap.epochs().is_multiple_of(2));

            // A fresh engine restored from the barrier cut finishes the
            // run byte-identically.
            let mut c = Engine::new(cfg.clone()).unwrap();
            c.enable_trace(1 << 12);
            c.enable_timeline(Time::from_us(1)).unwrap();
            c.restore(&snap).unwrap();
            let rc = c.run_once().unwrap();
            assert_eq!(dump(&ra), dump(&rc), "{name}: restored run diverged");

            // The snapshot is reusable: a second fork from the same
            // prefix reproduces the same bytes again.
            let mut d = Engine::new(cfg.clone()).unwrap();
            d.enable_trace(1 << 12);
            d.enable_timeline(Time::from_us(1)).unwrap();
            d.restore(&snap).unwrap();
            let rd = d.run_once().unwrap();
            assert_eq!(dump(&rc), dump(&rd), "{name}: second fork diverged");
        }
    }

    #[test]
    fn restore_rejects_a_mismatched_config() {
        let mut b = Engine::new(presets::chick_prototype()).unwrap();
        b.set_checkpoint_every(1);
        seed_snapshot_workload(&mut b);
        b.run_once().unwrap();
        let snap = b.take_snapshot().expect("snapshot");
        let mut other = Engine::new(presets::emu64_full_speed()).unwrap();
        assert!(matches!(
            other.restore(&snap),
            Err(SimError::InvalidConfig(_))
        ));
    }

    #[test]
    fn unforkable_kernels_skip_capture_without_failing_the_run() {
        // A closure kernel declines to fork; the run must complete
        // normally with no snapshot rather than erroring.
        let cfg = presets::chick_prototype();
        let mut e = Engine::new(cfg).unwrap();
        e.set_checkpoint_every(1);
        let total = e.cfg().total_nodelets();
        let mut step = 0u32;
        e.spawn_at(
            nl(0),
            Box::new(move |_ctx: &crate::kernel::KernelCtx| {
                step += 1;
                if step > 8 {
                    Op::Quit
                } else {
                    Op::Load {
                        addr: GlobalAddr::new(NodeletId(step % total), 0),
                        bytes: 8,
                    }
                }
            }),
        )
        .unwrap();
        let r = e.run_once().unwrap();
        assert!(r.pdes.epochs > 0);
        assert!(e.take_snapshot().is_none(), "closure kernels cannot fork");
    }

    #[test]
    fn pdes_summary_reports_conservative_lookahead() {
        let cfg = presets::chick_prototype();
        let intra = cfg.intra_node_hop;
        let r = pdes_workload_chick(cfg);
        assert_eq!(r.pdes.shards, 8);
        assert_eq!(r.pdes.lookahead_ps, intra.ps());
        assert!(r.pdes.epochs >= 1);
        assert_eq!(r.pdes.mailbox_sent, r.pdes.mailbox_delivered);
        assert!(
            r.pdes.min_cross_delay_ps >= r.pdes.lookahead_ps,
            "cross-shard delay {} fell below the lookahead {}",
            r.pdes.min_cross_delay_ps,
            r.pdes.lookahead_ps
        );
    }

    fn pdes_workload_chick(cfg: MachineConfig) -> RunReport {
        let mut e = Engine::new(cfg).unwrap();
        e.set_sim_threads(2);
        e.spawn_at(nl(0), Box::new(ScriptKernel::new(busy_script())))
            .unwrap();
        e.run().unwrap()
    }

    #[test]
    fn single_nodelet_machine_uses_max_lookahead() {
        let mut cfg = presets::chick_prototype();
        cfg.nodes = 1;
        cfg.nodelets_per_node = 1;
        cfg.faults = FaultPlan::none();
        let mut e = Engine::new(cfg).unwrap();
        assert_eq!(e.lookahead(), Time::MAX);
        e.set_sim_threads(4);
        e.spawn_at(
            nl(0),
            Box::new(ScriptKernel::new(vec![
                Op::Compute { cycles: 10 },
                Op::Load {
                    addr: GlobalAddr::new(nl(0), 0),
                    bytes: 8,
                },
            ])),
        )
        .unwrap();
        let r = e.run().unwrap();
        assert_eq!(r.pdes.shards, 1);
        assert_eq!(r.pdes.lookahead_ps, Time::MAX.ps());
        // Everything fits in one (unbounded) window.
        assert_eq!(r.pdes.epochs, 1);
        assert_eq!(r.pdes.mailbox_sent, 0);
        assert_eq!(r.pdes.min_cross_delay_ps, u64::MAX);
    }

    #[test]
    fn errors_are_worker_count_invariant() {
        let run_with = |w: usize| {
            let mut cfg = presets::chick_prototype();
            cfg.faults.mig_nack_prob = 1.0;
            cfg.faults.mig_retry_budget = 3;
            let mut e = Engine::new(cfg).unwrap();
            e.set_sim_threads(w);
            for n in 0..4u32 {
                e.spawn_at(
                    nl(n),
                    Box::new(ScriptKernel::new(vec![Op::MigrateTo {
                        nodelet: nl((n + 1) % 8),
                    }])),
                )
                .unwrap();
            }
            format!("{:?}", e.run().err().unwrap())
        };
        let one = run_with(1);
        assert_eq!(one, run_with(2));
        assert_eq!(one, run_with(4));
    }
}
