//! The discrete-event engine that executes threadlet kernels on the
//! machine model.
//!
//! ## Execution model
//!
//! Each threadlet is driven through a sequence of operations (its
//! [`Kernel`]'s op stream). One event pop re-activates one threadlet (or
//! completes one in-flight transaction); the handler routes the operation
//! through the analytic resources of the owning nodelet:
//!
//! * **Gossamer cores** — a [`MultiServer`] per nodelet. Every op occupies
//!   the issue machinery for its issue cycles; the *issuing thread* is
//!   additionally blocked for the op's pipeline latency. The gap between
//!   aggregate issue throughput and single-thread latency is what makes
//!   bandwidth scale with thread count (Figs 4–5).
//! * **NCDRAM channel** — a [`FifoServer`] per nodelet with 8-byte burst
//!   granularity: fine-grained accesses never over-fetch, the core Emu
//!   advantage in the pointer-chasing comparison.
//! * **Migration engine** — a [`FifoServer`] per nodelet with a finite
//!   migration rate; **any remote load migrates the thread** through it.
//! * **Hardware thread slots** — at most `gcs × 64` threadlet contexts per
//!   nodelet; arrivals beyond that wait, which serializes naive
//!   single-nodelet spawn strategies.
//!
//! All state changes happen inside event handlers, so resources see
//! arrivals in nondecreasing time order and FIFO semantics hold.

use crate::addr::{GlobalAddr, NodeletId};
use crate::config::MachineConfig;
use crate::fault::{self, SimError};
use crate::kernel::{Kernel, KernelCtx, Op, Placement, ThreadId};
use crate::metrics::{NodeletCounters, NodeletOccupancy, RunReport};
use crate::trace::{self, TraceEvent, TraceKind, TraceRecorder};
use desim::queue::EventQueue;
use desim::server::{FifoServer, Grant, Link, MultiServer};
use desim::stats::{LogHistogram, Summary};
use desim::time::Time;
use desim::timeline::{Gauge, Timeline};
use std::collections::VecDeque;

/// Internal engine events. One pop = one state transition.
enum Event {
    /// Thread context arrives at its `loc` (spawn or migration); it must
    /// acquire a hardware slot before issuing.
    Arrive(ThreadId),
    /// Thread holds a slot and may issue its next operation.
    Ready(ThreadId),
    /// A load issued earlier now reaches the memory channel.
    ChannelRead(ThreadId, u32),
    /// A (possibly remote) store/atomic packet reaches a channel.
    ChannelWrite {
        nodelet: NodeletId,
        bytes: u32,
        atomic: bool,
        from_remote: bool,
    },
    /// A departing context reaches its migration engine.
    MigrateOut(ThreadId),
    /// A cross-node migration enters the RapidIO link of its source node.
    LinkSend(ThreadId),
    /// A hardware slot frees on a nodelet (context departed or quit).
    SlotRelease(NodeletId),
}

struct Thread {
    kernel: Option<Box<dyn Kernel>>,
    loc: NodeletId,
    home: NodeletId,
    dest: NodeletId,
    /// Operation to re-execute after a migration completes.
    resume: Option<Op>,
    in_flight_migration: bool,
    mig_issue_at: Time,
    migrations: u64,
    /// Consecutive NACKs of the currently outstanding migration.
    mig_attempts: u32,
    /// Consecutive drops of the currently outstanding link packet.
    link_attempts: u32,
    done: bool,
    /// When the currently outstanding operation began.
    op_started: Time,
    /// What kind of delay the outstanding operation is charged to.
    op_kind: OpKind,
}

/// Where a threadlet's wall time goes — the paper's §III-D "other system
/// overheads" made measurable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum OpKind {
    None,
    Compute,
    Memory,
    Migration,
    StoreIssue,
    Spawn,
}

/// Aggregate threadlet time by activity, summed over all threads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimeBreakdown {
    /// Blocked on compute (including core queueing and pipeline latency).
    pub compute: Time,
    /// Blocked on local loads (issue, pipeline, channel queue, DRAM).
    pub memory: Time,
    /// Blocked migrating (issue, engine queue, hops, destination slot
    /// wait, and re-executing the interrupted read locally).
    pub migration: Time,
    /// Blocked posting stores/atomics (issue + pipeline only).
    pub store_issue: Time,
    /// Blocked executing spawn instructions.
    pub spawn: Time,
}

impl TimeBreakdown {
    /// Total accounted thread-time.
    pub fn total(&self) -> Time {
        self.compute + self.memory + self.migration + self.store_issue + self.spawn
    }

    /// Fraction of total thread-time in `part` (helper for reports).
    pub fn fraction(&self, part: Time) -> f64 {
        let t = self.total();
        if t == Time::ZERO {
            0.0
        } else {
            part.ps() as f64 / t.ps() as f64
        }
    }
}

struct Nodelet {
    cores: MultiServer,
    channel: FifoServer,
    mig_engine: FifoServer,
    slots_free: u32,
    /// Hardware slots currently held by resident threadlets (the
    /// live-threadlet gauge samples this).
    in_use: u32,
    waiters: VecDeque<ThreadId>,
    counters: NodeletCounters,
}

/// The Emu machine simulator. Construct, seed initial threadlets with
/// [`Engine::spawn_at`], then [`Engine::run`] to completion.
pub struct Engine {
    cfg: MachineConfig,
    q: EventQueue<Event>,
    threads: Vec<Thread>,
    nodelets: Vec<Nodelet>,
    /// One outbound RapidIO link per node card (inter-node migrations).
    links: Vec<Link>,
    mig_latency: LogHistogram,
    live: u64,
    trace: Option<Trace>,
    /// Structured event recorder; `None` (the default) costs one branch
    /// per would-be event (see [`crate::trace`]).
    recorder: Option<TraceRecorder>,
    breakdown: TimeBreakdown,
    /// Nearest-live-nodelet map for dead-nodelet redirection (identity
    /// when the fault plan marks nothing dead).
    redirect: Vec<u32>,
    /// Monotone counter feeding deterministic fault draws.
    fault_draws: u64,
    /// Thread-table indices of contexts that have quit, ready for reuse.
    /// Recycling contexts keeps the table (and its per-entry boxes) at
    /// the peak-concurrency size instead of the total-spawn size.
    free_tids: Vec<u32>,
    /// Total threadlets ever spawned (recycling makes `threads.len()`
    /// a peak-concurrency figure, not a spawn count).
    spawned: u64,
    /// Lifetime migration counts, recorded as each threadlet quits.
    migs_per_thread: Summary,
    /// Events processed so far (watchdog wall-event cap).
    events: u64,
    /// First fatal error raised by a handler; stops the run.
    error: Option<SimError>,
}

/// Optional per-nodelet time series (enabled via
/// [`Engine::enable_timeline`]).
struct Trace {
    core: Vec<Timeline>,
    channel: Vec<Timeline>,
    migration: Vec<Timeline>,
    queue_depth: Vec<Gauge>,
    live_threads: Vec<Gauge>,
}

/// Per-nodelet time series of one run (present when
/// [`Engine::enable_timeline`] was called).
#[derive(Debug, Clone)]
pub struct RunTimelines {
    /// Bucket width used.
    pub bucket: Time,
    /// Gossamer-core occupancy per nodelet.
    pub core: Vec<Timeline>,
    /// Memory-channel occupancy per nodelet.
    pub channel: Vec<Timeline>,
    /// Migration-engine occupancy per nodelet.
    pub migration: Vec<Timeline>,
    /// Slot-wait queue depth per nodelet (threads parked for a context).
    pub queue_depth: Vec<Gauge>,
    /// Resident (slot-holding) threadlets per nodelet.
    pub live_threads: Vec<Gauge>,
}

impl Engine {
    /// Build an engine over `cfg`.
    ///
    /// # Errors
    /// [`SimError::InvalidConfig`] if the configuration fails
    /// [`MachineConfig::validate`]; [`SimError::AllNodeletsDead`] if the
    /// fault plan leaves no live nodelet.
    pub fn new(cfg: MachineConfig) -> Result<Self, SimError> {
        cfg.validate().map_err(SimError::InvalidConfig)?;
        let redirect = fault::redirect_map(&cfg.faults, cfg.total_nodelets())?;
        let n = cfg.total_nodelets() as usize;
        let nodelets = (0..n)
            .map(|_| Nodelet {
                cores: MultiServer::new(cfg.gcs_per_nodelet as usize),
                channel: FifoServer::new(),
                mig_engine: FifoServer::new(),
                slots_free: cfg.slots_per_nodelet(),
                in_use: 0,
                waiters: VecDeque::new(),
                counters: NodeletCounters::default(),
            })
            .collect();
        let links = (0..cfg.nodes)
            .map(|_| Link::new(cfg.rapidio_bytes_per_sec, Time::ZERO))
            .collect();
        // Pending events and live contexts are both bounded by the slot
        // population (plus in-flight posted stores), so sizing off the
        // machine's total slots keeps steady-state scheduling away from
        // reallocation; the cap keeps tiny runs on huge configs cheap.
        let reserve = (cfg.total_slots() as usize).min(4096);
        let mut engine = Engine {
            cfg,
            q: EventQueue::with_capacity(reserve),
            threads: Vec::with_capacity(reserve),
            nodelets,
            links,
            mig_latency: LogHistogram::new(),
            live: 0,
            trace: None,
            recorder: None,
            breakdown: TimeBreakdown::default(),
            redirect,
            fault_draws: 0,
            free_tids: Vec::new(),
            spawned: 0,
            migs_per_thread: Summary::new(),
            events: 0,
            error: None,
        };
        // Benchmark runners build engines internally; the process-global
        // telemetry config (see [`crate::trace::set_global`]) lets the
        // harness trace them without plumbing flags through every runner.
        let telemetry = trace::global();
        if telemetry.event_capacity > 0 {
            engine.enable_trace(telemetry.event_capacity);
        }
        if let Some(bucket) = telemetry.timeline_bucket {
            engine.enable_timeline(bucket)?;
        }
        Ok(engine)
    }

    /// Record a fatal error; the event loop stops at the next pop.
    fn fail(&mut self, e: SimError) {
        if self.error.is_none() {
            self.error = Some(e);
        }
    }

    /// Next deterministic fault draw in `[0, 1)`.
    #[inline]
    fn fdraw(&mut self) -> f64 {
        let n = self.fault_draws;
        self.fault_draws += 1;
        fault::unit_draw(self.cfg.faults.seed, n)
    }

    /// Scale a service time by the nodelet's slowdown factor (exact
    /// identity at the nominal factor of 1.0).
    #[inline]
    fn scaled(&self, nodelet: usize, t: Time) -> Time {
        let f = self.cfg.faults.slow_factor(nodelet);
        if f == 1.0 {
            t
        } else {
            Time::from_ps((t.ps() as f64 * f).round() as u64)
        }
    }

    /// Where traffic aimed at `n` actually lands (dead-nodelet redirect);
    /// counts a redirect on the absorbing nodelet when it moves.
    fn redirected(&mut self, n: NodeletId, now: Time) -> NodeletId {
        let to = NodeletId(self.redirect[n.idx()]);
        if to != n {
            self.nodelets[to.idx()].counters.redirects += 1;
            self.emit(now, to, None, TraceKind::Redirect);
        }
        to
    }

    /// Remap an address owned by a dead nodelet to its live stand-in.
    fn remap_addr(&mut self, addr: GlobalAddr, now: Time) -> GlobalAddr {
        if self.redirect[addr.nodelet.idx()] == addr.nodelet.0 {
            addr
        } else {
            GlobalAddr::new(self.redirected(addr.nodelet, now), addr.offset)
        }
    }

    /// Offer scaled service to a nodelet's cores, tracing the grant.
    fn core_offer(&mut self, nodelet: usize, now: Time, service: Time) -> Grant {
        let service = self.scaled(nodelet, service);
        let grant = self.nodelets[nodelet].cores.offer(now, service);
        self.trace_core(nodelet, grant);
        grant
    }

    /// Record per-nodelet time series (occupancy timelines plus
    /// queue-depth and live-threadlet gauges) with buckets of `bucket`
    /// width (see [`RunTimelines`] on the report).
    ///
    /// # Errors
    /// [`SimError::InvalidConfig`] if `bucket` is zero.
    pub fn enable_timeline(&mut self, bucket: Time) -> Result<(), SimError> {
        let invalid = |e: desim::timeline::ZeroBucket| {
            SimError::InvalidConfig(format!("timeline bucket: {e}"))
        };
        let tl = Timeline::new(bucket).map_err(invalid)?;
        let gauge = Gauge::new(bucket).map_err(invalid)?;
        let n = self.nodelets.len();
        self.trace = Some(Trace {
            core: vec![tl.clone(); n],
            channel: vec![tl.clone(); n],
            migration: vec![tl; n],
            queue_depth: vec![gauge.clone(); n],
            live_threads: vec![gauge; n],
        });
        Ok(())
    }

    /// Record structured trace events into a ring of at most `capacity`
    /// entries (0 disables). See [`crate::trace`]; the finalized log is
    /// attached to [`RunReport::trace`](crate::metrics::RunReport::trace).
    pub fn enable_trace(&mut self, capacity: usize) {
        self.recorder = (capacity > 0).then(|| TraceRecorder::new(capacity));
    }

    /// Swap the event scheduler onto the reference binary-heap backend
    /// (see [`EventQueue::heap_backed`]). Already-scheduled events are
    /// carried over in `(time, seq)` order, so this may be called at any
    /// point before [`Engine::run`]; a given workload must pop the exact
    /// same event sequence on either backend, which is what the
    /// conformance fuzzer's lockstep comparison checks.
    pub fn use_reference_queue(&mut self) {
        let mut q = EventQueue::heap_backed();
        while let Some((at, ev)) = self.q.pop() {
            q.schedule(at, ev);
        }
        self.q = q;
    }

    /// Record one structured trace event (a single branch when tracing
    /// is off — the zero-cost-when-disabled guarantee).
    #[inline]
    fn emit(&mut self, at: Time, nodelet: NodeletId, thread: Option<ThreadId>, kind: TraceKind) {
        if let Some(r) = self.recorder.as_mut() {
            r.record(TraceEvent {
                at,
                nodelet,
                thread,
                kind,
            });
        }
    }

    /// Sample the slot gauges of `nodelet` (call after its waiter queue
    /// or resident count changes).
    #[inline]
    fn sample_slots(&mut self, nodelet: usize, now: Time) {
        if let Some(t) = self.trace.as_mut() {
            let nl = &self.nodelets[nodelet];
            t.queue_depth[nodelet].set(now, nl.waiters.len() as u64);
            t.live_threads[nodelet].set(now, nl.in_use as u64);
        }
    }

    #[inline]
    fn trace_core(&mut self, nodelet: usize, grant: desim::server::Grant) {
        if let Some(t) = self.trace.as_mut() {
            t.core[nodelet].record(grant.start, grant.done - grant.start);
        }
    }

    #[inline]
    fn trace_channel(&mut self, nodelet: usize, grant: desim::server::Grant) {
        if let Some(t) = self.trace.as_mut() {
            t.channel[nodelet].record(grant.start, grant.done - grant.start);
        }
    }

    #[inline]
    fn trace_migration(&mut self, nodelet: usize, grant: desim::server::Grant) {
        if let Some(t) = self.trace.as_mut() {
            t.migration[nodelet].record(grant.start, grant.done - grant.start);
        }
    }

    /// The machine configuration this engine simulates.
    pub fn cfg(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Create an initial threadlet on `nodelet` at time zero. May be
    /// called multiple times before [`Engine::run`]. A spawn aimed at a
    /// dead nodelet lands on its nearest live stand-in.
    ///
    /// # Errors
    /// [`SimError::SpawnOutOfRange`] if `nodelet` is outside the machine.
    pub fn spawn_at(
        &mut self,
        nodelet: NodeletId,
        kernel: Box<dyn Kernel>,
    ) -> Result<ThreadId, SimError> {
        if nodelet.0 >= self.cfg.total_nodelets() {
            return Err(SimError::SpawnOutOfRange {
                nodelet,
                total: self.cfg.total_nodelets(),
            });
        }
        let nodelet = self.redirected(nodelet, Time::ZERO);
        let tid = self.alloc_thread(kernel, nodelet, nodelet);
        self.nodelets[nodelet.idx()].counters.spawns += 1;
        self.emit(Time::ZERO, nodelet, Some(tid), TraceKind::Spawn);
        self.q.schedule(Time::ZERO, Event::Arrive(tid));
        Ok(tid)
    }

    fn alloc_thread(
        &mut self,
        kernel: Box<dyn Kernel>,
        loc: NodeletId,
        home: NodeletId,
    ) -> ThreadId {
        let fresh = Thread {
            kernel: Some(kernel),
            loc,
            home,
            dest: loc,
            resume: None,
            in_flight_migration: false,
            mig_issue_at: Time::ZERO,
            migrations: 0,
            mig_attempts: 0,
            link_attempts: 0,
            done: false,
            op_started: Time::ZERO,
            op_kind: OpKind::None,
        };
        // A quit context has no pending events (its last continuation was
        // the pop that executed `Op::Quit`), so its table slot — and the
        // `ThreadId` indexing it — can be reused wholesale.
        let tid = match self.free_tids.pop() {
            Some(idx) => {
                self.threads[idx as usize] = fresh;
                ThreadId(idx)
            }
            None => {
                let tid = ThreadId(self.threads.len() as u32);
                self.threads.push(fresh);
                tid
            }
        };
        self.live += 1;
        self.spawned += 1;
        tid
    }

    /// Run until every threadlet has quit; returns the measurement report.
    ///
    /// # Errors
    /// A watchdog converts every no-progress condition into a structured
    /// error instead of hanging or panicking:
    /// [`SimError::Stalled`] if the event queue drains while threads are
    /// still alive (a deadlock), [`SimError::EventCapExceeded`] if the
    /// fault plan's wall-event cap trips (a livelock),
    /// [`SimError::RetryBudgetExhausted`] if injected NACKs/drops outlast
    /// their retry budget, and [`SimError::MissingKernel`] on engine-state
    /// corruption.
    pub fn run(mut self) -> Result<RunReport, SimError> {
        let cap = match self.cfg.faults.max_events {
            0 => u64::MAX,
            n => n,
        };
        while let Some((now, ev)) = self.q.pop() {
            self.events += 1;
            if self.events > cap {
                return Err(SimError::EventCapExceeded { cap });
            }
            match ev {
                Event::Arrive(tid) => self.on_arrive(tid, now),
                Event::Ready(tid) => self.on_ready(tid, now),
                Event::ChannelRead(tid, bytes) => self.on_channel_read(tid, bytes, now),
                Event::ChannelWrite {
                    nodelet,
                    bytes,
                    atomic,
                    from_remote,
                } => self.on_channel_write(nodelet, bytes, atomic, from_remote, now),
                Event::MigrateOut(tid) => self.on_migrate_out(tid, now),
                Event::LinkSend(tid) => self.on_link_send(tid, now),
                Event::SlotRelease(nodelet) => self.on_slot_release(nodelet, now),
            }
            if let Some(e) = self.error.take() {
                return Err(e);
            }
        }
        if self.live != 0 {
            return Err(SimError::Stalled {
                live: self.live,
                at: self.q.now(),
            });
        }
        let report = self.into_report();
        trace::offer_report(&report);
        Ok(report)
    }

    fn on_arrive(&mut self, tid: ThreadId, now: Time) {
        let loc = self.threads[tid.idx()].loc;
        if self.threads[tid.idx()].in_flight_migration {
            self.threads[tid.idx()].in_flight_migration = false;
            let issued = self.threads[tid.idx()].mig_issue_at;
            self.mig_latency.record(now - issued);
            self.nodelets[loc.idx()].counters.migrations_in += 1;
            self.emit(now, loc, Some(tid), TraceKind::MigrateIn);
        }
        let nl = &mut self.nodelets[loc.idx()];
        if nl.slots_free > 0 {
            nl.slots_free -= 1;
            nl.in_use += 1;
            self.q.schedule(now, Event::Ready(tid));
        } else {
            nl.counters.slot_waits += 1;
            nl.waiters.push_back(tid);
            self.emit(now, loc, Some(tid), TraceKind::SlotWait);
        }
        self.sample_slots(loc.idx(), now);
    }

    fn on_slot_release(&mut self, nodelet: NodeletId, now: Time) {
        let nl = &mut self.nodelets[nodelet.idx()];
        if let Some(waiter) = nl.waiters.pop_front() {
            // Slot transfers directly to the waiter; the departing
            // context's slot is immediately re-occupied, so `in_use`
            // is unchanged.
            self.q.schedule(now, Event::Ready(waiter));
        } else {
            nl.slots_free += 1;
            nl.in_use -= 1;
        }
        self.sample_slots(nodelet.idx(), now);
    }

    fn on_ready(&mut self, tid: ThreadId, now: Time) {
        self.charge(tid, now);
        let op = match self.threads[tid.idx()].resume.take() {
            Some(op) => op,
            None => {
                let t = &self.threads[tid.idx()];
                let ctx = KernelCtx {
                    tid,
                    here: t.loc,
                    home: t.home,
                    now,
                };
                match self.threads[tid.idx()].kernel.as_mut() {
                    Some(kernel) => kernel.step(&ctx),
                    None => {
                        self.fail(SimError::MissingKernel { thread: tid });
                        return;
                    }
                }
            }
        };
        self.execute(tid, op, now);
    }

    /// Attribute the elapsed time of the finished operation (if any) to
    /// its activity class.
    fn charge(&mut self, tid: ThreadId, now: Time) {
        let t = &mut self.threads[tid.idx()];
        let elapsed = now.saturating_sub(t.op_started);
        match t.op_kind {
            OpKind::None => {}
            OpKind::Compute => self.breakdown.compute += elapsed,
            OpKind::Memory => self.breakdown.memory += elapsed,
            OpKind::Migration => self.breakdown.migration += elapsed,
            OpKind::StoreIssue => self.breakdown.store_issue += elapsed,
            OpKind::Spawn => self.breakdown.spawn += elapsed,
        }
        t.op_kind = OpKind::None;
    }

    fn begin(&mut self, tid: ThreadId, kind: OpKind, now: Time) {
        let t = &mut self.threads[tid.idx()];
        t.op_started = now;
        t.op_kind = kind;
    }

    fn execute(&mut self, tid: ThreadId, op: Op, now: Time) {
        let loc = self.threads[tid.idx()].loc;
        let costs = self.cfg.costs;
        let target = match &op {
            Op::Load { addr, .. } | Op::Store { addr, .. } | Op::AtomicAdd { addr, .. } => {
                Some(addr.nodelet)
            }
            Op::MigrateTo { nodelet } => Some(*nodelet),
            Op::Spawn {
                place: Placement::On(t),
                ..
            } => Some(*t),
            _ => None,
        };
        if let Some(t) = target {
            if t.0 >= self.cfg.total_nodelets() {
                self.fail(SimError::TargetOutOfRange {
                    nodelet: t,
                    total: self.cfg.total_nodelets(),
                });
                return;
            }
        }
        // Memory and migration targets on dead nodelets are served by
        // their live stand-ins (see [`crate::fault::FaultPlan::dead`]).
        let op = match op {
            Op::Load { addr, bytes } => Op::Load {
                addr: self.remap_addr(addr, now),
                bytes,
            },
            Op::Store { addr, bytes } => Op::Store {
                addr: self.remap_addr(addr, now),
                bytes,
            },
            Op::AtomicAdd { addr, bytes } => Op::AtomicAdd {
                addr: self.remap_addr(addr, now),
                bytes,
            },
            Op::MigrateTo { nodelet } => Op::MigrateTo {
                nodelet: self.redirected(nodelet, now),
            },
            Op::Spawn { kernel, place } => Op::Spawn {
                kernel,
                place: match place {
                    Placement::Here => Placement::Here,
                    Placement::On(t) => Placement::On(self.redirected(t, now)),
                },
            },
            other => other,
        };
        match &op {
            Op::Compute { .. } => self.begin(tid, OpKind::Compute, now),
            Op::Load { addr, .. } => {
                let kind = if addr.is_local_to(loc) {
                    OpKind::Memory
                } else {
                    OpKind::Migration
                };
                self.begin(tid, kind, now);
            }
            Op::Store { .. } | Op::AtomicAdd { .. } => self.begin(tid, OpKind::StoreIssue, now),
            Op::MigrateTo { .. } => self.begin(tid, OpKind::Migration, now),
            Op::Spawn { .. } => self.begin(tid, OpKind::Spawn, now),
            Op::Quit => {}
        }
        match op {
            Op::Compute { cycles } => {
                let occ = self.cfg.cycles(cycles);
                let grant = self.core_offer(loc.idx(), now, occ);
                let extra = self
                    .cfg
                    .cycles(cycles.saturating_mul(costs.compute_latency_factor.saturating_sub(1)));
                self.q.schedule(grant.done + extra, Event::Ready(tid));
            }
            Op::Load { addr, bytes } => {
                if addr.is_local_to(loc) {
                    let grant =
                        self.core_offer(loc.idx(), now, self.cfg.cycles(costs.mem_issue_cycles));
                    let at_channel = grant.done + self.cfg.cycles(costs.mem_pipeline_cycles);
                    self.q.schedule(at_channel, Event::ChannelRead(tid, bytes));
                } else {
                    self.start_migration(tid, addr.nodelet, Some(Op::Load { addr, bytes }), now);
                }
            }
            Op::Store { addr, bytes } | Op::AtomicAdd { addr, bytes } => {
                let atomic = matches!(op, Op::AtomicAdd { .. });
                let grant =
                    self.core_offer(loc.idx(), now, self.cfg.cycles(costs.mem_issue_cycles));
                let pipelined = grant.done + self.cfg.cycles(costs.mem_pipeline_cycles);
                let (arrive, remote) = if addr.is_local_to(loc) {
                    (pipelined, false)
                } else {
                    // Posted remote packet: traverses the network, handled
                    // by the destination's memory-side processor. The
                    // issuing thread does NOT migrate or wait.
                    (pipelined + self.cfg.hop_latency(loc, addr.nodelet), true)
                };
                self.q.schedule(
                    arrive,
                    Event::ChannelWrite {
                        nodelet: addr.nodelet,
                        bytes,
                        atomic,
                        from_remote: remote,
                    },
                );
                // The thread continues once the store clears its pipeline.
                self.q.schedule(pipelined, Event::Ready(tid));
            }
            Op::MigrateTo { nodelet } => {
                if nodelet == loc {
                    // Degenerate self-migration: costs one issue.
                    let grant = self.core_offer(
                        loc.idx(),
                        now,
                        self.cfg.cycles(costs.migrate_issue_cycles),
                    );
                    self.q.schedule(grant.done, Event::Ready(tid));
                } else {
                    self.start_migration(tid, nodelet, None, now);
                }
            }
            Op::Spawn { kernel, place } => {
                let grant =
                    self.core_offer(loc.idx(), now, self.cfg.cycles(costs.spawn_issue_cycles));
                match place {
                    Placement::Here => {
                        let child = self.alloc_thread(kernel, loc, loc);
                        self.nodelets[loc.idx()].counters.spawns += 1;
                        self.emit(now, loc, Some(child), TraceKind::Spawn);
                        self.q
                            .schedule(grant.done + costs.spawn_local_latency, Event::Arrive(child));
                    }
                    Placement::On(target) if target == loc => {
                        // "Remote" spawn onto the current nodelet is just
                        // a local spawn — no engine traffic.
                        let child = self.alloc_thread(kernel, loc, loc);
                        self.nodelets[loc.idx()].counters.spawns += 1;
                        self.emit(now, loc, Some(child), TraceKind::Spawn);
                        self.q
                            .schedule(grant.done + costs.spawn_local_latency, Event::Arrive(child));
                    }
                    Placement::On(target) => {
                        // A remote spawn ships the newborn context through
                        // the local migration engine, exactly like a
                        // migration; the child's home (stack) is the target.
                        let child = self.alloc_thread(kernel, loc, target);
                        self.nodelets[target.idx()].counters.spawns += 1;
                        self.emit(now, target, Some(child), TraceKind::Spawn);
                        self.threads[child.idx()].dest = target;
                        self.threads[child.idx()].in_flight_migration = true;
                        self.threads[child.idx()].mig_issue_at = grant.done;
                        self.threads[child.idx()].migrations += 1;
                        self.nodelets[loc.idx()].counters.migrations_out += 1;
                        self.emit(now, loc, Some(child), TraceKind::MigrateOut);
                        self.q.schedule(grant.done, Event::MigrateOut(child));
                    }
                }
                // The parent resumes after the spawn clears its pipeline.
                let resume = grant.done + self.cfg.cycles(costs.mem_pipeline_cycles);
                self.q.schedule(resume, Event::Ready(tid));
            }
            Op::Quit => {
                let t = &mut self.threads[tid.idx()];
                t.done = true;
                t.kernel = None;
                let migrations = t.migrations;
                self.migs_per_thread.record(migrations as f64);
                self.live -= 1;
                self.free_tids.push(tid.0);
                self.emit(now, loc, Some(tid), TraceKind::Quit);
                self.q.schedule(now, Event::SlotRelease(loc));
            }
        }
    }

    /// Issue a migration of `tid` toward `dest`; `resume` (if any) is
    /// re-executed on arrival.
    fn start_migration(&mut self, tid: ThreadId, dest: NodeletId, resume: Option<Op>, now: Time) {
        let loc = self.threads[tid.idx()].loc;
        debug_assert_ne!(loc, dest, "migration to current nodelet");
        let grant = self.core_offer(
            loc.idx(),
            now,
            self.cfg.cycles(self.cfg.costs.migrate_issue_cycles),
        );
        let t = &mut self.threads[tid.idx()];
        t.resume = resume;
        t.dest = dest;
        t.in_flight_migration = true;
        t.mig_issue_at = grant.done;
        t.migrations += 1;
        self.nodelets[loc.idx()].counters.migrations_out += 1;
        self.emit(now, loc, Some(tid), TraceKind::MigrateOut);
        // The context departs the core at grant.done: its slot frees and
        // it enters the migration engine.
        self.q.schedule(grant.done, Event::SlotRelease(loc));
        self.q.schedule(grant.done, Event::MigrateOut(tid));
    }

    fn on_migrate_out(&mut self, tid: ThreadId, now: Time) {
        let loc = self.threads[tid.idx()].loc;
        let dest = self.threads[tid.idx()].dest;
        let faults = &self.cfg.faults;
        if faults.mig_nack_prob > 0.0 {
            let (prob, backoff, budget) = (
                faults.mig_nack_prob,
                faults.mig_backoff,
                faults.mig_retry_budget,
            );
            if self.fdraw() < prob {
                // The engine refuses the context: back off exponentially
                // (capped at 64x) and retry, up to the budget.
                self.nodelets[loc.idx()].counters.mig_nacks += 1;
                self.emit(now, loc, Some(tid), TraceKind::MigNack);
                let attempts = self.threads[tid.idx()].mig_attempts;
                if attempts >= budget {
                    self.fail(SimError::RetryBudgetExhausted {
                        thread: tid,
                        nodelet: loc,
                        retries: attempts,
                    });
                    return;
                }
                self.threads[tid.idx()].mig_attempts = attempts + 1;
                self.nodelets[loc.idx()].counters.mig_retries += 1;
                self.emit(now, loc, Some(tid), TraceKind::MigRetry);
                let delay = backoff * (1u64 << attempts.min(6));
                self.q.schedule(now + delay, Event::MigrateOut(tid));
                return;
            }
        }
        self.threads[tid.idx()].mig_attempts = 0;
        let service = self.scaled(loc.idx(), self.cfg.migration_service());
        let grant = self.nodelets[loc.idx()].mig_engine.offer(now, service);
        self.trace_migration(loc.idx(), grant);
        if loc.same_node(dest, self.cfg.nodelets_per_node) {
            let arrival = grant.done + self.cfg.hop_latency(loc, dest);
            self.threads[tid.idx()].loc = dest;
            self.q.schedule(arrival, Event::Arrive(tid));
        } else {
            // Cross-node: after the engine, the context crosses the
            // RapidIO fabric, a shared per-node link.
            self.q.schedule(grant.done, Event::LinkSend(tid));
        }
    }

    fn on_link_send(&mut self, tid: ThreadId, now: Time) {
        let loc = self.threads[tid.idx()].loc;
        let dest = self.threads[tid.idx()].dest;
        let node = loc.node(self.cfg.nodelets_per_node) as usize;
        let faults = &self.cfg.faults;
        if faults.link_drop_prob > 0.0 {
            let (prob, budget) = (faults.link_drop_prob, faults.link_retry_budget);
            if self.fdraw() < prob {
                // Packet lost on the fabric: detected after a round-trip
                // hop and retransmitted, up to the budget.
                self.nodelets[loc.idx()].counters.link_retransmits += 1;
                self.emit(now, loc, Some(tid), TraceKind::LinkRetransmit);
                let attempts = self.threads[tid.idx()].link_attempts;
                if attempts >= budget {
                    self.fail(SimError::RetryBudgetExhausted {
                        thread: tid,
                        nodelet: loc,
                        retries: attempts,
                    });
                    return;
                }
                self.threads[tid.idx()].link_attempts = attempts + 1;
                self.q
                    .schedule(now + self.cfg.inter_node_hop * 2, Event::LinkSend(tid));
                return;
            }
        }
        self.threads[tid.idx()].link_attempts = 0;
        let delivered = self.links[node].send(now, self.cfg.context_bytes as u64);
        let arrival = delivered + self.cfg.inter_node_hop;
        self.threads[tid.idx()].loc = dest;
        self.q.schedule(arrival, Event::Arrive(tid));
    }

    fn on_channel_read(&mut self, tid: ThreadId, bytes: u32, now: Time) {
        let loc = self.threads[tid.idx()].loc;
        let service = self.channel_service_faulted(loc.idx(), bytes, Time::ZERO, now);
        let nl = &mut self.nodelets[loc.idx()];
        let grant = nl.channel.offer(now, service);
        nl.counters.local_loads += 1;
        nl.counters.bytes_loaded += bytes as u64;
        self.emit(now, loc, Some(tid), TraceKind::LocalLoad);
        self.trace_channel(loc.idx(), grant);
        self.q
            .schedule(grant.done + self.cfg.dram_latency, Event::Ready(tid));
    }

    /// Channel service time for one access on `nodelet`, including the
    /// slowdown factor and (probabilistically) an ECC-style retry.
    fn channel_service_faulted(
        &mut self,
        nodelet: usize,
        bytes: u32,
        extra: Time,
        now: Time,
    ) -> Time {
        let mut service = self.scaled(nodelet, self.cfg.channel_service(bytes) + extra);
        let faults = &self.cfg.faults;
        if faults.ecc_prob > 0.0 {
            let (prob, latency) = (faults.ecc_prob, faults.ecc_latency);
            if self.fdraw() < prob {
                // Correctable error: the access occupies the channel for
                // one extra scrub-and-retry.
                self.nodelets[nodelet].counters.ecc_retries += 1;
                self.emit(now, NodeletId(nodelet as u32), None, TraceKind::EccRetry);
                service += latency;
            }
        }
        service
    }

    fn on_channel_write(
        &mut self,
        nodelet: NodeletId,
        bytes: u32,
        atomic: bool,
        from_remote: bool,
        now: Time,
    ) {
        let extra = if atomic {
            self.cfg.costs.atomic_extra
        } else {
            Time::ZERO
        };
        let service = self.channel_service_faulted(nodelet.idx(), bytes, extra, now);
        let nl = &mut self.nodelets[nodelet.idx()];
        let grant = nl.channel.offer(now, service);
        if atomic {
            nl.counters.atomics += 1;
        } else {
            nl.counters.local_stores += 1;
        }
        if from_remote {
            nl.counters.remote_packets_in += 1;
        }
        nl.counters.bytes_stored += bytes as u64;
        // Posted packets are detached from their issuing thread by the
        // time they reach the channel, so these events carry no tid.
        let kind = if atomic {
            TraceKind::Atomic
        } else {
            TraceKind::LocalStore
        };
        self.emit(now, nodelet, None, kind);
        if from_remote {
            self.emit(now, nodelet, None, TraceKind::RemotePacket);
        }
        self.trace_channel(nodelet.idx(), grant);
    }

    fn into_report(self) -> RunReport {
        let makespan = self.q.now();
        let occupancy = self
            .nodelets
            .iter()
            .map(|n| NodeletOccupancy {
                core_busy: n.cores.busy_time(),
                channel_busy: n.channel.busy_time(),
                migration_busy: n.mig_engine.busy_time(),
                channel_mean_wait: n.channel.mean_wait(),
                migration_mean_wait: n.mig_engine.mean_wait(),
            })
            .collect();
        let breakdown = self.breakdown;
        let timelines = self.trace.map(|mut t| {
            // Account the final plateau of every gauge out to the end of
            // the run, so trailing idle/resident time is not lost.
            for g in t.queue_depth.iter_mut().chain(t.live_threads.iter_mut()) {
                g.finish(makespan);
            }
            RunTimelines {
                bucket: t
                    .core
                    .first()
                    .map(Timeline::bucket)
                    .unwrap_or(Time::from_us(1)),
                core: t.core,
                channel: t.channel,
                migration: t.migration,
                queue_depth: t.queue_depth,
                live_threads: t.live_threads,
            }
        });
        RunReport {
            makespan,
            nodelets: self.nodelets.into_iter().map(|n| n.counters).collect(),
            occupancy,
            gcs_per_nodelet: self.cfg.gcs_per_nodelet,
            threads: self.spawned,
            events: self.events,
            migration_latency: self.mig_latency,
            migrations_per_thread: self.migs_per_thread,
            timelines,
            breakdown,
            trace: self.recorder.map(TraceRecorder::into_log),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::GlobalAddr;
    use crate::kernel::ScriptKernel;
    use crate::presets;

    fn nl(n: u32) -> NodeletId {
        NodeletId(n)
    }

    fn run_script_on(cfg: MachineConfig, ops: Vec<Op>) -> RunReport {
        let mut e = Engine::new(cfg).unwrap();
        e.spawn_at(nl(0), Box::new(ScriptKernel::new(ops))).unwrap();
        e.run().unwrap()
    }

    fn run_script(ops: Vec<Op>) -> RunReport {
        run_script_on(presets::chick_prototype(), ops)
    }

    #[test]
    fn empty_kernel_terminates() {
        let r = run_script(vec![]);
        assert_eq!(r.threads, 1);
        assert_eq!(r.total_migrations(), 0);
    }

    #[test]
    fn local_load_counts_bytes_no_migration() {
        let r = run_script(vec![Op::Load {
            addr: GlobalAddr::new(nl(0), 64),
            bytes: 8,
        }]);
        assert_eq!(r.nodelets[0].local_loads, 1);
        assert_eq!(r.nodelets[0].bytes_loaded, 8);
        assert_eq!(r.total_migrations(), 0);
        assert!(r.makespan > Time::ZERO);
    }

    #[test]
    fn remote_load_migrates_thread() {
        let r = run_script(vec![Op::Load {
            addr: GlobalAddr::new(nl(3), 64),
            bytes: 8,
        }]);
        assert_eq!(r.total_migrations(), 1);
        assert_eq!(r.nodelets[0].migrations_out, 1);
        assert_eq!(r.nodelets[3].migrations_in, 1);
        // The load executed at the destination.
        assert_eq!(r.nodelets[3].local_loads, 1);
        assert_eq!(r.nodelets[0].local_loads, 0);
        assert_eq!(r.migration_latency.count(), 1);
    }

    #[test]
    fn remote_store_does_not_migrate() {
        let r = run_script(vec![Op::Store {
            addr: GlobalAddr::new(nl(5), 0),
            bytes: 8,
        }]);
        assert_eq!(r.total_migrations(), 0);
        assert_eq!(r.nodelets[5].local_stores, 1);
        assert_eq!(r.nodelets[5].remote_packets_in, 1);
        assert_eq!(r.nodelets[5].bytes_stored, 8);
    }

    #[test]
    fn remote_atomic_counts_as_atomic() {
        let r = run_script(vec![Op::AtomicAdd {
            addr: GlobalAddr::new(nl(2), 0),
            bytes: 8,
        }]);
        assert_eq!(r.total_migrations(), 0);
        assert_eq!(r.nodelets[2].atomics, 1);
        assert_eq!(r.nodelets[2].remote_packets_in, 1);
    }

    #[test]
    fn migrate_to_bounces() {
        let r = run_script(vec![
            Op::MigrateTo { nodelet: nl(1) },
            Op::MigrateTo { nodelet: nl(0) },
            Op::MigrateTo { nodelet: nl(1) },
        ]);
        assert_eq!(r.total_migrations(), 3);
        assert_eq!(r.nodelets[0].migrations_out, 2);
        assert_eq!(r.nodelets[1].migrations_out, 1);
        assert!((r.migrations_per_thread.mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn local_spawn_runs_child() {
        let child = ScriptKernel::new(vec![Op::Compute { cycles: 10 }]);
        let r = run_script(vec![Op::Spawn {
            kernel: Box::new(child),
            place: Placement::Here,
        }]);
        assert_eq!(r.threads, 2);
        assert_eq!(r.total_spawns(), 2); // initial + child
        assert_eq!(r.total_migrations(), 0);
    }

    #[test]
    fn remote_spawn_travels_through_migration_engine() {
        let child = ScriptKernel::new(vec![Op::Load {
            addr: GlobalAddr::new(nl(4), 0),
            bytes: 8,
        }]);
        let r = run_script(vec![Op::Spawn {
            kernel: Box::new(child),
            place: Placement::On(nl(4)),
        }]);
        assert_eq!(r.threads, 2);
        // Child landed on nodelet 4 and its load was local there.
        assert_eq!(r.nodelets[4].local_loads, 1);
        assert_eq!(r.nodelets[4].spawns, 1);
        // The remote spawn consumed the source migration engine once and
        // needed no further migration for the load.
        assert_eq!(r.nodelets[0].migrations_out, 1);
    }

    #[test]
    fn slot_cap_serializes_arrivals() {
        // Spawn 3 children on a machine with 2 slots per nodelet; each
        // child computes. With only 2 slots, at least one child waits.
        let mut cfg = presets::chick_prototype();
        cfg.threadlets_per_gc = 2;
        let mut ops = Vec::new();
        for _ in 0..3 {
            ops.push(Op::Spawn {
                kernel: Box::new(ScriptKernel::new(vec![Op::Compute { cycles: 1000 }])),
                place: Placement::Here,
            });
        }
        let r = run_script_on(cfg, ops);
        assert_eq!(r.threads, 4);
        assert!(r.nodelets[0].slot_waits > 0, "expected slot contention");
    }

    #[test]
    fn cross_node_migration_uses_link() {
        let r = run_script_on(
            presets::emu64_full_speed(),
            vec![Op::Load {
                addr: GlobalAddr::new(nl(12), 0), // node 1
                bytes: 8,
            }],
        );
        assert_eq!(r.total_migrations(), 1);
        assert_eq!(r.nodelets[12].local_loads, 1);
    }

    #[test]
    fn deterministic_repeat() {
        let mk = || {
            run_script(vec![
                Op::Load {
                    addr: GlobalAddr::new(nl(2), 0),
                    bytes: 16,
                },
                Op::Compute { cycles: 7 },
                Op::Store {
                    addr: GlobalAddr::new(nl(1), 8),
                    bytes: 8,
                },
            ])
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.total_bytes(), b.total_bytes());
    }

    #[test]
    fn breakdown_attributes_time_to_the_right_class() {
        // Pure compute.
        let r = run_script(vec![Op::Compute { cycles: 100 }]);
        assert!(r.breakdown.compute > Time::ZERO);
        assert_eq!(r.breakdown.migration, Time::ZERO);
        assert_eq!(r.breakdown.memory, Time::ZERO);
        // Local load.
        let r = run_script(vec![Op::Load {
            addr: GlobalAddr::new(nl(0), 0),
            bytes: 8,
        }]);
        assert!(r.breakdown.memory > Time::ZERO);
        assert_eq!(r.breakdown.migration, Time::ZERO);
        // Remote load: migration plus the re-executed (now local) read.
        let r = run_script(vec![Op::Load {
            addr: GlobalAddr::new(nl(5), 0),
            bytes: 8,
        }]);
        assert!(r.breakdown.migration > Time::ZERO);
        assert!(r.breakdown.memory > Time::ZERO);
        assert!(
            r.breakdown.migration > r.breakdown.store_issue,
            "{:?}",
            r.breakdown
        );
        // Posted store.
        let r = run_script(vec![Op::Store {
            addr: GlobalAddr::new(nl(3), 0),
            bytes: 8,
        }]);
        assert!(r.breakdown.store_issue > Time::ZERO);
        assert_eq!(r.breakdown.migration, Time::ZERO);
    }

    #[test]
    fn breakdown_total_close_to_thread_busy_time() {
        // A single thread's breakdown total equals its makespan minus the
        // initial arrival instant (every op interval is accounted).
        let r = run_script(vec![
            Op::Compute { cycles: 50 },
            Op::Load {
                addr: GlobalAddr::new(nl(2), 0),
                bytes: 8,
            },
            Op::Store {
                addr: GlobalAddr::new(nl(2), 8),
                bytes: 8,
            },
            Op::Compute { cycles: 10 },
        ]);
        let total = r.breakdown.total();
        assert!(
            total <= r.makespan && total >= r.makespan / 2,
            "breakdown {total} vs makespan {}",
            r.makespan
        );
    }

    #[test]
    fn compute_occupancy_vs_latency() {
        // A single thread computing 100 cycles is blocked for
        // 100 * factor cycles, but the core is only busy 100 cycles.
        let cfg = presets::chick_prototype();
        let factor = cfg.costs.compute_latency_factor;
        let r = run_script_on(cfg.clone(), vec![Op::Compute { cycles: 100 }]);
        assert_eq!(r.occupancy[0].core_busy, cfg.cycles(100));
        assert!(r.makespan >= cfg.cycles(100 * factor));
    }

    // ---- tracing and telemetry ----

    #[test]
    fn zero_timeline_bucket_is_an_error_not_a_panic() {
        let mut e = Engine::new(presets::chick_prototype()).unwrap();
        match e.enable_timeline(Time::ZERO) {
            Err(SimError::InvalidConfig(why)) => assert!(why.contains("bucket")),
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    fn traced_script(cfg: MachineConfig, ops: Vec<Op>) -> RunReport {
        let mut e = Engine::new(cfg).unwrap();
        e.enable_trace(1 << 16);
        e.enable_timeline(Time::from_us(1)).unwrap();
        e.spawn_at(nl(0), Box::new(ScriptKernel::new(ops))).unwrap();
        e.run().unwrap()
    }

    fn busy_script() -> Vec<Op> {
        let mut ops = Vec::new();
        for i in 0..6u32 {
            ops.push(Op::Spawn {
                kernel: Box::new(ScriptKernel::new(vec![
                    Op::Load {
                        addr: GlobalAddr::new(nl(i % 8), 0),
                        bytes: 8,
                    },
                    Op::Store {
                        addr: GlobalAddr::new(nl((i + 3) % 8), 0),
                        bytes: 8,
                    },
                ])),
                place: Placement::On(nl(i % 8)),
            });
        }
        ops.push(Op::AtomicAdd {
            addr: GlobalAddr::new(nl(7), 0),
            bytes: 8,
        });
        ops
    }

    #[test]
    fn trace_event_counts_reconcile_with_counters() {
        use crate::trace::TraceKind;
        let r = traced_script(presets::chick_prototype(), busy_script());
        let log = r.trace.as_ref().unwrap();
        assert!(log.is_lossless());
        assert_eq!(log.count_of(TraceKind::Spawn), r.total_spawns());
        assert_eq!(log.count_of(TraceKind::MigrateOut), r.total_migrations());
        let sums = |f: fn(&NodeletCounters) -> u64| r.nodelets.iter().map(f).sum::<u64>();
        assert_eq!(
            log.count_of(TraceKind::MigrateIn),
            sums(|n| n.migrations_in)
        );
        assert_eq!(log.count_of(TraceKind::LocalLoad), sums(|n| n.local_loads));
        assert_eq!(
            log.count_of(TraceKind::LocalStore),
            sums(|n| n.local_stores)
        );
        assert_eq!(log.count_of(TraceKind::Atomic), sums(|n| n.atomics));
        assert_eq!(
            log.count_of(TraceKind::RemotePacket),
            sums(|n| n.remote_packets_in)
        );
        assert_eq!(log.count_of(TraceKind::SlotWait), sums(|n| n.slot_waits));
        assert_eq!(log.count_of(TraceKind::Quit), r.threads);
        // Events arrive in nondecreasing simulated-time order.
        assert!(log.events.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn faulted_trace_counts_nacks_and_retries() {
        use crate::trace::TraceKind;
        let mut cfg = presets::chick_prototype();
        cfg.faults.mig_nack_prob = 0.5;
        cfg.faults.mig_retry_budget = 64;
        let mut ops = Vec::new();
        for _ in 0..10 {
            ops.push(Op::MigrateTo { nodelet: nl(1) });
            ops.push(Op::MigrateTo { nodelet: nl(0) });
        }
        let r = traced_script(cfg, ops);
        let log = r.trace.as_ref().unwrap();
        assert!(r.total_nacks() > 0);
        assert_eq!(log.count_of(TraceKind::MigNack), r.total_nacks());
        assert_eq!(log.count_of(TraceKind::MigRetry), r.total_retries());
    }

    #[test]
    fn tracing_does_not_perturb_the_simulation() {
        let base = run_script(busy_script());
        let traced = traced_script(presets::chick_prototype(), busy_script());
        assert_eq!(base.makespan, traced.makespan);
        assert_eq!(
            format!("{:?}", base.nodelets),
            format!("{:?}", traced.nodelets)
        );
        assert_eq!(
            format!("{:?}", base.breakdown),
            format!("{:?}", traced.breakdown)
        );
    }

    #[test]
    fn ring_capacity_bounds_the_log_and_counts_drops() {
        let mut e = Engine::new(presets::chick_prototype()).unwrap();
        e.enable_trace(4);
        e.spawn_at(nl(0), Box::new(ScriptKernel::new(busy_script())))
            .unwrap();
        let r = e.run().unwrap();
        let log = r.trace.unwrap();
        assert_eq!(log.events.len(), 4);
        assert!(log.dropped > 0);
        let full = traced_script(presets::chick_prototype(), busy_script());
        assert_eq!(log.emitted(), full.trace.unwrap().emitted());
    }

    #[test]
    fn slot_gauges_observe_contention() {
        let mut cfg = presets::chick_prototype();
        cfg.threadlets_per_gc = 2;
        let mut ops = Vec::new();
        for _ in 0..4 {
            ops.push(Op::Spawn {
                kernel: Box::new(ScriptKernel::new(vec![Op::Compute { cycles: 5000 }])),
                place: Placement::Here,
            });
        }
        let mut e = Engine::new(cfg.clone()).unwrap();
        e.enable_timeline(Time::from_ns(100)).unwrap();
        e.spawn_at(nl(0), Box::new(ScriptKernel::new(ops))).unwrap();
        let r = e.run().unwrap();
        assert!(r.nodelets[0].slot_waits > 0, "expected slot contention");
        let tl = r.timelines.unwrap();
        let peak_depth = (0..tl.queue_depth[0].len())
            .map(|b| tl.queue_depth[0].peak(b))
            .max()
            .unwrap_or(0);
        let peak_live = (0..tl.live_threads[0].len())
            .map(|b| tl.live_threads[0].peak(b))
            .max()
            .unwrap_or(0);
        assert!(peak_depth > 0, "queue-depth gauge missed the wait");
        assert_eq!(peak_live as u32, cfg.slots_per_nodelet());
        // Gauges on idle nodelets stay flat at zero.
        let idle_peak = (0..tl.live_threads[5].len())
            .map(|b| tl.live_threads[5].peak(b))
            .max()
            .unwrap_or(0);
        assert_eq!(idle_peak, 0);
    }

    // ---- fault injection and watchdog ----

    use crate::fault::FaultPlan;

    /// A kernel that migrates between two nodelets forever — a crafted
    /// livelock for the watchdog's wall-event cap.
    struct PingPongForever {
        a: NodeletId,
        b: NodeletId,
    }

    impl Kernel for PingPongForever {
        fn step(&mut self, ctx: &KernelCtx) -> Op {
            Op::MigrateTo {
                nodelet: if ctx.here == self.a { self.b } else { self.a },
            }
        }
    }

    #[test]
    fn invalid_config_is_an_error_not_a_panic() {
        let mut cfg = presets::chick_prototype();
        cfg.gcs_per_nodelet = 0;
        match Engine::new(cfg) {
            Err(SimError::InvalidConfig(why)) => assert!(why.contains("gcs_per_nodelet")),
            other => panic!("expected InvalidConfig, got {:?}", other.err()),
        }
    }

    #[test]
    fn bad_fault_plan_is_rejected() {
        let mut cfg = presets::chick_prototype();
        cfg.faults.ecc_prob = 2.0;
        assert!(matches!(Engine::new(cfg), Err(SimError::InvalidConfig(_))));
        let mut cfg = presets::chick_prototype();
        cfg.faults.dead = vec![true; 8];
        assert!(matches!(Engine::new(cfg), Err(SimError::AllNodeletsDead)));
    }

    #[test]
    fn spawn_out_of_range_is_an_error() {
        let mut e = Engine::new(presets::chick_prototype()).unwrap();
        let r = e.spawn_at(nl(99), Box::new(ScriptKernel::new(vec![])));
        assert!(matches!(r, Err(SimError::SpawnOutOfRange { .. })));
    }

    #[test]
    fn kernel_target_out_of_range_is_an_error() {
        let mut e = Engine::new(presets::chick_prototype()).unwrap();
        e.spawn_at(
            nl(0),
            Box::new(ScriptKernel::new(vec![Op::Load {
                addr: GlobalAddr::new(nl(64), 0),
                bytes: 8,
            }])),
        )
        .unwrap();
        assert!(matches!(e.run(), Err(SimError::TargetOutOfRange { .. })));
    }

    #[test]
    fn dead_nodelet_traffic_is_redirected() {
        let mut cfg = presets::chick_prototype();
        cfg.faults.dead = vec![false, false, false, true, false, false, false, false];
        let r = run_script_on(
            cfg,
            vec![Op::Load {
                addr: GlobalAddr::new(nl(3), 0),
                bytes: 8,
            }],
        );
        // Nodelet 3's memory is served by its live neighbor, nodelet 4.
        assert_eq!(r.nodelets[3].local_loads, 0);
        assert_eq!(r.nodelets[4].local_loads, 1);
        assert_eq!(r.total_redirects(), 1);
    }

    #[test]
    fn spawn_on_dead_nodelet_lands_on_live_neighbor() {
        let mut cfg = presets::chick_prototype();
        cfg.faults.dead = vec![true];
        let mut e = Engine::new(cfg).unwrap();
        e.spawn_at(nl(0), Box::new(ScriptKernel::new(vec![])))
            .unwrap();
        let r = e.run().unwrap();
        assert_eq!(r.nodelets[0].spawns, 0);
        assert_eq!(r.nodelets[1].spawns, 1);
        assert!(r.total_redirects() >= 1);
    }

    #[test]
    fn slowdown_stretches_the_run() {
        let script = || {
            vec![
                Op::Compute { cycles: 1000 },
                Op::Load {
                    addr: GlobalAddr::new(nl(0), 0),
                    bytes: 64,
                },
            ]
        };
        let base = run_script(script());
        let mut cfg = presets::chick_prototype();
        cfg.faults.slowdown = vec![4.0];
        let slow = run_script_on(cfg, script());
        assert!(
            slow.makespan > base.makespan,
            "slow {} vs base {}",
            slow.makespan,
            base.makespan
        );
    }

    #[test]
    fn nacks_are_counted_and_retried() {
        let mut cfg = presets::chick_prototype();
        cfg.faults.mig_nack_prob = 0.5;
        cfg.faults.mig_retry_budget = 64;
        let mut ops = Vec::new();
        for _ in 0..10 {
            ops.push(Op::MigrateTo { nodelet: nl(1) });
            ops.push(Op::MigrateTo { nodelet: nl(0) });
        }
        let r = run_script_on(cfg, ops);
        assert!(
            r.total_nacks() > 0,
            "expected NACKs at p=0.5 over 20 migrations"
        );
        assert_eq!(r.total_nacks(), r.total_retries());
        assert_eq!(r.total_migrations(), 20);
    }

    #[test]
    fn retry_budget_exhaustion_is_an_error_not_a_hang() {
        let mut cfg = presets::chick_prototype();
        cfg.faults.mig_nack_prob = 1.0;
        cfg.faults.mig_retry_budget = 3;
        let mut e = Engine::new(cfg).unwrap();
        e.spawn_at(
            nl(0),
            Box::new(ScriptKernel::new(vec![Op::MigrateTo { nodelet: nl(1) }])),
        )
        .unwrap();
        match e.run() {
            Err(SimError::RetryBudgetExhausted { retries, .. }) => assert_eq!(retries, 3),
            other => panic!("expected RetryBudgetExhausted, got {other:?}"),
        }
    }

    #[test]
    fn watchdog_event_cap_catches_livelock() {
        let mut cfg = presets::chick_prototype();
        cfg.faults.max_events = 10_000;
        let mut e = Engine::new(cfg).unwrap();
        e.spawn_at(nl(0), Box::new(PingPongForever { a: nl(0), b: nl(1) }))
            .unwrap();
        match e.run() {
            Err(SimError::EventCapExceeded { cap }) => assert_eq!(cap, 10_000),
            other => panic!(
                "expected EventCapExceeded, got {:?}",
                other.map(|r| r.makespan)
            ),
        }
    }

    #[test]
    fn ecc_retries_slow_the_channel() {
        let script = || {
            (0..50)
                .map(|i| Op::Load {
                    addr: GlobalAddr::new(nl(0), i * 8),
                    bytes: 8,
                })
                .collect::<Vec<_>>()
        };
        let base = run_script(script());
        let mut cfg = presets::chick_prototype();
        cfg.faults.ecc_prob = 1.0;
        let faulted = run_script_on(cfg, script());
        assert_eq!(faulted.nodelets[0].ecc_retries, 50);
        assert!(faulted.makespan > base.makespan);
    }

    #[test]
    fn link_drops_are_retransmitted() {
        let mut cfg = presets::emu64_full_speed();
        cfg.faults.link_drop_prob = 0.5;
        cfg.faults.link_retry_budget = 64;
        let mut ops = Vec::new();
        for _ in 0..10 {
            ops.push(Op::MigrateTo { nodelet: nl(12) });
            ops.push(Op::MigrateTo { nodelet: nl(0) });
        }
        let r = run_script_on(cfg, ops);
        assert!(r.total_link_retransmits() > 0);
        assert_eq!(r.total_migrations(), 20);
    }

    #[test]
    fn faulted_runs_replay_byte_for_byte() {
        let mk = || {
            let mut cfg = presets::chick_prototype();
            cfg.faults = FaultPlan {
                seed: 77,
                mig_nack_prob: 0.3,
                ecc_prob: 0.2,
                ..FaultPlan::none()
            }
            .with_dead_fraction(8, 0.25)
            .with_slow_fraction(8, 0.25, 3.0);
            let mut ops = Vec::new();
            for i in 0..8u32 {
                ops.push(Op::Load {
                    addr: GlobalAddr::new(nl(i % 8), (i as u64) * 8),
                    bytes: 8,
                });
            }
            run_script_on(cfg, ops)
        };
        let (a, b) = (mk(), mk());
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(format!("{:?}", a.nodelets), format!("{:?}", b.nodelets));
        assert_eq!(format!("{:?}", a.breakdown), format!("{:?}", b.breakdown));
    }

    #[test]
    fn zero_fault_plan_matches_baseline_exactly() {
        let script = || {
            vec![
                Op::Load {
                    addr: GlobalAddr::new(nl(5), 0),
                    bytes: 16,
                },
                Op::Compute { cycles: 30 },
                Op::Store {
                    addr: GlobalAddr::new(nl(2), 0),
                    bytes: 8,
                },
            ]
        };
        let base = run_script(script());
        let mut cfg = presets::chick_prototype();
        // An explicitly-spelled-out zero plan, plus a (non-injecting)
        // watchdog cap, must not perturb timing at all.
        cfg.faults = FaultPlan {
            seed: 12345,
            max_events: 1_000_000,
            slowdown: vec![1.0; 8],
            dead: vec![false; 8],
            ..FaultPlan::none()
        };
        let zero = run_script_on(cfg, script());
        assert_eq!(base.makespan, zero.makespan);
        assert_eq!(
            format!("{:?}", base.nodelets),
            format!("{:?}", zero.nodelets)
        );
    }
}
