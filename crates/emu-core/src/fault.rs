//! Deterministic fault injection and structured simulation errors.
//!
//! The Chick the paper measured was a partially degraded machine: one
//! usable node, 1.0 firmware running the migration engine well below its
//! simulated rate (Fig 10: 9 M vs 16 M migrations/s), and runs aborted by
//! immature system software. A [`FaultPlan`] makes that kind of machine a
//! first-class simulation target: per-nodelet slowdowns, dead nodelets
//! whose traffic is redirected to live neighbors, migration-engine NACKs
//! with bounded exponential backoff, ECC-style memory retries, and link
//! drops — all driven by a seed so a given plan replays byte-for-byte.
//!
//! Failures that cannot degrade gracefully (invalid configuration, retry
//! budgets exhausted, a stalled event loop) surface as [`SimError`]
//! instead of panics or hangs.

use crate::addr::NodeletId;
use crate::kernel::ThreadId;
use desim::time::Time;
use std::fmt;

/// Structured failure of a simulation run.
///
/// Returned by [`crate::engine::Engine::new`],
/// [`crate::engine::Engine::spawn_at`] and [`crate::engine::Engine::run`]
/// instead of panicking: every path reachable from user-supplied
/// configuration reports through this type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The [`crate::config::MachineConfig`] (or its fault plan) failed
    /// validation.
    InvalidConfig(String),
    /// A spawn targeted a nodelet outside the machine.
    SpawnOutOfRange {
        /// The requested nodelet.
        nodelet: NodeletId,
        /// Number of nodelets in the machine.
        total: u32,
    },
    /// A kernel operation (load, store, migrate, remote spawn) referenced
    /// a nodelet outside the machine.
    TargetOutOfRange {
        /// The referenced nodelet.
        nodelet: NodeletId,
        /// Number of nodelets in the machine.
        total: u32,
    },
    /// Every nodelet in the fault plan is dead — nothing can run.
    AllNodeletsDead,
    /// A thread was scheduled to run but its kernel was already taken
    /// (an engine-state corruption the watchdog turns into an error).
    MissingKernel {
        /// The thread without a kernel.
        thread: ThreadId,
    },
    /// The event queue drained while threads were still alive — a
    /// deadlock (e.g. threads parked on slots that can never free).
    Stalled {
        /// Threads still alive at the stall.
        live: u64,
        /// Simulation time at the stall.
        at: Time,
    },
    /// A migration (or link retransmit) exceeded its retry budget.
    RetryBudgetExhausted {
        /// The thread whose operation was abandoned.
        thread: ThreadId,
        /// The nodelet whose engine kept NACKing.
        nodelet: NodeletId,
        /// Retries performed before giving up.
        retries: u32,
    },
    /// The run processed more events than the plan's wall-event cap —
    /// the watchdog's defense against livelock (e.g. migration storms).
    EventCapExceeded {
        /// The configured cap.
        cap: u64,
    },
    /// A cooperative wall-clock deadline expired mid-run (see
    /// [`crate::engine::Engine::set_cancel`]). Unlike the deterministic
    /// event cap, where the run stops depends on host speed — callers use
    /// this as a typed timeout, not a reproducible simulation outcome.
    DeadlineExceeded {
        /// The wall-clock budget that expired, in milliseconds.
        deadline_ms: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig(why) => write!(f, "invalid MachineConfig: {why}"),
            SimError::SpawnOutOfRange { nodelet, total } => {
                write!(
                    f,
                    "spawn target {nodelet:?} outside machine of {total} nodelets"
                )
            }
            SimError::TargetOutOfRange { nodelet, total } => {
                write!(
                    f,
                    "kernel op targets {nodelet:?} outside machine of {total} nodelets"
                )
            }
            SimError::AllNodeletsDead => write!(f, "fault plan marks every nodelet dead"),
            SimError::MissingKernel { thread } => {
                write!(f, "thread {thread:?} scheduled without a kernel")
            }
            SimError::Stalled { live, at } => {
                write!(f, "simulation stalled at {at} with {live} threads alive")
            }
            SimError::RetryBudgetExhausted {
                thread,
                nodelet,
                retries,
            } => write!(
                f,
                "thread {thread:?} exhausted {retries} retries at nodelet {nodelet:?}"
            ),
            SimError::EventCapExceeded { cap } => {
                write!(f, "watchdog: event cap of {cap} exceeded (livelock?)")
            }
            SimError::DeadlineExceeded { deadline_ms } => {
                write!(
                    f,
                    "watchdog: wall-clock deadline of {deadline_ms} ms exceeded"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

/// A deterministic, seeded fault-injection plan.
///
/// The default plan ([`FaultPlan::none`]) injects nothing and leaves the
/// engine's timing bit-for-bit identical to a fault-free build. All
/// stochastic decisions derive from `seed` and a per-run draw counter,
/// so the same plan on the same workload replays exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for every stochastic fault decision in the run.
    pub seed: u64,
    /// Per-nodelet service-time multipliers (cores, channel, migration
    /// engine). Indexed by nodelet; missing entries mean 1.0 (nominal).
    pub slowdown: Vec<f64>,
    /// Per-nodelet liveness: `true` marks a dead nodelet whose arrivals,
    /// memory and spawns are redirected to the nearest live nodelet.
    /// Missing entries mean alive.
    pub dead: Vec<bool>,
    /// Probability a migration-engine offer is NACKed (retried after
    /// exponential backoff).
    pub mig_nack_prob: f64,
    /// Base backoff before a NACKed migration retries (doubles per
    /// consecutive NACK, capped at 64x).
    pub mig_backoff: Time,
    /// Consecutive NACKs tolerated per migration before the run aborts
    /// with [`SimError::RetryBudgetExhausted`].
    pub mig_retry_budget: u32,
    /// Probability a memory-channel access takes an ECC-style retry.
    pub ecc_prob: f64,
    /// Extra channel occupancy per ECC retry.
    pub ecc_latency: Time,
    /// Probability an inter-node link packet is dropped and retransmitted.
    pub link_drop_prob: f64,
    /// Retransmits tolerated per packet before the run aborts.
    pub link_retry_budget: u32,
    /// Watchdog wall-event cap; 0 disables the cap.
    pub max_events: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The zero-fault plan: no slowdowns, no dead nodelets, no NACKs, no
    /// ECC retries, no link drops, no event cap.
    pub fn none() -> Self {
        FaultPlan {
            seed: desim::rng::DEFAULT_SEED,
            slowdown: Vec::new(),
            dead: Vec::new(),
            mig_nack_prob: 0.0,
            mig_backoff: Time::from_ns(500),
            mig_retry_budget: 16,
            ecc_prob: 0.0,
            ecc_latency: Time::from_ns(100),
            link_drop_prob: 0.0,
            link_retry_budget: 16,
            max_events: 0,
        }
    }

    /// Whether this plan injects nothing (the engine takes the exact
    /// baseline timing path).
    pub fn is_none(&self) -> bool {
        self.slowdown.iter().all(|&f| f == 1.0)
            && !self.dead.iter().any(|&d| d)
            && self.mig_nack_prob == 0.0
            && self.ecc_prob == 0.0
            && self.link_drop_prob == 0.0
    }

    /// Service-time multiplier for `nodelet` (1.0 when unspecified).
    #[inline]
    pub fn slow_factor(&self, nodelet: usize) -> f64 {
        self.slowdown.get(nodelet).copied().unwrap_or(1.0)
    }

    /// Whether `nodelet` is marked dead.
    #[inline]
    pub fn is_dead(&self, nodelet: usize) -> bool {
        self.dead.get(nodelet).copied().unwrap_or(false)
    }

    /// Number of dead nodelets in the plan.
    pub fn dead_count(&self) -> usize {
        self.dead.iter().filter(|&&d| d).count()
    }

    /// Mark a deterministic, seed-chosen fraction of `total` nodelets
    /// dead (rounded down).
    pub fn with_dead_fraction(mut self, total: u32, fraction: f64) -> Self {
        let k = ((total as f64 * fraction).floor() as usize).min(total as usize);
        let perm = desim::rng::permutation(total as usize, self.seed ^ 0xDEAD);
        self.dead = vec![false; total as usize];
        for &n in perm.iter().take(k) {
            self.dead[n as usize] = true;
        }
        self
    }

    /// Slow a deterministic, seed-chosen fraction of `total` nodelets
    /// down by `factor` (rounded down).
    pub fn with_slow_fraction(mut self, total: u32, fraction: f64, factor: f64) -> Self {
        let k = ((total as f64 * fraction).floor() as usize).min(total as usize);
        let perm = desim::rng::permutation(total as usize, self.seed ^ 0x510);
        self.slowdown = vec![1.0; total as usize];
        for &n in perm.iter().take(k) {
            self.slowdown[n as usize] = factor;
        }
        self
    }

    /// Validate plan invariants; returns the first violation.
    pub fn validate(&self, total_nodelets: u32) -> Result<(), String> {
        for (name, p) in [
            ("mig_nack_prob", self.mig_nack_prob),
            ("ecc_prob", self.ecc_prob),
            ("link_drop_prob", self.link_drop_prob),
        ] {
            if !(0.0..=1.0).contains(&p) || p.is_nan() {
                return Err(format!("{name} must be in [0, 1], got {p}"));
            }
        }
        for (i, &f) in self.slowdown.iter().enumerate() {
            if !f.is_finite() || f < 1.0 {
                return Err(format!("slowdown[{i}] must be finite and >= 1.0, got {f}"));
            }
        }
        if self.slowdown.len() > total_nodelets as usize {
            return Err(format!(
                "slowdown has {} entries for {total_nodelets} nodelets",
                self.slowdown.len()
            ));
        }
        if self.dead.len() > total_nodelets as usize {
            return Err(format!(
                "dead has {} entries for {total_nodelets} nodelets",
                self.dead.len()
            ));
        }
        if self.mig_nack_prob > 0.0 && self.mig_backoff == Time::ZERO {
            return Err("mig_backoff must be positive when NACKs are enabled".into());
        }
        Ok(())
    }
}

/// Deterministic uniform draw in `[0, 1)` for fault decision `n` of a
/// run seeded with `seed`. Stateless: the engine feeds a monotone draw
/// counter, so replaying the same event sequence replays the decisions.
#[inline]
pub(crate) fn unit_draw(seed: u64, n: u64) -> f64 {
    let mut s = seed ^ n.wrapping_mul(0xA076_1D64_78BD_642F);
    let z = desim::rng::splitmix64(&mut s);
    (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// [`unit_draw`] on an independent per-shard lane: `shard` perturbs the
/// seed so each shard of a partitioned engine owns a private draw
/// stream. Shard-local streams make fault decisions a function of that
/// shard's own event sequence alone — the property that lets the
/// sharded backend replay identically at any worker count, since no
/// global draw counter has to be agreed on across shards.
#[inline]
pub(crate) fn unit_draw_for(seed: u64, shard: u32, n: u64) -> f64 {
    let lane = seed ^ (shard as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    unit_draw(lane, n)
}

/// Nearest-live-nodelet redirect map: `map[i]` is `i` itself when alive,
/// else the closest live nodelet by index distance (ties toward the
/// higher index, wrapping). Returns [`SimError::AllNodeletsDead`] if no
/// nodelet is live.
pub(crate) fn redirect_map(plan: &FaultPlan, total: u32) -> Result<Vec<u32>, SimError> {
    let n = total as usize;
    if (0..n).all(|i| plan.is_dead(i)) {
        return Err(SimError::AllNodeletsDead);
    }
    let mut map = Vec::with_capacity(n);
    for i in 0..n {
        if !plan.is_dead(i) {
            map.push(i as u32);
            continue;
        }
        let mut target = None;
        for d in 1..n {
            let up = (i + d) % n;
            if !plan.is_dead(up) {
                target = Some(up as u32);
                break;
            }
            let down = (i + n - d) % n;
            if !plan.is_dead(down) {
                target = Some(down as u32);
                break;
            }
        }
        map.push(target.expect("at least one live nodelet"));
    }
    Ok(map)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_none() {
        assert!(FaultPlan::none().is_none());
        assert!(FaultPlan::none().validate(8).is_ok());
    }

    #[test]
    fn dead_fraction_is_deterministic_and_sized() {
        let a = FaultPlan::none().with_dead_fraction(8, 0.5);
        let b = FaultPlan::none().with_dead_fraction(8, 0.5);
        assert_eq!(a, b);
        assert_eq!(a.dead_count(), 4);
        assert!(!a.is_none());
    }

    #[test]
    fn slow_fraction_marks_factor() {
        let p = FaultPlan::none().with_slow_fraction(8, 0.25, 4.0);
        assert_eq!(p.slowdown.iter().filter(|&&f| f == 4.0).count(), 2);
        assert!(p.validate(8).is_ok());
    }

    #[test]
    fn validate_rejects_bad_probs_and_factors() {
        let mut p = FaultPlan::none();
        p.mig_nack_prob = 1.5;
        assert!(p.validate(8).is_err());
        let mut p = FaultPlan::none();
        p.slowdown = vec![0.5];
        assert!(p.validate(8).is_err());
        let mut p = FaultPlan::none();
        p.dead = vec![false; 9];
        assert!(p.validate(8).is_err());
    }

    #[test]
    fn redirect_points_dead_to_nearest_live() {
        let mut p = FaultPlan::none();
        p.dead = vec![false, true, true, false];
        let m = redirect_map(&p, 4).unwrap();
        assert_eq!(m, vec![0, 0, 3, 3]);
        // ties toward the higher index
        let mut p = FaultPlan::none();
        p.dead = vec![false, true, false];
        assert_eq!(redirect_map(&p, 3).unwrap(), vec![0, 2, 2]);
    }

    #[test]
    fn redirect_rejects_all_dead() {
        let mut p = FaultPlan::none();
        p.dead = vec![true; 4];
        assert_eq!(redirect_map(&p, 4), Err(SimError::AllNodeletsDead));
    }

    #[test]
    fn unit_draw_is_deterministic_and_uniformish() {
        assert_eq!(unit_draw(7, 0), unit_draw(7, 0));
        assert_ne!(unit_draw(7, 0), unit_draw(7, 1));
        let n = 10_000;
        let mean: f64 = (0..n).map(|i| unit_draw(42, i)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        assert!((0..n).all(|i| (0.0..1.0).contains(&unit_draw(42, i))));
    }

    #[test]
    fn shard_lanes_are_deterministic_and_independent() {
        assert_eq!(unit_draw_for(7, 0, 3), unit_draw_for(7, 0, 3));
        // Different shards see different streams from the same seed.
        assert_ne!(unit_draw_for(7, 0, 3), unit_draw_for(7, 1, 3));
        // A lane is still a well-behaved uniform source.
        let n = 10_000;
        let mean: f64 = (0..n).map(|i| unit_draw_for(42, 5, i)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
