//! Machine configurations used in the paper's experiments.
//!
//! Calibration targets (see EXPERIMENTS.md for measured values):
//!
//! | Preset | Paper anchor |
//! |---|---|
//! | [`chick_prototype`] | 1 node usable, 1 GC/nodelet @150 MHz, 64 threadlets, DDR4-1600 narrow channels; STREAM ≈1.2 GB/s per node; ping-pong ≈9 M migrations/s; migration latency 1–2 µs |
//! | [`chick_toolchain_sim`] | Emu's 17.11 simulator configured like the hardware — matches STREAM but overshoots migration rate (≈16 M/s), reproducing the Fig 10 validation gap |
//! | [`chick_full_speed`] | the design-point Chick node: 4 GCs @300 MHz, 256 threadlets/nodelet, DDR4-2133 |
//! | [`emu64_full_speed`] | 8 nodes × 8 nodelets at full speed (Fig 11) |
//!
//! The instruction cost model is shared: the Gossamer core is a deeply
//! pipelined, fine-grained-multithreaded FPGA soft core, so single-thread
//! latency per instruction is large (≈200 cycles through the memory path)
//! while aggregate issue throughput is one op per few cycles. These two
//! constants were calibrated so that single-nodelet STREAM saturates
//! around 32 threads (Fig 4) at ≈150 MB/s per nodelet (⇒ ≈1.2 GB/s per
//! node, §IV-A).

use crate::config::{CostModel, MachineConfig};
use desim::time::{Clock, Time};

/// Shared Gossamer instruction cost model (see module docs).
fn gossamer_costs() -> CostModel {
    CostModel {
        mem_issue_cycles: 5,
        mem_pipeline_cycles: 200,
        compute_latency_factor: 6,
        spawn_issue_cycles: 30,
        spawn_local_latency: Time::from_ns(200),
        migrate_issue_cycles: 8,
        atomic_extra: Time::from_ns(5),
    }
}

/// The Emu Chick prototype as the paper measured it (Section III-A):
/// one usable node of 8 nodelets, one 150 MHz Gossamer core per nodelet
/// with 64 threadlet contexts, DDR4-1600 behind 8-bit narrow channels,
/// and the 1.0-firmware migration engine (ping-pong ≈9 M migrations/s).
pub fn chick_prototype() -> MachineConfig {
    MachineConfig {
        nodes: 1,
        nodelets_per_node: 8,
        gcs_per_nodelet: 1,
        threadlets_per_gc: 64,
        gc_clock: Clock::from_mhz(150),
        // 8-bit bus at 1600 MT/s.
        ncdram_bytes_per_sec: 1_600_000_000,
        dram_latency: Time::from_ns(70),
        dram_access_overhead: Time::from_ns(5),
        dram_burst_bytes: 8,
        // Ping-pong saturates both engines: 2 x 4.5M = 9M migrations/s.
        migration_rate_per_sec: 4_500_000,
        intra_node_hop: Time::from_ns(300),
        inter_node_hop: Time::from_ns(700),
        rapidio_bytes_per_sec: 1_000_000_000,
        context_bytes: 192,
        costs: gossamer_costs(),
        faults: crate::fault::FaultPlan::none(),
    }
}

/// The Emu 17.11 toolchain simulator configured to match the prototype.
/// The paper found it matches STREAM well but not migration-heavy
/// benchmarks: ping-pong reaches ≈16 M migrations/s where hardware
/// manages only ≈9 M (Fig 10). Accordingly, this preset differs from
/// [`chick_prototype`] only along the migration path (engine rate,
/// migration issue, network hop) — non-migrating benchmarks behave
/// identically by construction.
pub fn chick_toolchain_sim() -> MachineConfig {
    let mut cfg = chick_prototype();
    cfg.migration_rate_per_sec = 8_000_000;
    cfg.intra_node_hop = Time::from_ns(150);
    cfg.costs.migrate_issue_cycles = 2;
    cfg
}

/// One Chick node at its design point (Section III-A's "next-generation"
/// deltas): 4 Gossamer cores per nodelet at 300 MHz (256 threadlets),
/// DDR4-2133 channels, and a correspondingly faster migration engine.
pub fn chick_full_speed() -> MachineConfig {
    MachineConfig {
        gcs_per_nodelet: 4,
        gc_clock: Clock::from_mhz(300),
        ncdram_bytes_per_sec: 2_133_000_000,
        migration_rate_per_sec: 16_000_000,
        dram_latency: Time::from_ns(60),
        ..chick_prototype()
    }
}

/// The full 8-node (64-nodelet) Emu system at full speed, as simulated
/// for Fig 11.
pub fn emu64_full_speed() -> MachineConfig {
    MachineConfig {
        nodes: 8,
        // The Fig 11 projection comes from Emu's own simulator, which
        // models the next-generation fabric: generous link bandwidth so
        // that fine-grained cross-node migration is not the first wall.
        rapidio_bytes_per_sec: 10_000_000_000,
        inter_node_hop: Time::from_ns(400),
        ..chick_full_speed()
    }
}

/// The 8-node Chick with prototype-grade nodes — the configuration whose
/// single stable STREAM measurement was 6.5 GB/s (§IV-A).
pub fn chick_8node_prototype() -> MachineConfig {
    MachineConfig {
        nodes: 8,
        ..chick_prototype()
    }
}

/// Resolve a preset by name. This is the one vocabulary shared by the
/// bench CLI, the `simd` daemon, and `.scn` scenario files: the short
/// CLI spellings plus the canonical function names.
pub fn by_name(name: &str) -> Result<MachineConfig, String> {
    match name {
        "chick" | "chick-hw" | "prototype" | "chick_prototype" => Ok(chick_prototype()),
        "chick-sim" | "toolchain-sim" | "chick_toolchain_sim" => Ok(chick_toolchain_sim()),
        "full-speed" | "chick_full_speed" => Ok(chick_full_speed()),
        "emu64" | "emu64_full_speed" => Ok(emu64_full_speed()),
        "chick-8node" | "chick_8node_prototype" => Ok(chick_8node_prototype()),
        other => Err(format!(
            "unknown preset {other:?}; one of: chick, chick-sim, full-speed, emu64, chick-8node"
        )),
    }
}

/// The five presets under their short CLI names, in the paper's order.
pub fn all() -> Vec<(&'static str, MachineConfig)> {
    vec![
        ("chick", chick_prototype()),
        ("chick-sim", chick_toolchain_sim()),
        ("full-speed", chick_full_speed()),
        ("emu64", emu64_full_speed()),
        ("chick-8node", chick_8node_prototype()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_validate() {
        for cfg in [
            chick_prototype(),
            chick_toolchain_sim(),
            chick_full_speed(),
            emu64_full_speed(),
            chick_8node_prototype(),
        ] {
            cfg.validate().unwrap();
        }
    }

    #[test]
    fn prototype_matches_paper_structure() {
        let c = chick_prototype();
        assert_eq!(c.total_nodelets(), 8);
        assert_eq!(c.slots_per_nodelet(), 64);
        assert_eq!(c.gc_clock.period().ps(), 6667); // 150 MHz
    }

    #[test]
    fn toolchain_sim_differs_only_along_migration_path() {
        let hw = chick_prototype();
        let sim = chick_toolchain_sim();
        assert!(sim.migration_rate_per_sec > hw.migration_rate_per_sec);
        assert!(sim.intra_node_hop < hw.intra_node_hop);
        assert!(sim.costs.migrate_issue_cycles < hw.costs.migrate_issue_cycles);
        // Everything a non-migrating benchmark touches is identical.
        assert_eq!(sim.gcs_per_nodelet, hw.gcs_per_nodelet);
        assert_eq!(sim.ncdram_bytes_per_sec, hw.ncdram_bytes_per_sec);
        assert_eq!(sim.gc_clock, hw.gc_clock);
        assert_eq!(sim.costs.mem_issue_cycles, hw.costs.mem_issue_cycles);
        assert_eq!(sim.costs.mem_pipeline_cycles, hw.costs.mem_pipeline_cycles);
        assert_eq!(
            sim.costs.compute_latency_factor,
            hw.costs.compute_latency_factor
        );
    }

    #[test]
    fn full_speed_scales_everything_up() {
        let hw = chick_prototype();
        let fs = chick_full_speed();
        assert_eq!(fs.slots_per_nodelet(), 256);
        assert!(fs.gc_clock.hz() > hw.gc_clock.hz());
        assert!(fs.ncdram_bytes_per_sec > hw.ncdram_bytes_per_sec);
        assert!(fs.migration_rate_per_sec > hw.migration_rate_per_sec);
    }

    #[test]
    fn by_name_covers_every_preset_and_both_spellings() {
        for (name, cfg) in all() {
            let resolved = by_name(name).unwrap();
            assert_eq!(format!("{resolved:?}"), format!("{cfg:?}"), "{name}");
        }
        assert!(by_name("chick_prototype").is_ok());
        assert!(by_name("emu64_full_speed").is_ok());
        assert!(by_name("nope").is_err());
    }

    #[test]
    fn emu64_has_64_nodelets() {
        assert_eq!(emu64_full_speed().total_nodelets(), 64);
        assert_eq!(chick_8node_prototype().total_nodelets(), 64);
    }
}
