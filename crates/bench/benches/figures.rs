//! Timing harness around each figure runner (quick-mode sizes), so
//! `cargo bench` regenerates every table and times it — one bench per
//! table/figure in the paper. Plain `harness = false` main: no external
//! benchmarking framework, just wall-clock medians over a few samples.

use std::time::Instant;

const SAMPLES: usize = 3;

fn bench(name: &str, mut f: impl FnMut() -> Result<usize, emu_core::fault::SimError>) {
    let mut times = Vec::with_capacity(SAMPLES);
    let mut rows = 0;
    for _ in 0..SAMPLES {
        let t0 = Instant::now();
        match f() {
            Ok(n) => rows = n,
            Err(e) => {
                println!("{name:<36} ERROR: {e}");
                return;
            }
        }
        times.push(t0.elapsed().as_secs_f64());
    }
    times.sort_by(f64::total_cmp);
    let med = times[times.len() / 2];
    println!("{name:<36} {:>9.1} ms/iter  ({rows} rows)", med * 1e3);
}

fn main() {
    // Quick mode keeps iterations tractable; the standalone figNN
    // binaries run the full-size sweeps.
    std::env::set_var("EMU_QUICK", "1");
    std::env::set_var(
        "EMU_RESULTS_DIR",
        std::env::temp_dir().join("emu_bench_results"),
    );
    println!("figures_quick ({SAMPLES} samples, median):");
    bench("fig04_stream_single_nodelet", || {
        Ok(emu_bench::figures::fig04()?.rows.len())
    });
    bench("fig05_stream_eight_nodelets", || {
        Ok(emu_bench::figures::fig05()?.rows.len())
    });
    bench("fig06_chase_emu", || {
        Ok(emu_bench::figures::fig06()?.rows.len())
    });
    bench("fig07_chase_xeon", || {
        Ok(emu_bench::figures::fig07()?.rows.len())
    });
    bench("fig08_utilization", || {
        Ok(emu_bench::figures::fig08()?.rows.len())
    });
    bench("fig09a_spmv_emu", || {
        Ok(emu_bench::figures::fig09a()?.rows.len())
    });
    bench("fig09b_spmv_xeon", || {
        Ok(emu_bench::figures::fig09b()?.rows.len())
    });
    bench("fig10_validation", || {
        Ok(emu_bench::figures::fig10()?.rows.len())
    });
    bench("fig11_emu64", || {
        Ok(emu_bench::figures::fig11()?.rows.len())
    });
}
