//! Criterion wrappers around each figure runner (quick-mode sizes), so
//! `cargo bench` regenerates every table and times it — one bench per
//! table/figure in the paper.

use criterion::{criterion_group, criterion_main, Criterion};

fn figures(c: &mut Criterion) {
    // Quick mode keeps bench iterations tractable; the standalone figNN
    // binaries run the full-size sweeps.
    std::env::set_var("EMU_QUICK", "1");
    std::env::set_var(
        "EMU_RESULTS_DIR",
        std::env::temp_dir().join("emu_bench_results"),
    );
    let mut g = c.benchmark_group("figures_quick");
    g.sample_size(10);
    g.bench_function("fig04_stream_single_nodelet", |b| {
        b.iter(|| emu_bench::figures::fig04().rows.len())
    });
    g.bench_function("fig05_stream_eight_nodelets", |b| {
        b.iter(|| emu_bench::figures::fig05().rows.len())
    });
    g.bench_function("fig06_chase_emu", |b| {
        b.iter(|| emu_bench::figures::fig06().rows.len())
    });
    g.bench_function("fig07_chase_xeon", |b| {
        b.iter(|| emu_bench::figures::fig07().rows.len())
    });
    g.bench_function("fig08_utilization", |b| {
        b.iter(|| emu_bench::figures::fig08().rows.len())
    });
    g.bench_function("fig09a_spmv_emu", |b| {
        b.iter(|| emu_bench::figures::fig09a().rows.len())
    });
    g.bench_function("fig09b_spmv_xeon", |b| {
        b.iter(|| emu_bench::figures::fig09b().rows.len())
    });
    g.bench_function("fig10_validation", |b| {
        b.iter(|| emu_bench::figures::fig10().rows.len())
    });
    g.bench_function("fig11_emu64", |b| {
        b.iter(|| emu_bench::figures::fig11().rows.len())
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = figures
}
criterion_main!(benches);
