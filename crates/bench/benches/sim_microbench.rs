//! Criterion microbenchmarks of the simulation substrate itself —
//! regression tracking for the engines' event throughput, which bounds
//! how large the figure runs can be.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use emu_core::prelude::*;
use membench::chase::{cpu::run_chase_cpu, run_chase_emu, ChaseConfig, ShuffleMode};
use membench::pingpong::{run_pingpong, PingPongConfig};
use membench::stream::{
    cpu::{run_stream_cpu, CpuStreamConfig},
    run_stream_emu, EmuStreamConfig,
};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("desim/event_queue_push_pop_10k", |b| {
        b.iter(|| {
            let mut q = desim::EventQueue::new();
            for i in 0..10_000u64 {
                q.schedule(desim::Time::from_ns((i * 37) % 5000), i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.pop() {
                sum = sum.wrapping_add(e);
            }
            sum
        })
    });
}

fn bench_cache(c: &mut Criterion) {
    use xeon_sim::cache::Cache;
    use xeon_sim::config::sandy_bridge;
    c.bench_function("xeon/l1_access_streaming_4k_lines", |b| {
        b.iter_batched(
            || Cache::new(sandy_bridge().l1),
            |mut cache| {
                for i in 0..4096u64 {
                    let _ = cache.access(i * 64, false);
                }
                cache.stats()
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_emu_stream(c: &mut Criterion) {
    let cfg = presets::chick_prototype();
    c.bench_function("emu/stream_16k_elems_128thr", |b| {
        b.iter(|| {
            run_stream_emu(
                &cfg,
                &EmuStreamConfig {
                    total_elems: 1 << 14,
                    nthreads: 128,
                    ..Default::default()
                },
            )
            .report
            .makespan
        })
    });
}

fn bench_emu_chase(c: &mut Criterion) {
    let cfg = presets::chick_prototype();
    let cc = ChaseConfig {
        elems_per_list: 1024,
        nlists: 64,
        block_elems: 16,
        mode: ShuffleMode::FullBlock,
        seed: 1,
    };
    c.bench_function("emu/chase_64k_elems", |b| {
        b.iter(|| run_chase_emu(&cfg, &cc).makespan)
    });
}

fn bench_pingpong(c: &mut Criterion) {
    let cfg = presets::chick_prototype();
    c.bench_function("emu/pingpong_64thr_100rt", |b| {
        b.iter(|| {
            run_pingpong(
                &cfg,
                &PingPongConfig {
                    nthreads: 64,
                    round_trips: 100,
                    ..Default::default()
                },
            )
            .migrations
        })
    });
}

fn bench_cpu_platform(c: &mut Criterion) {
    let cfg = xeon_sim::config::sandy_bridge();
    c.bench_function("xeon/stream_64k_elems_8thr", |b| {
        b.iter(|| {
            run_stream_cpu(
                &cfg,
                &CpuStreamConfig {
                    total_elems: 1 << 16,
                    nthreads: 8,
                    ..Default::default()
                },
            )
            .report
            .makespan
        })
    });
    let cc = ChaseConfig {
        elems_per_list: 1 << 13,
        nlists: 8,
        block_elems: 64,
        mode: ShuffleMode::FullBlock,
        seed: 1,
    };
    c.bench_function("xeon/chase_64k_elems", |b| {
        b.iter(|| run_chase_cpu(&cfg, &cc).makespan)
    });
}

fn bench_laplacian(c: &mut Criterion) {
    c.bench_function("spmat/laplacian_n100_build", |b| {
        b.iter(|| spmat::laplacian(spmat::LaplacianSpec::paper(100)).nnz())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_event_queue, bench_cache, bench_emu_stream, bench_emu_chase,
              bench_pingpong, bench_cpu_platform, bench_laplacian
}
criterion_main!(benches);
