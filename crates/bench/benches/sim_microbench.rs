//! Microbenchmarks of the simulation substrate itself — regression
//! tracking for the engines' event throughput, which bounds how large
//! the figure runs can be. Plain `harness = false` main: wall-clock
//! medians over a fixed number of iterations, no external framework.
//!
//! Flags:
//!
//! * `--json PATH` — also write the machine-readable `BENCH_sim.json`
//!   (scheduler throughput, engine events/sec, quick-mode `all_figures`
//!   wall time at `-j 1` vs `-j N`) for CI artifact upload.
//! * `--gate` — exit nonzero if the calendar-queue scheduler is slower
//!   than the binary-heap baseline (ratio threshold from
//!   `EMU_PERF_GATE_RATIO`, default 0.95).
//! * `--skip-figures` — skip the quick-mode `all_figures` timing (the
//!   slowest section; the queue gate does not need it).

use emu_core::prelude::*;
use membench::chase::{cpu::run_chase_cpu, run_chase_emu, ChaseConfig, ShuffleMode};
use membench::pingpong::{run_pingpong, PingPongConfig};
use membench::stream::{
    cpu::{run_stream_cpu, CpuStreamConfig},
    run_stream_emu, EmuStreamConfig,
};
use std::time::Instant;

const ITERS: usize = 10;

/// Run `f` ITERS times; print and return the median wall-clock seconds.
/// The returned u64 is folded into a sink so the work cannot be
/// optimized away.
fn bench(name: &str, mut f: impl FnMut() -> u64) -> f64 {
    let mut times = Vec::with_capacity(ITERS);
    let mut sink = 0u64;
    for _ in 0..ITERS {
        let t0 = Instant::now();
        sink = sink.wrapping_add(f());
        times.push(t0.elapsed().as_secs_f64());
    }
    times.sort_by(f64::total_cmp);
    let med = times[times.len() / 2];
    let unit = if med >= 1e-3 {
        format!("{:>9.2} ms/iter", med * 1e3)
    } else {
        format!("{:>9.1} us/iter", med * 1e6)
    };
    println!("{name:<38} {unit}  (sink {sink:x})");
    med
}

const QUEUE_EVENTS: u64 = 10_000;

/// Push/pop `QUEUE_EVENTS` events through `q` (mixed near/far times, so
/// the calendar backend exercises buckets and the overflow heap alike).
fn queue_workload(mut q: desim::EventQueue<u64>) -> u64 {
    for i in 0..QUEUE_EVENTS {
        let t = if i % 64 == 0 {
            1_000_000 + (i * 131) % 500_000
        } else {
            (i * 37) % 5000
        };
        q.schedule(desim::Time::from_ns(t), i);
    }
    let mut sum = 0u64;
    while let Some((_, e)) = q.pop() {
        sum = sum.wrapping_add(e);
    }
    sum
}

/// Run every figure once, quick mode, at the given job count; returns
/// wall-clock seconds. Mirrors `all_figures` minus the CSV/IO.
type FigureFn = fn() -> Result<emu_bench::output::Table, SimError>;

fn all_figures_quick(jobs: usize) -> f64 {
    use emu_bench::figures as f;
    emu_bench::runcfg::set_jobs(jobs);
    let t0 = Instant::now();
    let figs: [(&str, FigureFn); 10] = [
        ("fig04", f::fig04),
        ("fig05", f::fig05),
        ("fig06", f::fig06),
        ("fig07", f::fig07),
        ("fig08", f::fig08),
        ("fig09a", f::fig09a),
        ("fig09b", f::fig09b),
        ("fig10", f::fig10),
        ("fig11", f::fig11),
        ("headline", f::headline),
    ];
    for (name, fig) in figs {
        fig().unwrap_or_else(|e| panic!("{name} failed: {e}"));
    }
    let dt = t0.elapsed().as_secs_f64();
    emu_bench::runcfg::set_jobs(0);
    println!("all_figures quick -j {jobs:<26} {dt:>9.2} s");
    dt
}

fn main() {
    let mut json_path: Option<String> = None;
    let mut gate = false;
    let mut skip_figures = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json_path = args.next(),
            "--gate" => gate = true,
            "--skip-figures" => skip_figures = true,
            // `cargo bench` appends `--bench` to harness=false targets.
            "--bench" => {}
            other => {
                eprintln!("unknown flag {other:?} (try --json PATH, --gate, --skip-figures)");
                std::process::exit(2);
            }
        }
    }

    let cal_s = bench("desim/event_queue_calendar_10k", || {
        queue_workload(desim::EventQueue::new())
    });
    let heap_s = bench("desim/event_queue_heap_10k", || {
        queue_workload(desim::EventQueue::heap_backed())
    });
    let cal_eps = QUEUE_EVENTS as f64 / cal_s;
    let heap_eps = QUEUE_EVENTS as f64 / heap_s;
    println!(
        "  calendar {:.1} M events/s vs heap {:.1} M events/s ({:.2}x)",
        cal_eps / 1e6,
        heap_eps / 1e6,
        cal_eps / heap_eps
    );

    {
        use xeon_sim::cache::Cache;
        use xeon_sim::config::sandy_bridge;
        bench("xeon/l1_access_streaming_4k_lines", || {
            let mut cache = Cache::new(sandy_bridge().l1);
            for i in 0..4096u64 {
                let _ = cache.access(i * 64, false);
            }
            let (h, m) = cache.stats();
            h.wrapping_add(m)
        });
    }

    let cfg = presets::chick_prototype();
    // Engine throughput probes: discrete events processed per second of
    // host wall-clock, for the two figure-dominating workloads.
    let mut stream_events = 0u64;
    let stream_s = bench("emu/stream_16k_elems_128thr", || {
        let r = run_stream_emu(
            &cfg,
            &EmuStreamConfig {
                total_elems: 1 << 14,
                nthreads: 128,
                ..Default::default()
            },
        )
        .expect("stream")
        .report;
        stream_events = r.events;
        r.makespan.ps()
    });
    let cc = ChaseConfig {
        elems_per_list: 1024,
        nlists: 64,
        block_elems: 16,
        mode: ShuffleMode::FullBlock,
        seed: 1,
    };
    let mut chase_events = 0u64;
    let chase_s = bench("emu/chase_64k_elems", || {
        let r = run_chase_emu(&cfg, &cc).expect("chase");
        chase_events = r.events;
        r.makespan.ps()
    });
    let stream_eps = stream_events as f64 / stream_s;
    let chase_eps = chase_events as f64 / chase_s;
    println!(
        "  engine: STREAM {:.2} M events/s, chase {:.2} M events/s",
        stream_eps / 1e6,
        chase_eps / 1e6
    );

    // Sharded-scheduler throughput: the same STREAM kernel on the
    // 64-nodelet emu64 machine, sequential vs 4 scheduler shards. On a
    // multi-core host the ratio is the intra-run parallel speedup; on
    // one core it measures pure epoch/barrier overhead.
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let e64 = presets::emu64_full_speed();
    let e64_sc = EmuStreamConfig {
        total_elems: 1 << 14,
        nthreads: 256,
        ..Default::default()
    };
    let mut e64_events = 0u64;
    let pdes_seq_s = bench("emu64/stream_16k_elems_256thr_seq", || {
        emu_core::engine::set_sim_threads(1);
        let r = run_stream_emu(&e64, &e64_sc).expect("stream").report;
        e64_events = r.events;
        r.makespan.ps()
    });
    let mut e64_par_events = 0u64;
    let pdes_par_s = bench("emu64/stream_16k_elems_256thr_4shard", || {
        emu_core::engine::set_sim_threads(4);
        let r = run_stream_emu(&e64, &e64_sc).expect("stream").report;
        emu_core::engine::set_sim_threads(1);
        e64_par_events = r.events;
        r.makespan.ps()
    });
    assert_eq!(e64_events, e64_par_events, "sharded run diverged");
    let pdes_seq_eps = e64_events as f64 / pdes_seq_s;
    let pdes_eps = e64_par_events as f64 / pdes_par_s;
    println!(
        "  engine: emu64 STREAM seq {:.2} M events/s, 4-shard {:.2} M events/s ({:.2}x, {host_cores} host cores)",
        pdes_seq_eps / 1e6,
        pdes_eps / 1e6,
        pdes_eps / pdes_seq_eps
    );

    bench("emu/pingpong_64thr_100rt", || {
        run_pingpong(
            &cfg,
            &PingPongConfig {
                nthreads: 64,
                round_trips: 100,
                ..Default::default()
            },
        )
        .expect("pingpong")
        .migrations
    });

    let cpu_cfg = xeon_sim::config::sandy_bridge();
    bench("xeon/stream_64k_elems_8thr", || {
        run_stream_cpu(
            &cpu_cfg,
            &CpuStreamConfig {
                total_elems: 1 << 16,
                nthreads: 8,
                ..Default::default()
            },
        )
        .report
        .makespan
        .ps()
    });
    let cpu_cc = ChaseConfig {
        elems_per_list: 1 << 13,
        nlists: 8,
        block_elems: 64,
        mode: ShuffleMode::FullBlock,
        seed: 1,
    };
    bench("xeon/chase_64k_elems", || {
        run_chase_cpu(&cpu_cfg, &cpu_cc).makespan.ps()
    });

    bench("spmat/laplacian_n100_build", || {
        spmat::laplacian(spmat::LaplacianSpec::paper(100)).nnz() as u64
    });

    // Quick-mode campaign wall time, serial vs parallel.
    let (fig_j1, fig_jn, jobs_n) = if skip_figures {
        (None, None, 1)
    } else {
        std::env::set_var("EMU_QUICK", "1");
        let n = std::thread::available_parallelism().map_or(1, |n| n.get());
        let j1 = all_figures_quick(1);
        let jn = if n > 1 { all_figures_quick(n) } else { j1 };
        std::env::remove_var("EMU_QUICK");
        if n > 1 {
            println!("  parallel speedup at -j {n}: {:.2}x", j1 / jn);
        }
        (Some(j1), Some(jn), n)
    };

    if let Some(path) = json_path {
        let opt = |v: Option<f64>| v.map_or("null".to_string(), |x| format!("{x:.6}"));
        let body = format!(
            concat!(
                "{{\"queue\":{{\"calendar_s\":{:.9},\"heap_s\":{:.9},",
                "\"calendar_events_per_sec\":{:.1},\"heap_events_per_sec\":{:.1}}},",
                "\"engine\":{{\"stream_events_per_sec\":{:.1},\"chase_events_per_sec\":{:.1},",
                "\"stream_events\":{},\"chase_events\":{}}},",
                "\"pdes\":{{\"host_parallelism\":{},\"shards\":4,\"events\":{},",
                "\"seq_events_per_sec\":{:.1},\"pdes_events_per_sec\":{:.1},\"speedup\":{:.3}}},",
                "\"all_figures_quick\":{{\"jobs_1_s\":{},\"jobs_n\":{},\"jobs_n_s\":{},\"speedup\":{}}}}}\n"
            ),
            cal_s,
            heap_s,
            cal_eps,
            heap_eps,
            stream_eps,
            chase_eps,
            stream_events,
            chase_events,
            host_cores,
            e64_events,
            pdes_seq_eps,
            pdes_eps,
            pdes_eps / pdes_seq_eps,
            opt(fig_j1),
            jobs_n,
            opt(fig_jn),
            opt(fig_j1.zip(fig_jn).map(|(a, b)| a / b)),
        );
        match std::fs::write(&path, &body) {
            Ok(()) => println!("[bench-json] {path}"),
            Err(e) => {
                eprintln!("[bench-json] write failed ({path}): {e}");
                std::process::exit(1);
            }
        }
    }

    if gate {
        let ratio: f64 = std::env::var("EMU_PERF_GATE_RATIO")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.95);
        if cal_eps < ratio * heap_eps {
            eprintln!(
                "PERF GATE FAILED: calendar queue {:.1} M events/s < {ratio} x heap {:.1} M events/s",
                cal_eps / 1e6,
                heap_eps / 1e6
            );
            std::process::exit(1);
        }
        println!(
            "perf gate ok: calendar/heap = {:.2} (threshold {ratio})",
            cal_eps / heap_eps
        );
    }
}
