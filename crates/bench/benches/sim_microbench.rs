//! Microbenchmarks of the simulation substrate itself — regression
//! tracking for the engines' event throughput, which bounds how large
//! the figure runs can be. Plain `harness = false` main: wall-clock
//! medians over a fixed number of iterations, no external framework.

use emu_core::prelude::*;
use membench::chase::{cpu::run_chase_cpu, run_chase_emu, ChaseConfig, ShuffleMode};
use membench::pingpong::{run_pingpong, PingPongConfig};
use membench::stream::{
    cpu::{run_stream_cpu, CpuStreamConfig},
    run_stream_emu, EmuStreamConfig,
};
use std::time::Instant;

const ITERS: usize = 10;

/// Run `f` ITERS times; print the median wall-clock time. The returned
/// u64 is folded into a sink so the work cannot be optimized away.
fn bench(name: &str, mut f: impl FnMut() -> u64) {
    let mut times = Vec::with_capacity(ITERS);
    let mut sink = 0u64;
    for _ in 0..ITERS {
        let t0 = Instant::now();
        sink = sink.wrapping_add(f());
        times.push(t0.elapsed().as_secs_f64());
    }
    times.sort_by(f64::total_cmp);
    let med = times[times.len() / 2];
    let unit = if med >= 1e-3 {
        format!("{:>9.2} ms/iter", med * 1e3)
    } else {
        format!("{:>9.1} us/iter", med * 1e6)
    };
    println!("{name:<38} {unit}  (sink {sink:x})");
}

fn main() {
    bench("desim/event_queue_push_pop_10k", || {
        let mut q = desim::EventQueue::new();
        for i in 0..10_000u64 {
            q.schedule(desim::Time::from_ns((i * 37) % 5000), i);
        }
        let mut sum = 0u64;
        while let Some((_, e)) = q.pop() {
            sum = sum.wrapping_add(e);
        }
        sum
    });

    {
        use xeon_sim::cache::Cache;
        use xeon_sim::config::sandy_bridge;
        bench("xeon/l1_access_streaming_4k_lines", || {
            let mut cache = Cache::new(sandy_bridge().l1);
            for i in 0..4096u64 {
                let _ = cache.access(i * 64, false);
            }
            let (h, m) = cache.stats();
            h.wrapping_add(m)
        });
    }

    let cfg = presets::chick_prototype();
    bench("emu/stream_16k_elems_128thr", || {
        run_stream_emu(
            &cfg,
            &EmuStreamConfig {
                total_elems: 1 << 14,
                nthreads: 128,
                ..Default::default()
            },
        )
        .expect("stream")
        .report
        .makespan
        .ps()
    });

    let cc = ChaseConfig {
        elems_per_list: 1024,
        nlists: 64,
        block_elems: 16,
        mode: ShuffleMode::FullBlock,
        seed: 1,
    };
    bench("emu/chase_64k_elems", || {
        run_chase_emu(&cfg, &cc).expect("chase").makespan.ps()
    });

    bench("emu/pingpong_64thr_100rt", || {
        run_pingpong(
            &cfg,
            &PingPongConfig {
                nthreads: 64,
                round_trips: 100,
                ..Default::default()
            },
        )
        .expect("pingpong")
        .migrations
    });

    let cpu_cfg = xeon_sim::config::sandy_bridge();
    bench("xeon/stream_64k_elems_8thr", || {
        run_stream_cpu(
            &cpu_cfg,
            &CpuStreamConfig {
                total_elems: 1 << 16,
                nthreads: 8,
                ..Default::default()
            },
        )
        .report
        .makespan
        .ps()
    });
    let cpu_cc = ChaseConfig {
        elems_per_list: 1 << 13,
        nlists: 8,
        block_elems: 64,
        mode: ShuffleMode::FullBlock,
        seed: 1,
    };
    bench("xeon/chase_64k_elems", || {
        run_chase_cpu(&cpu_cfg, &cpu_cc).makespan.ps()
    });

    bench("spmat/laplacian_n100_build", || {
        spmat::laplacian(spmat::LaplacianSpec::paper(100)).nnz() as u64
    });
}
