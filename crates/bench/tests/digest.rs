//! Digest stability: the content hashes the result cache stores under
//! must never drift silently.
//!
//! Golden digests pin the hash of every machine preset paired with the
//! canonical STREAM and chase workload shapes. If one of these
//! assertions fails, an output-affecting knob (or a `Debug` rendering
//! feeding the key material) changed — bump `runcache::KEY_VERSION`
//! so old cached results are orphaned rather than served stale, then
//! re-pin the hex values here.

use emu_core::config::MachineConfig;
use emu_core::prelude::presets;
use membench::chase::{ChaseConfig, ShuffleMode};
use membench::stream::{EmuStreamConfig, StreamKernel};
use runcache::Key;

fn all_presets() -> [(&'static str, MachineConfig); 5] {
    [
        ("chick", presets::chick_prototype()),
        ("chick-sim", presets::chick_toolchain_sim()),
        ("full-speed", presets::chick_full_speed()),
        ("emu64", presets::emu64_full_speed()),
        ("chick-8node", presets::chick_8node_prototype()),
    ]
}

fn stream_workload() -> EmuStreamConfig {
    EmuStreamConfig {
        total_elems: 1 << 18,
        nthreads: 512,
        strategy: emu_core::spawn::SpawnStrategy::RecursiveRemote,
        kernel: StreamKernel::Add,
        single_nodelet: false,
        stack_touch_period: 4,
    }
}

fn chase_workload() -> ChaseConfig {
    ChaseConfig {
        elems_per_list: 4096,
        nlists: 512,
        block_elems: 64,
        mode: ShuffleMode::FullBlock,
        seed: desim::rng::DEFAULT_SEED,
    }
}

/// The digest a preset + workload pair resolves to, built exactly like
/// the caching layers build theirs: kind, then `Debug`-rendered parts.
fn digest(kind: &str, cfg: &MachineConfig, workload: &impl std::fmt::Debug) -> String {
    let mut k = Key::new(kind);
    k.record_debug("machine", cfg);
    k.record_debug("workload", workload);
    k.digest()
}

#[test]
fn golden_digests_for_every_preset() {
    let stream = stream_workload();
    let chase = chase_workload();
    let golden = [
        (
            "chick",
            "87816ff46ce930d1adef52f2c851353befb76d08598b1972c999b79ba2cd4cf0",
            "9f83fabcf92bb38d3aca415855f2a92742efa6e54b26f490a7b16c4bf9cb45fe",
        ),
        (
            "chick-sim",
            "34f4972f395d3e30f3c27c29021812f77641359e7f04a3a8d125ab039291bbf8",
            "942bb23d921725f985d024dc9bc276041fbe67e378d1dcd16ce1db9e09e42291",
        ),
        (
            "full-speed",
            "db9f890aa94bcd2723215b853d818ab6a951c4dbe5471726b791bbdef3e4d6cc",
            "a680a0f30403168c28731e19ddbe92d9708b1c7f8fb0457c1e4455ab9bb630e4",
        ),
        (
            "emu64",
            "ae07cc77a6da4380616d0b6cd534b9ab44851398aa303c8d36db1b4280fc97c3",
            "bba67f4542e5fe73b99a3d265abb6fb14e6aa3a6e4e22cbeea10c9a9034f765e",
        ),
        (
            "chick-8node",
            "79484eba341ab1a0c54d077d7615b3c87e97dcc9086d027c6d3f0665e9f72340",
            "1f8da590e7a3377368bee3eb076caee68b253cdec28c8319588e3e092e7af355",
        ),
    ];
    for ((name, cfg), (gname, gstream, gchase)) in all_presets().iter().zip(golden) {
        assert_eq!(*name, gname, "preset table out of sync");
        assert_eq!(
            digest("stream", cfg, &stream),
            gstream,
            "preset {name} x stream digest drifted"
        );
        assert_eq!(
            digest("chase", cfg, &chase),
            gchase,
            "preset {name} x chase digest drifted"
        );
    }
}

/// Digests are process-independent: the same material hashes the same
/// in a fresh `Key`, and distinct presets never collide.
#[test]
fn digests_are_deterministic_and_collision_free() {
    let stream = stream_workload();
    let mut seen = std::collections::BTreeSet::new();
    for (name, cfg) in all_presets() {
        let a = digest("stream", &cfg, &stream);
        let b = digest("stream", &cfg, &stream);
        assert_eq!(a, b, "{name}: digest not deterministic");
        assert!(
            seen.insert(a),
            "{name}: digest collides with another preset"
        );
    }
}

/// Scenario machine-override lines are order-insensitive: the canonical
/// printer normalizes them, so the scenario cache key (which hashes the
/// printed form) is identical however the author ordered the overrides.
#[test]
fn reordered_scenario_overrides_hash_identically() {
    let a = "scenario order\n\nmachine chick\n  nodes = 2\n  gcs_per_nodelet = 1\n\n\
             workload stream\n  elems = 1024\n  threads = 8\n";
    let b = "scenario order\n\nmachine chick\n  gcs_per_nodelet = 1\n  nodes = 2\n\n\
             workload stream\n  threads = 8\n  elems = 1024\n";
    let sa = scenario::parse(a).unwrap();
    let sb = scenario::parse(b).unwrap();
    // The raw prints differ (override lines keep file order) but the
    // digest form — what the scenario cache hashes — is normalized.
    assert_eq!(
        scenario::run::digest_form(&sa),
        scenario::run::digest_form(&sb)
    );

    let key = |s: &scenario::Scenario| {
        let mut k = Key::new("scn-point");
        k.record("scenario", &scenario::run::digest_form(s));
        k.digest()
    };
    assert_eq!(key(&sa), key(&sb));

    // But a changed override *value* is a different digest.
    let c = a.replace("nodes = 2", "nodes = 4");
    let sc = scenario::parse(&c).unwrap();
    assert_ne!(key(&sa), key(&sc));
}

/// Flipping any output-affecting knob must land on a different digest —
/// a stale hit across a config change would silently serve wrong data.
#[test]
fn output_affecting_knob_flips_change_the_digest() {
    let stream = stream_workload();
    let base = presets::chick_prototype();
    let base_digest = digest("stream", &base, &stream);

    let mut slower = base.clone();
    slower.ncdram_bytes_per_sec /= 2;
    assert_ne!(digest("stream", &slower, &stream), base_digest);

    let mut bigger = stream_workload();
    bigger.total_elems *= 2;
    assert_ne!(digest("stream", &base, &bigger), base_digest);

    let mut other_kernel = stream_workload();
    other_kernel.kernel = StreamKernel::Triad;
    assert_ne!(digest("stream", &base, &other_kernel), base_digest);
}
