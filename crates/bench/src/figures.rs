//! Runners that regenerate each figure of the paper.
//!
//! Each function sweeps the same parameters as the corresponding figure
//! and returns a [`Table`] whose rows are the figure's data series. The
//! `figNN` binaries are thin wrappers; EXPERIMENTS.md records the
//! paper-vs-measured comparison for every run.
//!
//! Sweep points are independent simulations, so every figure fans its
//! grid across the worker pool in [`crate::sweep`] (`--jobs`/`-j`) and
//! assembles rows in sweep order — the tables and CSVs are identical at
//! any job count.

use crate::cache;
use crate::output::{fmt_mbs, Table};
use crate::runcfg::{sized, sized_usize};
use crate::sweep;
use emu_core::prelude::*;
use membench::chase::{self, ChaseConfig, ShuffleMode};
use membench::pingpong::{run_pingpong, PingPongConfig};
use membench::spmv_cpu::{run_spmv_cpu, CpuSpmvConfig, CpuStrategy};
use membench::spmv_emu::{run_spmv_emu, x_vector, EmuLayout, EmuSpmvConfig};
use membench::stream::{
    cpu::{run_stream_cpu, CpuStreamConfig},
    run_stream_emu, stream_checksum, EmuStreamConfig, StreamKernel,
};
use spmat::{laplacian, LaplacianSpec};
use std::sync::Arc;

/// Thread counts swept on a single nodelet (Fig 4).
pub const FIG4_THREADS: [usize; 8] = [1, 2, 4, 8, 16, 24, 32, 64];
/// Thread counts swept on eight nodelets (Fig 5).
pub const FIG5_THREADS: [usize; 7] = [8, 16, 32, 64, 128, 256, 512];
/// Block sizes swept by the pointer-chase figures.
pub const CHASE_BLOCKS: [usize; 13] = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096];

/// Evaluate a rows × cols grid of independent cells across the worker
/// pool; returns the formatted cells in row-major sweep order (first
/// error in sweep order wins).
fn grid<R: Sync, C: Sync>(
    rows: &[R],
    cols: &[C],
    cell: impl Fn(&R, &C) -> Result<String, SimError> + Sync,
) -> Result<Vec<Vec<String>>, SimError> {
    let nc = cols.len().max(1);
    let cells = sweep::run_indexed(rows.len() * cols.len(), |i| {
        cell(&rows[i / nc], &cols[i % nc])
    });
    let flat: Vec<String> = cells.into_iter().collect::<Result<_, _>>()?;
    Ok(flat.chunks(nc).map(<[String]>::to_vec).collect())
}

/// Run a batch of heterogeneous scalar measurements across the pool;
/// first error in batch order wins.
fn batch(
    thunks: Vec<Box<dyn FnOnce() -> Result<f64, SimError> + Send>>,
) -> Result<Vec<f64>, SimError> {
    sweep::run_thunks(thunks).into_iter().collect()
}

/// Fig 4: STREAM on one nodelet, serial vs recursive local spawn.
pub fn fig04() -> Result<Table, SimError> {
    let cfg = presets::chick_prototype();
    let elems = sized(1 << 16, 1 << 12);
    let mut t = Table::new(
        "Fig 4: STREAM ADD, single nodelet of the Emu Chick",
        &["threads", "serial_spawn (MB/s)", "recursive_spawn (MB/s)"],
    );
    let strategies = [SpawnStrategy::Serial, SpawnStrategy::Recursive];
    let rows = grid(&FIG4_THREADS, &strategies, |&threads, &strategy| {
        let sc = EmuStreamConfig {
            total_elems: elems,
            nthreads: threads,
            strategy,
            single_nodelet: true,
            ..Default::default()
        };
        cache::memo_str(
            "fig04",
            &[
                ("machine", format!("{cfg:?}")),
                ("stream", format!("{sc:?}")),
            ],
            || {
                let r = run_stream_emu(&cfg, &sc)?;
                assert_eq!(r.checksum, stream_checksum(elems, StreamKernel::Add));
                Ok(format!("{:.1}", r.bandwidth.mb_per_sec()))
            },
        )
    })?;
    for (&threads, cells) in FIG4_THREADS.iter().zip(rows) {
        let mut row = vec![threads.to_string()];
        row.extend(cells);
        t.row(row);
    }
    Ok(t)
}

/// Fig 5: STREAM on eight nodelets, all four spawn strategies.
pub fn fig05() -> Result<Table, SimError> {
    let cfg = presets::chick_prototype();
    let elems = sized(1 << 18, 1 << 13);
    let mut t = Table::new(
        "Fig 5: STREAM ADD, eight nodelets of the Emu Chick",
        &[
            "threads",
            "serial (MB/s)",
            "recursive (MB/s)",
            "serial_remote (MB/s)",
            "recursive_remote (MB/s)",
        ],
    );
    let rows = grid(&FIG5_THREADS, &SpawnStrategy::ALL, |&threads, &strategy| {
        let sc = EmuStreamConfig {
            total_elems: elems,
            nthreads: threads,
            strategy,
            single_nodelet: false,
            ..Default::default()
        };
        cache::memo_str(
            "fig05",
            &[
                ("machine", format!("{cfg:?}")),
                ("stream", format!("{sc:?}")),
            ],
            || {
                let r = run_stream_emu(&cfg, &sc)?;
                assert_eq!(r.checksum, stream_checksum(elems, StreamKernel::Add));
                Ok(format!("{:.1}", r.bandwidth.mb_per_sec()))
            },
        )
    })?;
    for (&threads, cells) in FIG5_THREADS.iter().zip(rows) {
        let mut row = vec![threads.to_string()];
        row.extend(cells);
        t.row(row);
    }
    Ok(t)
}

/// The Emu chase sweep shared by Figs 6, 8, 11.
fn chase_emu_sweep(
    cfg: &MachineConfig,
    title: &str,
    thread_counts: &[usize],
    blocks: &[usize],
    elems_per_list: usize,
) -> Result<Table, SimError> {
    let mut cols = vec!["block_elems".to_string()];
    cols.extend(thread_counts.iter().map(|t| format!("{t} threads (MB/s)")));
    let mut t = Table::new(title, &cols.iter().map(String::as_str).collect::<Vec<_>>());
    let blocks: Vec<usize> = blocks
        .iter()
        .copied()
        .filter(|&b| b <= elems_per_list)
        .collect();
    let rows = grid(&blocks, thread_counts, |&block, &threads| {
        let cc = ChaseConfig {
            elems_per_list,
            nlists: threads,
            block_elems: block,
            mode: ShuffleMode::FullBlock,
            seed: desim::rng::DEFAULT_SEED,
        };
        cache::memo_str(
            "chase-emu",
            &[
                ("machine", format!("{cfg:?}")),
                ("chase", format!("{cc:?}")),
            ],
            || {
                let r = chase::run_chase_emu(cfg, &cc)?;
                assert_eq!(r.checksum, cc.expected_checksum());
                Ok(format!("{:.1}", r.bandwidth.mb_per_sec()))
            },
        )
    })?;
    for (&block, cells) in blocks.iter().zip(rows) {
        let mut row = vec![block.to_string()];
        row.extend(cells);
        t.row(row);
    }
    Ok(t)
}

/// Fig 6: pointer chasing on the Emu Chick (8 nodelets).
pub fn fig06() -> Result<Table, SimError> {
    chase_emu_sweep(
        &presets::chick_prototype(),
        "Fig 6: Pointer chasing, Emu Chick (8 nodelets), full_block_shuffle",
        &[64, 128, 256, 512],
        &CHASE_BLOCKS,
        sized_usize(4096, 512),
    )
}

/// Fig 7: pointer chasing on the Sandy Bridge Xeon.
pub fn fig07() -> Result<Table, SimError> {
    let cfg = xeon_sim::config::sandy_bridge();
    // Lists must dwarf the 20 MiB LLC, as in the paper: 4 MiB per list
    // and up to 32 lists = 128 MiB of once-touched data.
    let elems_per_list = sized_usize(1 << 18, 1 << 13);
    let thread_counts = [4usize, 16, 32];
    let mut cols = vec!["block_elems".to_string()];
    cols.extend(thread_counts.iter().map(|t| format!("{t} threads (MB/s)")));
    let mut t = Table::new(
        "Fig 7: Pointer chasing, Sandy Bridge Xeon, full_block_shuffle",
        &cols.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    let blocks: Vec<usize> = CHASE_BLOCKS
        .iter()
        .copied()
        .filter(|&b| b <= elems_per_list)
        .collect();
    let rows = grid(&blocks, &thread_counts, |&block, &threads| {
        let cc = ChaseConfig {
            elems_per_list,
            nlists: threads,
            block_elems: block,
            mode: ShuffleMode::FullBlock,
            seed: desim::rng::DEFAULT_SEED,
        };
        cache::memo_str(
            "chase-cpu",
            &[
                ("machine", format!("{cfg:?}")),
                ("chase", format!("{cc:?}")),
            ],
            || {
                let r = chase::cpu::run_chase_cpu(&cfg, &cc);
                assert_eq!(r.checksum, cc.expected_checksum());
                Ok(format!("{:.1}", r.bandwidth.mb_per_sec()))
            },
        )
    })?;
    for (&block, cells) in blocks.iter().zip(rows) {
        let mut row = vec![block.to_string()];
        row.extend(cells);
        t.row(row);
    }
    Ok(t)
}

/// Peak measured STREAM bandwidth of the Emu prototype (denominator of
/// Fig 8's utilization).
pub fn emu_peak_stream_mbs() -> Result<f64, SimError> {
    let cfg = presets::chick_prototype();
    let sc = EmuStreamConfig {
        total_elems: sized(1 << 18, 1 << 13),
        nthreads: 512,
        strategy: SpawnStrategy::RecursiveRemote,
        ..Default::default()
    };
    cache::memo_f64(
        "emu-peak-stream",
        &[
            ("machine", format!("{cfg:?}")),
            ("stream", format!("{sc:?}")),
        ],
        || Ok(run_stream_emu(&cfg, &sc)?.bandwidth.mb_per_sec()),
    )
}

/// Peak measured STREAM bandwidth of the Sandy Bridge (Fig 8 denominator).
pub fn xeon_peak_stream_mbs() -> f64 {
    let cfg = xeon_sim::config::sandy_bridge();
    let sc = CpuStreamConfig {
        total_elems: sized(1 << 20, 1 << 14),
        nthreads: 16,
        kernel: StreamKernel::Add,
        nt_stores: true,
    };
    cache::memo_f64(
        "xeon-peak-stream",
        &[
            ("machine", format!("{cfg:?}")),
            ("stream", format!("{sc:?}")),
        ],
        || Ok(run_stream_cpu(&cfg, &sc).bandwidth.mb_per_sec()),
    )
    .expect("cpu stream cannot fail")
}

/// Fig 8: pointer-chase bandwidth as a fraction of each platform's peak
/// measured STREAM bandwidth.
pub fn fig08() -> Result<Table, SimError> {
    // Stage 1: the two peak-bandwidth denominators, concurrently.
    let peaks = batch(vec![
        Box::new(emu_peak_stream_mbs),
        Box::new(|| Ok(xeon_peak_stream_mbs())),
    ])?;
    let (emu_peak, xeon_peak) = (peaks[0], peaks[1]);
    let emu_cfg = presets::chick_prototype();
    let cpu_cfg = xeon_sim::config::sandy_bridge();
    let mut t = Table::new(
        format!(
            "Fig 8: Bandwidth utilization vs measured peak (Emu peak {} / Xeon peak {})",
            fmt_mbs(emu_peak),
            fmt_mbs(xeon_peak)
        ),
        &["block_elems", "Emu 512thr (%)", "Xeon 32thr (%)"],
    );
    // Stage 2: the block sweep, one cell per (block, platform).
    let rows = grid(&CHASE_BLOCKS, &[true, false], |&block, &is_emu| {
        // The utilization cell depends on the peak denominator too, so
        // the denominator joins the key material.
        if is_emu {
            let cc = ChaseConfig {
                elems_per_list: sized_usize(4096, 512).max(block),
                nlists: 512,
                block_elems: block,
                mode: ShuffleMode::FullBlock,
                seed: desim::rng::DEFAULT_SEED,
            };
            cache::memo_str(
                "fig08-emu",
                &[
                    ("machine", format!("{emu_cfg:?}")),
                    ("chase", format!("{cc:?}")),
                    ("peak", format!("{emu_peak:?}")),
                ],
                || {
                    let emu = chase::run_chase_emu(&emu_cfg, &cc)?;
                    Ok(format!(
                        "{:.1}",
                        100.0 * emu.bandwidth.mb_per_sec() / emu_peak
                    ))
                },
            )
        } else {
            let cc = ChaseConfig {
                elems_per_list: sized_usize(1 << 18, 1 << 13).max(block),
                nlists: 32,
                block_elems: block,
                mode: ShuffleMode::FullBlock,
                seed: desim::rng::DEFAULT_SEED,
            };
            cache::memo_str(
                "fig08-xeon",
                &[
                    ("machine", format!("{cpu_cfg:?}")),
                    ("chase", format!("{cc:?}")),
                    ("peak", format!("{xeon_peak:?}")),
                ],
                || {
                    let xeon = chase::cpu::run_chase_cpu(&cpu_cfg, &cc);
                    Ok(format!(
                        "{:.1}",
                        100.0 * xeon.bandwidth.mb_per_sec() / xeon_peak
                    ))
                },
            )
        }
    })?;
    for (&block, cells) in CHASE_BLOCKS.iter().zip(rows) {
        let mut row = vec![block.to_string()];
        row.extend(cells);
        t.row(row);
    }
    Ok(t)
}

/// Laplacian sizes swept by Fig 9.
pub const FIG9_SIZES: [u32; 6] = [25, 50, 100, 150, 200, 300];

/// Fig 9a: Emu SpMV effective bandwidth for the three layouts.
pub fn fig09a() -> Result<Table, SimError> {
    let cfg = presets::chick_prototype();
    let mut t = Table::new(
        "Fig 9a: SpMV effective bandwidth, Emu Chick (grain 16 nnz)",
        &["laplacian_n", "local (MB/s)", "1D (MB/s)", "2D (MB/s)"],
    );
    // One sweep point per matrix size: the three layouts share the
    // assembled matrix, so the row is the natural parallel unit.
    // Rows are memoized whole (cells newline-joined) so a warm run
    // skips even the shared matrix assembly.
    let rows = sweep::run_indexed(FIG9_SIZES.len(), |i| -> Result<Vec<String>, SimError> {
        let n = FIG9_SIZES[i];
        let spec = LaplacianSpec::paper(n);
        let joined = cache::memo_str(
            "fig09a",
            &[
                ("machine", format!("{cfg:?}")),
                ("laplacian", format!("{spec:?}")),
                ("grain_nnz", "16".to_string()),
            ],
            || {
                let m = Arc::new(laplacian(spec));
                let reference = m.spmv(&x_vector(m.ncols()));
                let mut cells = vec![n.to_string()];
                for layout in EmuLayout::ALL {
                    let r = run_spmv_emu(
                        &cfg,
                        Arc::clone(&m),
                        &EmuSpmvConfig {
                            layout,
                            grain_nnz: 16,
                        },
                    )?;
                    let err = reference
                        .iter()
                        .zip(&r.y)
                        .map(|(a, b)| (a - b).abs())
                        .fold(0.0, f64::max);
                    assert!(err < 1e-9, "{} produced a wrong result", layout.name());
                    cells.push(format!("{:.1}", r.bandwidth.mb_per_sec()));
                }
                Ok(cells.join("\n"))
            },
        )?;
        Ok(joined.split('\n').map(str::to_string).collect())
    });
    for row in rows {
        t.row(row?);
    }
    Ok(t)
}

/// Laplacian sizes swept by Fig 9b (the CPU scales further).
pub const FIG9B_SIZES: [u32; 6] = [50, 100, 200, 400, 600, 1000];

/// Fig 9b: Haswell SpMV effective bandwidth for the three strategies
/// (plus the Emu-like tiny grain for the grain-size contrast).
pub fn fig09b() -> Result<Table, SimError> {
    let cfg = xeon_sim::config::haswell();
    let strategies = [
        CpuStrategy::MklLike,
        CpuStrategy::CilkFor,
        CpuStrategy::CilkSpawn { grain: 16384 },
        CpuStrategy::CilkSpawn { grain: 16 },
    ];
    let mut t = Table::new(
        "Fig 9b: SpMV effective bandwidth, Haswell Xeon (56 threads)",
        &[
            "laplacian_n",
            "mkl (MB/s)",
            "cilk_for (MB/s)",
            "cilk_spawn g=16384 (MB/s)",
            "cilk_spawn g=16 (MB/s)",
        ],
    );
    let rows = sweep::run_indexed(FIG9B_SIZES.len(), |i| -> Result<Vec<String>, SimError> {
        let n = FIG9B_SIZES[i];
        let n = if crate::runcfg::quick() {
            n.min(200)
        } else {
            n
        };
        let spec = LaplacianSpec::paper(n);
        let joined = cache::memo_str(
            "fig09b",
            &[
                ("machine", format!("{cfg:?}")),
                ("laplacian", format!("{spec:?}")),
                ("strategies", format!("{strategies:?}")),
            ],
            || {
                let m = Arc::new(laplacian(spec));
                let reference = m.spmv(&x_vector(m.ncols()));
                let mut cells = vec![n.to_string()];
                for &strategy in &strategies {
                    let r = run_spmv_cpu(
                        &cfg,
                        Arc::clone(&m),
                        &CpuSpmvConfig {
                            strategy,
                            nthreads: 56,
                        },
                    );
                    let err = reference
                        .iter()
                        .zip(&r.y)
                        .map(|(a, b)| (a - b).abs())
                        .fold(0.0, f64::max);
                    assert!(err < 1e-9, "{} produced a wrong result", strategy.name());
                    cells.push(format!("{:.1}", r.bandwidth.mb_per_sec()));
                }
                Ok(cells.join("\n"))
            },
        )?;
        Ok(joined.split('\n').map(str::to_string).collect())
    });
    for row in rows {
        t.row(row?);
    }
    Ok(t)
}

/// Fig 10: hardware (1.0 firmware) vs Emu toolchain-simulator presets on
/// STREAM, pointer chase, and ping-pong.
pub fn fig10() -> Result<Table, SimError> {
    let hw = presets::chick_prototype();
    let sim = presets::chick_toolchain_sim();
    // Every hardware/simulator measurement is independent: run all
    // twelve as one batch (hw/sim pairs adjacent, in row order).
    let stream_mbs = |cfg: &MachineConfig, sc: &EmuStreamConfig| {
        cache::memo_f64(
            "fig10-stream",
            &[
                ("machine", format!("{cfg:?}")),
                ("stream", format!("{sc:?}")),
            ],
            || Ok(run_stream_emu(cfg, sc)?.bandwidth.mb_per_sec()),
        )
    };
    let stream1 = move |cfg: MachineConfig| -> Box<dyn FnOnce() -> Result<f64, SimError> + Send> {
        Box::new(move || {
            stream_mbs(
                &cfg,
                &EmuStreamConfig {
                    total_elems: sized(1 << 15, 1 << 12),
                    nthreads: 64,
                    strategy: SpawnStrategy::Recursive,
                    single_nodelet: true,
                    ..Default::default()
                },
            )
        })
    };
    let stream8 = move |cfg: MachineConfig| -> Box<dyn FnOnce() -> Result<f64, SimError> + Send> {
        Box::new(move || {
            stream_mbs(
                &cfg,
                &EmuStreamConfig {
                    total_elems: sized(1 << 18, 1 << 13),
                    nthreads: 512,
                    strategy: SpawnStrategy::RecursiveRemote,
                    ..Default::default()
                },
            )
        })
    };
    // Pointer chase: migration-bound at block 1 (where hardware and
    // simulator diverge, as in the paper) and compute-bound at block 64
    // (where they agree, like STREAM).
    let chase_at =
        |cfg: MachineConfig, block: usize| -> Box<dyn FnOnce() -> Result<f64, SimError> + Send> {
            Box::new(move || {
                let cc = ChaseConfig {
                    elems_per_list: sized_usize(2048, 512).max(block),
                    nlists: 512,
                    block_elems: block,
                    mode: ShuffleMode::FullBlock,
                    seed: 1,
                };
                cache::memo_f64(
                    "fig10-chase",
                    &[
                        ("machine", format!("{cfg:?}")),
                        ("chase", format!("{cc:?}")),
                    ],
                    || Ok(chase::run_chase_emu(&cfg, &cc)?.bandwidth.mb_per_sec()),
                )
            })
        };
    // Ping-pong: the migration rate at load, and the latency at light
    // load (the paper's 1-2 us estimate).
    let pp = |cfg: MachineConfig,
              threads: usize,
              latency: bool|
     -> Box<dyn FnOnce() -> Result<f64, SimError> + Send> {
        Box::new(move || {
            let pc = PingPongConfig {
                nthreads: threads,
                round_trips: sized(2000, 200) as u32,
                ..Default::default()
            };
            cache::memo_f64(
                "fig10-pingpong",
                &[
                    ("machine", format!("{cfg:?}")),
                    ("pingpong", format!("{pc:?}")),
                    ("metric", if latency { "latency" } else { "rate" }.into()),
                ],
                || {
                    let r = run_pingpong(&cfg, &pc)?;
                    Ok(if latency {
                        r.mean_latency_ns / 1000.0
                    } else {
                        r.migrations_per_sec / 1e6
                    })
                },
            )
        })
    };
    let v = batch(vec![
        stream1(hw.clone()),
        stream1(sim.clone()),
        stream8(hw.clone()),
        stream8(sim.clone()),
        chase_at(hw.clone(), 1),
        chase_at(sim.clone(), 1),
        chase_at(hw.clone(), 64),
        chase_at(sim.clone(), 64),
        pp(hw.clone(), 64, false),
        pp(sim.clone(), 64, false),
        pp(hw, 8, true),
        pp(sim, 8, true),
    ])?;
    let mut t = Table::new(
        "Fig 10: Emu hardware preset vs toolchain-simulator preset",
        &["benchmark", "hardware", "simulator", "sim/hw"],
    );
    let names = [
        ("STREAM 1 nodelet", "MB/s"),
        ("STREAM 8 nodelets", "MB/s"),
        ("Pointer chase (block 1)", "MB/s"),
        ("Pointer chase (block 64)", "MB/s"),
        ("Ping-pong (M migrations/s)", "M/s"),
        ("Migration latency (us)", "us"),
    ];
    for (i, &(name, unit)) in names.iter().enumerate() {
        let (h, s) = (v[2 * i], v[2 * i + 1]);
        t.row(vec![
            name.to_string(),
            format!("{h:.1} {unit}"),
            format!("{s:.1} {unit}"),
            format!("{:.2}x", s / h),
        ]);
    }
    Ok(t)
}

/// Fig 11: pointer chasing on the full-speed 64-nodelet system.
pub fn fig11() -> Result<Table, SimError> {
    chase_emu_sweep(
        &presets::emu64_full_speed(),
        "Fig 11: Pointer chasing, simulated 64-nodelet Emu at full speed",
        &[256, 1024, 4096],
        &[1, 4, 16, 64, 256, 1024, 4096],
        sized_usize(2048, 512),
    )
}

/// Headline numbers quoted in the paper's text (Section IV-A and
/// conclusions), as one table.
pub fn headline() -> Result<Table, SimError> {
    let emu_cfg = presets::chick_prototype();
    // Stage 1: the scalar measurements, one batch.
    let pp_rate = |cfg: MachineConfig| -> Box<dyn FnOnce() -> Result<f64, SimError> + Send> {
        Box::new(move || {
            let pc = PingPongConfig {
                nthreads: 64,
                round_trips: sized(2000, 200) as u32,
                ..Default::default()
            };
            cache::memo_f64(
                "headline-pp-rate",
                &[
                    ("machine", format!("{cfg:?}")),
                    ("pingpong", format!("{pc:?}")),
                ],
                || Ok(run_pingpong(&cfg, &pc)?.migrations_per_sec / 1e6),
            )
        })
    };
    let scalars = batch(vec![
        Box::new(emu_peak_stream_mbs),
        Box::new(|| {
            let cfg = presets::chick_8node_prototype();
            let sc = EmuStreamConfig {
                total_elems: sized(1 << 20, 1 << 15),
                nthreads: 4096,
                strategy: SpawnStrategy::RecursiveRemote,
                ..Default::default()
            };
            cache::memo_f64(
                "headline-8node-stream",
                &[
                    ("machine", format!("{cfg:?}")),
                    ("stream", format!("{sc:?}")),
                ],
                || Ok(run_stream_emu(&cfg, &sc)?.bandwidth.mb_per_sec()),
            )
        }),
        Box::new(|| Ok(xeon_peak_stream_mbs())),
        {
            let cfg = emu_cfg.clone();
            Box::new(move || {
                let cc = ChaseConfig {
                    elems_per_list: sized_usize(4096, 512),
                    nlists: 512,
                    block_elems: 1,
                    mode: ShuffleMode::FullBlock,
                    seed: 1,
                };
                cache::memo_f64(
                    "headline-chase",
                    &[
                        ("machine", format!("{cfg:?}")),
                        ("chase", format!("{cc:?}")),
                    ],
                    || Ok(chase::run_chase_emu(&cfg, &cc)?.bandwidth.mb_per_sec()),
                )
            })
        },
        pp_rate(emu_cfg.clone()),
        pp_rate(presets::chick_toolchain_sim()),
        {
            let cfg = emu_cfg.clone();
            Box::new(move || {
                let pc = PingPongConfig {
                    nthreads: 8,
                    round_trips: sized(2000, 200) as u32,
                    ..Default::default()
                };
                cache::memo_f64(
                    "headline-pp-latency",
                    &[
                        ("machine", format!("{cfg:?}")),
                        ("pingpong", format!("{pc:?}")),
                    ],
                    || Ok(run_pingpong(&cfg, &pc)?.mean_latency_ns / 1000.0),
                )
            })
        },
    ])?;
    let (emu_peak, eight, xeon_peak, chase_worst, pp_hw, pp_sim, pp_latency_us) = (
        scalars[0], scalars[1], scalars[2], scalars[3], scalars[4], scalars[5], scalars[6],
    );
    // Stage 2: the chase utilization sweeps ("most cases" medians).
    let emu_bws = sweep::run_indexed(CHASE_BLOCKS.len(), |i| -> Result<f64, SimError> {
        let block = CHASE_BLOCKS[i];
        let cc = ChaseConfig {
            elems_per_list: sized_usize(4096, 512).max(block),
            nlists: 512,
            block_elems: block,
            mode: ShuffleMode::FullBlock,
            seed: 1,
        };
        cache::memo_f64(
            "headline-chase",
            &[
                ("machine", format!("{emu_cfg:?}")),
                ("chase", format!("{cc:?}")),
            ],
            || Ok(chase::run_chase_emu(&emu_cfg, &cc)?.bandwidth.mb_per_sec()),
        )
    })
    .into_iter()
    .collect::<Result<Vec<_>, _>>()?;
    let cpu_cfg = xeon_sim::config::sandy_bridge();
    let xeon_bws = sweep::run_indexed(CHASE_BLOCKS.len(), |i| {
        let block = CHASE_BLOCKS[i];
        let cc = ChaseConfig {
            elems_per_list: sized_usize(1 << 18, 1 << 13).max(block),
            nlists: 32,
            block_elems: block,
            mode: ShuffleMode::FullBlock,
            seed: 1,
        };
        cache::memo_f64(
            "headline-chase-cpu",
            &[
                ("machine", format!("{cpu_cfg:?}")),
                ("chase", format!("{cc:?}")),
            ],
            || {
                Ok(chase::cpu::run_chase_cpu(&cpu_cfg, &cc)
                    .bandwidth
                    .mb_per_sec())
            },
        )
        .expect("cpu chase cannot fail")
    });
    let median = |mut xs: Vec<f64>| -> f64 {
        xs.sort_by(f64::total_cmp);
        xs[xs.len() / 2]
    };
    let emu_med = median(emu_bws);
    let xeon_med = median(xeon_bws);
    let mut t = Table::new(
        "Headline numbers (paper Section IV / conclusions)",
        &["quantity", "paper", "this reproduction"],
    );
    t.row(vec![
        "Emu Chick STREAM, 1 node".into(),
        "1.2 GB/s".into(),
        fmt_mbs(emu_peak),
    ]);
    t.row(vec![
        "Emu Chick STREAM, 8 nodes (initial test)".into(),
        "6.5 GB/s".into(),
        fmt_mbs(eight),
    ]);
    t.row(vec![
        "Sandy Bridge STREAM (51.2 GB/s nominal)".into(),
        "~51.2 GB/s".into(),
        fmt_mbs(xeon_peak),
    ]);
    t.row(vec![
        "Emu chase utilization (median over blocks)".into(),
        "~80 %".into(),
        format!("{:.0} %", 100.0 * emu_med / emu_peak),
    ]);
    t.row(vec![
        "Emu chase utilization (worst, block=1)".into(),
        "~50 %".into(),
        format!("{:.0} %", 100.0 * chase_worst / emu_peak),
    ]);
    t.row(vec![
        "Xeon chase utilization (median over blocks)".into(),
        "<25 %".into(),
        format!("{:.0} %", 100.0 * xeon_med / xeon_peak),
    ]);
    t.row(vec![
        "Ping-pong, hardware".into(),
        "9 M migrations/s".into(),
        format!("{pp_hw:.1} M migrations/s"),
    ]);
    t.row(vec![
        "Ping-pong, toolchain simulator".into(),
        "16 M migrations/s".into(),
        format!("{pp_sim:.1} M migrations/s"),
    ]);
    t.row(vec![
        "Single-migration latency".into(),
        "1-2 us".into(),
        format!("{pp_latency_us:.2} us"),
    ]);
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Figure functions are exercised end-to-end (quick mode) by the
    // integration tests in tests/harness.rs; here we only check cheap
    // structural properties.

    #[test]
    fn chase_blocks_are_increasing_powers() {
        for w in CHASE_BLOCKS.windows(2) {
            assert_eq!(w[1], w[0] * 2);
        }
    }

    #[test]
    fn fig4_thread_counts_cover_the_knee() {
        assert!(FIG4_THREADS.contains(&32) && FIG4_THREADS.contains(&64));
    }
}
