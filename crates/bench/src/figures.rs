//! Runners that regenerate each figure of the paper.
//!
//! Each function sweeps the same parameters as the corresponding figure
//! and returns a [`Table`] whose rows are the figure's data series. The
//! `figNN` binaries are thin wrappers; EXPERIMENTS.md records the
//! paper-vs-measured comparison for every run.

use crate::output::{fmt_mbs, Table};
use crate::runcfg::{sized, sized_usize};
use emu_core::prelude::*;
use membench::chase::{self, ChaseConfig, ShuffleMode};
use membench::pingpong::{run_pingpong, PingPongConfig};
use membench::spmv_cpu::{run_spmv_cpu, CpuSpmvConfig, CpuStrategy};
use membench::spmv_emu::{run_spmv_emu, x_vector, EmuLayout, EmuSpmvConfig};
use membench::stream::{
    cpu::{run_stream_cpu, CpuStreamConfig},
    run_stream_emu, stream_checksum, EmuStreamConfig, StreamKernel,
};
use spmat::{laplacian, LaplacianSpec};
use std::sync::Arc;

/// Thread counts swept on a single nodelet (Fig 4).
pub const FIG4_THREADS: [usize; 8] = [1, 2, 4, 8, 16, 24, 32, 64];
/// Thread counts swept on eight nodelets (Fig 5).
pub const FIG5_THREADS: [usize; 7] = [8, 16, 32, 64, 128, 256, 512];
/// Block sizes swept by the pointer-chase figures.
pub const CHASE_BLOCKS: [usize; 13] = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096];

/// Fig 4: STREAM on one nodelet, serial vs recursive local spawn.
pub fn fig04() -> Result<Table, SimError> {
    let cfg = presets::chick_prototype();
    let elems = sized(1 << 16, 1 << 12);
    let mut t = Table::new(
        "Fig 4: STREAM ADD, single nodelet of the Emu Chick",
        &["threads", "serial_spawn (MB/s)", "recursive_spawn (MB/s)"],
    );
    for &threads in &FIG4_THREADS {
        let mut cells = vec![threads.to_string()];
        for strategy in [SpawnStrategy::Serial, SpawnStrategy::Recursive] {
            let r = run_stream_emu(
                &cfg,
                &EmuStreamConfig {
                    total_elems: elems,
                    nthreads: threads,
                    strategy,
                    single_nodelet: true,
                    ..Default::default()
                },
            )?;
            assert_eq!(r.checksum, stream_checksum(elems, StreamKernel::Add));
            cells.push(format!("{:.1}", r.bandwidth.mb_per_sec()));
        }
        t.row(cells);
    }
    Ok(t)
}

/// Fig 5: STREAM on eight nodelets, all four spawn strategies.
pub fn fig05() -> Result<Table, SimError> {
    let cfg = presets::chick_prototype();
    let elems = sized(1 << 18, 1 << 13);
    let mut t = Table::new(
        "Fig 5: STREAM ADD, eight nodelets of the Emu Chick",
        &[
            "threads",
            "serial (MB/s)",
            "recursive (MB/s)",
            "serial_remote (MB/s)",
            "recursive_remote (MB/s)",
        ],
    );
    for &threads in &FIG5_THREADS {
        let mut cells = vec![threads.to_string()];
        for strategy in SpawnStrategy::ALL {
            let r = run_stream_emu(
                &cfg,
                &EmuStreamConfig {
                    total_elems: elems,
                    nthreads: threads,
                    strategy,
                    single_nodelet: false,
                    ..Default::default()
                },
            )?;
            assert_eq!(r.checksum, stream_checksum(elems, StreamKernel::Add));
            cells.push(format!("{:.1}", r.bandwidth.mb_per_sec()));
        }
        t.row(cells);
    }
    Ok(t)
}

/// The Emu chase sweep shared by Figs 6, 8, 11.
fn chase_emu_sweep(
    cfg: &MachineConfig,
    title: &str,
    thread_counts: &[usize],
    blocks: &[usize],
    elems_per_list: usize,
) -> Result<Table, SimError> {
    let mut cols = vec!["block_elems".to_string()];
    cols.extend(thread_counts.iter().map(|t| format!("{t} threads (MB/s)")));
    let mut t = Table::new(title, &cols.iter().map(String::as_str).collect::<Vec<_>>());
    for &block in blocks {
        if block > elems_per_list {
            continue;
        }
        let mut cells = vec![block.to_string()];
        for &threads in thread_counts {
            let cc = ChaseConfig {
                elems_per_list,
                nlists: threads,
                block_elems: block,
                mode: ShuffleMode::FullBlock,
                seed: desim::rng::DEFAULT_SEED,
            };
            let r = chase::run_chase_emu(cfg, &cc)?;
            assert_eq!(r.checksum, cc.expected_checksum());
            cells.push(format!("{:.1}", r.bandwidth.mb_per_sec()));
        }
        t.row(cells);
    }
    Ok(t)
}

/// Fig 6: pointer chasing on the Emu Chick (8 nodelets).
pub fn fig06() -> Result<Table, SimError> {
    chase_emu_sweep(
        &presets::chick_prototype(),
        "Fig 6: Pointer chasing, Emu Chick (8 nodelets), full_block_shuffle",
        &[64, 128, 256, 512],
        &CHASE_BLOCKS,
        sized_usize(4096, 512),
    )
}

/// Fig 7: pointer chasing on the Sandy Bridge Xeon.
pub fn fig07() -> Result<Table, SimError> {
    let cfg = xeon_sim::config::sandy_bridge();
    // Lists must dwarf the 20 MiB LLC, as in the paper: 4 MiB per list
    // and up to 32 lists = 128 MiB of once-touched data.
    let elems_per_list = sized_usize(1 << 18, 1 << 13);
    let thread_counts = [4usize, 16, 32];
    let mut cols = vec!["block_elems".to_string()];
    cols.extend(thread_counts.iter().map(|t| format!("{t} threads (MB/s)")));
    let mut t = Table::new(
        "Fig 7: Pointer chasing, Sandy Bridge Xeon, full_block_shuffle",
        &cols.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    for &block in &CHASE_BLOCKS {
        if block > elems_per_list {
            continue;
        }
        let mut cells = vec![block.to_string()];
        for &threads in &thread_counts {
            let cc = ChaseConfig {
                elems_per_list,
                nlists: threads,
                block_elems: block,
                mode: ShuffleMode::FullBlock,
                seed: desim::rng::DEFAULT_SEED,
            };
            let r = chase::cpu::run_chase_cpu(&cfg, &cc);
            assert_eq!(r.checksum, cc.expected_checksum());
            cells.push(format!("{:.1}", r.bandwidth.mb_per_sec()));
        }
        t.row(cells);
    }
    Ok(t)
}

/// Peak measured STREAM bandwidth of the Emu prototype (denominator of
/// Fig 8's utilization).
pub fn emu_peak_stream_mbs() -> Result<f64, SimError> {
    let r = run_stream_emu(
        &presets::chick_prototype(),
        &EmuStreamConfig {
            total_elems: sized(1 << 18, 1 << 13),
            nthreads: 512,
            strategy: SpawnStrategy::RecursiveRemote,
            ..Default::default()
        },
    )?;
    Ok(r.bandwidth.mb_per_sec())
}

/// Peak measured STREAM bandwidth of the Sandy Bridge (Fig 8 denominator).
pub fn xeon_peak_stream_mbs() -> f64 {
    let r = run_stream_cpu(
        &xeon_sim::config::sandy_bridge(),
        &CpuStreamConfig {
            total_elems: sized(1 << 20, 1 << 14),
            nthreads: 16,
            kernel: StreamKernel::Add,
            nt_stores: true,
        },
    );
    r.bandwidth.mb_per_sec()
}

/// Fig 8: pointer-chase bandwidth as a fraction of each platform's peak
/// measured STREAM bandwidth.
pub fn fig08() -> Result<Table, SimError> {
    let emu_peak = emu_peak_stream_mbs()?;
    let xeon_peak = xeon_peak_stream_mbs();
    let emu_cfg = presets::chick_prototype();
    let cpu_cfg = xeon_sim::config::sandy_bridge();
    let mut t = Table::new(
        format!(
            "Fig 8: Bandwidth utilization vs measured peak (Emu peak {} / Xeon peak {})",
            fmt_mbs(emu_peak),
            fmt_mbs(xeon_peak)
        ),
        &["block_elems", "Emu 512thr (%)", "Xeon 32thr (%)"],
    );
    for &block in &CHASE_BLOCKS {
        let emu = chase::run_chase_emu(
            &emu_cfg,
            &ChaseConfig {
                elems_per_list: sized_usize(4096, 512).max(block),
                nlists: 512,
                block_elems: block,
                mode: ShuffleMode::FullBlock,
                seed: desim::rng::DEFAULT_SEED,
            },
        )?;
        let xeon = chase::cpu::run_chase_cpu(
            &cpu_cfg,
            &ChaseConfig {
                elems_per_list: sized_usize(1 << 18, 1 << 13).max(block),
                nlists: 32,
                block_elems: block,
                mode: ShuffleMode::FullBlock,
                seed: desim::rng::DEFAULT_SEED,
            },
        );
        t.row(vec![
            block.to_string(),
            format!("{:.1}", 100.0 * emu.bandwidth.mb_per_sec() / emu_peak),
            format!("{:.1}", 100.0 * xeon.bandwidth.mb_per_sec() / xeon_peak),
        ]);
    }
    Ok(t)
}

/// Laplacian sizes swept by Fig 9.
pub const FIG9_SIZES: [u32; 6] = [25, 50, 100, 150, 200, 300];

/// Fig 9a: Emu SpMV effective bandwidth for the three layouts.
pub fn fig09a() -> Result<Table, SimError> {
    let cfg = presets::chick_prototype();
    let mut t = Table::new(
        "Fig 9a: SpMV effective bandwidth, Emu Chick (grain 16 nnz)",
        &["laplacian_n", "local (MB/s)", "1D (MB/s)", "2D (MB/s)"],
    );
    for &n in &FIG9_SIZES {
        let m = Arc::new(laplacian(LaplacianSpec::paper(n)));
        let reference = m.spmv(&x_vector(m.ncols()));
        let mut cells = vec![n.to_string()];
        for layout in EmuLayout::ALL {
            let r = run_spmv_emu(
                &cfg,
                Arc::clone(&m),
                &EmuSpmvConfig {
                    layout,
                    grain_nnz: 16,
                },
            )?;
            let err = reference
                .iter()
                .zip(&r.y)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            assert!(err < 1e-9, "{} produced a wrong result", layout.name());
            cells.push(format!("{:.1}", r.bandwidth.mb_per_sec()));
        }
        t.row(cells);
    }
    Ok(t)
}

/// Laplacian sizes swept by Fig 9b (the CPU scales further).
pub const FIG9B_SIZES: [u32; 6] = [50, 100, 200, 400, 600, 1000];

/// Fig 9b: Haswell SpMV effective bandwidth for the three strategies
/// (plus the Emu-like tiny grain for the grain-size contrast).
pub fn fig09b() -> Result<Table, SimError> {
    let cfg = xeon_sim::config::haswell();
    let strategies = [
        CpuStrategy::MklLike,
        CpuStrategy::CilkFor,
        CpuStrategy::CilkSpawn { grain: 16384 },
        CpuStrategy::CilkSpawn { grain: 16 },
    ];
    let mut t = Table::new(
        "Fig 9b: SpMV effective bandwidth, Haswell Xeon (56 threads)",
        &[
            "laplacian_n",
            "mkl (MB/s)",
            "cilk_for (MB/s)",
            "cilk_spawn g=16384 (MB/s)",
            "cilk_spawn g=16 (MB/s)",
        ],
    );
    for &n in &FIG9B_SIZES {
        let n = if crate::runcfg::quick() {
            n.min(200)
        } else {
            n
        };
        let m = Arc::new(laplacian(LaplacianSpec::paper(n)));
        let reference = m.spmv(&x_vector(m.ncols()));
        let mut cells = vec![n.to_string()];
        for &strategy in &strategies {
            let r = run_spmv_cpu(
                &cfg,
                Arc::clone(&m),
                &CpuSpmvConfig {
                    strategy,
                    nthreads: 56,
                },
            );
            let err = reference
                .iter()
                .zip(&r.y)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            assert!(err < 1e-9, "{} produced a wrong result", strategy.name());
            cells.push(format!("{:.1}", r.bandwidth.mb_per_sec()));
        }
        t.row(cells);
    }
    Ok(t)
}

/// Fig 10: hardware (1.0 firmware) vs Emu toolchain-simulator presets on
/// STREAM, pointer chase, and ping-pong.
pub fn fig10() -> Result<Table, SimError> {
    let hw = presets::chick_prototype();
    let sim = presets::chick_toolchain_sim();
    let mut t = Table::new(
        "Fig 10: Emu hardware preset vs toolchain-simulator preset",
        &["benchmark", "hardware", "simulator", "sim/hw"],
    );
    let mut push = |name: &str, h: f64, s: f64, unit: &str| {
        t.row(vec![
            name.to_string(),
            format!("{h:.1} {unit}"),
            format!("{s:.1} {unit}"),
            format!("{:.2}x", s / h),
        ]);
    };
    // STREAM, single nodelet.
    let stream1 = |cfg: &MachineConfig| -> Result<f64, SimError> {
        Ok(run_stream_emu(
            cfg,
            &EmuStreamConfig {
                total_elems: sized(1 << 15, 1 << 12),
                nthreads: 64,
                strategy: SpawnStrategy::Recursive,
                single_nodelet: true,
                ..Default::default()
            },
        )?
        .bandwidth
        .mb_per_sec())
    };
    push("STREAM 1 nodelet", stream1(&hw)?, stream1(&sim)?, "MB/s");
    // STREAM, eight nodelets.
    let stream8 = |cfg: &MachineConfig| -> Result<f64, SimError> {
        Ok(run_stream_emu(
            cfg,
            &EmuStreamConfig {
                total_elems: sized(1 << 18, 1 << 13),
                nthreads: 512,
                strategy: SpawnStrategy::RecursiveRemote,
                ..Default::default()
            },
        )?
        .bandwidth
        .mb_per_sec())
    };
    push("STREAM 8 nodelets", stream8(&hw)?, stream8(&sim)?, "MB/s");
    // Pointer chase: migration-bound at block 1 (where hardware and
    // simulator diverge, as in the paper) and compute-bound at block 64
    // (where they agree, like STREAM).
    let chase_at = |cfg: &MachineConfig, block: usize| -> Result<f64, SimError> {
        let cc = ChaseConfig {
            elems_per_list: sized_usize(2048, 512).max(block),
            nlists: 512,
            block_elems: block,
            mode: ShuffleMode::FullBlock,
            seed: 1,
        };
        Ok(chase::run_chase_emu(cfg, &cc)?.bandwidth.mb_per_sec())
    };
    push(
        "Pointer chase (block 1)",
        chase_at(&hw, 1)?,
        chase_at(&sim, 1)?,
        "MB/s",
    );
    push(
        "Pointer chase (block 64)",
        chase_at(&hw, 64)?,
        chase_at(&sim, 64)?,
        "MB/s",
    );
    // Ping-pong migration rate (the component that explains the gap).
    let pp = |cfg: &MachineConfig, threads: usize| {
        run_pingpong(
            cfg,
            &PingPongConfig {
                nthreads: threads,
                round_trips: sized(2000, 200) as u32,
                ..Default::default()
            },
        )
    };
    let (ph, ps) = (pp(&hw, 64)?, pp(&sim, 64)?);
    push(
        "Ping-pong (M migrations/s)",
        ph.migrations_per_sec / 1e6,
        ps.migrations_per_sec / 1e6,
        "M/s",
    );
    // Latency measured at light load (the paper's 1-2 us estimate).
    let (lh, ls) = (pp(&hw, 8)?, pp(&sim, 8)?);
    push(
        "Migration latency (us)",
        lh.mean_latency_ns / 1000.0,
        ls.mean_latency_ns / 1000.0,
        "us",
    );
    Ok(t)
}

/// Fig 11: pointer chasing on the full-speed 64-nodelet system.
pub fn fig11() -> Result<Table, SimError> {
    chase_emu_sweep(
        &presets::emu64_full_speed(),
        "Fig 11: Pointer chasing, simulated 64-nodelet Emu at full speed",
        &[256, 1024, 4096],
        &[1, 4, 16, 64, 256, 1024, 4096],
        sized_usize(2048, 512),
    )
}

/// Headline numbers quoted in the paper's text (Section IV-A and
/// conclusions), as one table.
pub fn headline() -> Result<Table, SimError> {
    let mut t = Table::new(
        "Headline numbers (paper Section IV / conclusions)",
        &["quantity", "paper", "this reproduction"],
    );
    let emu_peak = emu_peak_stream_mbs()?;
    t.row(vec![
        "Emu Chick STREAM, 1 node".into(),
        "1.2 GB/s".into(),
        fmt_mbs(emu_peak),
    ]);
    // 8-node initial test.
    let eight = run_stream_emu(
        &presets::chick_8node_prototype(),
        &EmuStreamConfig {
            total_elems: sized(1 << 20, 1 << 15),
            nthreads: 4096,
            strategy: SpawnStrategy::RecursiveRemote,
            ..Default::default()
        },
    )?;
    t.row(vec![
        "Emu Chick STREAM, 8 nodes (initial test)".into(),
        "6.5 GB/s".into(),
        fmt_mbs(eight.bandwidth.mb_per_sec()),
    ]);
    let xeon_peak = xeon_peak_stream_mbs();
    t.row(vec![
        "Sandy Bridge STREAM (51.2 GB/s nominal)".into(),
        "~51.2 GB/s".into(),
        fmt_mbs(xeon_peak),
    ]);
    // Chase utilization: median across the block-size sweep ("most
    // cases" in the paper's words).
    let median = |mut xs: Vec<f64>| -> f64 {
        xs.sort_by(f64::total_cmp);
        xs[xs.len() / 2]
    };
    let emu_cfg = presets::chick_prototype();
    let emu_med = {
        let mut bws = Vec::new();
        for &block in &CHASE_BLOCKS {
            bws.push(
                chase::run_chase_emu(
                    &emu_cfg,
                    &ChaseConfig {
                        elems_per_list: sized_usize(4096, 512).max(block),
                        nlists: 512,
                        block_elems: block,
                        mode: ShuffleMode::FullBlock,
                        seed: 1,
                    },
                )?
                .bandwidth
                .mb_per_sec(),
            );
        }
        median(bws)
    };
    t.row(vec![
        "Emu chase utilization (median over blocks)".into(),
        "~80 %".into(),
        format!("{:.0} %", 100.0 * emu_med / emu_peak),
    ]);
    let emu_chase_worst = chase::run_chase_emu(
        &presets::chick_prototype(),
        &ChaseConfig {
            elems_per_list: sized_usize(4096, 512),
            nlists: 512,
            block_elems: 1,
            mode: ShuffleMode::FullBlock,
            seed: 1,
        },
    )?;
    t.row(vec![
        "Emu chase utilization (worst, block=1)".into(),
        "~50 %".into(),
        format!(
            "{:.0} %",
            100.0 * emu_chase_worst.bandwidth.mb_per_sec() / emu_peak
        ),
    ]);
    let cpu_cfg = xeon_sim::config::sandy_bridge();
    let xeon_med = median(
        CHASE_BLOCKS
            .iter()
            .map(|&block| {
                chase::cpu::run_chase_cpu(
                    &cpu_cfg,
                    &ChaseConfig {
                        elems_per_list: sized_usize(1 << 18, 1 << 13).max(block),
                        nlists: 32,
                        block_elems: block,
                        mode: ShuffleMode::FullBlock,
                        seed: 1,
                    },
                )
                .bandwidth
                .mb_per_sec()
            })
            .collect(),
    );
    t.row(vec![
        "Xeon chase utilization (median over blocks)".into(),
        "<25 %".into(),
        format!("{:.0} %", 100.0 * xeon_med / xeon_peak),
    ]);
    // Ping-pong rates.
    let pp_hw = run_pingpong(
        &emu_cfg,
        &PingPongConfig {
            nthreads: 64,
            round_trips: sized(2000, 200) as u32,
            ..Default::default()
        },
    )?;
    let pp_sim = run_pingpong(
        &presets::chick_toolchain_sim(),
        &PingPongConfig {
            nthreads: 64,
            round_trips: sized(2000, 200) as u32,
            ..Default::default()
        },
    )?;
    t.row(vec![
        "Ping-pong, hardware".into(),
        "9 M migrations/s".into(),
        format!("{:.1} M migrations/s", pp_hw.migrations_per_sec / 1e6),
    ]);
    t.row(vec![
        "Ping-pong, toolchain simulator".into(),
        "16 M migrations/s".into(),
        format!("{:.1} M migrations/s", pp_sim.migrations_per_sec / 1e6),
    ]);
    let pp_light = run_pingpong(
        &emu_cfg,
        &PingPongConfig {
            nthreads: 8,
            round_trips: sized(2000, 200) as u32,
            ..Default::default()
        },
    )?;
    t.row(vec![
        "Single-migration latency".into(),
        "1-2 us".into(),
        format!("{:.2} us", pp_light.mean_latency_ns / 1000.0),
    ]);
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Figure functions are exercised end-to-end (quick mode) by the
    // integration tests in tests/harness.rs; here we only check cheap
    // structural properties.

    #[test]
    fn chase_blocks_are_increasing_powers() {
        for w in CHASE_BLOCKS.windows(2) {
            assert_eq!(w[1], w[0] * 2);
        }
    }

    #[test]
    fn fig4_thread_counts_cover_the_knee() {
        assert!(FIG4_THREADS.contains(&32) && FIG4_THREADS.contains(&64));
    }
}
