//! # emu-bench — the experiment harness
//!
//! One runner per figure of "An Initial Characterization of the Emu
//! Chick" ([`figures`]), the paper's headline text numbers
//! ([`figures::headline`]), and ablation studies over the model's design
//! choices ([`ablations`]). Each `figNN` binary prints an aligned table
//! and writes `results/figNN.csv`.
//!
//! Set `EMU_QUICK=1` to shrink workloads ~8x for a fast smoke pass.

#![warn(missing_docs)]

pub mod ablations;
pub mod cache;
pub mod cachecmd;
pub mod cli;
pub mod degradation;
pub mod extensions;
pub mod figures;
pub mod harness;
pub mod output;
pub mod runcfg;
pub mod scncmd;
pub mod sweep;
pub mod telemetry;
pub mod validate;
