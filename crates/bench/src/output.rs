//! Result presentation: aligned ASCII tables (what the binaries print)
//! and CSV files (what plots consume), written under `results/`.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// A simple column-aligned table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Title printed above the table.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Row-major cells, already formatted.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with `columns`.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the column count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let line = |cells: &[String], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "{:>w$}  ", c, w = widths[i]);
            }
            let _ = writeln!(out);
        };
        line(&self.columns, &mut out);
        let total: usize = widths.iter().sum::<usize>() + widths.len() * 2;
        let _ = writeln!(out, "{}", "-".repeat(total));
        for r in &self.rows {
            line(r, &mut out);
        }
        out
    }

    /// Write as CSV to `results/<name>.csv` (relative to the workspace
    /// root when run via cargo). Returns the path written.
    pub fn write_csv(&self, name: &str) -> std::io::Result<PathBuf> {
        let dir = results_dir();
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{name}.csv"));
        let mut s = String::new();
        let _ = writeln!(s, "{}", self.columns.join(","));
        for r in &self.rows {
            let _ = writeln!(s, "{}", r.join(","));
        }
        std::fs::write(&path, s)?;
        Ok(path)
    }

    /// Print the table and persist it as CSV, reporting the path.
    pub fn emit(&self, name: &str) {
        println!("{}", self.render());
        match self.write_csv(name) {
            Ok(p) => println!("[csv] {}", p.display()),
            Err(e) => eprintln!("[csv] write failed: {e}"),
        }
    }
}

/// Emit a fallible table, printing the error and exiting nonzero when
/// the simulation failed — the figure binaries are thin wrappers over
/// this, so a faulted machine config degrades to a clean error message
/// instead of a panic.
pub fn emit_result(name: &str, table: Result<Table, emu_core::fault::SimError>) {
    match table {
        Ok(t) => t.emit(name),
        Err(e) => {
            eprintln!("[{name}] simulation failed: {e}");
            std::process::exit(2);
        }
    }
}

/// Telemetry-related flags shared by every figure binary (parsed from
/// `std::env::args` by [`run_figure`]).
#[derive(Debug, Clone, Default)]
pub struct TelemetryArgs {
    /// `--report-json PATH`: write the machine-readable run report.
    pub report_json: Option<PathBuf>,
    /// `--trace-out PATH`: write a Chrome `trace_event` JSON trace.
    pub trace_out: Option<PathBuf>,
    /// `--jsonl-out PATH`: write the JSONL event log.
    pub jsonl_out: Option<PathBuf>,
    /// `--trace-events N`: event ring capacity (default 16384).
    pub trace_events: usize,
    /// `--trace-bucket-us N`: timeline bucket width in µs (default 20).
    pub trace_bucket_us: u64,
    /// `--jobs N` / `-j N`: sweep worker threads (0 = default, see
    /// [`crate::runcfg::jobs`]).
    pub jobs: usize,
    /// `--sim-threads N|auto`: intra-run simulation shards per engine
    /// run (`None` = leave the process default alone; `Some(0)` = auto,
    /// splitting host cores across the sweep workers). Results are
    /// byte-identical at any value — this is purely a speed knob.
    pub sim_threads: Option<usize>,
}

impl TelemetryArgs {
    /// Parse the shared flags from an argument iterator. Unknown
    /// arguments are ignored (figure binaries take no others today, but
    /// this keeps the wrapper forward-compatible).
    pub fn parse(args: impl Iterator<Item = String>) -> Self {
        let mut out = TelemetryArgs {
            trace_events: crate::runcfg::DEFAULT_TRACE_EVENTS,
            trace_bucket_us: crate::runcfg::DEFAULT_TRACE_BUCKET_US,
            ..TelemetryArgs::default()
        };
        fn path_flag(dst: &mut Option<PathBuf>, args: &mut dyn Iterator<Item = String>) {
            if let Some(v) = args.next() {
                *dst = Some(PathBuf::from(v));
            }
        }
        let mut args = args;
        while let Some(a) = args.next() {
            match a.as_str() {
                "--report-json" => path_flag(&mut out.report_json, &mut args),
                "--trace-out" => path_flag(&mut out.trace_out, &mut args),
                "--jsonl-out" => path_flag(&mut out.jsonl_out, &mut args),
                "--trace-events" => {
                    if let Some(v) = args.next() {
                        out.trace_events = v.parse().unwrap_or(out.trace_events);
                    }
                }
                "--trace-bucket-us" => {
                    if let Some(v) = args.next() {
                        out.trace_bucket_us = v.parse().unwrap_or(out.trace_bucket_us);
                    }
                }
                "--jobs" | "-j" => {
                    if let Some(v) = args.next() {
                        out.jobs = v.parse().unwrap_or(out.jobs);
                    }
                }
                "--sim-threads" => {
                    if let Some(v) = args.next() {
                        out.sim_threads = if v == "auto" {
                            Some(0)
                        } else {
                            v.parse().ok().or(out.sim_threads)
                        };
                    }
                }
                _ => {}
            }
        }
        out
    }

    /// Resolve `--sim-threads` to a concrete shard count. `auto`
    /// (stored as `Some(0)`) divides the host's cores across the sweep
    /// workers so a parallel sweep of parallel runs does not
    /// oversubscribe; call after the jobs count is settled.
    pub fn resolved_sim_threads(&self) -> Option<usize> {
        self.sim_threads.map(|n| {
            if n == 0 {
                let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
                (cores / crate::runcfg::jobs()).max(1)
            } else {
                n
            }
        })
    }

    /// Whether any telemetry artifact was requested.
    pub fn any(&self) -> bool {
        self.report_json.is_some() || self.trace_out.is_some() || self.jsonl_out.is_some()
    }

    /// Whether per-event tracing (ring buffer + timelines) is needed.
    pub fn wants_trace(&self) -> bool {
        self.trace_out.is_some() || self.jsonl_out.is_some()
    }

    /// The engine-side telemetry config these flags imply.
    pub fn config(&self) -> emu_core::trace::TelemetryConfig {
        if self.wants_trace() {
            emu_core::trace::TelemetryConfig {
                event_capacity: self.trace_events,
                timeline_bucket: Some(desim::time::Time::from_us(self.trace_bucket_us)),
            }
        } else {
            emu_core::trace::TelemetryConfig::off()
        }
    }
}

/// Write a telemetry artifact, creating parent directories and
/// reporting the path (or the failure) on the console.
pub fn write_artifact(label: &str, path: &Path, body: &str) {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(parent);
        }
    }
    match std::fs::write(path, body) {
        Ok(()) => println!("[{label}] {}", path.display()),
        Err(e) => eprintln!("[{label}] write failed ({}): {e}", path.display()),
    }
}

/// Run a figure with telemetry plumbing: parses the shared
/// `--report-json` / `--trace-out` / `--jsonl-out` flags, arms the
/// process-global telemetry config and report collector while `f` runs,
/// writes the requested artifacts, then emits the table exactly like
/// [`emit_result`]. With no flags this is byte-for-byte the old
/// behaviour (telemetry stays disarmed; the engine's off path is a
/// single relaxed atomic load).
pub fn run_figure(name: &str, f: impl FnOnce() -> Result<Table, emu_core::fault::SimError>) {
    let args = TelemetryArgs::parse(std::env::args().skip(1));
    run_figure_with(name, &args, f);
}

/// [`run_figure`] with pre-parsed flags (used by `simctl`, which owns
/// its own argument list).
pub fn run_figure_with(
    name: &str,
    args: &TelemetryArgs,
    f: impl FnOnce() -> Result<Table, emu_core::fault::SimError>,
) {
    use emu_core::trace;

    if args.jobs > 0 {
        crate::runcfg::set_jobs(args.jobs);
    }
    if let Some(n) = args.resolved_sim_threads() {
        emu_core::engine::set_sim_threads(n);
    }
    if args.any() {
        trace::collect_reports(true);
    }
    let _guard = args
        .wants_trace()
        .then(|| trace::GlobalTelemetryGuard::arm(args.config()));
    let table = f();
    drop(_guard);
    let runs = if args.any() {
        let r = trace::take_reports();
        trace::collect_reports(false);
        r
    } else {
        Vec::new()
    };

    if let Some(path) = &args.report_json {
        let body = crate::telemetry::report_set_json(name, table.as_ref().ok(), &runs);
        write_artifact("report-json", path, &body);
    }
    // Chrome trace / JSONL describe a single run: use the last traced
    // report (the figure's final emu configuration).
    let traced = runs.iter().rev().find(|r| r.trace.is_some());
    if let Some(path) = &args.trace_out {
        match traced {
            Some(r) => write_artifact("trace-out", path, &crate::telemetry::chrome_trace(r)),
            None => eprintln!("[trace-out] no traced emu run to export"),
        }
    }
    if let Some(path) = &args.jsonl_out {
        match traced {
            Some(r) => write_artifact("jsonl-out", path, &crate::telemetry::trace_jsonl(r)),
            None => eprintln!("[jsonl-out] no traced emu run to export"),
        }
    }
    emit_result(name, table);
}

/// The directory figure CSVs are written to: `$EMU_RESULTS_DIR` or
/// `results/` in the working directory.
pub fn results_dir() -> PathBuf {
    std::env::var_os("EMU_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| Path::new("results").to_path_buf())
}

/// Format megabytes/second with sensible precision.
pub fn fmt_mbs(mbs: f64) -> String {
    if mbs >= 1000.0 {
        format!("{:.2} GB/s", mbs / 1000.0)
    } else if mbs >= 10.0 {
        format!("{mbs:.0} MB/s")
    } else {
        format!("{mbs:.2} MB/s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns() {
        let mut t = Table::new("demo", &["a", "bbbb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["100".into(), "x".into()]);
        let r = t.render();
        assert!(r.contains("## demo"));
        assert!(r.contains("bbbb"));
        assert_eq!(r.lines().count(), 5);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn fmt_mbs_scales() {
        assert_eq!(fmt_mbs(1234.0), "1.23 GB/s");
        assert_eq!(fmt_mbs(250.0), "250 MB/s");
        assert_eq!(fmt_mbs(3.5), "3.50 MB/s");
    }

    #[test]
    fn telemetry_args_parse_round_trip() {
        let args = TelemetryArgs::parse(
            [
                "--report-json",
                "r.json",
                "--trace-events",
                "64",
                "--jsonl-out",
                "t.jsonl",
                "-j",
                "4",
                "ignored-positional",
            ]
            .iter()
            .map(|s| s.to_string()),
        );
        assert_eq!(args.report_json.as_deref(), Some(Path::new("r.json")));
        assert_eq!(args.jsonl_out.as_deref(), Some(Path::new("t.jsonl")));
        assert!(args.trace_out.is_none());
        assert_eq!(args.trace_events, 64);
        assert_eq!(args.trace_bucket_us, 20);
        assert_eq!(args.jobs, 4);
        assert!(args.any() && args.wants_trace());
        assert!(args.config().enabled());

        let off = TelemetryArgs::parse(std::iter::empty());
        assert!(!off.any() && !off.wants_trace());
        assert!(!off.config().enabled());
        assert!(off.sim_threads.is_none() && off.resolved_sim_threads().is_none());
    }

    #[test]
    fn sim_threads_flag_parses_counts_and_auto() {
        fn argv(s: &str) -> impl Iterator<Item = String> + '_ {
            s.split_whitespace().map(String::from)
        }
        let n = TelemetryArgs::parse(argv("--sim-threads 4"));
        assert_eq!(n.sim_threads, Some(4));
        assert_eq!(n.resolved_sim_threads(), Some(4));

        let auto = TelemetryArgs::parse(argv("--sim-threads auto"));
        assert_eq!(auto.sim_threads, Some(0));
        // Auto resolves to at least one shard regardless of host shape.
        assert!(auto.resolved_sim_threads().unwrap() >= 1);

        // Garbage value leaves the default untouched.
        let bad = TelemetryArgs::parse(argv("--sim-threads lots"));
        assert_eq!(bad.sim_threads, None);
    }

    #[test]
    fn csv_round_trip() {
        std::env::set_var(
            "EMU_RESULTS_DIR",
            std::env::temp_dir().join("emu_test_results"),
        );
        let mut t = Table::new("demo", &["x", "y"]);
        t.row(vec!["1".into(), "2.5".into()]);
        let p = t.write_csv("unit_test_demo").unwrap();
        let body = std::fs::read_to_string(p).unwrap();
        assert_eq!(body, "x,y\n1,2.5\n");
        std::env::remove_var("EMU_RESULTS_DIR");
    }
}
