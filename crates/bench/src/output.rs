//! Result presentation: aligned ASCII tables (what the binaries print)
//! and CSV files (what plots consume), written under `results/`.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// A simple column-aligned table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Title printed above the table.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Row-major cells, already formatted.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with `columns`.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the column count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let line = |cells: &[String], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "{:>w$}  ", c, w = widths[i]);
            }
            let _ = writeln!(out);
        };
        line(&self.columns, &mut out);
        let total: usize = widths.iter().sum::<usize>() + widths.len() * 2;
        let _ = writeln!(out, "{}", "-".repeat(total));
        for r in &self.rows {
            line(r, &mut out);
        }
        out
    }

    /// Write as CSV to `results/<name>.csv` (relative to the workspace
    /// root when run via cargo). Returns the path written.
    pub fn write_csv(&self, name: &str) -> std::io::Result<PathBuf> {
        let dir = results_dir();
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{name}.csv"));
        let mut s = String::new();
        let _ = writeln!(s, "{}", self.columns.join(","));
        for r in &self.rows {
            let _ = writeln!(s, "{}", r.join(","));
        }
        std::fs::write(&path, s)?;
        Ok(path)
    }

    /// Print the table and persist it as CSV, reporting the path.
    pub fn emit(&self, name: &str) {
        println!("{}", self.render());
        match self.write_csv(name) {
            Ok(p) => println!("[csv] {}", p.display()),
            Err(e) => eprintln!("[csv] write failed: {e}"),
        }
    }
}

/// Emit a fallible table, printing the error and exiting nonzero when
/// the simulation failed — the figure binaries are thin wrappers over
/// this, so a faulted machine config degrades to a clean error message
/// instead of a panic.
pub fn emit_result(name: &str, table: Result<Table, emu_core::fault::SimError>) {
    match table {
        Ok(t) => t.emit(name),
        Err(e) => {
            eprintln!("[{name}] simulation failed: {e}");
            std::process::exit(2);
        }
    }
}

/// The directory figure CSVs are written to: `$EMU_RESULTS_DIR` or
/// `results/` in the working directory.
pub fn results_dir() -> PathBuf {
    std::env::var_os("EMU_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| Path::new("results").to_path_buf())
}

/// Format megabytes/second with sensible precision.
pub fn fmt_mbs(mbs: f64) -> String {
    if mbs >= 1000.0 {
        format!("{:.2} GB/s", mbs / 1000.0)
    } else if mbs >= 10.0 {
        format!("{mbs:.0} MB/s")
    } else {
        format!("{mbs:.2} MB/s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns() {
        let mut t = Table::new("demo", &["a", "bbbb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["100".into(), "x".into()]);
        let r = t.render();
        assert!(r.contains("## demo"));
        assert!(r.contains("bbbb"));
        assert_eq!(r.lines().count(), 5);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn fmt_mbs_scales() {
        assert_eq!(fmt_mbs(1234.0), "1.23 GB/s");
        assert_eq!(fmt_mbs(250.0), "250 MB/s");
        assert_eq!(fmt_mbs(3.5), "3.50 MB/s");
    }

    #[test]
    fn csv_round_trip() {
        std::env::set_var(
            "EMU_RESULTS_DIR",
            std::env::temp_dir().join("emu_test_results"),
        );
        let mut t = Table::new("demo", &["x", "y"]);
        t.row(vec!["1".into(), "2.5".into()]);
        let p = t.write_csv("unit_test_demo").unwrap();
        let body = std::fs::read_to_string(p).unwrap();
        assert_eq!(body, "x,y\n1,2.5\n");
        std::env::remove_var("EMU_RESULTS_DIR");
    }
}
