//! Telemetry artifact export for the bench harness.
//!
//! The report-level serializers (report JSON, JSONL event logs, Chrome
//! traces, the [`json_ok`]/[`jsonl_ok`] validators) live in
//! [`emu_core::json`] — they are pure functions of a [`RunReport`] and
//! are shared with the `simd` daemon, which must produce byte-identical
//! documents. They are re-exported here so bench call sites keep their
//! historical paths. This module adds the harness-side documents that
//! depend on [`Table`]: [`table_json`] and the [`report_set_json`]
//! top-level artifact.

use crate::output::Table;
use emu_core::metrics::RunReport;
use std::fmt::Write as _;

pub use emu_core::json::{
    chrome_trace, esc, histogram_json, jarr_f64, jarr_u64, jnum, json_ok, jsonl_ok, jstr,
    report_json, summary_json, trace_jsonl,
};

/// Serialize a [`Table`] (title/columns/rows) as a JSON object.
pub fn table_json(t: &Table) -> String {
    let cols: Vec<String> = t.columns.iter().map(|c| jstr(c)).collect();
    let rows: Vec<String> = t
        .rows
        .iter()
        .map(|r| {
            let cells: Vec<String> = r.iter().map(|c| jstr(c)).collect();
            format!("[{}]", cells.join(","))
        })
        .collect();
    format!(
        "{{\"title\":{},\"columns\":[{}],\"rows\":[{}]}}",
        jstr(&t.title),
        cols.join(","),
        rows.join(",")
    )
}

/// The top-level report document of one tool invocation: the rendered
/// table (when the tool produced one) plus every collected emu run.
pub fn report_set_json(source: &str, table: Option<&Table>, runs: &[RunReport]) -> String {
    let mut out = String::new();
    let _ = write!(out, "{{\"source\":{},\"table\":", jstr(source));
    match table {
        Some(t) => out.push_str(&table_json(t)),
        None => out.push_str("null"),
    }
    let _ = write!(out, ",\"run_count\":{},\"runs\":[", runs.len());
    for (i, r) in runs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&report_json(&format!("run_{i:03}"), r));
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_json_is_valid() {
        let mut t = Table::new("demo \"quoted\"", &["a", "b"]);
        t.row(vec!["1".into(), "x,y".into()]);
        let j = table_json(&t);
        assert!(json_ok(&j), "{j}");
        assert!(j.contains("\\\"quoted\\\""));
    }

    #[test]
    fn report_set_json_is_valid_without_runs() {
        let j = report_set_json("unit", None, &[]);
        assert!(json_ok(&j), "{j}");
        assert!(j.contains("\"run_count\":0"));
    }
}
