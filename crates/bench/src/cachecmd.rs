//! `simctl cache …` — inspect, prune, and verify the on-disk
//! content-addressed result cache (`runcache`).
//!
//! ```sh
//! simctl cache stats
//! simctl cache gc [--max-mb N]        # default EMU_CACHE_MAX_MB or 512
//! simctl cache verify [--sample N]    # re-run recipes, compare bytes
//! ```
//!
//! `verify` is the trust audit: every cached object that carries a
//! self-contained recipe is re-simulated from scratch (through code
//! paths that never consult the cache) and the fresh payload is
//! compared byte-for-byte against the stored one. A mismatch means the
//! simulator changed without the cache version salt being bumped — the
//! exit code is nonzero and the stale digests are listed.

use runcache::Store;
use simd::exec::{self, WarmSlot};
use simd::proto::{RunRequest, Spec};

/// Entry point from `simctl`; `args` excludes the `cache` word.
/// Returns the process exit code.
pub fn dispatch(args: &[String]) -> i32 {
    match run(args) {
        Ok(clean) => {
            if clean {
                0
            } else {
                1
            }
        }
        Err(e) => {
            eprintln!("cache: {e}");
            eprintln!(
                "usage: simctl cache stats\n\
                 \u{20}      simctl cache gc [--max-mb N]\n\
                 \u{20}      simctl cache verify [--sample N]"
            );
            2
        }
    }
}

fn run(args: &[String]) -> Result<bool, String> {
    let Some(verb) = args.first() else {
        return Err("missing subcommand".into());
    };
    match verb.as_str() {
        "stats" => cmd_stats(),
        "gc" => cmd_gc(&args[1..]),
        "verify" => cmd_verify(&args[1..]),
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

fn cmd_stats() -> Result<bool, String> {
    let store = Store::open_default();
    let objs = store.scan();
    let total_bytes: u64 = objs.iter().map(|o| o.bytes).sum();
    println!("cache dir: {}", store.root().display());
    println!(
        "objects:   {} ({:.1} MB)",
        objs.len(),
        total_bytes as f64 / (1024.0 * 1024.0)
    );
    let mut by_kind: std::collections::BTreeMap<String, (usize, u64)> = Default::default();
    for o in &objs {
        let kind = store
            .load(&o.digest)
            .map(|e| e.kind)
            .unwrap_or_else(|| "<undecodable>".into());
        let slot = by_kind.entry(kind).or_default();
        slot.0 += 1;
        slot.1 += o.bytes;
    }
    for (kind, (n, bytes)) in &by_kind {
        println!("  {kind:<16} {n:>6} objects  {bytes:>10} bytes");
    }
    Ok(true)
}

/// The gc budget in bytes: `--max-mb` flag, else `EMU_CACHE_MAX_MB`,
/// else 512 MB.
fn gc_budget(args: &[String]) -> Result<u64, String> {
    let mut max_mb: Option<u64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--max-mb" => {
                i += 1;
                let v = args.get(i).ok_or("--max-mb needs a value")?;
                max_mb = Some(
                    v.parse()
                        .map_err(|_| format!("--max-mb: bad value {v:?}"))?,
                );
            }
            other => return Err(format!("unknown gc flag {other:?}")),
        }
        i += 1;
    }
    let mb = match max_mb {
        Some(v) => v,
        None => match std::env::var("EMU_CACHE_MAX_MB") {
            Ok(v) => v
                .parse()
                .map_err(|_| format!("EMU_CACHE_MAX_MB: bad value {v:?}"))?,
            Err(_) => 512,
        },
    };
    Ok(mb.saturating_mul(1024 * 1024))
}

fn cmd_gc(args: &[String]) -> Result<bool, String> {
    let budget = gc_budget(args)?;
    let store = Store::open_default();
    let res = store.gc(budget);
    println!(
        "cache gc: removed {} ({} bytes), kept {} ({} bytes), budget {} bytes [{}]",
        res.removed,
        res.freed_bytes,
        res.kept,
        res.kept_bytes,
        budget,
        store.root().display()
    );
    Ok(true)
}

/// Re-run one recipe from scratch and return the fresh payload.
/// `Ok(None)` means the recipe kind is not verifiable (skip).
fn rerun(recipe: &str) -> Result<Option<String>, String> {
    let spec = if let Some(text) = recipe.strip_prefix("case:") {
        Some(Spec::Case { text: text.into() })
    } else if recipe.starts_with("stream\n") {
        Some(exec::spec_from_stream_recipe(recipe)?)
    } else {
        None
    };
    if let Some(spec) = spec {
        let req = RunRequest {
            id: 0,
            spec,
            deadline_ms: None,
            max_events: None,
            chaos: None,
        };
        // `exec::execute` never consults the cache, so this is a true
        // re-simulation even while the cache is enabled.
        let out = exec::execute(&mut WarmSlot::new(), &req, None)
            .map_err(|e| format!("re-run failed: {}", e.message))?;
        return Ok(Some(out.report_json));
    }
    if let Some(rest) = recipe.strip_prefix("scn:") {
        let (index, text) = rest
            .split_once('\n')
            .ok_or("scn recipe missing scenario text")?;
        let index: usize = index.parse().map_err(|_| "scn recipe: bad point index")?;
        let s = scenario::parse(text).map_err(|e| format!("scn recipe: {e}"))?;
        let points = scenario::resolve(&s).map_err(|e| format!("scn recipe: {e}"))?;
        let p = points
            .iter()
            .find(|p| p.index == index)
            .ok_or_else(|| format!("scn recipe: no point #{index}"))?;
        let outcome = scenario::run_point(&s, p);
        return Ok(outcome.cache_json());
    }
    Ok(None)
}

fn cmd_verify(args: &[String]) -> Result<bool, String> {
    let mut sample: Option<usize> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--sample" => {
                i += 1;
                let v = args.get(i).ok_or("--sample needs a value")?;
                sample = Some(
                    v.parse()
                        .map_err(|_| format!("--sample: bad value {v:?}"))?,
                );
            }
            other => return Err(format!("unknown verify flag {other:?}")),
        }
        i += 1;
    }

    let store = Store::open_default();
    let mut objs = store.scan();
    // Digest order makes `--sample N` a deterministic subset.
    objs.sort_by(|a, b| a.digest.cmp(&b.digest));
    if let Some(n) = sample {
        objs.truncate(n);
    }

    let (mut checked, mut skipped, mut stale) = (0usize, 0usize, 0usize);
    for o in &objs {
        let Some(entry) = store.load(&o.digest) else {
            stale += 1;
            println!("STALE {} <undecodable object>", o.digest);
            continue;
        };
        let Some(recipe) = entry.recipe.as_deref() else {
            skipped += 1;
            continue;
        };
        match rerun(recipe) {
            Ok(Some(fresh)) if fresh == entry.payload => checked += 1,
            Ok(Some(_)) => {
                stale += 1;
                println!("STALE {} [{}] {}", o.digest, entry.kind, entry.label);
            }
            Ok(None) => skipped += 1,
            Err(e) => {
                stale += 1;
                println!("STALE {} [{}] {}: {e}", o.digest, entry.kind, entry.label);
            }
        }
    }
    println!(
        "cache verify: {checked} verified, {skipped} skipped (no recipe), {stale} stale [{}]",
        store.root().display()
    );
    Ok(stale == 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gc_budget_prefers_flag_over_env_default() {
        let flag = gc_budget(&["--max-mb".into(), "3".into()]).unwrap();
        assert_eq!(flag, 3 * 1024 * 1024);
        // No flag, no env set in tests -> default 512 MB.
        if std::env::var("EMU_CACHE_MAX_MB").is_err() {
            assert_eq!(gc_budget(&[]).unwrap(), 512 * 1024 * 1024);
        }
        assert!(gc_budget(&["--bogus".into()]).is_err());
    }

    #[test]
    fn case_and_stream_recipes_rerun_byte_identically() {
        // A tiny script case through the fuzz codec.
        let mut rng = desim::rng::rng_from_seed(7);
        let case = conformance::fuzz::gen_case(&mut rng);
        let text = conformance::fuzz::encode(&case);
        let fresh = rerun(&format!("case:{text}")).unwrap().unwrap();
        let again = rerun(&format!("case:{text}")).unwrap().unwrap();
        assert_eq!(fresh, again);

        let recipe = "stream\npreset=chick\nelems=512\nthreads=2\nkernel=add\n\
                      strategy=serial\nsingle_nodelet=false\nstack_touch_period=0";
        let a = rerun(recipe).unwrap().unwrap();
        let b = rerun(recipe).unwrap().unwrap();
        assert_eq!(a, b);
        assert!(a.contains("\"label\":\"run\""));
    }

    #[test]
    fn unknown_recipes_are_skipped_not_errors() {
        assert_eq!(rerun("mystery:whatever").unwrap(), None);
    }
}
