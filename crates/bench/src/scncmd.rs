//! `simctl scenario …` — the conformance-suite driver.
//!
//! ```sh
//! simctl scenario run scenarios/ --jobs 4 --report-json suite.json
//! simctl scenario check scenarios/stream-kernel-add-chick.scn
//! simctl scenario gen scenarios/
//! ```
//!
//! `run` executes every `.scn` under the given paths (scenarios in
//! parallel across `--jobs` workers, points sequentially within one
//! scenario), `check` parses and resolves without running, and `gen`
//! writes the deterministic registry (`scenario::registry`) to a
//! directory. Exit codes: 0 = all pass, 1 = failures, 2 = bad usage.

use emu_core::json::jstr;
use std::path::{Path, PathBuf};

/// Entry point from `simctl`; `args` excludes the `scenario` word.
/// Returns the process exit code.
pub fn dispatch(args: &[String]) -> i32 {
    match run(args) {
        Ok(clean) => {
            if clean {
                0
            } else {
                1
            }
        }
        Err(e) => {
            eprintln!("scenario: {e}");
            eprintln!(
                "usage: simctl scenario run <path>... [--jobs N] [--cache] [--report-json FILE]\n\
                 \u{20}      simctl scenario check <path>...\n\
                 \u{20}      simctl scenario gen <dir>\n\
                 \u{20}      simctl scenario promote <file.case>..."
            );
            2
        }
    }
}

/// Collect `.scn` files below `path` (sorted for stable output).
fn collect(path: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    if path.is_dir() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(path)
            .map_err(|e| format!("{}: {e}", path.display()))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for e in entries {
            collect(&e, out)?;
        }
        Ok(())
    } else if path.extension().is_some_and(|x| x == "scn") {
        out.push(path.to_path_buf());
        Ok(())
    } else if path.exists() {
        Ok(()) // non-scenario file inside a directory walk
    } else {
        Err(format!("{}: no such file or directory", path.display()))
    }
}

fn run(args: &[String]) -> Result<bool, String> {
    let Some(verb) = args.first() else {
        return Err("missing subcommand".into());
    };
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut report_json: Option<String> = None;
    let mut use_cache = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--jobs" => {
                i += 1;
                let v = args.get(i).ok_or("--jobs needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("--jobs: bad value {v:?}"))?;
                crate::runcfg::set_jobs(n.max(1));
            }
            "--cache" => use_cache = true,
            "--report-json" => {
                i += 1;
                report_json = Some(args.get(i).ok_or("--report-json needs a value")?.clone());
            }
            other if other.starts_with("--") => return Err(format!("unknown flag {other}")),
            other => paths.push(PathBuf::from(other)),
        }
        i += 1;
    }
    if paths.is_empty() {
        return Err("no paths given".into());
    }

    match verb.as_str() {
        "gen" => cmd_gen(&paths),
        "check" => cmd_check(&paths),
        "run" => cmd_run(&paths, report_json.as_deref(), use_cache),
        "promote" => cmd_promote(&paths),
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

/// Lift legacy `.case` fuzz repros into sibling `.scn` scenarios — the
/// promotion step when moving a repro into the registry.
fn cmd_promote(paths: &[PathBuf]) -> Result<bool, String> {
    if paths.is_empty() {
        return Err("promote takes .case files".into());
    }
    for p in paths {
        let text = std::fs::read_to_string(p).map_err(|e| format!("{}: {e}", p.display()))?;
        let case = conformance::fuzz::decode(&text).map_err(|e| format!("{}: {e}", p.display()))?;
        let name = p
            .file_stem()
            .and_then(|s| s.to_str())
            .ok_or_else(|| format!("{}: bad file name", p.display()))?;
        let scn = scenario::case::scenario_from_case(name, &case);
        let out = p.with_extension("scn");
        std::fs::write(&out, scenario::print(&scn))
            .map_err(|e| format!("{}: {e}", out.display()))?;
        println!("promoted {} -> {}", p.display(), out.display());
    }
    Ok(true)
}

fn cmd_gen(paths: &[PathBuf]) -> Result<bool, String> {
    let [dir] = paths else {
        return Err("gen takes exactly one directory".into());
    };
    std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let files = scenario::registry::files();
    for (name, text) in &files {
        std::fs::write(dir.join(name), text).map_err(|e| format!("{name}: {e}"))?;
    }
    println!(
        "scenario gen: wrote {} scenarios to {}",
        files.len(),
        dir.display()
    );
    Ok(true)
}

/// Parsed scenarios plus `(file, error)` entries for the ones that
/// failed to parse.
type Loaded = (Vec<(PathBuf, scenario::Scenario)>, Vec<(String, String)>);

/// Load and parse every `.scn` under `paths`; parse failures become
/// `(file, error)` entries.
fn load(paths: &[PathBuf]) -> Result<Loaded, String> {
    let mut files = Vec::new();
    for p in paths {
        collect(p, &mut files)?;
    }
    if files.is_empty() {
        return Err("no .scn files found".into());
    }
    let mut parsed = Vec::new();
    let mut bad = Vec::new();
    for f in files {
        let text = std::fs::read_to_string(&f).map_err(|e| format!("{}: {e}", f.display()))?;
        match scenario::parse(&text) {
            Ok(s) => parsed.push((f, s)),
            Err(e) => bad.push((f.display().to_string(), e)),
        }
    }
    Ok((parsed, bad))
}

fn cmd_check(paths: &[PathBuf]) -> Result<bool, String> {
    let (parsed, bad) = load(paths)?;
    for (f, s) in &parsed {
        let points = scenario::resolve(s).map(|p| p.len());
        match points {
            Ok(n) => println!(
                "ok   {} ({} point{})",
                f.display(),
                n,
                if n == 1 { "" } else { "s" }
            ),
            Err(e) => println!("FAIL {}: {e}", f.display()),
        }
    }
    for (f, e) in &bad {
        println!("FAIL {f}: {e}");
    }
    println!("scenario check: {} ok, {} failed", parsed.len(), bad.len());
    Ok(bad.is_empty())
}

fn cmd_run(paths: &[PathBuf], report_json: Option<&str>, use_cache: bool) -> Result<bool, String> {
    if use_cache {
        runcache::set_enabled(true);
    }
    let (parsed, bad) = load(paths)?;
    let t0 = std::time::Instant::now();
    // Scenarios fan out across the sweep executor's worker pool;
    // each scenario's points stay sequential so per-scenario output
    // is deterministic.
    let outcomes: Vec<scenario::ScenarioOutcome> = crate::sweep::run_indexed(parsed.len(), |i| {
        scenario::run::run_scenario_cached(&parsed[i].1)
    });

    let mut passed = 0usize;
    let mut failed = 0usize;
    for ((file, _), o) in parsed.iter().zip(&outcomes) {
        if o.pass() {
            passed += 1;
            println!(
                "PASS {} ({} point{})",
                o.name,
                o.points.len(),
                if o.points.len() == 1 { "" } else { "s" }
            );
        } else {
            failed += 1;
            println!("FAIL {} [{}]", o.name, file.display());
            for f in &o.failures {
                println!("     {f}");
            }
        }
    }
    for (f, e) in &bad {
        failed += 1;
        println!("FAIL {f}: parse: {e}");
    }
    println!(
        "scenario run: {passed} passed, {failed} failed ({} scenarios, {:.1}s)",
        passed + failed,
        t0.elapsed().as_secs_f64()
    );
    if runcache::enabled() {
        let s = runcache::session_stats();
        println!(
            "[runcache] hits={} misses={} stores={}",
            s.hits, s.misses, s.stores
        );
    }

    if let Some(path) = report_json {
        let mut items: Vec<String> = parsed
            .iter()
            .zip(&outcomes)
            .map(|((file, _), o)| {
                format!(
                    "{{\"name\":{},\"file\":{},\"pass\":{},\"points\":{},\"failures\":[{}]}}",
                    jstr(&o.name),
                    jstr(&file.display().to_string()),
                    o.pass(),
                    o.points.len(),
                    o.failures
                        .iter()
                        .map(|f| jstr(f))
                        .collect::<Vec<_>>()
                        .join(",")
                )
            })
            .collect();
        items.extend(bad.iter().map(|(f, e)| {
            format!(
                "{{\"name\":{},\"file\":{},\"pass\":false,\"points\":0,\"failures\":[{}]}}",
                jstr(f),
                jstr(f),
                jstr(&format!("parse: {e}"))
            )
        }));
        let doc = format!(
            "{{\"suite\":\"scenario\",\"total\":{},\"passed\":{passed},\"failed\":{failed},\"scenarios\":[{}]}}\n",
            passed + failed,
            items.join(",")
        );
        debug_assert!(emu_core::json::json_ok(doc.trim_end()));
        std::fs::write(path, doc).map_err(|e| format!("{path}: {e}"))?;
        println!("scenario run: report written to {path}");
    }
    Ok(failed == 0)
}
