//! Calibration gate: checks every paper anchor band; exits nonzero on
//! any FAIL.
fn main() {
    let checks = match emu_bench::validate::run_all() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("validation aborted: simulation failed: {e}");
            std::process::exit(2);
        }
    };
    let (table, ok) = emu_bench::validate::render(&checks);
    table.emit("validate");
    if !ok {
        eprintln!("validation FAILED");
        std::process::exit(1);
    }
    println!("all {} checks PASS", checks.len());
}
