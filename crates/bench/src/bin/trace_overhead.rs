//! Microbench: telemetry must be zero-cost when disabled.
//!
//! The engine's instrumentation sites all funnel through one branch on
//! an `Option<TraceRecorder>` (plus a single relaxed atomic load of the
//! process-global config in `Engine::new`). This binary measures a
//! STREAM run on the disabled path in two configurations — global
//! config untouched vs explicitly armed *to the off state* — and
//! asserts they agree within 2%. The two configurations execute
//! identical work, so any persistent gap would mean the off path is
//! doing something; a transient gap is machine noise, which is why a
//! round that misses the budget is re-measured (up to three rounds)
//! before the binary fails. It then runs with tracing fully enabled and
//! reports that overhead informationally (the on path is allowed to
//! cost something).
//!
//! Exits nonzero on failure; wired into CI's smoke job.

use emu_core::trace::{self, TelemetryConfig};
use membench::stream::{run_stream_emu, stream_checksum, EmuStreamConfig, StreamKernel};
use std::time::Instant;

const BUDGET: f64 = 0.02;
const PAIRS_PER_ROUND: usize = 9;
const MAX_ROUNDS: usize = 3;

fn workload() -> EmuStreamConfig {
    // Deliberately ignores EMU_QUICK: the 2% assertion needs runs long
    // enough (~140 ms) that scheduler jitter stays inside the budget.
    EmuStreamConfig {
        total_elems: 1 << 18,
        nthreads: 256,
        strategy: emu_core::spawn::SpawnStrategy::RecursiveRemote,
        kernel: StreamKernel::Add,
        single_nodelet: false,
        stack_touch_period: 4,
    }
}

fn timed_run(sc: &EmuStreamConfig) -> f64 {
    let cfg = emu_core::presets::chick_prototype();
    let t0 = Instant::now();
    let r = run_stream_emu(&cfg, sc).expect("STREAM run failed");
    let dt = t0.elapsed().as_secs_f64();
    assert_eq!(
        r.checksum,
        stream_checksum(sc.total_elems, sc.kernel),
        "STREAM checksum mismatch"
    );
    dt
}

/// One measurement round: interleaved pairs of the two off-path
/// variants. Returns (min unarmed, min armed-off, off-path delta),
/// where the delta is the smaller of two independent noise-robust
/// estimates — |median paired ratio − 1| (cancels drift) and the
/// min-vs-min gap (ignores outlier iterations). The true value is
/// zero, so the lower estimate is the better one.
fn measure_round(sc: &EmuStreamConfig) -> (f64, f64, f64) {
    let mut base = f64::INFINITY;
    let mut armed_off = f64::INFINITY;
    let mut ratios = Vec::with_capacity(PAIRS_PER_ROUND);
    for i in 0..PAIRS_PER_ROUND {
        // Alternate which variant goes first: position in the pair has
        // its own small systematic cost, and alternation cancels it.
        let (a, b) = if i % 2 == 0 {
            trace::clear_global();
            let a = timed_run(sc);
            trace::set_global(TelemetryConfig::off());
            let b = timed_run(sc);
            (a, b)
        } else {
            trace::set_global(TelemetryConfig::off());
            let b = timed_run(sc);
            trace::clear_global();
            let a = timed_run(sc);
            (a, b)
        };
        base = base.min(a);
        armed_off = armed_off.min(b);
        ratios.push(b / a);
    }
    trace::clear_global();
    ratios.sort_by(|x, y| x.total_cmp(y));
    let median_delta = (ratios[ratios.len() / 2] - 1.0).abs();
    let min_delta = (base - armed_off).abs() / base.min(armed_off);
    (base, armed_off, median_delta.min(min_delta))
}

fn main() {
    let sc = workload();
    println!(
        "trace_overhead: STREAM ADD, {} elems, {} threads, {PAIRS_PER_ROUND} pairs/round",
        sc.total_elems, sc.nthreads
    );

    trace::clear_global();
    // Warm-up run (page faults, lazy allocation) outside the sample.
    let _ = timed_run(&sc);

    let mut base = f64::INFINITY;
    let mut armed_off = f64::INFINITY;
    let mut best = f64::INFINITY;
    for round in 1..=MAX_ROUNDS {
        let (a, b, rel) = measure_round(&sc);
        base = base.min(a);
        armed_off = armed_off.min(b);
        best = best.min(rel);
        println!(
            "  round {round}: unarmed {:>7.2} ms, armed-off {:>7.2} ms, delta {:.2} %",
            a * 1e3,
            b * 1e3,
            rel * 100.0
        );
        if best < BUDGET {
            break;
        }
    }

    // Informational: what tracing costs when it is actually on.
    let guard = trace::GlobalTelemetryGuard::arm(TelemetryConfig {
        event_capacity: 1 << 16,
        timeline_bucket: Some(desim::time::Time::from_us(20)),
    });
    let mut on = f64::INFINITY;
    for _ in 0..3 {
        on = on.min(timed_run(&sc));
    }
    drop(guard);
    println!(
        "  tracing enabled: {:>7.2} ms  ({:+.1}% vs unarmed, informational)",
        on * 1e3,
        100.0 * (on - base) / base
    );

    if best >= BUDGET {
        eprintln!(
            "FAIL: off-path overhead {:.2}% exceeds the {:.0}% budget in every round",
            best * 100.0,
            BUDGET * 100.0
        );
        std::process::exit(1);
    }
    println!(
        "PASS: disabled telemetry within noise ({:.2}% < {:.0}%)",
        best * 100.0,
        BUDGET * 100.0
    );
}
