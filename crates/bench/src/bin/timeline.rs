//! Occupancy timelines: *when* each resource is busy, not just how much.
//!
//! Renders per-nodelet sparklines (one char ≈ 1/64 of the run) for:
//!
//! * STREAM with serial vs recursive-remote spawn — the Fig 5 contrast
//!   becomes visible as nodelet 0's long spawn/migration ramp;
//! * a block-1 pointer chase — all eight migration engines pinned.

use desim::time::Time;
use emu_core::prelude::*;
use membench::chase::{traversal_order, ShuffleMode};

fn show(title: &str, report: &emu_core::metrics::RunReport, gcs: u32) {
    println!("\n== {title} (makespan {}) ==", report.makespan);
    let tl = report.timelines.as_ref().expect("timeline tracing enabled");
    println!("  Gossamer-core occupancy per nodelet:");
    for (i, t) in tl.core.iter().enumerate() {
        println!("    nodelet {i}: |{}|", t.sparkline(gcs, 64));
    }
    println!("  migration-engine occupancy per nodelet:");
    for (i, t) in tl.migration.iter().enumerate() {
        println!("    nodelet {i}: |{}|", t.sparkline(1, 64));
    }
}

/// A strided STREAM-ADD worker over three striped arrays.
fn stream_worker(arrays: &[ArrayHandle; 3], start: u64, step: u64, n: u64) -> Box<dyn Kernel> {
    let [a, b, c] = arrays.clone();
    let mut i = start;
    let mut phase = 0u8;
    Box::new(move |ctx: &KernelCtx| {
        if i >= n {
            return Op::Quit;
        }
        match phase {
            0 => {
                phase = 1;
                Op::Load {
                    addr: a.addr(i, ctx.here),
                    bytes: 8,
                }
            }
            1 => {
                phase = 2;
                Op::Load {
                    addr: b.addr(i, ctx.here),
                    bytes: 8,
                }
            }
            2 => {
                phase = 3;
                Op::Compute { cycles: 9 }
            }
            _ => {
                phase = 0;
                let addr = c.addr(i, ctx.here);
                i += step;
                Op::Store { addr, bytes: 8 }
            }
        }
    })
}

fn main() {
    if let Err(e) = run() {
        eprintln!("[timeline] simulation failed: {e}");
        std::process::exit(2);
    }
}

fn run() -> Result<(), SimError> {
    let threads = 512usize;
    let n = 1u64 << 15;

    for strategy in [SpawnStrategy::Serial, SpawnStrategy::RecursiveRemote] {
        let cfg = presets::chick_prototype();
        let mut ms = MemSpace::new(8);
        let arrays: [ArrayHandle; 3] = [ms.striped(n, 8), ms.striped(n, 8), ms.striped(n, 8)];
        let factory: WorkerFactory =
            { std::sync::Arc::new(move |w| stream_worker(&arrays, w as u64, threads as u64, n)) };
        let mut engine = Engine::new(cfg.clone())?;
        engine.enable_timeline(Time::from_us(50))?;
        engine.spawn_at(
            NodeletId(0),
            emu_core::spawn::root_kernel(strategy, threads, 8, factory),
        )?;
        let report = engine.run()?;
        show(
            &format!("STREAM ADD, 512 threads, {}", strategy.name()),
            &report,
            cfg.gcs_per_nodelet,
        );
    }

    // Chase visual: migration engines saturated at block 1.
    let cfg = presets::chick_prototype();
    let mut ms = MemSpace::new(8);
    let mut engine = Engine::new(cfg.clone())?;
    engine.enable_timeline(Time::from_us(20))?;
    for l in 0..threads {
        let elems_per_list = 1024usize;
        let owners: Vec<NodeletId> = (0..elems_per_list)
            .map(|b| NodeletId(((b + l) % 8) as u32))
            .collect();
        let elems = ms.blocked(owners, 1, elems_per_list as u64, 16);
        let order = traversal_order(
            elems_per_list,
            1,
            ShuffleMode::FullBlock,
            desim::rng::trial_seed(1, l as u64),
        );
        let first = elems.owner(order[0] as u64, NodeletId(0));
        let mut pos = 0usize;
        let mut phase = 0u8;
        engine.spawn_at(
            first,
            Box::new(move |ctx: &KernelCtx| {
                if pos >= order.len() {
                    return Op::Quit;
                }
                if phase == 0 {
                    phase = 1;
                    Op::Load {
                        addr: elems.addr(order[pos] as u64, ctx.here),
                        bytes: 16,
                    }
                } else {
                    phase = 0;
                    pos += 1;
                    Op::Compute { cycles: 15 }
                }
            }),
        )?;
    }
    let report = engine.run()?;
    show(
        "pointer chase, block 1, 512 threads (engines pinned)",
        &report,
        cfg.gcs_per_nodelet,
    );
    Ok(())
}
