//! Degradation sweep: bandwidth vs dead/slow nodelet fractions and
//! migration NACK rates, with per-point fault counters and statuses.
fn main() {
    emu_bench::degradation::fig_degradation().emit("fig_degradation");
}
