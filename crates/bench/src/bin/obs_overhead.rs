//! Microbench: the always-on metrics registry must be quiet-path free.
//!
//! Unlike telemetry (off by default, gated by `trace_overhead`), the
//! `emu_core::obs` registry ships enabled: every engine run bumps a
//! handful of relaxed atomics once at completion, and latency/phase
//! clock reads hide behind a single `obs::enabled()` relaxed load.
//! This binary measures a STREAM run with the registry enabled (the
//! shipping default) against the same run with it disabled and asserts
//! the two agree within 2%. The work is identical, so any persistent
//! gap would mean per-run instrumentation leaked into the simulation
//! loop; a transient gap is machine noise, which is why a round that
//! misses the budget is re-measured (up to three rounds) before the
//! binary fails.
//!
//! Exits nonzero on failure; wired into CI's perf job.

use emu_core::obs;
use membench::stream::{run_stream_emu, stream_checksum, EmuStreamConfig, StreamKernel};
use std::time::Instant;

const BUDGET: f64 = 0.02;
const PAIRS_PER_ROUND: usize = 9;
const MAX_ROUNDS: usize = 3;

fn workload() -> EmuStreamConfig {
    // Deliberately ignores EMU_QUICK: the 2% assertion needs runs long
    // enough (~140 ms) that scheduler jitter stays inside the budget.
    EmuStreamConfig {
        total_elems: 1 << 18,
        nthreads: 256,
        strategy: emu_core::spawn::SpawnStrategy::RecursiveRemote,
        kernel: StreamKernel::Add,
        single_nodelet: false,
        stack_touch_period: 4,
    }
}

fn timed_run(sc: &EmuStreamConfig) -> f64 {
    let cfg = emu_core::presets::chick_prototype();
    let t0 = Instant::now();
    let r = run_stream_emu(&cfg, sc).expect("STREAM run failed");
    let dt = t0.elapsed().as_secs_f64();
    assert_eq!(
        r.checksum,
        stream_checksum(sc.total_elems, sc.kernel),
        "STREAM checksum mismatch"
    );
    dt
}

/// One measurement round: interleaved pairs of enabled (the shipping
/// default) vs disabled runs. Returns (min disabled, min enabled,
/// delta), where the delta is the smaller of two independent
/// noise-robust estimates — |median paired ratio − 1| (cancels drift)
/// and the min-vs-min gap (ignores outlier iterations). The true value
/// is near zero, so the lower estimate is the better one.
fn measure_round(sc: &EmuStreamConfig) -> (f64, f64, f64) {
    let mut off = f64::INFINITY;
    let mut on = f64::INFINITY;
    let mut ratios = Vec::with_capacity(PAIRS_PER_ROUND);
    for i in 0..PAIRS_PER_ROUND {
        // Alternate which variant goes first: position in the pair has
        // its own small systematic cost, and alternation cancels it.
        let (a, b) = if i % 2 == 0 {
            obs::set_enabled(false);
            let a = timed_run(sc);
            obs::set_enabled(true);
            let b = timed_run(sc);
            (a, b)
        } else {
            obs::set_enabled(true);
            let b = timed_run(sc);
            obs::set_enabled(false);
            let a = timed_run(sc);
            (a, b)
        };
        off = off.min(a);
        on = on.min(b);
        ratios.push(b / a);
    }
    obs::set_enabled(true);
    ratios.sort_by(|x, y| x.total_cmp(y));
    let median_delta = (ratios[ratios.len() / 2] - 1.0).abs();
    let min_delta = (off - on).abs() / off.min(on);
    (off, on, median_delta.min(min_delta))
}

fn main() {
    let sc = workload();
    println!(
        "obs_overhead: STREAM ADD, {} elems, {} threads, {PAIRS_PER_ROUND} pairs/round",
        sc.total_elems, sc.nthreads
    );
    // Phase profiling adds per-epoch clock reads by design; keep it off
    // so this gate isolates the always-on registry cost.
    emu_core::engine::set_phase_profile(false);

    // Warm-up run (page faults, lazy registry allocation) outside the
    // sample: the first enabled run leaks its counter handles.
    obs::set_enabled(true);
    let _ = timed_run(&sc);

    let mut off = f64::INFINITY;
    let mut on = f64::INFINITY;
    let mut best = f64::INFINITY;
    for round in 1..=MAX_ROUNDS {
        let (a, b, rel) = measure_round(&sc);
        off = off.min(a);
        on = on.min(b);
        best = best.min(rel);
        println!(
            "  round {round}: disabled {:>7.2} ms, enabled {:>7.2} ms, delta {:.2} %",
            a * 1e3,
            b * 1e3,
            rel * 100.0
        );
        if best < BUDGET {
            break;
        }
    }

    if best >= BUDGET {
        eprintln!(
            "FAIL: enabled-registry overhead {:.2}% exceeds the {:.0}% budget in every round",
            best * 100.0,
            BUDGET * 100.0
        );
        std::process::exit(1);
    }
    println!(
        "PASS: always-on metrics registry within noise ({:.2}% < {:.0}%)",
        best * 100.0,
        BUDGET * 100.0
    );
}
