//! Regenerates every figure, the headline table, and all ablations.
fn main() {
    let t0 = std::time::Instant::now();
    emu_bench::output::emit_result("fig04", emu_bench::figures::fig04());
    emu_bench::output::emit_result("fig05", emu_bench::figures::fig05());
    emu_bench::output::emit_result("fig06", emu_bench::figures::fig06());
    emu_bench::output::emit_result("fig07", emu_bench::figures::fig07());
    emu_bench::output::emit_result("fig08", emu_bench::figures::fig08());
    emu_bench::output::emit_result("fig09a", emu_bench::figures::fig09a());
    emu_bench::output::emit_result("fig09b", emu_bench::figures::fig09b());
    emu_bench::output::emit_result("fig10", emu_bench::figures::fig10());
    emu_bench::output::emit_result("fig11", emu_bench::figures::fig11());
    emu_bench::output::emit_result("headline", emu_bench::figures::headline());
    eprintln!("[all_figures] done in {:.1}s", t0.elapsed().as_secs_f64());
}
