//! Regenerates every figure, the headline table, and all ablations.
fn main() {
    let t0 = std::time::Instant::now();
    emu_bench::figures::fig04().emit("fig04");
    emu_bench::figures::fig05().emit("fig05");
    emu_bench::figures::fig06().emit("fig06");
    emu_bench::figures::fig07().emit("fig07");
    emu_bench::figures::fig08().emit("fig08");
    emu_bench::figures::fig09a().emit("fig09a");
    emu_bench::figures::fig09b().emit("fig09b");
    emu_bench::figures::fig10().emit("fig10");
    emu_bench::figures::fig11().emit("fig11");
    emu_bench::figures::headline().emit("headline");
    eprintln!("[all_figures] done in {:.1}s", t0.elapsed().as_secs_f64());
}
