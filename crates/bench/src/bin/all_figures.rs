//! Regenerates every figure, the headline table, and all ablations.
fn main() {
    let t0 = std::time::Instant::now();
    emu_bench::output::run_figure("fig04", emu_bench::figures::fig04);
    emu_bench::output::run_figure("fig05", emu_bench::figures::fig05);
    emu_bench::output::run_figure("fig06", emu_bench::figures::fig06);
    emu_bench::output::run_figure("fig07", emu_bench::figures::fig07);
    emu_bench::output::run_figure("fig08", emu_bench::figures::fig08);
    emu_bench::output::run_figure("fig09a", emu_bench::figures::fig09a);
    emu_bench::output::run_figure("fig09b", emu_bench::figures::fig09b);
    emu_bench::output::run_figure("fig10", emu_bench::figures::fig10);
    emu_bench::output::run_figure("fig11", emu_bench::figures::fig11);
    emu_bench::output::run_figure("headline", emu_bench::figures::headline);
    if runcache::enabled() {
        eprintln!("{}", emu_bench::cache::session_summary());
    }
    eprintln!("[all_figures] done in {:.1}s", t0.elapsed().as_secs_f64());
}
