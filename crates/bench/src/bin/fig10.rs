//! Regenerates the paper's Figure 10.
fn main() {
    emu_bench::figures::fig10().emit("fig10");
}
