//! Regenerates the paper's Figure 10.
fn main() {
    emu_bench::output::run_figure("fig10", emu_bench::figures::fig10);
}
