//! Regenerates the paper's Figure 10.
fn main() {
    emu_bench::output::emit_result("fig10", emu_bench::figures::fig10());
}
