//! Regenerates the paper's Figure 08.
fn main() {
    emu_bench::output::run_figure("fig08", emu_bench::figures::fig08);
}
