//! Regenerates the paper's Figure 08.
fn main() {
    emu_bench::figures::fig08().emit("fig08");
}
