//! Regenerates the paper's Figure 08.
fn main() {
    emu_bench::output::emit_result("fig08", emu_bench::figures::fig08());
}
