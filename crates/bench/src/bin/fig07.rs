//! Regenerates the paper's Figure 07.
fn main() {
    emu_bench::output::run_figure("fig07", emu_bench::figures::fig07);
}
