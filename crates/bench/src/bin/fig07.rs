//! Regenerates the paper's Figure 07.
fn main() {
    emu_bench::figures::fig07().emit("fig07");
}
