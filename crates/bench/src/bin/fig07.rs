//! Regenerates the paper's Figure 07.
fn main() {
    emu_bench::output::emit_result("fig07", emu_bench::figures::fig07());
}
