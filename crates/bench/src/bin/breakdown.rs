//! Where does threadlet time go? The paper's Section III-D asks for
//! metrics that expose "other system overheads, such as thread migration
//! and queuing delays" — this binary prints exactly that: the fraction
//! of total threadlet wall-time spent computing, waiting on local
//! memory, migrating, and posting stores, for each benchmark and
//! configuration.

use emu_bench::output::Table;
use emu_core::engine::TimeBreakdown;
use emu_core::prelude::*;
use membench::chase::{run_chase_emu, ChaseConfig, ShuffleMode};
use membench::spmv_emu::{run_spmv_emu, EmuLayout, EmuSpmvConfig};
use membench::stream::{run_stream_emu, EmuStreamConfig};
use spmat::{laplacian, LaplacianSpec};
use std::sync::Arc;

fn row(t: &mut Table, name: &str, b: &TimeBreakdown) {
    let pct = |x| format!("{:.1}", 100.0 * b.fraction(x));
    t.row(vec![
        name.to_string(),
        pct(b.compute),
        pct(b.memory),
        pct(b.migration),
        pct(b.store_issue),
        pct(b.spawn),
    ]);
}

fn main() {
    if let Err(e) = run() {
        eprintln!("[breakdown] simulation failed: {e}");
        std::process::exit(2);
    }
}

fn run() -> Result<(), SimError> {
    let cfg = presets::chick_prototype();
    let mut t = Table::new(
        "Threadlet time breakdown (% of total thread-time)",
        &[
            "workload",
            "compute",
            "memory",
            "migration",
            "stores",
            "spawn",
        ],
    );

    // STREAM: remote vs serial spawn.
    for strategy in [SpawnStrategy::RecursiveRemote, SpawnStrategy::Serial] {
        let r = run_stream_emu(
            &cfg,
            &EmuStreamConfig {
                total_elems: 1 << 16,
                nthreads: 512,
                strategy,
                ..Default::default()
            },
        )?;
        row(
            &mut t,
            &format!("STREAM 512thr {}", strategy.name()),
            &r.report.breakdown,
        );
    }

    // Chase across the locality sweep.
    for block in [1usize, 4, 64, 1024] {
        let r = run_chase_emu(
            &cfg,
            &ChaseConfig {
                elems_per_list: 2048.max(block),
                nlists: 512,
                block_elems: block,
                mode: ShuffleMode::FullBlock,
                seed: 5,
            },
        )?;
        row(&mut t, &format!("chase block={block}"), &r.breakdown);
    }

    // SpMV layouts.
    let m = Arc::new(laplacian(LaplacianSpec::paper(60)));
    for layout in EmuLayout::ALL {
        let r = run_spmv_emu(
            &cfg,
            Arc::clone(&m),
            &EmuSpmvConfig {
                layout,
                grain_nnz: 16,
            },
        )?;
        row(
            &mut t,
            &format!("SpMV {}", layout.name()),
            &r.report.breakdown,
        );
    }

    t.emit("breakdown");
    Ok(())
}
