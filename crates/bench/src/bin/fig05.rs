//! Regenerates the paper's Figure 05.
fn main() {
    emu_bench::figures::fig05().emit("fig05");
}
