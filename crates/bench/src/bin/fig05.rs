//! Regenerates the paper's Figure 05.
fn main() {
    emu_bench::output::emit_result("fig05", emu_bench::figures::fig05());
}
