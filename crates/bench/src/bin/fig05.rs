//! Regenerates the paper's Figure 05.
fn main() {
    emu_bench::output::run_figure("fig05", emu_bench::figures::fig05);
}
