//! Regenerates the paper's Figure 04.
fn main() {
    emu_bench::figures::fig04().emit("fig04");
}
