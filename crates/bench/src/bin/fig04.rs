//! Regenerates the paper's Figure 04.
fn main() {
    emu_bench::output::run_figure("fig04", emu_bench::figures::fig04);
}
