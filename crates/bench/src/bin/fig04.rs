//! Regenerates the paper's Figure 04.
fn main() {
    emu_bench::output::emit_result("fig04", emu_bench::figures::fig04());
}
