//! Regenerates the paper's Figure 11.
fn main() {
    emu_bench::figures::fig11().emit("fig11");
}
