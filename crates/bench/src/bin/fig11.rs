//! Regenerates the paper's Figure 11.
fn main() {
    emu_bench::output::run_figure("fig11", emu_bench::figures::fig11);
}
