//! Regenerates the paper's Figure 11.
fn main() {
    emu_bench::output::emit_result("fig11", emu_bench::figures::fig11());
}
