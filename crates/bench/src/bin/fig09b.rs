//! Regenerates the paper's Figure 09b.
fn main() {
    emu_bench::output::emit_result("fig09b", emu_bench::figures::fig09b());
}
