//! Regenerates the paper's Figure 09b.
fn main() {
    emu_bench::figures::fig09b().emit("fig09b");
}
