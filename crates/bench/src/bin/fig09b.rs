//! Regenerates the paper's Figure 09b.
fn main() {
    emu_bench::output::run_figure("fig09b", emu_bench::figures::fig09b);
}
