//! `simctl` — interactive driver for the Emu Chick reproduction.
//!
//! ```sh
//! cargo run --release --bin simctl -- stream --threads 512
//! cargo run --release --bin simctl -- chase --platform xeon --block 512
//! cargo run --release --bin simctl -- bfs --scale 12 --mode smart
//! ```

use emu_bench::cli::{self, Parsed};
use emu_core::prelude::*;
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => {}
        Err(e) => {
            eprintln!("error: {e}\n");
            eprintln!("{}", cli::USAGE);
            std::process::exit(2);
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    if args.is_empty() || args[0] == "help" || args[0] == "--help" {
        println!("{}", cli::USAGE);
        return Ok(());
    }
    // The daemon subcommands have their own flag grammar and exit
    // codes; hand them to the simd crate before the bench parser.
    if matches!(
        args[0].as_str(),
        "serve" | "client" | "once" | "simd-once" | "simd-bench" | "top"
    ) {
        std::process::exit(simd::dispatch(args));
    }
    // Likewise the scenario suite: positional subcommands and its own
    // exit codes (0 pass, 1 failures, 2 usage).
    if args[0] == "scenario" {
        std::process::exit(emu_bench::scncmd::dispatch(&args[1..]));
    }
    // And the result cache: stats / gc / verify over the on-disk store.
    if args[0] == "cache" {
        std::process::exit(emu_bench::cachecmd::dispatch(&args[1..]));
    }
    let mut p = cli::parse(args)?;
    // `--jobs` is accepted by every command (sweep worker threads; single
    // runs just ignore the pool size). Applied before dispatch so any
    // sweep the command triggers sees it.
    if let Some(v) = p.options.remove("jobs") {
        let n: usize = v
            .parse()
            .map_err(|_| format!("--jobs: cannot parse {v:?}"))?;
        emu_bench::runcfg::set_jobs(n);
    }
    // `--sim-threads` is likewise global: every engine the command
    // constructs shards its scheduler across N workers. Deterministic —
    // the knob only changes speed, never results.
    if let Some(v) = p.options.remove("sim-threads") {
        let n: usize = if v == "auto" {
            let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
            (cores / emu_bench::runcfg::jobs()).max(1)
        } else {
            v.parse()
                .map_err(|_| format!("--sim-threads: cannot parse {v:?} (want a count or auto)"))?
        };
        emu_core::engine::set_sim_threads(n.max(1));
    }
    match p.command.as_str() {
        "presets" => cmd_presets(),
        "stream" => cmd_stream(&p),
        "chase" => cmd_chase(&p),
        "spmv" => cmd_spmv(&p),
        "pingpong" => cmd_pingpong(&p),
        "gups" => cmd_gups(&p),
        "bfs" => cmd_bfs(&p),
        "mttkrp" => cmd_mttkrp(&p),
        "trace" => cmd_trace(&p),
        "fuzz" => cmd_fuzz(&p),
        "pdes-speedup" => cmd_pdes_speedup(&p),
        other => Err(format!("unknown command {other:?}")),
    }
}

fn cmd_presets() -> Result<(), String> {
    for (name, cfg) in [
        ("chick", presets::chick_prototype()),
        ("chick-sim", presets::chick_toolchain_sim()),
        ("full-speed", presets::chick_full_speed()),
        ("emu64", presets::emu64_full_speed()),
        ("chick-8node", presets::chick_8node_prototype()),
    ] {
        println!(
            "{name:<12} {} nodelets, {} GC/nodelet @ {:.0} MHz, {} threadlets/nodelet, {:.1} GB/s NCDRAM/nodelet, {:.1} M migrations/s/nodelet",
            cfg.total_nodelets(),
            cfg.gcs_per_nodelet,
            cfg.gc_clock.hz() / 1e6,
            cfg.slots_per_nodelet(),
            cfg.ncdram_bytes_per_sec as f64 / 1e9,
            cfg.migration_rate_per_sec as f64 / 1e6,
        );
    }
    Ok(())
}

fn cmd_stream(p: &Parsed) -> Result<(), String> {
    use membench::stream::*;
    p.check_known(&[
        "preset",
        "threads",
        "elems",
        "strategy",
        "kernel",
        "single-nodelet",
        "stack-touch",
    ])?;
    let cfg = cli::preset_by_name(&p.get_str("preset", "chick"))?;
    let kernel = match p.get_str("kernel", "add").as_str() {
        "add" => StreamKernel::Add,
        "copy" => StreamKernel::Copy,
        "scale" => StreamKernel::Scale,
        "triad" => StreamKernel::Triad,
        other => return Err(format!("unknown kernel {other:?}")),
    };
    let sc = EmuStreamConfig {
        total_elems: p.get("elems", 1u64 << 18)?,
        nthreads: p.get("threads", 512usize)?,
        strategy: cli::strategy_by_name(&p.get_str("strategy", "recursive-remote"))?,
        kernel,
        single_nodelet: p.get("single-nodelet", false)?,
        stack_touch_period: p.get("stack-touch", 4u32)?,
    };
    let r = run_stream_emu(&cfg, &sc).map_err(|e| e.to_string())?;
    if r.checksum != stream_checksum(sc.total_elems, kernel) {
        return Err("STREAM checksum mismatch".into());
    }
    println!(
        "STREAM {} on {} threads ({}):",
        kernel.name(),
        sc.nthreads,
        sc.strategy.name()
    );
    println!("  bandwidth   : {:.1} MB/s", r.bandwidth.mb_per_sec());
    println!("  makespan    : {}", r.report.makespan);
    println!("  migrations  : {}", r.report.total_migrations());
    println!(
        "  core util   : {:.1} %",
        100.0 * r.report.core_utilization()
    );
    println!(
        "  channel util: {:.1} %",
        100.0 * r.report.channel_utilization()
    );
    Ok(())
}

fn cmd_chase(p: &Parsed) -> Result<(), String> {
    use membench::chase::*;
    p.check_known(&[
        "preset", "platform", "threads", "elems", "block", "mode", "seed",
    ])?;
    let cc = ChaseConfig {
        elems_per_list: p.get("elems", 4096usize)?,
        nlists: p.get("threads", 512usize)?,
        block_elems: p.get("block", 64usize)?,
        mode: cli::mode_by_name(&p.get_str("mode", "full"))?,
        seed: p.get("seed", desim::rng::DEFAULT_SEED)?,
    };
    if cc.block_elems == 0 || !cc.elems_per_list.is_multiple_of(cc.block_elems) {
        return Err(format!(
            "--elems ({}) must be a positive multiple of --block ({})",
            cc.elems_per_list, cc.block_elems
        ));
    }
    let r = match p.get_str("platform", "emu").as_str() {
        "emu" => {
            let cfg = cli::preset_by_name(&p.get_str("preset", "chick"))?;
            run_chase_emu(&cfg, &cc).map_err(|e| e.to_string())?
        }
        "xeon" => cpu::run_chase_cpu(&xeon_sim::config::sandy_bridge(), &cc),
        other => return Err(format!("unknown platform {other:?}")),
    };
    if r.checksum != cc.expected_checksum() {
        return Err("chase checksum mismatch".into());
    }
    println!(
        "pointer chase, {} lists x {} elems, block {}, {}:",
        cc.nlists,
        cc.elems_per_list,
        cc.block_elems,
        cc.mode.name()
    );
    println!("  bandwidth : {:.1} MB/s", r.bandwidth.mb_per_sec());
    println!("  makespan  : {}", r.makespan);
    println!("  migrations: {}", r.migrations);
    Ok(())
}

fn cmd_spmv(p: &Parsed) -> Result<(), String> {
    use membench::{spmv_cpu, spmv_emu};
    use spmat::{laplacian, LaplacianSpec};
    p.check_known(&[
        "preset", "platform", "n", "layout", "grain", "threads", "strategy",
    ])?;
    let n = p.get("n", 100u32)?;
    let m = Arc::new(laplacian(LaplacianSpec::paper(n)));
    let reference = m.spmv(&spmv_emu::x_vector(m.ncols()));
    println!(
        "SpMV: {}x{} Laplacian, {} nnz",
        m.nrows(),
        m.ncols(),
        m.nnz()
    );
    let (bw, migrations) = match p.get_str("platform", "emu").as_str() {
        "emu" => {
            let cfg = cli::preset_by_name(&p.get_str("preset", "chick"))?;
            let layout = match p.get_str("layout", "2d").as_str() {
                "local" => spmv_emu::EmuLayout::Local,
                "1d" => spmv_emu::EmuLayout::OneD,
                "2d" => spmv_emu::EmuLayout::TwoD,
                other => return Err(format!("unknown layout {other:?}")),
            };
            let r = spmv_emu::run_spmv_emu(
                &cfg,
                Arc::clone(&m),
                &spmv_emu::EmuSpmvConfig {
                    layout,
                    grain_nnz: p.get("grain", 16usize)?,
                },
            )
            .map_err(|e| e.to_string())?;
            verify(&reference, &r.y)?;
            (r.bandwidth.mb_per_sec(), r.migrations)
        }
        "xeon" => {
            let strategy = match p.get_str("strategy", "mkl").as_str() {
                "mkl" => spmv_cpu::CpuStrategy::MklLike,
                "cilk-for" => spmv_cpu::CpuStrategy::CilkFor,
                "spawn" => spmv_cpu::CpuStrategy::CilkSpawn {
                    grain: p.get("grain", 16384usize)?,
                },
                other => return Err(format!("unknown strategy {other:?}")),
            };
            let r = spmv_cpu::run_spmv_cpu(
                &xeon_sim::config::haswell(),
                Arc::clone(&m),
                &spmv_cpu::CpuSpmvConfig {
                    strategy,
                    nthreads: p.get("threads", 56usize)?,
                },
            );
            verify(&reference, &r.y)?;
            (r.bandwidth.mb_per_sec(), 0)
        }
        other => return Err(format!("unknown platform {other:?}")),
    };
    println!("  effective bandwidth: {bw:.1} MB/s");
    println!("  migrations         : {migrations}");
    println!("  (output vector verified against reference)");
    Ok(())
}

fn verify(reference: &[f64], y: &[f64]) -> Result<(), String> {
    let err = reference
        .iter()
        .zip(y)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    if err < 1e-9 {
        Ok(())
    } else {
        Err(format!("result check failed: max err {err}"))
    }
}

fn cmd_pingpong(p: &Parsed) -> Result<(), String> {
    use membench::pingpong::*;
    p.check_known(&["preset", "threads", "round-trips", "a", "b"])?;
    let cfg = cli::preset_by_name(&p.get_str("preset", "chick"))?;
    let pc = PingPongConfig {
        nthreads: p.get("threads", 64usize)?,
        round_trips: p.get("round-trips", 2000u32)?,
        a: NodeletId(p.get("a", 0u32)?),
        b: NodeletId(p.get("b", 1u32)?),
    };
    let r = run_pingpong(&cfg, &pc).map_err(|e| e.to_string())?;
    println!(
        "ping-pong, {} threads x {} round trips:",
        pc.nthreads, pc.round_trips
    );
    println!(
        "  throughput  : {:.2} M migrations/s",
        r.migrations_per_sec / 1e6
    );
    println!("  mean latency: {:.2} us", r.mean_latency_ns / 1000.0);
    println!("  p99 latency : {}", r.p99_latency);
    Ok(())
}

fn cmd_gups(p: &Parsed) -> Result<(), String> {
    use membench::gups::*;
    p.check_known(&["preset", "platform", "threads", "updates", "table", "seed"])?;
    let gc = GupsConfig {
        table_words: p.get("table", 1u64 << 22)?,
        nthreads: p.get("threads", 256usize)?,
        updates_per_thread: p.get("updates", 4096usize)?,
        seed: p.get("seed", desim::rng::DEFAULT_SEED)?,
    };
    let r = match p.get_str("platform", "emu").as_str() {
        "emu" => {
            let cfg = cli::preset_by_name(&p.get_str("preset", "chick"))?;
            run_gups_emu(&cfg, &gc).map_err(|e| e.to_string())?
        }
        "xeon" => cpu::run_gups_cpu(&xeon_sim::config::sandy_bridge(), &gc),
        other => return Err(format!("unknown platform {other:?}")),
    };
    println!(
        "GUPS, {} threads x {} updates:",
        gc.nthreads, gc.updates_per_thread
    );
    println!("  {:.4} GUPS, {} migrations", r.gups, r.migrations);
    Ok(())
}

fn cmd_bfs(p: &Parsed) -> Result<(), String> {
    use emu_graph::bfs::*;
    use emu_graph::{gen, stinger::Stinger};
    p.check_known(&["preset", "scale", "edges", "mode", "threads", "src", "seed"])?;
    let cfg = cli::preset_by_name(&p.get_str("preset", "chick"))?;
    let scale = p.get("scale", 11u32)?;
    let edges = gen::rmat(scale, p.get("edges", 1usize << 14)?, p.get("seed", 42u64)?);
    let g = Arc::new(Stinger::build_host(
        &edges,
        emu_graph::DEFAULT_BLOCK_CAP,
        cfg.total_nodelets(),
    ));
    let mode = match p.get_str("mode", "smart").as_str() {
        "naive" | "migrating" => BfsMode::Migrating,
        "smart" | "remote-flags" => BfsMode::RemoteFlags,
        other => return Err(format!("unknown mode {other:?}")),
    };
    let src = p.get("src", 0u32)?;
    let r = run_bfs_emu(&cfg, Arc::clone(&g), src, mode, p.get("threads", 512usize)?)
        .map_err(|e| e.to_string())?;
    if r.levels != g.bfs_reference(src) {
        return Err("BFS levels diverged from reference".into());
    }
    println!(
        "BFS ({}) over RMAT scale {scale}, {} edges, from vertex {src}:",
        mode.name(),
        edges.len()
    );
    println!(
        "  {:.2} M TEPS, depth {}, {} migrations ({:.3}/edge)",
        r.teps / 1e6,
        r.depth,
        r.migrations,
        r.migrations as f64 / r.edges_traversed.max(1) as f64
    );
    println!("  (levels verified against host reference)");
    Ok(())
}

fn cmd_mttkrp(p: &Parsed) -> Result<(), String> {
    use emu_tensor::coo::{mttkrp_reference, random_tensor};
    use emu_tensor::emu::*;
    p.check_known(&["preset", "rank", "nnz", "layout", "threads", "seed", "dims"])?;
    let cfg = cli::preset_by_name(&p.get_str("preset", "chick"))?;
    let t = Arc::new(random_tensor(
        [256, 64, 64],
        p.get("nnz", 1usize << 14)?,
        p.get("seed", 7u64)?,
    ));
    let layout = match p.get_str("layout", "blocked").as_str() {
        "1d" => TensorLayout::OneD,
        "blocked" | "slice-blocked" => TensorLayout::SliceBlocked,
        other => return Err(format!("unknown layout {other:?}")),
    };
    let rank = p.get("rank", 8u32)?;
    let r = run_mttkrp_emu(
        &cfg,
        Arc::clone(&t),
        &EmuMttkrpConfig {
            layout,
            rank,
            nthreads: p.get("threads", 512usize)?,
        },
    )
    .map_err(|e| e.to_string())?;
    let reference = mttkrp_reference(&t, rank);
    let err = reference
        .iter()
        .zip(&r.y)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    if err > 1e-6 {
        return Err(format!("MTTKRP diverged: max err {err}"));
    }
    println!(
        "MTTKRP rank {rank}, {} nnz, {} layout:",
        t.nnz(),
        layout.name()
    );
    println!(
        "  effective bandwidth: {:.1} MB/s",
        r.bandwidth.mb_per_sec()
    );
    println!("  migrations         : {}", r.migrations);
    println!("  (Y verified against reference)");
    Ok(())
}

fn cmd_trace(p: &Parsed) -> Result<(), String> {
    use emu_bench::telemetry;
    use emu_core::trace::{self, TelemetryConfig, TraceKind};
    use std::path::PathBuf;

    p.check_known(&[
        "bench",
        "preset",
        "threads",
        "elems",
        "block",
        "strategy",
        "events",
        "bucket-us",
        "trace-out",
        "jsonl-out",
        "report-json",
    ])?;
    let bench = p.get_str("bench", "stream");
    let cfg = cli::preset_by_name(&p.get_str("preset", "chick"))?;
    let events = p.get("events", 4 * emu_bench::runcfg::DEFAULT_TRACE_EVENTS)?;
    let bucket_us = p.get("bucket-us", emu_bench::runcfg::DEFAULT_TRACE_BUCKET_US)?;

    let dir = emu_bench::output::results_dir();
    let path_opt = |key: &str, default: String| -> PathBuf {
        p.options
            .get(key)
            .map(PathBuf::from)
            .unwrap_or_else(|| dir.join(default))
    };
    let trace_out = path_opt("trace-out", format!("trace_{bench}.trace.json"));
    let jsonl_out = path_opt("jsonl-out", format!("trace_{bench}.jsonl"));
    let report_out = path_opt("report-json", format!("trace_{bench}.report.json"));

    // Arm the process-global telemetry config and the report collector,
    // then run the workload through the ordinary benchmark entry point.
    let guard = trace::GlobalTelemetryGuard::arm(TelemetryConfig {
        event_capacity: events,
        timeline_bucket: Some(desim::time::Time::from_us(bucket_us)),
    });
    trace::collect_reports(true);
    let outcome = run_traced_bench(p, &bench, &cfg);
    drop(guard);
    let reports = trace::take_reports();
    trace::collect_reports(false);
    outcome?;

    let traced = reports
        .iter()
        .rev()
        .find(|r| r.trace.is_some())
        .ok_or("no traced emu run was collected")?;

    let chrome = telemetry::chrome_trace(traced);
    let jsonl = telemetry::trace_jsonl(traced);
    let report = telemetry::report_set_json(&format!("trace_{bench}"), None, &reports);
    if !telemetry::json_ok(&chrome) || !telemetry::json_ok(&report) || !telemetry::jsonl_ok(&jsonl)
    {
        return Err("internal error: emitted telemetry failed JSON validation".into());
    }
    emu_bench::output::write_artifact("trace-out", &trace_out, &chrome);
    emu_bench::output::write_artifact("jsonl-out", &jsonl_out, &jsonl);
    emu_bench::output::write_artifact("report-json", &report_out, &report);

    let log = traced.trace.as_ref().expect("traced run has a log");
    println!(
        "\ntraced {bench}: makespan {}, {} events recorded ({} dropped, ring capacity {})",
        traced.makespan,
        log.emitted(),
        log.dropped,
        log.capacity
    );
    let mut by_kind: Vec<(TraceKind, u64)> = TraceKind::ALL
        .iter()
        .map(|&k| (k, log.count_of(k)))
        .filter(|&(_, n)| n > 0)
        .collect();
    by_kind.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    for (k, n) in by_kind {
        println!("  {:<16} {n}", k.name());
    }
    println!("\nopen the .trace.json file in Perfetto (ui.perfetto.dev) or chrome://tracing");
    Ok(())
}

/// Run the workload selected by `simctl trace --bench ...` with
/// telemetry already armed.
fn run_traced_bench(p: &Parsed, bench: &str, cfg: &MachineConfig) -> Result<(), String> {
    match bench {
        "stream" => {
            use membench::stream::*;
            let sc = EmuStreamConfig {
                total_elems: p.get("elems", 1u64 << 15)?,
                nthreads: p.get("threads", 256usize)?,
                strategy: cli::strategy_by_name(&p.get_str("strategy", "recursive-remote"))?,
                kernel: StreamKernel::Add,
                single_nodelet: false,
                stack_touch_period: 4,
            };
            let r = run_stream_emu(cfg, &sc).map_err(|e| e.to_string())?;
            if r.checksum != stream_checksum(sc.total_elems, StreamKernel::Add) {
                return Err("STREAM checksum mismatch".into());
            }
            Ok(())
        }
        "chase" => {
            use membench::chase::*;
            let cc = ChaseConfig {
                elems_per_list: p.get("elems", 1024usize)?,
                nlists: p.get("threads", 128usize)?,
                block_elems: p.get("block", 1usize)?,
                mode: ShuffleMode::FullBlock,
                seed: desim::rng::DEFAULT_SEED,
            };
            if cc.block_elems == 0 || !cc.elems_per_list.is_multiple_of(cc.block_elems) {
                return Err(format!(
                    "--elems ({}) must be a positive multiple of --block ({})",
                    cc.elems_per_list, cc.block_elems
                ));
            }
            let r = run_chase_emu(cfg, &cc).map_err(|e| e.to_string())?;
            if r.checksum != cc.expected_checksum() {
                return Err("chase checksum mismatch".into());
            }
            Ok(())
        }
        other => Err(format!("unknown --bench {other:?}; one of: stream, chase")),
    }
}

fn cmd_pdes_speedup(p: &Parsed) -> Result<(), String> {
    use emu_core::metrics::PdesPhaseProfile;
    use emu_core::trace;
    use membench::{chase, stream};
    use std::time::Instant;

    p.check_known(&[
        "preset", "shards", "threads", "elems", "gate", "out", "phases",
    ])?;
    let preset = p.get_str("preset", "emu64");
    let cfg = cli::preset_by_name(&preset)?;
    let shards: usize = p.get("shards", 4usize)?;
    let nthreads: usize = p.get("threads", 512usize)?;
    let elems: u64 = emu_bench::runcfg::sized(p.get("elems", 1u64 << 16)?, 1 << 12);
    let gate: bool = p.get("gate", false)?;
    let phases: bool = p.get("phases", false)?;
    if phases {
        emu_core::engine::set_phase_profile(true);
    }

    struct Leg {
        name: &'static str,
        events: u64,
        seq_eps: f64,
        par_eps: f64,
        par_phases: Vec<PdesPhaseProfile>,
    }

    // Run one workload sequentially and with N shards, timing both and
    // checking the collected reports are byte-identical — the speedup
    // claim is only meaningful if the results did not change. Phase
    // profiles carry wall-clock times, so they are lifted out of the
    // reports *before* the byte-identity comparison.
    let run_leg = |name: &'static str, body: &dyn Fn() -> Result<(), String>| {
        let timed = |threads: usize| -> Result<(u64, f64, String, Vec<PdesPhaseProfile>), String> {
            emu_core::engine::set_sim_threads(threads);
            trace::collect_reports(true);
            let t0 = Instant::now();
            let outcome = body();
            let dt = t0.elapsed().as_secs_f64();
            let mut reports = trace::take_reports();
            trace::collect_reports(false);
            outcome?;
            let profiles: Vec<PdesPhaseProfile> =
                reports.iter_mut().filter_map(|r| r.phases.take()).collect();
            let events: u64 = reports.iter().map(|r| r.events).sum();
            Ok((
                events,
                events as f64 / dt.max(1e-9),
                format!("{reports:?}"),
                profiles,
            ))
        };
        let (events, seq_eps, seq_fp, _) = timed(1)?;
        let (par_events, par_eps, par_fp, par_phases) = timed(shards)?;
        emu_core::engine::set_sim_threads(1);
        if events != par_events || seq_fp != par_fp {
            return Err(format!(
                "{name}: sharded run diverged from sequential ({events} vs {par_events} events)"
            ));
        }
        Ok(Leg {
            name,
            events,
            seq_eps,
            par_eps,
            par_phases,
        })
    };

    let stream_cfg = cfg.clone();
    let stream_leg = run_leg("stream_add", &|| {
        let sc = stream::EmuStreamConfig {
            total_elems: elems,
            nthreads,
            strategy: SpawnStrategy::RecursiveRemote,
            kernel: stream::StreamKernel::Add,
            single_nodelet: false,
            stack_touch_period: 4,
        };
        let r = stream::run_stream_emu(&stream_cfg, &sc).map_err(|e| e.to_string())?;
        if r.checksum != stream::stream_checksum(sc.total_elems, sc.kernel) {
            return Err("STREAM checksum mismatch".into());
        }
        Ok(())
    })?;
    let chase_cfg = cfg.clone();
    let chase_leg = run_leg("pointer_chase", &|| {
        let cc = chase::ChaseConfig {
            elems_per_list: emu_bench::runcfg::sized_usize(2048, 256),
            nlists: nthreads,
            block_elems: 64,
            mode: chase::ShuffleMode::FullBlock,
            seed: desim::rng::DEFAULT_SEED,
        };
        let r = chase::run_chase_emu(&chase_cfg, &cc).map_err(|e| e.to_string())?;
        if r.checksum != cc.expected_checksum() {
            return Err("chase checksum mismatch".into());
        }
        Ok(())
    })?;

    let legs = [stream_leg, chase_leg];
    if phases {
        emu_core::engine::set_phase_profile(false);
    }
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    println!("sharded-scheduler speedup on {preset} ({shards} shards, {cores} host cores):");
    let mut min_speedup = f64::INFINITY;
    let mut best_par = 0.0f64;
    for l in &legs {
        let s = l.par_eps / l.seq_eps.max(1e-9);
        min_speedup = min_speedup.min(s);
        best_par = best_par.max(l.par_eps);
        println!(
            "  {:<14} {:>10} events  {:>12.0} ev/s seq  {:>12.0} ev/s x{shards}  {:.2}x",
            l.name, l.events, l.seq_eps, l.par_eps, s
        );
    }

    // Where does the sharded scheduler's wall-clock go? Aggregate the
    // per-worker phase breakdowns over every engine run of the leg.
    #[derive(Default)]
    struct PhaseAgg {
        drain: u64,
        barrier: u64,
        exchange: u64,
        merge: u64,
        total: u64,
        epochs: u64,
        wall: u64,
    }
    let aggregate = |profiles: &[PdesPhaseProfile]| -> PhaseAgg {
        let mut agg = PhaseAgg::default();
        for pr in profiles {
            agg.epochs += pr.epochs;
            agg.wall += pr.wall_ns;
            for w in &pr.workers {
                agg.drain += w.drain_ns;
                agg.barrier += w.barrier_ns;
                agg.exchange += w.exchange_ns;
                agg.merge += w.merge_ns;
                agg.total += w.loop_ns;
            }
        }
        agg
    };
    if phases {
        println!("PDES phase profile (x{shards} runs, worker time summed):");
        for l in &legs {
            let a = aggregate(&l.par_phases);
            let pct = |ns: u64| 100.0 * ns as f64 / a.total.max(1) as f64;
            let eps = a.epochs as f64 / (a.wall as f64 / 1e9).max(1e-9);
            println!(
                "  {:<14} drain {:>5.1}%  barrier {:>5.1}%  exchange {:>5.1}%  merge {:>5.1}%  \
                 {} epochs ({:.0}/s)",
                l.name,
                pct(a.drain),
                pct(a.barrier),
                pct(a.exchange),
                pct(a.merge),
                a.epochs,
                eps,
            );
        }
    }

    let mut json = format!(
        "{{\"preset\":\"{preset}\",\"shards\":{shards},\"host_parallelism\":{cores},\"workloads\":["
    );
    for (i, l) in legs.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"name\":\"{}\",\"events\":{},\"seq_events_per_sec\":{:.1},\"par_events_per_sec\":{:.1},\"speedup\":{:.3}",
            l.name,
            l.events,
            l.seq_eps,
            l.par_eps,
            l.par_eps / l.seq_eps.max(1e-9)
        ));
        if phases {
            let a = aggregate(&l.par_phases);
            json.push_str(&format!(
                ",\"phases\":{{\"drain_ns\":{},\"barrier_ns\":{},\"exchange_ns\":{},\
                 \"merge_ns\":{},\"loop_ns\":{},\"epochs\":{},\"wall_ns\":{}}}",
                a.drain, a.barrier, a.exchange, a.merge, a.total, a.epochs, a.wall
            ));
        }
        json.push('}');
    }
    json.push_str(&format!(
        "],\"min_speedup\":{min_speedup:.3},\"pdes_events_per_sec\":{best_par:.1}}}"
    ));
    if !emu_bench::telemetry::json_ok(&json) {
        return Err("internal error: pdes_speedup JSON failed validation".into());
    }
    let out_path = p
        .options
        .get("out")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| emu_bench::output::results_dir().join("pdes_speedup.json"));
    emu_bench::output::write_artifact("pdes-speedup", &out_path, &json);

    if gate {
        // The speedup bar scales with what the host can deliver: a
        // one-core box cannot overlap shards at all, a two-core box
        // must at least not lose to sequential, and anywhere with four
        // or more cores the sharded scheduler must win outright (2x).
        // Override with EMU_PDES_GATE_MIN to tighten or loosen.
        let min_required: f64 = std::env::var("EMU_PDES_GATE_MIN")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(if cores >= 4 {
                2.0
            } else if cores > 1 {
                1.0
            } else {
                0.0
            });
        if min_speedup < min_required {
            eprintln!(
                "pdes-speedup: gate failed — {min_speedup:.2}x < {min_required}x with {shards} shards on {cores} cores"
            );
            std::process::exit(1);
        }
        println!("pdes-speedup: gate ok ({min_speedup:.2}x >= {min_required}x)");
        // Synchronization-cost bar: with the fused gate the barrier
        // phase must stay a minority cost. Checked on stream_add (the
        // epoch-dense leg) whenever the profile is available and the
        // host actually ran shards in parallel.
        if phases && cores >= 4 {
            let a = aggregate(&legs[0].par_phases);
            let frac = a.barrier as f64 / a.total.max(1) as f64;
            if frac >= 0.25 {
                eprintln!(
                    "pdes-speedup: gate failed — stream_add barrier time {:.1}% of loop (must be < 25%)",
                    100.0 * frac
                );
                std::process::exit(1);
            }
            println!(
                "pdes-speedup: barrier gate ok ({:.1}% of stream_add loop < 25%)",
                100.0 * frac
            );
        }
    }
    Ok(())
}

fn cmd_fuzz(p: &Parsed) -> Result<(), String> {
    use conformance::fuzz;

    p.check_known(&["cases", "seed", "corpus"])?;
    let cases: u64 = p.get("cases", 500u64)?;
    let seed: u64 = p.get("seed", desim::rng::DEFAULT_SEED)?;
    let corpus = p.get_str("corpus", "tests/corpus");
    let t0 = std::time::Instant::now();
    match fuzz::fuzz(seed, cases, |i| {
        if i > 0 && i % 100 == 0 {
            eprintln!("  ... {i}/{cases}");
        }
    }) {
        Ok(n) => {
            println!(
                "fuzz: {n} cases clean on calendar, heap, and 2-shard schedulers (seed {seed}, {:.1}s)",
                t0.elapsed().as_secs_f64()
            );
            Ok(())
        }
        Err(fail) => {
            eprintln!("fuzz: case {} violated conformance:", fail.case_index);
            for problem in &fail.problems {
                eprintln!("  {problem}");
            }
            let dir = std::path::Path::new(&corpus);
            std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
            // Repros land in the scenario language so they can be
            // replayed (and promoted to the registry) with
            // `simctl scenario run`.
            let name = format!("fuzz-{seed}-{}", fail.case_index);
            let scn = scenario::case::scenario_from_case(&name, &fail.minimized);
            let path = dir.join(format!("{name}.scn"));
            std::fs::write(&path, scenario::print(&scn)).map_err(|e| e.to_string())?;
            eprintln!("fuzz: minimized repro written to {}", path.display());
            Err(format!(
                "{} conformance violation(s) on case {}",
                fail.problems.len(),
                fail.case_index
            ))
        }
    }
}
