//! Regenerates the paper's Figure 09a.
fn main() {
    emu_bench::figures::fig09a().emit("fig09a");
}
