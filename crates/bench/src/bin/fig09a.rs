//! Regenerates the paper's Figure 09a.
fn main() {
    emu_bench::output::run_figure("fig09a", emu_bench::figures::fig09a);
}
