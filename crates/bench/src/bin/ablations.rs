//! Runs every ablation study.
fn main() {
    emu_bench::output::emit_result("ablation_grain", emu_bench::ablations::ablation_grain());
    emu_bench::output::emit_result(
        "ablation_migration_rate",
        emu_bench::ablations::ablation_migration_rate(),
    );
    emu_bench::output::emit_result(
        "ablation_spawn_ramp",
        emu_bench::ablations::ablation_spawn_ramp(),
    );
    emu_bench::output::emit_result(
        "ablation_stack_touch",
        emu_bench::ablations::ablation_stack_touch(),
    );
    emu_bench::output::emit_result(
        "ablation_cpu_features",
        emu_bench::ablations::ablation_cpu_features(),
    );
    emu_bench::output::emit_result(
        "ablation_full_speed_path",
        emu_bench::ablations::ablation_full_speed_path(),
    );
    emu_bench::output::emit_result("gups_compare", emu_bench::ablations::gups_compare());
}
