//! Runs every ablation study.
fn main() {
    emu_bench::ablations::ablation_grain().emit("ablation_grain");
    emu_bench::ablations::ablation_migration_rate().emit("ablation_migration_rate");
    emu_bench::ablations::ablation_spawn_ramp().emit("ablation_spawn_ramp");
    emu_bench::ablations::ablation_stack_touch().emit("ablation_stack_touch");
    emu_bench::ablations::ablation_cpu_features().emit("ablation_cpu_features");
    emu_bench::ablations::ablation_full_speed_path().emit("ablation_full_speed_path");
    emu_bench::ablations::gups_compare().emit("gups_compare");
}
