//! Regenerates the headline numbers quoted in the paper's text.
fn main() {
    emu_bench::figures::headline().emit("headline");
}
