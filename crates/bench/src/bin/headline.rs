//! Regenerates the headline numbers quoted in the paper's text.
fn main() {
    emu_bench::output::emit_result("headline", emu_bench::figures::headline());
}
