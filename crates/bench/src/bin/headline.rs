//! Regenerates the headline numbers quoted in the paper's text.
fn main() {
    emu_bench::output::run_figure("headline", emu_bench::figures::headline);
}
