//! Runs the extension experiments (streaming graphs, MTTKRP, shuffle
//! modes, full STREAM suite, node scaling).
fn main() {
    emu_bench::extensions::ext_graph().emit("ext_graph");
    emu_bench::extensions::ext_mttkrp().emit("ext_mttkrp");
    emu_bench::extensions::ext_shuffle_modes().emit("ext_shuffle_modes");
    emu_bench::extensions::ext_stream_suite().emit("ext_stream_suite");
    emu_bench::extensions::ext_multinode().emit("ext_multinode");
}
