//! Runs the extension experiments (streaming graphs, MTTKRP, shuffle
//! modes, full STREAM suite, node scaling).
fn main() {
    emu_bench::output::emit_result("ext_graph", emu_bench::extensions::ext_graph());
    emu_bench::output::emit_result("ext_mttkrp", emu_bench::extensions::ext_mttkrp());
    emu_bench::output::emit_result(
        "ext_shuffle_modes",
        emu_bench::extensions::ext_shuffle_modes(),
    );
    emu_bench::output::emit_result(
        "ext_stream_suite",
        emu_bench::extensions::ext_stream_suite(),
    );
    emu_bench::output::emit_result("ext_multinode", emu_bench::extensions::ext_multinode());
}
