//! Regenerates the paper's Figure 06.
fn main() {
    emu_bench::figures::fig06().emit("fig06");
}
