//! Regenerates the paper's Figure 06.
fn main() {
    emu_bench::output::run_figure("fig06", emu_bench::figures::fig06);
}
