//! Regenerates the paper's Figure 06.
fn main() {
    emu_bench::output::emit_result("fig06", emu_bench::figures::fig06());
}
