//! Executable calibration checks: every "shape criterion" DESIGN.md and
//! EXPERIMENTS.md claim against the paper, as PASS/FAIL assertions with
//! explicit tolerance bands. `cargo run --release --bin validate` exits
//! nonzero if any band is violated — the regression gate for model or
//! calibration changes.

use crate::output::Table;
use crate::runcfg::{sized, sized_usize};
use emu_core::prelude::*;
use membench::chase::{self, ChaseConfig, ShuffleMode};
use membench::pingpong::{run_pingpong, PingPongConfig};
use membench::spmv_emu::{run_spmv_emu, EmuLayout, EmuSpmvConfig};
use membench::stream::{
    cpu::{run_stream_cpu, CpuStreamConfig},
    run_stream_emu, EmuStreamConfig,
};
use spmat::{laplacian, LaplacianSpec};
use std::sync::Arc;

/// One calibration check.
pub struct Check {
    /// What is being checked (paper anchor).
    pub name: String,
    /// Measured value.
    pub measured: f64,
    /// Inclusive acceptance band.
    pub band: (f64, f64),
    /// Display unit.
    pub unit: &'static str,
}

impl Check {
    /// Whether the measurement is inside the band.
    pub fn pass(&self) -> bool {
        self.measured >= self.band.0 && self.measured <= self.band.1
    }
}

fn emu_stream_mbs(threads: usize, strategy: SpawnStrategy, single: bool) -> Result<f64, SimError> {
    Ok(run_stream_emu(
        &presets::chick_prototype(),
        &EmuStreamConfig {
            total_elems: sized(1 << 17, 1 << 13),
            nthreads: threads,
            strategy,
            single_nodelet: single,
            ..Default::default()
        },
    )?
    .bandwidth
    .mb_per_sec())
}

fn emu_chase_mbs(block: usize, threads: usize) -> Result<f64, SimError> {
    Ok(chase::run_chase_emu(
        &presets::chick_prototype(),
        &ChaseConfig {
            elems_per_list: sized_usize(2048, 512).max(block),
            nlists: threads,
            block_elems: block,
            mode: ShuffleMode::FullBlock,
            seed: 17,
        },
    )?
    .bandwidth
    .mb_per_sec())
}

/// Run every calibration check; returns the list (render with
/// [`render`]) — callers decide what failure means. A simulation
/// error (bad config, watchdog trip) aborts the whole suite.
pub fn run_all() -> Result<Vec<Check>, SimError> {
    let mut checks = Vec::new();
    let mut push = |name: &str, measured: f64, lo: f64, hi: f64, unit: &'static str| {
        checks.push(Check {
            name: name.to_string(),
            measured,
            band: (lo, hi),
            unit,
        });
    };

    // §IV-A: single-node STREAM ~1.2 GB/s.
    let stream8 = emu_stream_mbs(512, SpawnStrategy::RecursiveRemote, false)?;
    push(
        "Emu 1-node STREAM (paper 1.2 GB/s)",
        stream8 / 1000.0,
        0.9,
        1.5,
        "GB/s",
    );

    // Fig 4: knee behaviour on one nodelet.
    let s8 = emu_stream_mbs(8, SpawnStrategy::Serial, true)?;
    let s32 = emu_stream_mbs(32, SpawnStrategy::Serial, true)?;
    let s64 = emu_stream_mbs(64, SpawnStrategy::Serial, true)?;
    push("Fig4 scaling 8->32 threads (x)", s32 / s8, 2.5, 4.5, "x");
    push("Fig4 plateau 32->64 threads (x)", s64 / s32, 0.9, 1.15, "x");

    // Fig 5: remote-spawn advantage at 256 threads.
    let serial = emu_stream_mbs(256, SpawnStrategy::Serial, false)?;
    let remote = emu_stream_mbs(256, SpawnStrategy::RecursiveRemote, false)?;
    push(
        "Fig5 remote/serial spawn at 256 thr (x)",
        remote / serial,
        1.7,
        5.0,
        "x",
    );

    // Fig 6: flatness and the block-1 dip.
    let b1 = emu_chase_mbs(1, 512)?;
    let mut blocks = Vec::new();
    for b in [8usize, 32, 128, 512, 1024] {
        blocks.push(emu_chase_mbs(b, 512)?);
    }
    let bmax = blocks.iter().cloned().fold(f64::MIN, f64::max);
    let bmin = blocks.iter().cloned().fold(f64::MAX, f64::min);
    push(
        "Fig6 flatness max/min, blocks 8-1024 (x)",
        bmax / bmin,
        1.0,
        1.35,
        "x",
    );
    push(
        "Fig6 block-1 dip vs block-128 (frac)",
        b1 / emu_chase_mbs(128, 512)?,
        0.5,
        0.95,
        "",
    );

    // Fig 8: utilization bands.
    push(
        "Fig8 Emu utilization at block 64 (%)",
        100.0 * emu_chase_mbs(64, 512)? / stream8,
        65.0,
        95.0,
        "%",
    );
    let xeon_peak = run_stream_cpu(
        &xeon_sim::config::sandy_bridge(),
        &CpuStreamConfig {
            total_elems: sized(1 << 19, 1 << 14),
            nthreads: 16,
            ..Default::default()
        },
    )
    .bandwidth
    .mb_per_sec();
    push(
        "Xeon STREAM (paper ~51.2 GB/s nominal)",
        xeon_peak / 1000.0,
        40.0,
        52.0,
        "GB/s",
    );
    let xeon_chase = chase::cpu::run_chase_cpu(
        &xeon_sim::config::sandy_bridge(),
        &ChaseConfig {
            elems_per_list: sized_usize(1 << 17, 1 << 13),
            nlists: 32,
            block_elems: 64,
            mode: ShuffleMode::FullBlock,
            seed: 17,
        },
    )
    .bandwidth
    .mb_per_sec();
    push(
        "Fig8 Xeon utilization at block 64 (%)",
        100.0 * xeon_chase / xeon_peak,
        10.0,
        40.0,
        "%",
    );

    // Fig 9a: layout ordering and the 2D magnitude.
    let m = Arc::new(laplacian(LaplacianSpec::paper(if crate::runcfg::quick() {
        30
    } else {
        100
    })));
    let spmv = |layout| -> Result<f64, SimError> {
        Ok(run_spmv_emu(
            &presets::chick_prototype(),
            Arc::clone(&m),
            &EmuSpmvConfig {
                layout,
                grain_nnz: 16,
            },
        )?
        .bandwidth
        .mb_per_sec())
    };
    let (local, one_d, two_d) = (
        spmv(EmuLayout::Local)?,
        spmv(EmuLayout::OneD)?,
        spmv(EmuLayout::TwoD)?,
    );
    push(
        "Fig9a local layout (paper ~50 MB/s)",
        local,
        25.0,
        80.0,
        "MB/s",
    );
    push(
        "Fig9a 2D layout (paper ~250 MB/s)",
        two_d,
        150.0,
        600.0,
        "MB/s",
    );
    push("Fig9a ordering 1D/local (x)", one_d / local, 1.5, 10.0, "x");
    push("Fig9a ordering 2D/1D (x)", two_d / one_d, 1.05, 5.0, "x");

    // Fig 10: validation gap.
    let pp = |cfg: &MachineConfig| {
        run_pingpong(
            cfg,
            &PingPongConfig {
                nthreads: 64,
                round_trips: sized(1000, 100) as u32,
                ..Default::default()
            },
        )
    };
    let hw = pp(&presets::chick_prototype())?;
    let sim = pp(&presets::chick_toolchain_sim())?;
    push(
        "Ping-pong hardware (paper 9 M/s)",
        hw.migrations_per_sec / 1e6,
        8.0,
        10.0,
        "M/s",
    );
    push(
        "Ping-pong simulator (paper 16 M/s)",
        sim.migrations_per_sec / 1e6,
        14.0,
        18.0,
        "M/s",
    );
    let lat = run_pingpong(
        &presets::chick_prototype(),
        &PingPongConfig {
            nthreads: 8,
            round_trips: sized(1000, 100) as u32,
            ..Default::default()
        },
    )?;
    push(
        "Migration latency (paper 1-2 us)",
        lat.mean_latency_ns / 1000.0,
        0.3,
        2.5,
        "us",
    );

    let stream_hw = emu_stream_mbs(512, SpawnStrategy::RecursiveRemote, false)?;
    let stream_sim = run_stream_emu(
        &presets::chick_toolchain_sim(),
        &EmuStreamConfig {
            total_elems: sized(1 << 17, 1 << 13),
            nthreads: 512,
            ..Default::default()
        },
    )?
    .bandwidth
    .mb_per_sec();
    push(
        "Fig10 STREAM sim/hw agreement (x)",
        stream_sim / stream_hw,
        0.98,
        1.02,
        "x",
    );
    let chase1_sim = chase::run_chase_emu(
        &presets::chick_toolchain_sim(),
        &ChaseConfig {
            elems_per_list: sized_usize(2048, 512),
            nlists: 512,
            block_elems: 1,
            mode: ShuffleMode::FullBlock,
            seed: 17,
        },
    )?
    .bandwidth
    .mb_per_sec();
    push(
        "Fig10 chase blk1 sim/hw divergence (x)",
        chase1_sim / b1,
        1.15,
        2.5,
        "x",
    );

    Ok(checks)
}

/// Render checks as a table, PASS/FAIL per row.
pub fn render(checks: &[Check]) -> (Table, bool) {
    let mut t = Table::new(
        "Calibration validation against the paper's anchors",
        &["check", "measured", "band", "verdict"],
    );
    let mut all_ok = true;
    for c in checks {
        let ok = c.pass();
        all_ok &= ok;
        t.row(vec![
            c.name.clone(),
            format!("{:.2} {}", c.measured, c.unit),
            format!("[{:.2}, {:.2}]", c.band.0, c.band.1),
            if ok { "PASS".into() } else { "FAIL".into() },
        ]);
    }
    (t, all_ok)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_band_logic() {
        let c = Check {
            name: "x".into(),
            measured: 1.0,
            band: (0.5, 1.5),
            unit: "",
        };
        assert!(c.pass());
        let c = Check {
            name: "x".into(),
            measured: 2.0,
            band: (0.5, 1.5),
            unit: "",
        };
        assert!(!c.pass());
    }
}
