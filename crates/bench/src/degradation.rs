//! Graceful-degradation sweeps: bandwidth as a function of injected
//! faults — the figure the paper's degraded prototype could not hold
//! still long enough to produce.
//!
//! Three axes, two workloads each (STREAM as the bandwidth-bound probe,
//! block-1 pointer chasing as the migration-bound probe):
//!
//! * **dead** — fraction of nodelets marked dead, their memory and
//!   arrivals redirected to the nearest live neighbor;
//! * **slow** — fraction of nodelets serving all resources 4× slower
//!   (the "one sick FPGA" regime the Chick actually exhibited);
//! * **nack** — migration-engine NACK probability with exponential
//!   backoff (the firmware-limit knob behind the Fig 10 gap).
//!
//! Every point runs under the [`crate::harness`] timeout/retry policy,
//! so a pathological configuration yields a labelled `error`/`timeout`
//! row instead of killing the sweep.

use crate::harness::{run_point, PointOutcome, RunPolicy};
use crate::output::Table;
use crate::runcfg::{sized, sized_usize};
use crate::sweep;
use emu_core::prelude::*;
use membench::chase::{run_chase_emu, ChaseConfig, ShuffleMode};
use membench::stream::{run_stream_emu, EmuStreamConfig};
use std::time::Duration;

/// One measured sweep point: bandwidth plus the fault-recovery counters
/// that explain it.
#[derive(Debug, Clone, Copy)]
pub struct DegSample {
    /// Achieved bandwidth.
    pub mb_per_sec: f64,
    /// Thread migrations over the run.
    pub migrations: u64,
    /// Machine-wide fault-recovery totals.
    pub faults: FaultTotals,
}

fn stream_sample(cfg: &MachineConfig) -> Result<DegSample, SimError> {
    let r = run_stream_emu(
        cfg,
        &EmuStreamConfig {
            total_elems: sized(1 << 16, 1 << 12),
            nthreads: 512,
            strategy: SpawnStrategy::RecursiveRemote,
            ..Default::default()
        },
    )?;
    Ok(DegSample {
        mb_per_sec: r.bandwidth.mb_per_sec(),
        migrations: r.report.total_migrations(),
        faults: r.report.fault_totals(),
    })
}

fn chase_sample(cfg: &MachineConfig) -> Result<DegSample, SimError> {
    let r = run_chase_emu(
        cfg,
        &ChaseConfig {
            elems_per_list: sized_usize(1024, 256),
            nlists: 256,
            block_elems: 1,
            mode: ShuffleMode::FullBlock,
            seed: 17,
        },
    )?;
    Ok(DegSample {
        mb_per_sec: r.bandwidth.mb_per_sec(),
        migrations: r.migrations,
        faults: r.faults,
    })
}

/// A sweep point: axis name, axis value, workload, faulted config.
struct Point {
    axis: &'static str,
    value: f64,
    bench: &'static str,
    cfg: MachineConfig,
}

fn plan_points() -> Vec<Point> {
    let base = presets::chick_prototype();
    let total = base.total_nodelets();
    let mut pts = Vec::new();
    let mut add = |axis: &'static str, value: f64, faults: FaultPlan| {
        for bench in ["stream", "chase1"] {
            pts.push(Point {
                axis,
                value,
                bench,
                cfg: MachineConfig {
                    faults: faults.clone(),
                    ..base.clone()
                },
            });
        }
    };

    for frac in [0.0, 0.125, 0.25, 0.375, 0.5] {
        add(
            "dead",
            frac,
            FaultPlan::none().with_dead_fraction(total, frac),
        );
    }
    for frac in [0.125, 0.25, 0.5] {
        add(
            "slow4x",
            frac,
            FaultPlan::none().with_slow_fraction(total, frac, 4.0),
        );
    }
    for prob in [0.01, 0.05, 0.1, 0.2, 0.4] {
        let mut f = FaultPlan::none();
        f.mig_nack_prob = prob;
        add("nack", prob, f);
    }
    pts
}

/// Run the full degradation sweep on the bounded worker pool in
/// [`crate::sweep`] (`--jobs`/`-j`), each point isolated by
/// [`run_point`]'s timeout/retry harness; failures and timeouts become
/// labelled rows, never a crash.
pub fn fig_degradation() -> Table {
    let policy = RunPolicy {
        timeout: Duration::from_secs(if crate::runcfg::quick() { 60 } else { 300 }),
        attempts: 2,
    };
    let points = plan_points();
    let rows = sweep::run_indexed(points.len(), |i| {
        let p = &points[i];
        let bench = p.bench;
        let cfg = p.cfg.clone();
        let outcome = run_point(policy, move || match bench {
            "stream" => stream_sample(&cfg),
            _ => chase_sample(&cfg),
        });
        render_row(p.axis, p.value, bench, &outcome)
    });

    let mut t = Table::new(
        "Degradation: bandwidth vs injected faults (Emu Chick preset)",
        &[
            "axis",
            "value",
            "bench",
            "MB/s",
            "migrations",
            "nacks",
            "retries",
            "ecc_retries",
            "link_retx",
            "redirects",
            "status",
        ],
    );
    for r in rows {
        t.row(r);
    }
    t
}

fn render_row(
    axis: &str,
    value: f64,
    bench: &str,
    outcome: &PointOutcome<DegSample>,
) -> Vec<String> {
    let mut row = vec![axis.to_string(), format!("{value:.3}"), bench.to_string()];
    match outcome {
        PointOutcome::Ok(s) => {
            row.extend([
                format!("{:.1}", s.mb_per_sec),
                s.migrations.to_string(),
                s.faults.nacks.to_string(),
                s.faults.retries.to_string(),
                s.faults.ecc_retries.to_string(),
                s.faults.link_retransmits.to_string(),
                s.faults.redirects.to_string(),
            ]);
        }
        _ => row.extend(std::iter::repeat_n("-".to_string(), 7)),
    }
    row.push(outcome.status().to_string());
    row
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_report_fault_counters() {
        let base = presets::chick_prototype();
        let mut faulted = base.clone();
        faulted.faults.mig_nack_prob = 0.2;
        let clean = chase_sample(&base).unwrap();
        let noisy = chase_sample(&faulted).unwrap();
        assert_eq!(clean.faults.nacks, 0);
        assert!(noisy.faults.nacks > 0, "NACKs must be counted");
        assert!(
            noisy.mb_per_sec < clean.mb_per_sec,
            "NACKs must cost bandwidth: {} vs {}",
            noisy.mb_per_sec,
            clean.mb_per_sec
        );
    }

    #[test]
    fn dead_nodelets_redirect_and_degrade_stream() {
        let base = presets::chick_prototype();
        let mut faulted = base.clone();
        faulted.faults = FaultPlan::none().with_dead_fraction(base.total_nodelets(), 0.25);
        let clean = stream_sample(&base).unwrap();
        let degraded = stream_sample(&faulted).unwrap();
        assert!(degraded.faults.redirects > 0, "dead traffic must redirect");
        assert!(degraded.mb_per_sec < clean.mb_per_sec);
    }
}
