//! Parallel sweep execution.
//!
//! Every figure in the paper is a grid of independent simulation points
//! (thread counts, block sizes, presets); this module fans those points
//! across a fixed-size pool of worker threads — plain `std::thread`
//! scoped workers pulling indices off a shared atomic cursor and
//! returning `(index, value)` over a channel — and reassembles results
//! in **sweep order**, so output is identical at any `-j`.
//!
//! Determinism guarantees:
//!
//! * Each point is a self-contained simulation (its own engine, integer
//!   time, seeded draws), so its value does not depend on which worker
//!   runs it or when.
//! * Results are placed by index, not arrival, so rows come back in
//!   sweep order regardless of completion order.
//! * Each point runs under a process-unique run key
//!   ([`emu_core::trace::with_run_key`]), and the telemetry collector
//!   sorts by that key at export — `--report-json` is byte-stable
//!   across `-j` values.
//!
//! The worker count comes from [`crate::runcfg::jobs`] (the `--jobs`/
//! `-j` flag, the `EMU_JOBS` variable, or the host's available
//! parallelism). At one job the sweep runs inline on the caller's
//! thread — no pool, identical to the historical serial path.

use crate::runcfg;
use emu_core::trace;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;

/// Source of process-unique sweep-point ids: each sweep claims a
/// contiguous block at launch, so report keys from successive sweeps
/// (even within one figure) never collide and sort in launch order.
/// The upper half of the id space is reserved for unkeyed
/// `run_point` callers (see `harness::SYNTH_POINT`).
static POINT_BASE: AtomicU64 = AtomicU64::new(0);

/// Run `f(0..n)` across the worker pool; returns values in index order.
///
/// `f` must be safe to call from multiple threads at once (`Sync`) and
/// must not depend on cross-point shared state for its value — which
/// holds for every simulation sweep in this crate. Panics in `f`
/// propagate to the caller, as in a serial loop.
pub fn run_indexed<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let base = POINT_BASE.fetch_add(n as u64, Ordering::Relaxed);
    let jobs = runcfg::jobs().min(n.max(1));
    if jobs <= 1 {
        return (0..n)
            .map(|i| trace::with_run_key(base + i as u64, 0, || f(i)))
            .collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let (tx, rx) = mpsc::channel::<(usize, T)>();
        for _ in 0..jobs {
            let tx = tx.clone();
            let cursor = &cursor;
            let f = &f;
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let v = trace::with_run_key(base + i as u64, 0, || f(i));
                // The receiver only disappears if the scope is already
                // unwinding from another worker's panic.
                if tx.send((i, v)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for (i, v) in rx {
            out[i] = Some(v);
        }
    });
    out.into_iter()
        .map(|v| v.expect("every index sent exactly once"))
        .collect()
}

/// A boxed sweep-point closure, as consumed by [`run_thunks`].
pub type Thunk<T> = Box<dyn FnOnce() -> T + Send>;

/// Run one closure per sweep point; returns values in point order.
/// Convenience wrapper over [`run_indexed`] for heterogeneous sweeps
/// built as a list of thunks.
pub fn run_thunks<T: Send>(thunks: Vec<Thunk<T>>) -> Vec<T> {
    let slots: Vec<std::sync::Mutex<Option<Thunk<T>>>> = thunks
        .into_iter()
        .map(|t| std::sync::Mutex::new(Some(t)))
        .collect();
    run_indexed(slots.len(), |i| {
        let thunk = slots[i]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .expect("each thunk runs exactly once");
        thunk()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The jobs knob is process-global; serialize the tests that set it.
    static JOBS_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn results_come_back_in_index_order() {
        let _g = JOBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        for jobs in [1, 4] {
            runcfg::set_jobs(jobs);
            let out = run_indexed(97, |i| i * i);
            assert_eq!(out, (0..97).map(|i| i * i).collect::<Vec<_>>());
        }
        runcfg::set_jobs(0);
    }

    #[test]
    fn pool_actually_fans_out() {
        use std::collections::HashSet;
        let _g = JOBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        runcfg::set_jobs(4);
        let seen: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        run_indexed(64, |_| {
            seen.lock().unwrap().insert(std::thread::current().id());
            // Hold the point long enough that workers overlap.
            std::thread::sleep(std::time::Duration::from_millis(1));
        });
        runcfg::set_jobs(0);
        let n = seen.lock().unwrap().len();
        assert!(n > 1, "expected >1 worker, saw {n}");
    }

    #[test]
    fn thunks_preserve_order() {
        let _g = JOBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        runcfg::set_jobs(3);
        let thunks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..20usize)
            .map(|i| Box::new(move || 100 + i) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        let out = run_thunks(thunks);
        runcfg::set_jobs(0);
        assert_eq!(out, (0..20usize).map(|i| 100 + i).collect::<Vec<_>>());
    }

    #[test]
    fn empty_sweep_is_fine() {
        let out: Vec<u32> = run_indexed(0, |_| unreachable!());
        assert!(out.is_empty());
    }
}
