//! Fault-tolerant experiment harness: run each sweep point on a worker
//! thread with a wall-clock timeout and a bounded retry policy, and keep
//! partial results when individual points fail.
//!
//! The paper's own campaign lost runs to system-software crashes and
//! hangs on the prototype; this harness is the simulation-side analogue,
//! so a single pathological configuration (a migration storm under a
//! high NACK rate, say) costs one labelled row instead of the whole
//! sweep.

use emu_core::fault::SimError;
use emu_core::trace;
use std::sync::mpsc;
use std::time::Duration;

/// Outcome of one sweep point, preserved row-by-row in the results.
#[derive(Debug, Clone, PartialEq)]
pub enum PointOutcome<T> {
    /// The run completed and produced a value.
    Ok(T),
    /// The run returned a structured simulation error (after retries).
    Failed(SimError),
    /// The run exceeded the wall-clock budget (after retries).
    TimedOut(Duration),
}

impl<T> PointOutcome<T> {
    /// Short status token for CSV/status columns.
    pub fn status(&self) -> &'static str {
        match self {
            PointOutcome::Ok(_) => "ok",
            PointOutcome::Failed(_) => "error",
            PointOutcome::TimedOut(_) => "timeout",
        }
    }

    /// The value, if the point succeeded.
    pub fn ok(self) -> Option<T> {
        match self {
            PointOutcome::Ok(v) => Some(v),
            _ => None,
        }
    }
}

/// Retry/timeout policy for a sweep.
#[derive(Debug, Clone, Copy)]
pub struct RunPolicy {
    /// Wall-clock budget per attempt.
    pub timeout: Duration,
    /// Attempts per point (1 = no retry). Deterministic simulations only
    /// benefit from retries on transient errors, i.e. timeouts on a
    /// loaded host — a structured `SimError` is replayed identically, so
    /// it is not retried.
    pub attempts: u32,
}

impl Default for RunPolicy {
    fn default() -> Self {
        RunPolicy {
            timeout: Duration::from_secs(120),
            attempts: 2,
        }
    }
}

/// Synthetic sweep-point ids for `run_point` callers outside any keyed
/// sweep, in a range above every executor-assigned id so their reports
/// sort after keyed sweeps (in call order).
static SYNTH_POINT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1 << 63);

/// Run `f` under `policy`: each attempt on its own worker thread with a
/// wall-clock timeout. A completed attempt (Ok or Err) ends the point —
/// deterministic errors replay identically, so only timeouts retry.
///
/// A timed-out worker thread is detached, not killed: it finishes (or
/// not) in the background while the sweep moves on, which is exactly the
/// "abandon the hung run, keep the campaign going" behaviour the paper's
/// measurement campaign needed on the prototype.
///
/// Telemetry: every attempt runs under the caller's sweep-point key
/// (see [`emu_core::trace::with_run_key`]) with its own attempt number,
/// and the point's outcome is *decided* when an attempt completes — so
/// the process-global report collector keeps exactly the reports of the
/// attempt that produced the row. A detached straggler that finishes
/// after its point was abandoned is dropped, not exported: the `runs`
/// array under `--report-json` matches the table's rows, in sweep
/// order, at any `-j`.
pub fn run_point<T, F>(policy: RunPolicy, f: F) -> PointOutcome<T>
where
    T: Send + 'static,
    F: Fn() -> Result<T, SimError> + Send + Sync + 'static,
{
    use std::sync::atomic::Ordering;
    let point = match trace::current_point() {
        trace::UNKEYED => SYNTH_POINT.fetch_add(1, Ordering::Relaxed),
        p => p,
    };
    let f = std::sync::Arc::new(f);
    let attempts = policy.attempts.max(1);
    for attempt in 0..attempts {
        let (tx, rx) = mpsc::channel();
        let g = std::sync::Arc::clone(&f);
        std::thread::spawn(move || {
            let out = trace::with_run_key(point, attempt, || g());
            // The receiver may have given up; a send error is fine.
            let _ = tx.send(out);
        });
        match rx.recv_timeout(policy.timeout) {
            Ok(Ok(v)) => {
                trace::accept_attempt(point, attempt);
                return PointOutcome::Ok(v);
            }
            Ok(Err(e)) => {
                trace::accept_attempt(point, attempt);
                return PointOutcome::Failed(e);
            }
            Err(mpsc::RecvTimeoutError::Timeout | mpsc::RecvTimeoutError::Disconnected) => {}
        }
    }
    // Every attempt timed out: abandon the point so a straggler that
    // finishes later cannot leak a report into the export.
    trace::accept_attempt(point, u32::MAX);
    PointOutcome::TimedOut(policy.timeout)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ok_point_passes_value_through() {
        let r = run_point(RunPolicy::default(), || Ok(42u64));
        assert_eq!(r, PointOutcome::Ok(42));
        assert_eq!(r.status(), "ok");
    }

    #[test]
    fn sim_error_is_not_retried() {
        use std::sync::atomic::{AtomicU32, Ordering};
        static CALLS: AtomicU32 = AtomicU32::new(0);
        let r: PointOutcome<u64> = run_point(
            RunPolicy {
                attempts: 3,
                ..Default::default()
            },
            || {
                CALLS.fetch_add(1, Ordering::SeqCst);
                Err(SimError::AllNodeletsDead)
            },
        );
        assert_eq!(r, PointOutcome::Failed(SimError::AllNodeletsDead));
        assert_eq!(CALLS.load(Ordering::SeqCst), 1, "errors replay; no retry");
    }

    #[test]
    fn hang_times_out_and_retries() {
        use std::sync::atomic::{AtomicU32, Ordering};
        static TRIES: AtomicU32 = AtomicU32::new(0);
        let r: PointOutcome<u64> = run_point(
            RunPolicy {
                timeout: Duration::from_millis(20),
                attempts: 2,
            },
            || {
                TRIES.fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(Duration::from_secs(30));
                Ok(0)
            },
        );
        assert!(matches!(r, PointOutcome::TimedOut(_)));
        assert_eq!(r.status(), "timeout");
        assert_eq!(TRIES.load(Ordering::SeqCst), 2, "timeouts retry");
    }
}
