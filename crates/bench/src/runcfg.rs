//! Shared run-size configuration for the figure binaries.
//!
//! Every figure binary honours `EMU_QUICK=1`, which divides workload
//! sizes by 8 — useful for smoke-testing the full harness in seconds.

/// Whether quick mode is on.
pub fn quick() -> bool {
    std::env::var("EMU_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Scale a nominal size down in quick mode (never below `min`).
pub fn sized(nominal: u64, min: u64) -> u64 {
    if quick() {
        (nominal / 8).max(min)
    } else {
        nominal
    }
}

/// Scale a usize size.
pub fn sized_usize(nominal: usize, min: usize) -> usize {
    sized(nominal as u64, min as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sized_respects_min() {
        std::env::set_var("EMU_QUICK", "1");
        assert_eq!(sized(64, 32), 32);
        assert_eq!(sized(1024, 16), 128);
        std::env::remove_var("EMU_QUICK");
        assert_eq!(sized(1024, 16), 1024);
    }
}
