//! Shared run-size configuration for the figure binaries.
//!
//! Every figure binary honours `EMU_QUICK=1`, which divides workload
//! sizes by 8 — useful for smoke-testing the full harness in seconds.

/// Default trace ring capacity for `--trace-events` (figure binaries).
/// `simctl trace` defaults to 4x this: it exists to be looked at, while
/// a traced figure run mostly wants the counters and timelines.
pub const DEFAULT_TRACE_EVENTS: usize = 16384;

/// Default timeline bucket width in microseconds for `--trace-bucket-us`.
pub const DEFAULT_TRACE_BUCKET_US: u64 = 20;

use std::sync::atomic::{AtomicUsize, Ordering};

/// Worker-thread count for sweep execution; 0 = not set explicitly.
static JOBS: AtomicUsize = AtomicUsize::new(0);

/// Set the sweep worker count (`--jobs`/`-j`). `0` reverts to the
/// default (the `EMU_JOBS` environment variable, then the host's
/// available parallelism). Re-settable so in-process tests can compare
/// serial and parallel runs.
pub fn set_jobs(n: usize) {
    JOBS.store(n, Ordering::SeqCst);
}

/// Worker threads to fan sweep points across. Never zero.
pub fn jobs() -> usize {
    let set = JOBS.load(Ordering::SeqCst);
    if set > 0 {
        return set;
    }
    if let Ok(v) = std::env::var("EMU_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Whether quick mode is on.
pub fn quick() -> bool {
    std::env::var("EMU_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Scale a nominal size down in quick mode (never below `min`).
pub fn sized(nominal: u64, min: u64) -> u64 {
    if quick() {
        (nominal / 8).max(min)
    } else {
        nominal
    }
}

/// Scale a usize size.
pub fn sized_usize(nominal: usize, min: usize) -> usize {
    sized(nominal as u64, min as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sized_respects_min() {
        std::env::set_var("EMU_QUICK", "1");
        assert_eq!(sized(64, 32), 32);
        assert_eq!(sized(1024, 16), 128);
        std::env::remove_var("EMU_QUICK");
        assert_eq!(sized(1024, 16), 1024);
    }
}
