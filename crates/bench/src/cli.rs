//! Argument parsing and dispatch for the `simctl` binary — a driver
//! that runs any benchmark on any machine preset with overridable
//! parameters, so a downstream user can explore configurations without
//! writing code.
//!
//! Grammar: `simctl <command> [--key value]...`. Parsing is hand-rolled
//! (the workspace deliberately has no CLI dependency) and fully unit
//! tested; the heavy lifting lives in the benchmark crates.

use emu_core::prelude::*;
use std::collections::BTreeMap;

/// A parsed command line: a command word plus `--key value` options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Parsed {
    /// The subcommand (first positional argument).
    pub command: String,
    /// `--key value` pairs, keyed without the dashes.
    pub options: BTreeMap<String, String>,
}

/// Parse `args` (excluding the program name).
///
/// Errors are human-readable strings meant for direct printing.
pub fn parse(args: &[String]) -> Result<Parsed, String> {
    let mut it = args.iter();
    let command = it
        .next()
        .ok_or_else(|| "missing command; try `simctl help`".to_string())?
        .clone();
    if command.starts_with("--") {
        return Err(format!("expected a command before options, got {command}"));
    }
    let mut options = BTreeMap::new();
    while let Some(key) = it.next() {
        let Some(key) = key.strip_prefix("--") else {
            return Err(format!("expected --option, got {key}"));
        };
        let value = it
            .next()
            .ok_or_else(|| format!("--{key} needs a value"))?
            .clone();
        if options.insert(key.to_string(), value).is_some() {
            return Err(format!("--{key} given twice"));
        }
    }
    Ok(Parsed { command, options })
}

impl Parsed {
    /// Fetch an option parsed as `T`, or `default` if absent.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key}: cannot parse {v:?}")),
        }
    }

    /// Fetch a string option with a default.
    pub fn get_str(&self, key: &str, default: &str) -> String {
        self.options
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// Reject options outside `allowed` (typo protection).
    pub fn check_known(&self, allowed: &[&str]) -> Result<(), String> {
        for k in self.options.keys() {
            if !allowed.contains(&k.as_str()) {
                return Err(format!(
                    "unknown option --{k}; allowed: {}",
                    allowed
                        .iter()
                        .map(|a| format!("--{a}"))
                        .collect::<Vec<_>>()
                        .join(" ")
                ));
            }
        }
        Ok(())
    }
}

/// Resolve a machine preset by name (shared vocabulary in
/// [`presets::by_name`]).
pub fn preset_by_name(name: &str) -> Result<MachineConfig, String> {
    presets::by_name(name)
}

/// Resolve a spawn strategy by name.
pub fn strategy_by_name(name: &str) -> Result<SpawnStrategy, String> {
    match name {
        "serial" => Ok(SpawnStrategy::Serial),
        "recursive" => Ok(SpawnStrategy::Recursive),
        "serial-remote" => Ok(SpawnStrategy::SerialRemote),
        "recursive-remote" => Ok(SpawnStrategy::RecursiveRemote),
        other => Err(format!(
            "unknown strategy {other:?}; one of: serial, recursive, serial-remote, recursive-remote"
        )),
    }
}

/// Resolve a chase shuffle mode by name.
pub fn mode_by_name(name: &str) -> Result<membench::chase::ShuffleMode, String> {
    use membench::chase::ShuffleMode::*;
    match name {
        "ordered" => Ok(Ordered),
        "intra" | "intra-block" => Ok(IntraBlock),
        "block" => Ok(BlockShuffle),
        "full" | "full-block" => Ok(FullBlock),
        other => Err(format!(
            "unknown mode {other:?}; one of: ordered, intra, block, full"
        )),
    }
}

/// Top-level usage text.
pub const USAGE: &str = "\
simctl — run any benchmark of the Emu Chick reproduction

USAGE: simctl <command> [--option value]...

COMMANDS
  stream    STREAM kernels        --preset chick --threads 512 --elems 262144
                                  --strategy recursive-remote --kernel add
                                  --single-nodelet false
  chase     pointer chasing       --platform emu|xeon --threads 512 --block 64
                                  --elems 4096 --mode full
  spmv      CSR SpMV              --platform emu|xeon --n 100 --layout 2d
                                  --grain 16 --strategy mkl (xeon)
  pingpong  migration microbench  --preset chick --threads 64 --round-trips 2000
  gups      random atomics        --threads 256 --updates 4096 --table 4194304
  bfs       streaming-graph BFS   --scale 11 --edges 16384 --mode smart
  mttkrp    sparse-tensor kernel  --rank 8 --nnz 16384 --layout blocked
  trace     run a traced workload --bench stream|chase --block 1 --events 65536
            and export telemetry  --bucket-us 20 --trace-out F --jsonl-out F
                                  --report-json F
  fuzz      conformance fuzzing   --cases 500 --seed N --corpus tests/corpus
            (lockstep calendar-vs-heap queue backends, sequential-vs-
            sharded scheduler, + run audit; a failure shrinks to a
            minimal repro written to the corpus as a .scn scenario)
  scenario  conformance suite     run <path>... [--jobs N] [--cache]
            (.scn files)          [--report-json F]
                                  check <path>... | gen <dir>
            (declarative scenarios: machine + workload + faults +
            sweep + expect; `run` executes every point with checksum,
            audit, oracle, monotonicity, and byte-identity checks;
            `gen` regenerates the committed scenarios/ registry;
            `--cache` serves unchanged points from the result cache)
  cache     result-cache tools    stats | gc [--max-mb N]
            (.emu-cache store)    verify [--sample N]
            (content-addressed run results keyed by config + workload
            digests; EMU_CACHE=1 arms caching, EMU_CACHE_DIR moves the
            store, gc prunes oldest-first to EMU_CACHE_MAX_MB; verify
            re-simulates stored recipes and fails on any byte drift)
  pdes-speedup  sharded-scheduler --preset emu64 --shards 4 --threads 512
            microbenchmark        --elems 65536 --gate false --phases false
            (sequential vs N-shard events/sec on STREAM + pointer
            chase; writes pdes_speedup.json under the results dir;
            --gate true exits 1 if the sharded run is slower;
            --phases true prints the drain/barrier/exchange/merge
            wall-clock split of the sharded scheduler)
  presets   list machine presets
  serve     resident simulation daemon: warm engine pool behind a
            TCP/JSONL protocol (EMU_SIMD_* env knobs; see
            EXPERIMENTS.md \"Simulation as a service\")
  client    submit runs/sweeps to a daemon   --addr H:P --threads A,B,C
            --elems N --requests N --health --shutdown --out F
            (retries busy rejections with seeded jittered backoff)
  simd-once execute one request line from stdin on a cold engine
  simd-bench  warm-pool vs cold-process service benchmark; writes
            BENCH_simd.json   --requests N --workers N --gate [MIN]
  top       live dashboard over a daemon's {\"op\":\"metrics\"} snapshots
            --addr H:P --interval MS --once --count N
  help      this text

GLOBAL OPTIONS
  --jobs N  worker threads for parameter sweeps (also: EMU_JOBS; the
            figure binaries and all_figures take --jobs/-j N too).
            Results are identical at any job count.
  --sim-threads N|auto
            shards the event scheduler of every simulated run across N
            worker threads (also: EMU_SIM_THREADS; the figure binaries
            take it too). `auto` splits host cores across --jobs.
            Results are byte-identical at any value.

Every command prints bandwidth/throughput plus the migration counters
relevant to the Emu execution model. `trace` additionally writes a
Chrome trace_event JSON (load in Perfetto / chrome://tracing), a JSONL
event log, and a machine-readable run report under the results dir.";

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parse_basic() {
        let p = parse(&argv("stream --threads 64 --preset chick")).unwrap();
        assert_eq!(p.command, "stream");
        assert_eq!(p.get("threads", 0usize).unwrap(), 64);
        assert_eq!(p.get_str("preset", "x"), "chick");
        assert_eq!(p.get("elems", 7u64).unwrap(), 7);
    }

    #[test]
    fn parse_rejects_bad_shapes() {
        assert!(parse(&[]).is_err());
        assert!(parse(&argv("--threads 4")).is_err());
        assert!(parse(&argv("stream --threads")).is_err());
        assert!(parse(&argv("stream threads 4")).is_err());
        assert!(parse(&argv("stream --t 1 --t 2")).is_err());
    }

    #[test]
    fn typed_get_errors() {
        let p = parse(&argv("x --threads lots")).unwrap();
        assert!(p.get("threads", 0usize).is_err());
    }

    #[test]
    fn check_known_catches_typos() {
        let p = parse(&argv("stream --thread 4")).unwrap();
        assert!(p.check_known(&["threads"]).is_err());
        let p = parse(&argv("stream --threads 4")).unwrap();
        assert!(p.check_known(&["threads"]).is_ok());
    }

    #[test]
    fn resolvers() {
        assert!(preset_by_name("chick").is_ok());
        assert!(preset_by_name("emu64").is_ok());
        assert!(preset_by_name("nope").is_err());
        assert!(strategy_by_name("recursive-remote").is_ok());
        assert!(strategy_by_name("magic").is_err());
        assert!(mode_by_name("full").is_ok());
        assert!(mode_by_name("zigzag").is_err());
    }
}
