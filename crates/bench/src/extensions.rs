//! Extension experiments beyond the paper's figures: the application
//! directions its introduction names (streaming graphs / STINGER, sparse
//! tensors / ParTI), plus cross-platform sweeps of the benchmark
//! dimensions the paper only samples.

use crate::output::Table;
use crate::runcfg::{sized, sized_usize};
use emu_core::prelude::*;
use emu_graph::bfs::{run_bfs_emu, BfsMode};
use emu_graph::gen as graph_gen;
use emu_graph::insert::run_insert_emu;
use emu_graph::stinger::Stinger;
use emu_tensor::coo::{mttkrp_reference, random_tensor};
use emu_tensor::cpu::{run_mttkrp_cpu, CpuMttkrpConfig};
use emu_tensor::emu::{run_mttkrp_emu, EmuMttkrpConfig, TensorLayout};
use membench::chase::{self, ChaseConfig, ShuffleMode};
use membench::stream::{
    cpu::{run_stream_cpu, CpuStreamConfig},
    run_stream_emu, EmuStreamConfig, StreamKernel,
};
use std::sync::Arc;

/// Streaming-graph extension: edge-insertion throughput and BFS with the
/// two migration strategies, on an RMAT graph.
pub fn ext_graph() -> Result<Table, SimError> {
    let cfg = presets::chick_prototype();
    let scale = if crate::runcfg::quick() { 9 } else { 12 };
    let ne = sized_usize(1 << 15, 1 << 11);
    let edges = graph_gen::rmat(scale, ne, 42);
    let mut t = Table::new(
        format!(
            "Extension: streaming graph on the Emu Chick (RMAT scale {scale}, {} edges)",
            edges.len()
        ),
        &["experiment", "threads", "rate", "migrations"],
    );
    for threads in [32usize, 128, 512] {
        let r = run_insert_emu(&cfg, &edges, threads, emu_graph::DEFAULT_BLOCK_CAP)?;
        // Verify the streamed build against a host build.
        let host = Stinger::build_host(&edges, emu_graph::DEFAULT_BLOCK_CAP, 8);
        assert_eq!(
            r.graph.lock().unwrap().canonical_adjacency(),
            host.canonical_adjacency()
        );
        t.row(vec![
            "edge insertion".into(),
            threads.to_string(),
            format!("{:.2} M edges/s", r.edges_per_sec / 1e6),
            r.migrations.to_string(),
        ]);
    }
    let g = Arc::new(Stinger::build_host(&edges, emu_graph::DEFAULT_BLOCK_CAP, 8));
    let reference = g.bfs_reference(0);
    for mode in [BfsMode::Migrating, BfsMode::RemoteFlags] {
        for threads in [64usize, 512] {
            let r = run_bfs_emu(&cfg, Arc::clone(&g), 0, mode, threads)?;
            assert_eq!(r.levels, reference, "BFS diverged");
            t.row(vec![
                format!("BFS ({})", mode.name()),
                threads.to_string(),
                format!("{:.2} M TEPS", r.teps / 1e6),
                r.migrations.to_string(),
            ]);
        }
    }
    Ok(t)
}

/// Sparse-tensor extension: MTTKRP layout x rank on the Emu, plus the
/// Haswell comparison.
pub fn ext_mttkrp() -> Result<Table, SimError> {
    let emu_cfg = presets::chick_prototype();
    let cpu_cfg = xeon_sim::config::haswell();
    let nnz = sized_usize(1 << 15, 1 << 11);
    let t3 = Arc::new(random_tensor([256, 64, 64], nnz, 7));
    let mut t = Table::new(
        format!("Extension: MTTKRP ({} nnz, 256x64x64)", t3.nnz()),
        &[
            "rank",
            "Emu 1D (MB/s)",
            "Emu slice-blocked (MB/s)",
            "Emu 1D migrations",
            "Haswell 56thr (MB/s)",
        ],
    );
    for rank in [1u32, 2, 4, 8, 16] {
        let reference = mttkrp_reference(&t3, rank);
        let mut emu_bw = Vec::new();
        let mut migs = 0;
        for layout in TensorLayout::ALL {
            let r = run_mttkrp_emu(
                &emu_cfg,
                Arc::clone(&t3),
                &EmuMttkrpConfig {
                    layout,
                    rank,
                    nthreads: 512,
                },
            )?;
            let err = reference
                .iter()
                .zip(&r.y)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            assert!(err < 1e-6, "{} rank {rank}: err {err}", layout.name());
            if layout == TensorLayout::OneD {
                migs = r.migrations;
            }
            emu_bw.push(r.bandwidth.mb_per_sec());
        }
        let cpu = run_mttkrp_cpu(
            &cpu_cfg,
            Arc::clone(&t3),
            &CpuMttkrpConfig { rank, nthreads: 56 },
        );
        t.row(vec![
            rank.to_string(),
            format!("{:.1}", emu_bw[0]),
            format!("{:.1}", emu_bw[1]),
            migs.to_string(),
            format!("{:.1}", cpu.bandwidth.mb_per_sec()),
        ]);
    }
    Ok(t)
}

/// The full shuffle-mode matrix of Fig 2, on both platforms at one block
/// size (the paper only plots full_block_shuffle).
pub fn ext_shuffle_modes() -> Result<Table, SimError> {
    let emu_cfg = presets::chick_prototype();
    let cpu_cfg = xeon_sim::config::sandy_bridge();
    let mut t = Table::new(
        "Extension: shuffle modes (block 64, Emu 512thr / Xeon 32thr)",
        &["mode", "Emu (MB/s)", "Xeon (MB/s)"],
    );
    for mode in ShuffleMode::ALL {
        let emu = chase::run_chase_emu(
            &emu_cfg,
            &ChaseConfig {
                elems_per_list: sized_usize(4096, 512),
                nlists: 512,
                block_elems: 64,
                mode,
                seed: 11,
            },
        )?;
        let cpu = chase::cpu::run_chase_cpu(
            &cpu_cfg,
            &ChaseConfig {
                elems_per_list: sized_usize(1 << 17, 1 << 13),
                nlists: 32,
                block_elems: 64,
                mode,
                seed: 11,
            },
        );
        t.row(vec![
            mode.name().into(),
            format!("{:.1}", emu.bandwidth.mb_per_sec()),
            format!("{:.1}", cpu.bandwidth.mb_per_sec()),
        ]);
    }
    Ok(t)
}

/// Full STREAM suite (the paper only reports ADD).
pub fn ext_stream_suite() -> Result<Table, SimError> {
    let emu_cfg = presets::chick_prototype();
    let cpu_cfg = xeon_sim::config::sandy_bridge();
    let mut t = Table::new(
        "Extension: full STREAM suite (Emu 512thr recursive_remote / Xeon 16thr NT)",
        &["kernel", "Emu (MB/s)", "Xeon (GB/s)"],
    );
    for kernel in [
        StreamKernel::Copy,
        StreamKernel::Scale,
        StreamKernel::Add,
        StreamKernel::Triad,
    ] {
        let emu = run_stream_emu(
            &emu_cfg,
            &EmuStreamConfig {
                total_elems: sized(1 << 18, 1 << 13),
                nthreads: 512,
                kernel,
                ..Default::default()
            },
        )?;
        let cpu = run_stream_cpu(
            &cpu_cfg,
            &CpuStreamConfig {
                total_elems: sized(1 << 20, 1 << 14),
                nthreads: 16,
                kernel,
                nt_stores: true,
            },
        );
        t.row(vec![
            kernel.name().into(),
            format!("{:.1}", emu.bandwidth.mb_per_sec()),
            format!("{:.2}", cpu.bandwidth.gb_per_sec()),
        ]);
    }
    Ok(t)
}

/// Multi-node scaling of the prototype (the paper managed one stable
/// 8-node STREAM measurement of 6.5 GB/s).
pub fn ext_multinode() -> Result<Table, SimError> {
    let mut t = Table::new(
        "Extension: node scaling, prototype-grade nodes",
        &[
            "nodes",
            "STREAM (MB/s)",
            "chase blk64 (MB/s)",
            "chase blk1 (MB/s)",
        ],
    );
    for nodes in [1u32, 2, 4, 8] {
        let cfg = MachineConfig {
            nodes,
            ..presets::chick_prototype()
        };
        let threads = 512 * nodes as usize;
        let stream = run_stream_emu(
            &cfg,
            &EmuStreamConfig {
                total_elems: sized(1 << 18, 1 << 13) * nodes as u64,
                nthreads: threads,
                ..Default::default()
            },
        )?;
        let chase_at = |block: usize| -> Result<f64, SimError> {
            Ok(chase::run_chase_emu(
                &cfg,
                &ChaseConfig {
                    elems_per_list: sized_usize(1024, 256).max(block),
                    nlists: threads,
                    block_elems: block,
                    mode: ShuffleMode::FullBlock,
                    seed: 12,
                },
            )?
            .bandwidth
            .mb_per_sec())
        };
        t.row(vec![
            nodes.to_string(),
            format!("{:.1}", stream.bandwidth.mb_per_sec()),
            format!("{:.1}", chase_at(64)?),
            format!("{:.1}", chase_at(1)?),
        ]);
    }
    Ok(t)
}
