//! Ablation studies for the design choices called out in DESIGN.md and
//! the paper's Section V discussion.

use crate::output::Table;
use crate::runcfg::{sized, sized_usize};
use emu_core::prelude::*;
use membench::chase::{self, ChaseConfig, ShuffleMode};
use membench::gups::{self, GupsConfig};
use membench::pingpong::{run_pingpong, PingPongConfig};
use membench::spmv_emu::{run_spmv_emu, EmuLayout, EmuSpmvConfig};
use membench::stream::{run_stream_emu, EmuStreamConfig};
use spmat::{laplacian, LaplacianSpec};
use std::sync::Arc;

/// Grain-size sweep on both platforms: the paper's observation that the
/// Emu prefers tiny grains (16 nnz) while the Xeon prefers huge ones
/// (16384 nnz).
pub fn ablation_grain() -> Result<Table, SimError> {
    let mut t = Table::new(
        "Ablation: SpMV grain size (nnz per task)",
        &["grain", "Emu 2D (MB/s)", "Haswell cilk_spawn (MB/s)"],
    );
    let emu_cfg = presets::chick_prototype();
    let cpu_cfg = xeon_sim::config::haswell();
    let n = if crate::runcfg::quick() { 60 } else { 150 };
    let m = Arc::new(laplacian(LaplacianSpec::paper(n)));
    for grain in [4usize, 16, 64, 256, 1024, 4096, 16384] {
        let emu = run_spmv_emu(
            &emu_cfg,
            Arc::clone(&m),
            &EmuSpmvConfig {
                layout: EmuLayout::TwoD,
                grain_nnz: grain,
            },
        )?;
        let cpu = membench::spmv_cpu::run_spmv_cpu(
            &cpu_cfg,
            Arc::clone(&m),
            &membench::spmv_cpu::CpuSpmvConfig {
                strategy: membench::spmv_cpu::CpuStrategy::CilkSpawn { grain },
                nthreads: 56,
            },
        );
        t.row(vec![
            grain.to_string(),
            format!("{:.1}", emu.bandwidth.mb_per_sec()),
            format!("{:.1}", cpu.bandwidth.mb_per_sec()),
        ]);
    }
    Ok(t)
}

/// Migration-engine rate sweep: how ping-pong and migration-heavy chase
/// scale with the component the 1.0 firmware limited.
pub fn ablation_migration_rate() -> Result<Table, SimError> {
    let mut t = Table::new(
        "Ablation: migration-engine rate per nodelet",
        &[
            "rate (M/s)",
            "pingpong (M mig/s)",
            "chase block=1 (MB/s)",
            "chase block=128 (MB/s)",
        ],
    );
    for rate_m in [1u64, 2, 4, 8, 16, 32] {
        let cfg = MachineConfig {
            migration_rate_per_sec: rate_m * 1_000_000,
            ..presets::chick_prototype()
        };
        let pp = run_pingpong(
            &cfg,
            &PingPongConfig {
                nthreads: 64,
                round_trips: sized(1000, 100) as u32,
                ..Default::default()
            },
        )?;
        let chase_at = |block: usize| -> Result<f64, SimError> {
            Ok(chase::run_chase_emu(
                &cfg,
                &ChaseConfig {
                    elems_per_list: sized_usize(2048, 512),
                    nlists: 256,
                    block_elems: block,
                    mode: ShuffleMode::FullBlock,
                    seed: 2,
                },
            )?
            .bandwidth
            .mb_per_sec())
        };
        t.row(vec![
            rate_m.to_string(),
            format!("{:.1}", pp.migrations_per_sec / 1e6),
            format!("{:.1}", chase_at(1)?),
            format!("{:.1}", chase_at(128)?),
        ]);
    }
    Ok(t)
}

/// Spawn-strategy ramp cost: time to create N no-op workers.
pub fn ablation_spawn_ramp() -> Result<Table, SimError> {
    let cfg = presets::chick_prototype();
    let mut t = Table::new(
        "Ablation: spawn-tree ramp time (no-op workers)",
        &[
            "workers",
            "serial (us)",
            "recursive (us)",
            "serial_remote (us)",
            "recursive_remote (us)",
        ],
    );
    for workers in [64usize, 128, 256, 512] {
        let mut cells = vec![workers.to_string()];
        for strategy in SpawnStrategy::ALL {
            let factory: WorkerFactory = Arc::new(|_| Box::new(ScriptKernel::new(vec![])));
            let mut e = Engine::new(cfg.clone())?;
            e.spawn_at(
                NodeletId(0),
                emu_core::spawn::root_kernel(strategy, workers, 8, factory),
            )?;
            let r = e.run()?;
            cells.push(format!("{:.1}", r.makespan.us_f64()));
        }
        t.row(cells);
    }
    Ok(t)
}

/// The Fig 5 modeling lever: how often workers touch their Cilk frame on
/// the spawn-home nodelet. Period 0 disables the mechanism entirely.
pub fn ablation_stack_touch() -> Result<Table, SimError> {
    let cfg = presets::chick_prototype();
    let mut t = Table::new(
        "Ablation: Cilk-frame (stack) touch period, STREAM 8 nodelets, 512 threads",
        &[
            "touch period",
            "serial_spawn (MB/s)",
            "recursive_remote (MB/s)",
        ],
    );
    for period in [0u32, 1, 2, 4, 8, 16, 64] {
        let mut cells = vec![if period == 0 {
            "off".to_string()
        } else {
            format!("1/{period}")
        }];
        for strategy in [SpawnStrategy::Serial, SpawnStrategy::RecursiveRemote] {
            let r = run_stream_emu(
                &cfg,
                &EmuStreamConfig {
                    total_elems: sized(1 << 17, 1 << 13),
                    nthreads: 512,
                    strategy,
                    stack_touch_period: period,
                    ..Default::default()
                },
            )?;
            cells.push(format!("{:.1}", r.bandwidth.mb_per_sec()));
        }
        t.row(cells);
    }
    Ok(t)
}

/// Prefetcher and NT-store contribution to CPU STREAM and chase.
pub fn ablation_cpu_features() -> Result<Table, SimError> {
    use membench::stream::cpu::{run_stream_cpu, CpuStreamConfig};
    let mut t = Table::new(
        "Ablation: Xeon prefetcher / NT stores",
        &["configuration", "STREAM (GB/s)", "chase block=512 (MB/s)"],
    );
    for (name, prefetch, nt) in [
        ("baseline (pf + NT)", true, true),
        ("no prefetch", false, true),
        ("no NT stores", true, false),
        ("neither", false, false),
    ] {
        let mut cfg = xeon_sim::config::sandy_bridge();
        cfg.prefetch.enabled = prefetch;
        let stream = run_stream_cpu(
            &cfg,
            &CpuStreamConfig {
                total_elems: sized(1 << 19, 1 << 14),
                nthreads: 16,
                nt_stores: nt,
                ..Default::default()
            },
        );
        let chase = chase::cpu::run_chase_cpu(
            &cfg,
            &ChaseConfig {
                elems_per_list: sized_usize(1 << 15, 1 << 12),
                nlists: 16,
                block_elems: 512,
                mode: ShuffleMode::FullBlock,
                seed: 3,
            },
        );
        t.row(vec![
            name.to_string(),
            format!("{:.1}", stream.bandwidth.gb_per_sec()),
            format!("{:.1}", chase.bandwidth.mb_per_sec()),
        ]);
    }
    Ok(t)
}

/// GUPS comparison (extension): Emu memory-side atomics vs Xeon RMW.
pub fn gups_compare() -> Result<Table, SimError> {
    let mut t = Table::new(
        "Extension: GUPS random updates",
        &["platform", "threads", "GUPS", "migrations"],
    );
    let gc = GupsConfig {
        table_words: sized(1 << 20, 1 << 14),
        nthreads: 256,
        updates_per_thread: sized_usize(2048, 256),
        seed: 9,
    };
    let emu = gups::run_gups_emu(&presets::chick_prototype(), &gc)?;
    t.row(vec![
        "Emu Chick (remote atomics)".into(),
        gc.nthreads.to_string(),
        format!("{:.4}", emu.gups),
        emu.migrations.to_string(),
    ]);
    let cpu_gc = GupsConfig {
        nthreads: 32,
        ..gc.clone()
    };
    let cpu = gups::cpu::run_gups_cpu(&xeon_sim::config::sandy_bridge(), &cpu_gc);
    t.row(vec![
        "Sandy Bridge Xeon (RMW)".into(),
        cpu_gc.nthreads.to_string(),
        format!("{:.4}", cpu.gups),
        "0".into(),
    ]);
    Ok(t)
}

/// Scaling the prototype toward the full-speed design point (GC count,
/// clock, DRAM) — the bridge between the Chick and Fig 11's machine.
pub fn ablation_full_speed_path() -> Result<Table, SimError> {
    let mut t = Table::new(
        "Ablation: prototype -> full-speed design point (STREAM, 8 nodelets)",
        &["configuration", "STREAM (MB/s)", "chase 512thr (MB/s)"],
    );
    let steps: [(&str, MachineConfig); 4] = [
        ("prototype (1 GC @150MHz)", presets::chick_prototype()),
        (
            "+300 MHz clock",
            MachineConfig {
                gc_clock: desim::time::Clock::from_mhz(300),
                ..presets::chick_prototype()
            },
        ),
        (
            "+4 GCs",
            MachineConfig {
                gc_clock: desim::time::Clock::from_mhz(300),
                gcs_per_nodelet: 4,
                ..presets::chick_prototype()
            },
        ),
        (
            "full speed (also DDR4-2133, fast engine)",
            presets::chick_full_speed(),
        ),
    ];
    for (name, cfg) in steps {
        let stream = run_stream_emu(
            &cfg,
            &EmuStreamConfig {
                total_elems: sized(1 << 18, 1 << 13),
                nthreads: 512,
                ..Default::default()
            },
        )?;
        let ch = chase::run_chase_emu(
            &cfg,
            &ChaseConfig {
                elems_per_list: sized_usize(2048, 512),
                nlists: 512,
                block_elems: 128,
                mode: ShuffleMode::FullBlock,
                seed: 4,
            },
        )?;
        t.row(vec![
            name.to_string(),
            format!("{:.1}", stream.bandwidth.mb_per_sec()),
            format!("{:.1}", ch.bandwidth.mb_per_sec()),
        ]);
    }
    Ok(t)
}
