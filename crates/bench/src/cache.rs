//! Content-addressed memoization of figure sweep cells.
//!
//! Every figure cell is a pure function of its fully-resolved machine
//! and workload configuration, so a re-run of an unchanged campaign can
//! serve each cell from [`runcache`] instead of re-simulating it. The
//! memo layer is inert unless the cache is enabled (`EMU_CACHE=1` or
//! `runcache::set_enabled`), and it steps aside whenever telemetry is
//! armed — a traced, profiled, or report-collecting run must execute
//! every point for its artifacts to mean anything.
//!
//! Keys hash the `Debug` rendering of the resolved configs, so the
//! `EMU_QUICK` sizing, preset overrides, and seeds all flow into the
//! digest; a knob flip is a different key, never a stale hit.

use emu_core::fault::SimError;
use emu_core::{engine, trace};

/// Whether memoization may serve cells right now.
pub fn active() -> bool {
    runcache::enabled()
        && !trace::collecting_reports()
        && !trace::global().enabled()
        && !engine::phase_profile()
}

fn digest(kind: &str, label: &str, parts: &[(&str, String)]) -> String {
    let mut k = runcache::Key::new(kind);
    k.record("label", label);
    for (name, value) in parts {
        k.record(name, value);
    }
    k.digest()
}

/// Memoize one formatted figure cell (or row — any string artifact).
/// `parts` must capture everything the value depends on, typically the
/// `Debug` of the machine config and of the workload config.
pub fn memo_str(
    label: &str,
    parts: &[(&str, String)],
    f: impl FnOnce() -> Result<String, SimError>,
) -> Result<String, SimError> {
    if !active() {
        return f();
    }
    let d = digest("figcell", label, parts);
    if let Some(e) = runcache::lookup(&d) {
        return Ok(e.payload);
    }
    let v = f()?;
    runcache::publish(
        &d,
        &runcache::Entry {
            kind: "figcell".into(),
            label: label.into(),
            payload: v.clone(),
            recipe: None,
        },
    );
    Ok(v)
}

/// Memoize one scalar measurement. The payload is the f64's shortest
/// round-trip rendering, so the parsed-back value is bit-identical.
pub fn memo_f64(
    label: &str,
    parts: &[(&str, String)],
    f: impl FnOnce() -> Result<f64, SimError>,
) -> Result<f64, SimError> {
    if !active() {
        return f();
    }
    let d = digest("figscalar", label, parts);
    if let Some(e) = runcache::lookup(&d) {
        if let Ok(v) = e.payload.parse::<f64>() {
            return Ok(v);
        }
    }
    let v = f()?;
    runcache::publish(
        &d,
        &runcache::Entry {
            kind: "figscalar".into(),
            label: label.into(),
            payload: format!("{v:?}"),
            recipe: None,
        },
    );
    Ok(v)
}

/// One-line session summary, printed by `all_figures` when the cache is
/// enabled so CI (and humans) can see a warm run re-simulated nothing.
pub fn session_summary() -> String {
    let s = runcache::session_stats();
    format!(
        "[runcache] hits={} misses={} stores={} dir={}",
        s.hits,
        s.misses,
        s.stores,
        runcache::resolve_dir().display()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn memo_is_inert_when_disabled() {
        // The suite never enables the cache, so both calls must run.
        let calls = AtomicUsize::new(0);
        for _ in 0..2 {
            let v = memo_str("t", &[("k", "v".into())], || {
                calls.fetch_add(1, Ordering::Relaxed);
                Ok("x".into())
            })
            .unwrap();
            assert_eq!(v, "x");
        }
        assert_eq!(calls.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn digests_separate_labels_and_parts() {
        let a = digest("figcell", "a", &[("m", "1".into())]);
        let b = digest("figcell", "b", &[("m", "1".into())]);
        let c = digest("figcell", "a", &[("m", "2".into())]);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn f64_payload_round_trips_exactly() {
        let x = 1_234.567_891_011_12_f64 / 3.0;
        let s = format!("{x:?}");
        assert_eq!(s.parse::<f64>().unwrap().to_bits(), x.to_bits());
    }
}
