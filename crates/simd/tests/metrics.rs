//! End-to-end observability: drive a live daemon over TCP, then check
//! that the `{"op":"metrics"}` registry snapshot reconciles exactly
//! against the pool's own `health` counters, and that the hand-rolled
//! Prometheus endpoint exposes the same values in valid text format.
//!
//! Everything runs in one test function: the obs registry is
//! process-global, so a second in-process daemon would pollute the
//! deltas being reconciled.

use simd::client::{request, ClientOpts};
use simd::parse::{parse, Value};
use simd::pool::PoolConfig;
use simd::proto::{run_request_line, RunRequest, Spec};
use simd::server::{metrics_exporter, serve_with, ServeOpts, ServeSummary};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

fn stream_req(id: u64, elems: u64) -> RunRequest {
    RunRequest {
        id,
        spec: Spec::Stream {
            preset: "chick".into(),
            elems,
            threads: 8,
            kernel: "add".into(),
            strategy: "serial".into(),
            single_nodelet: true,
            stack_touch_period: 4,
        },
        deadline_ms: None,
        max_events: None,
        chaos: None,
    }
}

fn start_daemon() -> (SocketAddr, JoinHandle<ServeSummary>) {
    let (addr_tx, addr_rx) = mpsc::channel();
    let handle = std::thread::spawn(move || {
        let opts = ServeOpts {
            addr: "127.0.0.1:0".into(),
            pool: PoolConfig {
                workers: 2,
                queue_cap: 8,
                ..PoolConfig::default()
            },
            drain_ms: 30_000,
            max_conns: 16,
            telemetry_path: None,
            handle_signals: false,
            metrics_addr: None,
        };
        serve_with(opts, move |addr| addr_tx.send(addr).unwrap()).expect("daemon failed")
    });
    let addr = addr_rx.recv().expect("daemon never became ready");
    (addr, handle)
}

/// Fetch one metrics-op snapshot and parse it.
fn metrics_op(opts: &ClientOpts) -> Value {
    let reply = request(opts, "{\"op\":\"metrics\",\"id\":77}").expect("metrics op failed");
    let v = parse(&reply).expect("metrics reply must be valid JSON");
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true), "{reply}");
    v
}

fn op_counter(v: &Value, name: &str) -> u64 {
    v.get("metrics")
        .and_then(|m| m.get("counters"))
        .and_then(|c| c.get(name))
        .and_then(Value::as_u64)
        .unwrap_or(0)
}

fn op_gauge(v: &Value, name: &str) -> i64 {
    v.get("metrics")
        .and_then(|m| m.get("gauges"))
        .and_then(|g| g.get(name))
        .and_then(Value::as_f64)
        .unwrap_or(0.0) as i64
}

fn op_hist_count(v: &Value, name: &str) -> u64 {
    v.get("metrics")
        .and_then(|m| m.get("histograms"))
        .and_then(|h| h.get(name))
        .and_then(|h| h.get("count"))
        .and_then(Value::as_u64)
        .unwrap_or(0)
}

fn health_stat(v: &Value, name: &str) -> u64 {
    v.get("health")
        .and_then(|h| h.get("stats"))
        .and_then(|s| s.get(name))
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("health stats missing {name}"))
}

/// One raw HTTP/1.0 exchange with the exporter.
fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut s = TcpStream::connect(addr).expect("connect exporter");
    write!(s, "GET {path} HTTP/1.0\r\nHost: t\r\n\r\n").unwrap();
    let mut raw = String::new();
    s.read_to_string(&mut raw).expect("read scrape");
    let (head, body) = raw.split_once("\r\n\r\n").expect("HTTP head/body split");
    (head.to_string(), body.to_string())
}

/// Value of one un-labeled series in a Prometheus text body.
fn prom_value(body: &str, name: &str) -> Option<i64> {
    body.lines()
        .find(|l| l.split_whitespace().next() == Some(name))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
}

#[test]
fn metrics_op_and_prometheus_endpoint_reconcile_with_pool_stats() {
    const CLIENTS: usize = 3;
    const PER_CLIENT: usize = 4;
    let (addr, daemon) = start_daemon();
    let opts = ClientOpts {
        addr: addr.to_string(),
        retries: 50,
        backoff_ms: 2,
        seed: 11,
    };

    // Baseline after daemon start: the registry is process-global and
    // cumulative, so all pool assertions are growth since this point.
    let base = metrics_op(&opts);

    // Load: concurrent clients, mixed sizes, plus one garbage line to
    // move the parse-error counter.
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let opts = &opts;
            scope.spawn(move || {
                for i in 0..PER_CLIENT {
                    let id = (c * 100 + i) as u64;
                    let elems = [256u64, 512][(c + i) % 2];
                    let line = run_request_line(&stream_req(id, elems));
                    let reply = request(opts, &line).expect("run failed");
                    assert!(reply.contains("\"ok\":true"), "{reply}");
                }
            });
        }
    });
    {
        let stream = TcpStream::connect(addr).expect("connect daemon");
        let mut w = stream.try_clone().unwrap();
        writeln!(w, "this is not json").unwrap();
        w.flush().unwrap();
        let mut line = String::new();
        BufReader::new(stream).read_line(&mut line).unwrap();
        assert!(line.contains("\"kind\":\"proto\""), "{line}");
    }

    // Quiesced: the metrics-op growth must reconcile exactly against
    // the pool's own (fresh-per-daemon) health counters.
    let health = {
        let reply = request(&opts, "{\"op\":\"health\",\"id\":88}").unwrap();
        parse(&reply).unwrap()
    };
    let cur = metrics_op(&opts);
    let grew = |name: &str| op_counter(&cur, name) - op_counter(&base, name);
    for (series, stat) in [
        ("simd_pool_submitted_total", "submitted"),
        ("simd_pool_accepted_total", "accepted"),
        ("simd_pool_rejected_busy_total", "rejected_busy"),
        ("simd_pool_completed_ok_total", "completed_ok"),
        ("simd_pool_warm_hits_total", "warm_hits"),
        ("simd_pool_cold_builds_total", "cold_builds"),
        ("simd_pool_routed_sticky_total", "routed_sticky"),
        ("simd_pool_failed_panic_total", "failed_panic"),
        ("simd_pool_respawns_total", "respawns"),
    ] {
        assert_eq!(
            grew(series),
            health_stat(&health, stat),
            "{series} must mirror pool stat {stat}"
        );
    }
    let accepted = grew("simd_pool_accepted_total");
    assert_eq!(accepted, (CLIENTS * PER_CLIENT) as u64);
    assert!(
        grew("simd_pool_routed_sticky_total") > 0,
        "identical specs must hit the sticky router"
    );
    assert_eq!(op_gauge(&cur, "simd_pool_in_flight"), 0, "quiesced pool");
    // Every accepted run passed through both latency histograms.
    let hist_grew = |name: &str| op_hist_count(&cur, name) - op_hist_count(&base, name);
    assert_eq!(hist_grew("simd_pool_queue_wait_ns"), accepted);
    assert_eq!(hist_grew("simd_pool_execute_ns"), accepted);
    // Server-level traffic moved too (>=: the metrics ops themselves
    // keep these counters moving).
    assert!(grew("simd_server_connections_total") >= (CLIENTS * PER_CLIENT) as u64);
    assert!(grew("simd_server_bytes_in_total") > 0);
    assert!(grew("simd_server_bytes_out_total") > 0);
    assert_eq!(grew("simd_server_parse_errors_total"), 1);

    // The Prometheus endpoint reads the same registry: values for the
    // quiesced pool counters must match the metrics op exactly.
    let stop = Arc::new(AtomicBool::new(false));
    let (prom_addr, prom_thread) =
        metrics_exporter("127.0.0.1:0", Arc::clone(&stop)).expect("exporter failed to bind");
    let (head, body) = http_get(prom_addr, "/metrics");
    assert!(head.starts_with("HTTP/1.0 200"), "{head}");
    assert!(head.contains("text/plain; version=0.0.4"), "{head}");
    for series in [
        "simd_pool_submitted_total",
        "simd_pool_accepted_total",
        "simd_pool_completed_ok_total",
        "simd_server_connections_total",
        "emu_engine_runs_total",
    ] {
        assert!(
            body.contains(&format!("# TYPE {series} counter")),
            "missing TYPE for {series}"
        );
        assert_eq!(
            prom_value(&body, series),
            Some(op_counter(&cur, series) as i64),
            "{series}: /metrics and the metrics op must agree"
        );
    }
    assert!(body.contains("# TYPE simd_pool_execute_ns summary"));
    assert_eq!(
        prom_value(&body, "simd_pool_execute_ns_count"),
        Some(op_hist_count(&cur, "simd_pool_execute_ns") as i64)
    );
    // A second scrape sees the first one counted.
    let (_, body2) = http_get(prom_addr, "/metrics");
    assert!(
        prom_value(&body2, "simd_server_metrics_scrapes_total") >= Some(1),
        "scrapes must count themselves"
    );
    let (head404, _) = http_get(prom_addr, "/nope");
    assert!(head404.starts_with("HTTP/1.0 404"), "{head404}");
    stop.store(true, Ordering::SeqCst);
    prom_thread.join().expect("exporter thread panicked");

    // Shutdown: the daemon's own conservation audit must stay clean.
    let bye = request(&opts, "{\"op\":\"shutdown\",\"id\":99}").unwrap();
    assert!(bye.contains("\"shutting_down\":true"), "{bye}");
    let summary = daemon.join().expect("daemon thread panicked");
    assert!(summary.drained);
    assert!(summary.violations.is_empty(), "{:?}", summary.violations);
}
