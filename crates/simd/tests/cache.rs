//! Daemon-side result cache: a request whose digest is already stored
//! is answered at admission — no worker dispatch, no engine work — and
//! the pool's conservation laws still hold with the new
//! `served_from_cache` outcome in play.
//!
//! This lives in its own test binary because it arms the process-global
//! cache; the pool's other suites assume it is off.

use simd::pool::{Pool, PoolConfig};
use simd::proto::{report_slice, RunRequest, Spec};
use std::sync::mpsc;
use std::time::Duration;

fn stream_req(id: u64) -> RunRequest {
    RunRequest {
        id,
        spec: Spec::Stream {
            preset: "chick".into(),
            elems: 512,
            threads: 16,
            kernel: "add".into(),
            strategy: "serial".into(),
            single_nodelet: true,
            stack_touch_period: 4,
        },
        deadline_ms: None,
        max_events: None,
        chaos: None,
    }
}

fn submit_and_wait(pool: &Pool, req: RunRequest) -> String {
    let (tx, rx) = mpsc::channel();
    pool.submit(req, tx).expect("admitted");
    rx.recv().expect("one response per accepted request")
}

#[test]
fn repeat_requests_are_served_from_cache_and_reconcile() {
    let dir = std::env::temp_dir().join(format!("emu-cache-simd-test-{}", std::process::id()));
    runcache::set_dir(Some(&dir));
    runcache::set_enabled(true);

    let pool = Pool::start(PoolConfig {
        workers: 2,
        queue_cap: 8,
        ..PoolConfig::default()
    });
    // Cold: executes on a worker and publishes the report.
    let first = submit_and_wait(&pool, stream_req(1));
    assert!(first.contains("\"ok\":true"), "{first}");
    assert!(!first.contains("\"cached\":true"), "{first}");
    // Repeats: answered at admission from the store, byte-identical
    // report, marked cached.
    for i in 0..3 {
        let r = submit_and_wait(&pool, stream_req(10 + i));
        assert!(r.contains("\"cached\":true"), "request {i}: {r}");
        assert_eq!(report_slice(&r).unwrap(), report_slice(&first).unwrap());
    }
    // A different config is a different digest: it must simulate.
    let mut other = stream_req(20);
    if let Spec::Stream { elems, .. } = &mut other.spec {
        *elems = 1024;
    }
    let o = submit_and_wait(&pool, other);
    assert!(o.contains("\"ok\":true"), "{o}");
    assert!(!o.contains("\"cached\":true"), "{o}");
    assert_ne!(report_slice(&o).unwrap(), report_slice(&first).unwrap());

    assert!(pool.drain(Duration::from_secs(10)));
    let s = pool.stats().snapshot();
    assert_eq!(s.completed_ok, 5);
    assert_eq!(s.served_from_cache, 3);
    assert_eq!(s.warm_hits + s.cold_builds, 2);
    assert!(
        pool.stats().reconcile().is_empty(),
        "{:?}",
        pool.stats().reconcile()
    );
    assert!(s.json().contains("\"served_from_cache\":3"), "{}", s.json());

    runcache::set_enabled(false);
    runcache::set_dir(None);
    let _ = std::fs::remove_dir_all(&dir);
}
