//! End-to-end `{"op":"scenario"}`: a live daemon runs a swept `.scn`
//! document point-by-point through the warm pool, evaluates its expect
//! block, and answers one line — pass, assertion failures as data, or
//! a typed protocol error — then drains clean.

use simd::client::{request, ClientOpts};
use simd::parse::{parse, Value};
use simd::pool::PoolConfig;
use simd::proto::{run_request_line, scenario_request_line, RunRequest, ScenarioRequest, Spec};
use simd::server::{serve_with, ServeOpts, ServeSummary};
use std::net::SocketAddr;
use std::sync::mpsc;
use std::thread::JoinHandle;

const SCN: &str = "\
scenario daemon-smoke

machine chick

workload stream
  elems = 64
  threads = 4

sweep elems = 32, 64

expect
  counter events >= 1
  counter threads == 4
  monotonic events nondecreasing over elems
  byte_identical_at_sim_threads = 1, 2
";

fn start_daemon() -> (SocketAddr, JoinHandle<ServeSummary>) {
    let (addr_tx, addr_rx) = mpsc::channel();
    let handle = std::thread::spawn(move || {
        let opts = ServeOpts {
            addr: "127.0.0.1:0".into(),
            pool: PoolConfig {
                workers: 2,
                queue_cap: 4,
                ..PoolConfig::default()
            },
            drain_ms: 30_000,
            max_conns: 8,
            telemetry_path: None,
            handle_signals: false,
            metrics_addr: None,
        };
        serve_with(opts, move |addr| addr_tx.send(addr).unwrap()).expect("daemon failed")
    });
    let addr = addr_rx.recv().expect("daemon never became ready");
    (addr, handle)
}

fn scenario_req(id: u64, text: &str) -> String {
    scenario_request_line(&ScenarioRequest {
        id,
        text: text.into(),
        deadline_ms: None,
        max_events: None,
    })
}

#[test]
fn scenario_op_runs_sweeps_through_the_pool() {
    let (addr, handle) = start_daemon();
    let opts = ClientOpts {
        addr: addr.to_string(),
        ..ClientOpts::default()
    };

    // A clean scenario passes with no failures, both sweep points run.
    let reply = request(&opts, &scenario_req(1, SCN)).unwrap();
    let v = parse(&reply).unwrap_or_else(|e| panic!("{e}: {reply}"));
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true), "{reply}");
    let scn = v.get("scenario").expect("scenario object");
    assert_eq!(
        scn.get("pass").and_then(Value::as_bool),
        Some(true),
        "{reply}"
    );
    assert_eq!(
        scn.get("points").and_then(Value::as_u64),
        Some(2),
        "{reply}"
    );
    assert_eq!(
        scn.get("name").and_then(Value::as_str),
        Some("daemon-smoke"),
        "{reply}"
    );

    // An unmeetable bound is a *result* (ok:true, pass:false), and the
    // failure names the assertion.
    let failing = SCN.replace("counter events >= 1", "counter events >= 999999999999");
    let reply = request(&opts, &scenario_req(2, &failing)).unwrap();
    let v = parse(&reply).unwrap();
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true), "{reply}");
    let scn = v.get("scenario").expect("scenario object");
    assert_eq!(
        scn.get("pass").and_then(Value::as_bool),
        Some(false),
        "{reply}"
    );
    assert!(reply.contains("counter events"), "{reply}");

    // A malformed document is a typed protocol error.
    let reply = request(&opts, &scenario_req(3, "workload warp\n")).unwrap();
    assert!(reply.contains("\"ok\":false"), "{reply}");
    assert!(reply.contains("\"kind\":\"proto\""), "{reply}");

    // A single point replays through the ordinary run op, carrying the
    // outcome document as its report.
    let reply = request(
        &opts,
        &run_request_line(&RunRequest {
            id: 4,
            spec: Spec::ScenarioPoint {
                text: SCN.into(),
                index: 1,
            },
            deadline_ms: None,
            max_events: None,
            chaos: None,
        }),
    )
    .unwrap();
    let v = parse(&reply).unwrap_or_else(|e| panic!("{e}: {reply}"));
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true), "{reply}");
    let point = v.get("report").expect("report object");
    assert_eq!(
        point.get("point").and_then(Value::as_u64),
        Some(1),
        "{reply}"
    );
    assert!(
        matches!(point.get("problems"), Some(Value::Arr(p)) if p.is_empty()),
        "{reply}"
    );

    let bye = request(&opts, "{\"op\":\"shutdown\",\"id\":9}").unwrap();
    assert!(bye.contains("\"shutting_down\":true"), "{bye}");
    let summary = handle.join().expect("daemon thread");
    assert!(summary.drained, "daemon failed to drain");
    assert!(
        summary.violations.is_empty(),
        "conservation violated: {:?}",
        summary.violations
    );
}
