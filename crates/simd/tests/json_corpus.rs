//! The shared-grammar invariant: `emu_core::json::json_ok` (the
//! artifact validator) and `simd::parse::parse` (the protocol reader)
//! are the same strict reader, so they must accept and reject the
//! exact same corpus. A document only one of them rejects would mean a
//! daemon request that validates but does not parse (or vice versa) —
//! the drift this satellite exists to prevent.

use emu_core::json::json_ok;
use simd::parse::parse;

/// Documents both sides must reject, by failure class.
const REJECTED: &[(&str, &str)] = &[
    // Duplicate object keys, at any depth.
    ("dup-key", r#"{"a":1,"a":2}"#),
    ("dup-key-nested", r#"{"o":{"x":true,"x":false}}"#),
    ("dup-key-empty", r#"{"":0,"":1}"#),
    // Lone / malformed surrogates.
    ("lone-high-surrogate", "\"\\ud800\""),
    ("lone-low-surrogate", "\"\\udc00\""),
    ("high-then-text", "\"\\ud800x\""),
    ("swapped-pair", "\"\\ude00\\ud83d\""),
    // Non-finite and malformed numbers (JSON has no NaN/Infinity).
    ("bare-nan", "NaN"),
    ("bare-infinity", "Infinity"),
    ("neg-infinity", "-Infinity"),
    ("nan-in-object", r#"{"x":NaN}"#),
    ("overflowing-exponent", "1e999"),
    ("trailing-dot", "1."),
    ("leading-dot", ".5"),
    ("bare-exponent", "1e"),
    ("leading-zero", "01"),
    ("plus-sign", "+1"),
    // Structural breakage.
    ("empty", ""),
    ("unclosed-object", "{"),
    ("trailing-comma-array", "[1,]"),
    ("trailing-comma-object", r#"{"a":1,}"#),
    ("two-documents", r#"{"a":1}{"b":2}"#),
    ("missing-separator", "[1 2]"),
    ("single-quotes", "{'a':1}"),
    ("bad-keyword", "nul"),
    ("raw-control-in-string", "\"a\u{1}b\""),
    ("bad-escape", "\"\\q\""),
];

/// Documents both sides must accept.
const ACCEPTED: &[(&str, &str)] = &[
    ("empty-object", "{}"),
    ("empty-array", "[]"),
    ("null", "null"),
    ("nested", r#"{"a":[1,2,{"b":null}],"c":"x"}"#),
    ("surrogate-pair", "\"\\ud83d\\ude00\""),
    ("escapes", r#""quote \" slash \\ tab \t""#),
    ("number-grammar", "[-0, 0.5, 1e9, -1.25e-3, 10]"),
    ("same-key-different-objects", r#"[{"a":1},{"a":2}]"#),
    (
        "protocol-request",
        r#"{"op":"run","id":7,"spec":{"kind":"case","case":"a\nb"},"deadline_ms":250}"#,
    ),
    (
        "protocol-response",
        r#"{"id":1,"ok":false,"error":{"kind":"busy","message":"full"},"retry_after_ms":25}"#,
    ),
];

#[test]
fn validator_and_protocol_reader_reject_the_same_corpus() {
    for (name, doc) in REJECTED {
        assert!(!json_ok(doc), "{name}: json_ok accepted {doc:?}");
        assert!(
            parse(doc).is_err(),
            "{name}: protocol reader accepted {doc:?}"
        );
    }
    for (name, doc) in ACCEPTED {
        assert!(json_ok(doc), "{name}: json_ok rejected {doc:?}");
        let err = parse(doc).err();
        assert!(
            err.is_none(),
            "{name}: protocol reader rejected {doc:?}: {err:?}"
        );
    }
}

/// The agreement holds for *every* document, not just hand-picked
/// classes: the two entry points are literally the same function, so
/// any verdict must match on both sides.
#[test]
fn verdicts_agree_document_by_document() {
    for (_, doc) in REJECTED.iter().chain(ACCEPTED) {
        assert_eq!(
            json_ok(doc),
            parse(doc).is_ok(),
            "verdicts diverged on {doc:?}"
        );
    }
}
