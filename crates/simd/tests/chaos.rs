//! Seeded chaos: poison requests (worker panics), deadline-doomed
//! runs, and queue-full rejections thrown at one live pool, all in a
//! single scenario. The acceptance bar: zero lost or corrupted
//! responses — every accepted request is answered exactly once, every
//! successful report is byte-identical to a direct cold run of the
//! same spec, and the pool's conservation counters reconcile exactly.

use desim::rng::{rng_from_seed, trial_seed};
use simd::exec::{execute, WarmSlot};
use simd::pool::{Pool, PoolConfig, Reject};
use simd::proto::{report_slice, Chaos, RunRequest, Spec};
use std::collections::HashMap;
use std::sync::mpsc;
use std::time::Duration;

fn stream_spec(elems: u64) -> Spec {
    Spec::Stream {
        preset: "chick".into(),
        elems,
        threads: 8,
        kernel: "add".into(),
        strategy: "serial".into(),
        single_nodelet: true,
        stack_touch_period: 4,
    }
}

fn normal_req(id: u64, elems: u64) -> RunRequest {
    RunRequest {
        id,
        spec: stream_spec(elems),
        deadline_ms: None,
        max_events: None,
        chaos: None,
    }
}

/// A run that cannot finish inside its deadline: a full-machine
/// recursive-remote STREAM with a 2 ms budget.
fn doomed_req(id: u64) -> RunRequest {
    RunRequest {
        id,
        spec: Spec::Stream {
            preset: "chick".into(),
            elems: 1 << 17,
            threads: 64,
            kernel: "add".into(),
            strategy: "recursive-remote".into(),
            single_nodelet: false,
            stack_touch_period: 4,
        },
        deadline_ms: Some(2),
        max_events: None,
        chaos: None,
    }
}

fn poison_req(id: u64) -> RunRequest {
    let mut r = normal_req(id, 256);
    r.chaos = Some(Chaos::Panic);
    r
}

/// What the daemon must answer for each spec: the direct, cold,
/// single-run report bytes.
fn oracle(elems: &[u64]) -> HashMap<u64, String> {
    elems
        .iter()
        .map(|&e| {
            let out = execute(&mut WarmSlot::new(), &normal_req(0, e), None).unwrap();
            (e, out.report_json)
        })
        .collect()
}

#[test]
fn seeded_chaos_loses_and_corrupts_nothing() {
    const SEED: u64 = 0xC4A0_5EED;
    const SUBMITTERS: usize = 4;
    const PER_SUBMITTER: usize = 6;
    let elems_menu: [u64; 3] = [256, 512, 1024];
    let expected = oracle(&elems_menu);

    let pool = Pool::start(PoolConfig {
        workers: 2,
        queue_cap: 3,
        selfcheck: true,
        ..PoolConfig::default()
    });

    // Phase 1: deterministically provoke a queue-full rejection by
    // over-filling the bounded queue with slow requests.
    let mut fillers = Vec::new();
    let mut saw_busy = false;
    for i in 0..32 {
        let (tx, rx) = mpsc::channel();
        match pool.submit(doomed_req(9000 + i), tx) {
            Ok(()) => fillers.push(rx),
            Err(Reject::Busy { .. }) => {
                saw_busy = true;
                break;
            }
            Err(Reject::Draining) => panic!("pool is not draining"),
        }
    }
    assert!(saw_busy, "queue cap of 3 never produced a busy rejection");
    for rx in fillers {
        let r = rx.recv().expect("filler response lost");
        assert!(
            r.contains("\"kind\":\"deadline\""),
            "filler should deadline out: {r}"
        );
    }

    // Phase 2: the seeded storm — submitters race panics, doomed runs,
    // and normal runs against the same pool. Busy pushback is retried
    // client-side, so every request is eventually accepted.
    let outcomes: Vec<(char, u64, String)> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for s in 0..SUBMITTERS {
            let pool = &pool;
            handles.push(scope.spawn(move || {
                let mut rng = rng_from_seed(trial_seed(SEED, s as u64));
                let mut got = Vec::new();
                for i in 0..PER_SUBMITTER {
                    let id = (s * 100 + i) as u64;
                    let roll = rng.gen_range(0u32..10);
                    let (kind, req) = if roll == 0 {
                        ('p', poison_req(id))
                    } else if roll == 1 {
                        ('d', doomed_req(id))
                    } else {
                        let e = [256u64, 512, 1024][rng.gen_range(0usize..3)];
                        ('n', normal_req(id, e))
                    };
                    let elems = match &req.spec {
                        Spec::Stream { elems, .. } => *elems,
                        _ => 0,
                    };
                    let (tx, rx) = mpsc::channel();
                    loop {
                        match pool.submit(req.clone(), tx.clone()) {
                            Ok(()) => break,
                            Err(Reject::Busy { .. }) => {
                                std::thread::sleep(Duration::from_millis(1))
                            }
                            Err(Reject::Draining) => panic!("pool is not draining"),
                        }
                    }
                    let reply = rx.recv().expect("accepted request lost its response");
                    got.push((kind, elems, reply));
                }
                got
            }));
        }
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("submitter panicked"))
            .collect()
    });

    assert_eq!(outcomes.len(), SUBMITTERS * PER_SUBMITTER);
    let mut panics = 0u64;
    let mut deadlines = 0u64;
    for (kind, elems, reply) in &outcomes {
        match kind {
            'p' => {
                assert!(reply.contains("\"kind\":\"panic\""), "{reply}");
                panics += 1;
            }
            'd' => {
                assert!(reply.contains("\"kind\":\"deadline\""), "{reply}");
                deadlines += 1;
            }
            _ => {
                assert!(reply.contains("\"ok\":true"), "{reply}");
                let report = report_slice(reply).expect("ok response carries a report");
                assert_eq!(
                    report, expected[elems],
                    "response for elems={elems} diverged from a direct cold run"
                );
            }
        }
    }
    // The seed is chosen to exercise all three fault paths; make that
    // explicit so a future reshuffle of the rng stream gets caught.
    assert!(panics >= 1, "seed produced no poison request");
    assert!(deadlines >= 1, "seed produced no deadline-doomed request");

    // Phase 3: drain and reconcile. Nothing may leak.
    assert!(pool.drain(Duration::from_secs(60)), "drain did not quiesce");
    let leaks = pool.stats().reconcile();
    assert!(leaks.is_empty(), "conservation violated: {leaks:?}");
    let s = pool.stats().snapshot();
    assert_eq!(s.in_flight, 0);
    assert_eq!(s.failed_panic, panics);
    assert!(s.respawns >= panics, "every panic must respawn a worker");
    assert!(s.rejected_busy >= 1);
    assert!(s.warm_hits >= 1, "storm never reused a warm engine");
    assert_eq!(s.selfcheck_failures, 0);
    assert_eq!(s.accepted, s.finished());
}
