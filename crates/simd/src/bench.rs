//! Warm-pool vs cold-process service benchmark (`BENCH_simd.json`).
//!
//! Both legs execute the same quick Fig. 4 STREAM point (single
//! nodelet on the Chick preset, small array) with the same concurrency.
//! The warm leg drives the in-process pool, whose workers reuse reset
//! engines; the cold leg spawns one `simd-once` child process per
//! request, paying process startup plus a cold engine build each time —
//! exactly what a daemonless client pays per run. The gate asserts the
//! resident pool is at least `gate_min` times faster.

use crate::pool::{Pool, PoolConfig};
use crate::proto::{run_request_line, RunRequest, Spec};
use std::io::{BufRead, BufReader, Write};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Benchmark shape.
#[derive(Debug, Clone)]
pub struct BenchOpts {
    /// Measured requests per leg.
    pub requests: usize,
    /// Pool workers / client concurrency.
    pub workers: usize,
    /// STREAM elements per request (the quick Fig. 4 point).
    pub elems: u64,
    /// STREAM threadlets per request.
    pub threads: usize,
    /// Minimum warm/cold speedup to pass (`None` = report only).
    pub gate_min: Option<f64>,
}

impl Default for BenchOpts {
    fn default() -> Self {
        BenchOpts {
            requests: 24,
            workers: 4,
            elems: 512,
            threads: 16,
            gate_min: None,
        }
    }
}

/// One leg's latency distribution.
#[derive(Debug, Clone, Copy)]
pub struct Leg {
    /// Requests per second over the leg's wall time.
    pub rps: f64,
    /// Median request latency, ms.
    pub p50_ms: f64,
    /// 99th-percentile request latency, ms.
    pub p99_ms: f64,
    /// Total wall time, ms.
    pub total_ms: f64,
}

fn leg_from(latencies: &mut [Duration], total: Duration, n: usize) -> Leg {
    latencies.sort();
    let ms = |d: Duration| d.as_secs_f64() * 1e3;
    let pick = |q: usize| ms(latencies[(latencies.len() * q / 100).min(latencies.len() - 1)]);
    Leg {
        rps: n as f64 / total.as_secs_f64(),
        p50_ms: pick(50),
        p99_ms: pick(99),
        total_ms: ms(total),
    }
}

fn bench_request(id: u64, opts: &BenchOpts) -> RunRequest {
    RunRequest {
        id,
        spec: Spec::Stream {
            preset: "chick".into(),
            elems: opts.elems,
            threads: opts.threads,
            kernel: "add".into(),
            strategy: "serial".into(),
            single_nodelet: true,
            stack_touch_period: 4,
        },
        deadline_ms: None,
        max_events: None,
        chaos: None,
    }
}

/// Drive `opts.requests` through a warm pool with `opts.workers`
/// concurrent submitters, after one pre-warming round per worker.
fn warm_leg(opts: &BenchOpts) -> Result<Leg, String> {
    let pool = Pool::start(PoolConfig {
        workers: opts.workers,
        queue_cap: 2 * opts.workers + 4,
        ..PoolConfig::default()
    });
    // Pre-warm every slot so the measured leg is steady-state.
    let mut warmups = Vec::new();
    for i in 0..opts.workers {
        let (tx, rx) = mpsc::channel();
        pool.submit(bench_request(i as u64, opts), tx)
            .map_err(|e| format!("warmup rejected: {e:?}"))?;
        warmups.push(rx);
    }
    for rx in warmups {
        let r = rx.recv().map_err(|_| "warmup response lost")?;
        if !r.contains("\"ok\":true") {
            return Err(format!("warmup failed: {r}"));
        }
    }

    let latencies = Arc::new(Mutex::new(Vec::with_capacity(opts.requests)));
    let started = Instant::now();
    std::thread::scope(|scope| -> Result<(), String> {
        let mut handles = Vec::new();
        for w in 0..opts.workers {
            let pool = &pool;
            let latencies = Arc::clone(&latencies);
            let share =
                opts.requests / opts.workers + usize::from(w < opts.requests % opts.workers);
            handles.push(scope.spawn(move || -> Result<(), String> {
                for i in 0..share {
                    let t0 = Instant::now();
                    let (tx, rx) = mpsc::channel();
                    let id = (1000 + w * 1000 + i) as u64;
                    // Block politely if admission pushes back.
                    loop {
                        match pool.submit(bench_request(id, opts), tx.clone()) {
                            Ok(()) => break,
                            Err(_) => std::thread::sleep(Duration::from_millis(1)),
                        }
                    }
                    let r = rx.recv().map_err(|_| "response lost")?;
                    if !r.contains("\"ok\":true") {
                        return Err(format!("warm request failed: {r}"));
                    }
                    latencies.lock().unwrap().push(t0.elapsed());
                }
                Ok(())
            }));
        }
        for h in handles {
            h.join().map_err(|_| "bench submitter panicked")??;
        }
        Ok(())
    })?;
    let total = started.elapsed();
    pool.drain(Duration::from_secs(30));
    let leaks = pool.stats().reconcile();
    if !leaks.is_empty() {
        return Err(format!("pool counters leaked: {leaks:?}"));
    }
    let mut lats = latencies.lock().unwrap().clone();
    Ok(leg_from(&mut lats, total, opts.requests))
}

/// Execute one request in a freshly spawned `simd-once` child process.
fn cold_once(line: &str) -> Result<String, String> {
    let exe = std::env::current_exe().map_err(|e| e.to_string())?;
    let mut child = std::process::Command::new(exe)
        .arg("simd-once")
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .map_err(|e| format!("spawn simd-once: {e}"))?;
    child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(format!("{line}\n").as_bytes())
        .map_err(|e| format!("feed simd-once: {e}"))?;
    let mut reply = String::new();
    BufReader::new(child.stdout.take().expect("piped stdout"))
        .read_line(&mut reply)
        .map_err(|e| format!("read simd-once: {e}"))?;
    let status = child.wait().map_err(|e| e.to_string())?;
    if !status.success() {
        return Err(format!("simd-once exited with {status}"));
    }
    Ok(reply.trim_end().to_string())
}

/// Drive `opts.requests` through one-shot child processes with the
/// same concurrency as the warm leg.
fn cold_leg(opts: &BenchOpts) -> Result<Leg, String> {
    let latencies = Arc::new(Mutex::new(Vec::with_capacity(opts.requests)));
    let started = Instant::now();
    std::thread::scope(|scope| -> Result<(), String> {
        let mut handles = Vec::new();
        for w in 0..opts.workers {
            let latencies = Arc::clone(&latencies);
            let share =
                opts.requests / opts.workers + usize::from(w < opts.requests % opts.workers);
            handles.push(scope.spawn(move || -> Result<(), String> {
                for i in 0..share {
                    let id = (1000 + w * 1000 + i) as u64;
                    let line = run_request_line(&bench_request(id, opts));
                    let t0 = Instant::now();
                    let r = cold_once(&line)?;
                    if !r.contains("\"ok\":true") {
                        return Err(format!("cold request failed: {r}"));
                    }
                    latencies.lock().unwrap().push(t0.elapsed());
                }
                Ok(())
            }));
        }
        for h in handles {
            h.join().map_err(|_| "cold submitter panicked")??;
        }
        Ok(())
    })?;
    let total = started.elapsed();
    let mut lats = latencies.lock().unwrap().clone();
    Ok(leg_from(&mut lats, total, opts.requests))
}

/// Run both legs and render `BENCH_simd.json`. Returns the document
/// and whether the gate (if any) passed.
pub fn run_bench(opts: &BenchOpts) -> Result<(String, bool), String> {
    let warm = warm_leg(opts)?;
    let cold = cold_leg(opts)?;
    let speedup = cold.p50_ms / warm.p50_ms.max(1e-9);
    let pass = opts.gate_min.map(|g| speedup >= g).unwrap_or(true);
    let leg = |l: &Leg| {
        format!(
            "{{\"rps\":{:.3},\"p50_ms\":{:.3},\"p99_ms\":{:.3},\"total_ms\":{:.3}}}",
            l.rps, l.p50_ms, l.p99_ms, l.total_ms
        )
    };
    let json = format!(
        "{{\"bench\":\"simd\",\"requests\":{},\"workers\":{},\
         \"spec\":{{\"preset\":\"chick\",\"elems\":{},\"threads\":{},\"kernel\":\"add\",\
         \"strategy\":\"serial\",\"single_nodelet\":true}},\
         \"warm\":{},\"cold\":{},\"speedup_p50\":{:.3},\"gate_min\":{},\"pass\":{}}}",
        opts.requests,
        opts.workers,
        opts.elems,
        opts.threads,
        leg(&warm),
        leg(&cold),
        speedup,
        opts.gate_min
            .map(|g| format!("{g:.3}"))
            .unwrap_or_else(|| "null".into()),
        pass
    );
    Ok((json, pass))
}
