//! The daemon's wire protocol: newline-delimited JSON over TCP.
//!
//! One request per line, one response line per request, in order.
//! Requests:
//!
//! ```json
//! {"op":"run","id":1,"spec":{...},"deadline_ms":250,"max_events":1000000}
//! {"op":"scenario","id":5,"scenario":"scenario s\n\nmachine chick\n..."}
//! {"op":"health","id":2}
//! {"op":"metrics","id":3}
//! {"op":"shutdown","id":4}
//! ```
//!
//! A `run` spec is either a scripted case in the conformance fuzz
//! codec, `{"kind":"case","case":"<codec text>"}`, or a STREAM point,
//! `{"kind":"stream","preset":"chick","elems":4096,"threads":64,...}`.
//!
//! A `scenario` request carries a complete `.scn` document (the
//! declarative conformance language in the `scenario` crate); the
//! server resolves its sweep and routes every point through the warm
//! pool as an internal `{"kind":"scenario_point"}` spec, then
//! evaluates the `expect` block over the collected outcomes
//! (see [`crate::scn`]).
//!
//! Successful run responses put the report object **last** so its
//! bytes can be compared verbatim against a direct
//! [`emu_core::json::report_json`] call:
//!
//! ```json
//! {"id":1,"ok":true,"worker":0,"warm":true,"report":{...}}
//! ```
//!
//! Failures carry a typed error and, for admission rejections, a
//! retry hint:
//!
//! ```json
//! {"id":1,"ok":false,"error":{"kind":"busy","message":"..."},"retry_after_ms":25}
//! ```

use crate::parse::{parse, Value};
use emu_core::json::jstr;

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit a simulation run.
    Run(RunRequest),
    /// Run a full `.scn` scenario through the warm pool.
    Scenario(ScenarioRequest),
    /// Ask for a pool statistics snapshot.
    Health {
        /// Client-chosen correlation id, echoed in the response.
        id: u64,
    },
    /// Ask for a live-metrics registry snapshot ([`emu_core::obs`]).
    Metrics {
        /// Client-chosen correlation id, echoed in the response.
        id: u64,
    },
    /// Ask the daemon to drain and exit.
    Shutdown {
        /// Client-chosen correlation id, echoed in the response.
        id: u64,
    },
}

/// A `run` request.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRequest {
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// What to simulate.
    pub spec: Spec,
    /// Wall-clock budget override in milliseconds (`None` = server default).
    pub deadline_ms: Option<u64>,
    /// Event-count budget override (`None` = server default).
    pub max_events: Option<u64>,
    /// Test-only fault injection directive.
    pub chaos: Option<Chaos>,
}

/// A `scenario` request: one `.scn` document, executed point by point
/// on the pool with the budgets below applied per point.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioRequest {
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// The full `.scn` text (validated by [`scenario::parse`]).
    pub text: String,
    /// Per-point wall-clock budget override in milliseconds.
    pub deadline_ms: Option<u64>,
    /// Per-point event-count budget override.
    pub max_events: Option<u64>,
}

/// A run payload.
#[derive(Debug, Clone, PartialEq)]
pub enum Spec {
    /// A scripted workload in the conformance fuzz text codec
    /// (machine config plus per-thread op scripts).
    Case {
        /// The codec text, decoded server-side by `conformance::fuzz::decode`.
        text: String,
    },
    /// One Emu STREAM point on a named preset.
    Stream {
        /// Preset name (same vocabulary as the bench CLI: `chick`,
        /// `chick-sim`, `full-speed`, `emu64`, `chick-8node`).
        preset: String,
        /// Total elements.
        elems: u64,
        /// Worker threadlets.
        threads: usize,
        /// Kernel: `add`, `copy`, `scale`, or `triad`.
        kernel: String,
        /// Spawn strategy: `serial`, `recursive`, `serial-remote`,
        /// `recursive-remote`.
        strategy: String,
        /// Pin data and workers to nodelet 0 (the Fig. 4 shape).
        single_nodelet: bool,
        /// Cilk-frame touch period (0 disables).
        stack_touch_period: u32,
    },
    /// One resolved point of a `.scn` scenario. This is how the
    /// server's `{"op":"scenario"}` handler fans a scenario out over
    /// the pool; it is also accepted on the wire so a client can replay
    /// a single sweep point in isolation.
    ScenarioPoint {
        /// The full `.scn` text (each worker re-parses it; scenarios
        /// are small and parsing is allocation-bound, not sim-bound).
        text: String,
        /// Which resolved point to run, in sweep order.
        index: usize,
    },
}

/// Test-only fault injection carried on a run request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Chaos {
    /// Panic inside the worker after admission, before execution.
    Panic,
}

/// Machine-readable failure categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Admission control rejected the request: too many in flight.
    Busy,
    /// The daemon is draining and accepts no new work.
    ShuttingDown,
    /// The request line (or embedded spec) failed to parse/validate.
    Proto,
    /// The simulation itself faulted (deadlock, bad op, ...).
    Sim,
    /// The per-request wall-clock deadline expired.
    Deadline,
    /// The per-request event budget was exhausted.
    EventCap,
    /// The worker panicked while handling the request.
    Panic,
    /// The run finished but its report failed the audit invariants.
    Audit,
}

impl ErrorKind {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            ErrorKind::Busy => "busy",
            ErrorKind::ShuttingDown => "shutting_down",
            ErrorKind::Proto => "proto",
            ErrorKind::Sim => "sim",
            ErrorKind::Deadline => "deadline",
            ErrorKind::EventCap => "event_cap",
            ErrorKind::Panic => "panic",
            ErrorKind::Audit => "audit",
        }
    }
}

/// Render a success response. `report` must be the exact
/// [`emu_core::json::report_json`] document; it is embedded verbatim,
/// last, so clients can slice it back out byte-for-byte.
pub fn ok_response(id: u64, worker: usize, warm: bool, report: &str) -> String {
    format!("{{\"id\":{id},\"ok\":true,\"worker\":{worker},\"warm\":{warm},\"report\":{report}}}")
}

/// Render a success response served from the content-addressed result
/// cache without dispatching to a worker. Same shape contract as
/// [`ok_response`] — the report is embedded verbatim and last — with a
/// `"cached":true` marker instead of worker/warm provenance.
pub fn cached_response(id: u64, report: &str) -> String {
    format!("{{\"id\":{id},\"ok\":true,\"cached\":true,\"warm\":false,\"report\":{report}}}")
}

/// Render a failure response.
pub fn err_response(
    id: u64,
    kind: ErrorKind,
    message: &str,
    retry_after_ms: Option<u64>,
) -> String {
    let retry = match retry_after_ms {
        Some(ms) => format!(",\"retry_after_ms\":{ms}"),
        None => String::new(),
    };
    format!(
        "{{\"id\":{id},\"ok\":false,\"error\":{{\"kind\":{},\"message\":{}}}{retry}}}",
        jstr(kind.name()),
        jstr(message)
    )
}

/// Extract the embedded report object from an `ok` response produced by
/// [`ok_response`]. Returns `None` for error responses.
pub fn report_slice(response: &str) -> Option<&str> {
    let marker = "\"report\":";
    let at = response.find(marker)?;
    let body = &response[at + marker.len()..];
    body.strip_suffix('}')
}

/// Parse one request line.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = parse(line)?;
    let id = v
        .get("id")
        .and_then(Value::as_u64)
        .ok_or("missing or invalid \"id\"")?;
    let op = v
        .get("op")
        .and_then(Value::as_str)
        .ok_or("missing \"op\"")?;
    match op {
        "health" => Ok(Request::Health { id }),
        "metrics" => Ok(Request::Metrics { id }),
        "shutdown" => Ok(Request::Shutdown { id }),
        "run" => {
            let spec = parse_spec(v.get("spec").ok_or("run request missing \"spec\"")?)?;
            let deadline_ms = opt_u64(&v, "deadline_ms")?;
            let max_events = opt_u64(&v, "max_events")?;
            let chaos = match v.get("chaos") {
                None | Some(Value::Null) => None,
                Some(Value::Str(s)) if s == "panic" => Some(Chaos::Panic),
                Some(other) => return Err(format!("unknown chaos directive {other:?}")),
            };
            Ok(Request::Run(RunRequest {
                id,
                spec,
                deadline_ms,
                max_events,
                chaos,
            }))
        }
        "scenario" => {
            let text = v
                .get("scenario")
                .and_then(Value::as_str)
                .ok_or("scenario request missing \"scenario\" text")?;
            Ok(Request::Scenario(ScenarioRequest {
                id,
                text: text.to_string(),
                deadline_ms: opt_u64(&v, "deadline_ms")?,
                max_events: opt_u64(&v, "max_events")?,
            }))
        }
        other => Err(format!("unknown op {other:?}")),
    }
}

fn opt_u64(v: &Value, key: &str) -> Result<Option<u64>, String> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(n) => n
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("{key:?} must be a non-negative integer")),
    }
}

fn parse_spec(v: &Value) -> Result<Spec, String> {
    let kind = v
        .get("kind")
        .and_then(Value::as_str)
        .ok_or("spec missing \"kind\"")?;
    match kind {
        "case" => {
            let text = v
                .get("case")
                .and_then(Value::as_str)
                .ok_or("case spec missing \"case\" text")?;
            Ok(Spec::Case {
                text: text.to_string(),
            })
        }
        "stream" => {
            let field = |k: &str| v.get(k).and_then(Value::as_str).map(str::to_string);
            let num = |k: &str, d: u64| v.get(k).and_then(Value::as_u64).unwrap_or(d);
            Ok(Spec::Stream {
                preset: field("preset").unwrap_or_else(|| "chick".into()),
                elems: num("elems", 4096),
                threads: num("threads", 64) as usize,
                kernel: field("kernel").unwrap_or_else(|| "add".into()),
                strategy: field("strategy").unwrap_or_else(|| "recursive-remote".into()),
                single_nodelet: v
                    .get("single_nodelet")
                    .and_then(Value::as_bool)
                    .unwrap_or(false),
                stack_touch_period: num("stack_touch_period", 4) as u32,
            })
        }
        "scenario_point" => {
            let text = v
                .get("scenario")
                .and_then(Value::as_str)
                .ok_or("scenario_point spec missing \"scenario\" text")?;
            let index = v
                .get("index")
                .and_then(Value::as_u64)
                .ok_or("scenario_point spec missing \"index\"")?;
            Ok(Spec::ScenarioPoint {
                text: text.to_string(),
                index: index as usize,
            })
        }
        other => Err(format!("unknown spec kind {other:?}")),
    }
}

/// Render a run request line (the client side of [`parse_request`]).
pub fn run_request_line(req: &RunRequest) -> String {
    let spec = match &req.spec {
        Spec::Case { text } => format!("{{\"kind\":\"case\",\"case\":{}}}", jstr(text)),
        Spec::Stream {
            preset,
            elems,
            threads,
            kernel,
            strategy,
            single_nodelet,
            stack_touch_period,
        } => format!(
            "{{\"kind\":\"stream\",\"preset\":{},\"elems\":{elems},\"threads\":{threads},\
             \"kernel\":{},\"strategy\":{},\"single_nodelet\":{single_nodelet},\
             \"stack_touch_period\":{stack_touch_period}}}",
            jstr(preset),
            jstr(kernel),
            jstr(strategy)
        ),
        Spec::ScenarioPoint { text, index } => format!(
            "{{\"kind\":\"scenario_point\",\"scenario\":{},\"index\":{index}}}",
            jstr(text)
        ),
    };
    let mut line = format!("{{\"op\":\"run\",\"id\":{},\"spec\":{spec}", req.id);
    if let Some(ms) = req.deadline_ms {
        line.push_str(&format!(",\"deadline_ms\":{ms}"));
    }
    if let Some(n) = req.max_events {
        line.push_str(&format!(",\"max_events\":{n}"));
    }
    if req.chaos == Some(Chaos::Panic) {
        line.push_str(",\"chaos\":\"panic\"");
    }
    line.push('}');
    line
}

/// Render a scenario request line (the client side of
/// [`parse_request`]'s `scenario` arm).
pub fn scenario_request_line(req: &ScenarioRequest) -> String {
    let mut line = format!(
        "{{\"op\":\"scenario\",\"id\":{},\"scenario\":{}",
        req.id,
        jstr(&req.text)
    );
    if let Some(ms) = req.deadline_ms {
        line.push_str(&format!(",\"deadline_ms\":{ms}"));
    }
    if let Some(n) = req.max_events {
        line.push_str(&format!(",\"max_events\":{n}"));
    }
    line.push('}');
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_request_round_trips() {
        let req = RunRequest {
            id: 42,
            spec: Spec::Stream {
                preset: "chick".into(),
                elems: 4096,
                threads: 64,
                kernel: "add".into(),
                strategy: "serial".into(),
                single_nodelet: true,
                stack_touch_period: 4,
            },
            deadline_ms: Some(250),
            max_events: Some(1_000_000),
            chaos: None,
        };
        let line = run_request_line(&req);
        assert_eq!(parse_request(&line).unwrap(), Request::Run(req));
    }

    #[test]
    fn case_spec_survives_newlines() {
        let req = RunRequest {
            id: 1,
            spec: Spec::Case {
                text: "# case\nseed=3\nthread=0 L0:8 C5\n".into(),
            },
            deadline_ms: None,
            max_events: None,
            chaos: Some(Chaos::Panic),
        };
        let line = run_request_line(&req);
        assert!(!line.contains('\n'), "request line must stay one line");
        assert_eq!(parse_request(&line).unwrap(), Request::Run(req));
    }

    #[test]
    fn scenario_request_round_trips() {
        let req = ScenarioRequest {
            id: 77,
            text: "scenario s\n\nmachine chick\n\nworkload stream\n  elems = 64\n".into(),
            deadline_ms: Some(500),
            max_events: None,
        };
        let line = scenario_request_line(&req);
        assert!(!line.contains('\n'), "request line must stay one line");
        assert_eq!(parse_request(&line).unwrap(), Request::Scenario(req));
        assert!(parse_request(r#"{"op":"scenario","id":1}"#).is_err());
    }

    #[test]
    fn scenario_point_spec_round_trips() {
        let req = RunRequest {
            id: 8,
            spec: Spec::ScenarioPoint {
                text: "scenario s\n\nmachine chick\n\nworkload stream\n".into(),
                index: 3,
            },
            deadline_ms: None,
            max_events: Some(1_000_000),
            chaos: None,
        };
        let line = run_request_line(&req);
        assert_eq!(parse_request(&line).unwrap(), Request::Run(req));
    }

    #[test]
    fn control_ops_parse() {
        assert_eq!(
            parse_request(r#"{"op":"health","id":9}"#).unwrap(),
            Request::Health { id: 9 }
        );
        assert_eq!(
            parse_request(r#"{"op":"metrics","id":11}"#).unwrap(),
            Request::Metrics { id: 11 }
        );
        assert_eq!(
            parse_request(r#"{"op":"shutdown","id":10}"#).unwrap(),
            Request::Shutdown { id: 10 }
        );
        assert!(parse_request(r#"{"op":"run","id":1}"#).is_err());
        assert!(parse_request(r#"{"op":"nope","id":1}"#).is_err());
        assert!(parse_request("not json").is_err());
    }

    #[test]
    fn responses_are_valid_json_and_sliceable() {
        use emu_core::json::json_ok;
        let ok = ok_response(3, 1, true, "{\"label\":\"run\"}");
        assert!(json_ok(&ok), "{ok}");
        assert_eq!(report_slice(&ok), Some("{\"label\":\"run\"}"));

        let err = err_response(4, ErrorKind::Busy, "queue full (8 in flight)", Some(25));
        assert!(json_ok(&err), "{err}");
        assert!(err.contains("\"kind\":\"busy\""));
        assert!(err.contains("\"retry_after_ms\":25"));
        assert_eq!(report_slice(&err), None);
    }
}
