//! The `{"op":"scenario"}` handler: run a declarative `.scn` scenario
//! with every resolved sweep point routed through the warm pool.
//!
//! The connection thread parses and resolves the scenario, submits one
//! [`Spec::ScenarioPoint`] run per point (bounded busy retry, so a
//! scenario larger than the admission cap still drains), collects the
//! per-point outcome documents, and evaluates the scenario's `expect`
//! block over them with the pure [`scenario::evaluate`]. Point
//! execution therefore gets everything the pool gives ordinary runs —
//! admission control, panic isolation, respawn — while cross-point
//! assertions (monotonicity, byte identity) are checked exactly once,
//! server-side.
//!
//! A [`PointOutcome`] crosses the pool boundary as the "report" object
//! of an ordinary ok response:
//!
//! ```json
//! {"point":0,"axes":[["elems","64"]],"metrics":{"events":42},
//!  "fingerprints":[[1,"{...}"],[2,"{...}"]],"problems":[]}
//! ```

use crate::parse::{parse, Value};
use crate::pool::{Pool, Reject};
use crate::proto::{err_response, report_slice, ErrorKind, RunRequest, ScenarioRequest, Spec};
use emu_core::json::{jnum, jstr};
use scenario::run::PointOutcome;
use std::sync::mpsc;
use std::time::Duration;

/// Busy-retry budget per point submission: the pool advertises ~25 ms
/// hints; 400 × 5 ms ≈ 2 s of pushback before the scenario gives up.
const BUSY_RETRIES: u32 = 400;

/// Serialize one point outcome as a JSON object (strict-reader clean;
/// non-finite metrics become `null` and fail decoding loudly).
pub fn point_outcome_json(o: &PointOutcome) -> String {
    let axes: Vec<String> = o
        .axes
        .iter()
        .map(|(k, v)| format!("[{},{}]", jstr(k), jstr(v)))
        .collect();
    let metrics: Vec<String> = o
        .metrics
        .iter()
        .map(|(k, v)| format!("{}:{}", jstr(k), jnum(*v)))
        .collect();
    let fps: Vec<String> = o
        .fingerprints
        .iter()
        .map(|(n, fp)| format!("[{n},{}]", jstr(fp)))
        .collect();
    let problems: Vec<String> = o.problems.iter().map(|p| jstr(p)).collect();
    format!(
        "{{\"point\":{},\"axes\":[{}],\"metrics\":{{{}}},\"fingerprints\":[{}],\"problems\":[{}]}}",
        o.index,
        axes.join(","),
        metrics.join(","),
        fps.join(","),
        problems.join(",")
    )
}

/// Decode [`point_outcome_json`]'s document.
pub fn point_outcome_from_json(text: &str) -> Result<PointOutcome, String> {
    let v = parse(text).map_err(|e| format!("bad point outcome: {e}"))?;
    let index = v
        .get("point")
        .and_then(Value::as_u64)
        .ok_or("point outcome missing \"point\"")? as usize;
    let mut axes = Vec::new();
    let Some(Value::Arr(items)) = v.get("axes") else {
        return Err("point outcome missing \"axes\"".into());
    };
    for item in items {
        match item {
            Value::Arr(kv) if kv.len() == 2 => {
                let k = kv[0].as_str().ok_or("axis key must be a string")?;
                let val = kv[1].as_str().ok_or("axis value must be a string")?;
                axes.push((k.to_string(), val.to_string()));
            }
            _ => return Err("each axis must be a [key, value] pair".into()),
        }
    }
    let mut metrics = std::collections::BTreeMap::new();
    let Some(Value::Obj(pairs)) = v.get("metrics") else {
        return Err("point outcome missing \"metrics\"".into());
    };
    for (k, val) in pairs {
        let x = val
            .as_f64()
            .ok_or_else(|| format!("metric {k:?} is not a finite number"))?;
        metrics.insert(k.clone(), x);
    }
    let mut fingerprints = Vec::new();
    let Some(Value::Arr(items)) = v.get("fingerprints") else {
        return Err("point outcome missing \"fingerprints\"".into());
    };
    for item in items {
        match item {
            Value::Arr(pair) if pair.len() == 2 => {
                let n = pair[0]
                    .as_u64()
                    .ok_or("fingerprint worker count must be an integer")?;
                let fp = pair[1].as_str().ok_or("fingerprint must be a string")?;
                fingerprints.push((n as usize, fp.to_string()));
            }
            _ => return Err("each fingerprint must be a [count, report] pair".into()),
        }
    }
    let mut problems = Vec::new();
    let Some(Value::Arr(items)) = v.get("problems") else {
        return Err("point outcome missing \"problems\"".into());
    };
    for item in items {
        problems.push(item.as_str().ok_or("problems must be strings")?.to_string());
    }
    Ok(PointOutcome {
        index,
        axes,
        metrics,
        fingerprints,
        problems,
    })
}

/// Summarize an error response line as a failure string (falls back to
/// the raw line if it is not the expected shape).
fn error_summary(line: &str) -> String {
    parse(line)
        .ok()
        .and_then(|v| {
            let err = v.get("error")?;
            Some(format!(
                "{}: {}",
                err.get("kind")?.as_str()?,
                err.get("message")?.as_str()?
            ))
        })
        .unwrap_or_else(|| line.to_string())
}

/// Handle one scenario request end to end. Always returns exactly one
/// response line: a typed error for bad scenarios or an unavailable
/// pool, else `{"id":..,"ok":true,"scenario":{..,"pass":..}}` whose
/// `pass` reflects the evaluated expect block (an assertion failure is
/// a *result*, not a protocol error).
pub fn handle(pool: &Pool, req: &ScenarioRequest) -> String {
    let s = match scenario::parse(&req.text) {
        Ok(s) => s,
        Err(e) => {
            return err_response(
                req.id,
                ErrorKind::Proto,
                &format!("bad scenario: {e}"),
                None,
            )
        }
    };
    let points = match scenario::resolve(&s) {
        Ok(p) => p,
        Err(e) => return err_response(req.id, ErrorKind::Proto, &e, None),
    };

    // Fan out: submit every point before reading any response, so the
    // pool keeps all workers busy; accepted submissions always answer.
    let mut receivers = Vec::with_capacity(points.len());
    for i in 0..points.len() {
        let sub = RunRequest {
            id: req.id,
            spec: Spec::ScenarioPoint {
                text: req.text.clone(),
                index: i,
            },
            deadline_ms: req.deadline_ms,
            max_events: req.max_events,
            chaos: None,
        };
        let (tx, rx) = mpsc::channel();
        let mut attempts = 0;
        loop {
            match pool.submit(sub.clone(), tx.clone()) {
                Ok(()) => break,
                Err(Reject::Busy { .. }) if attempts < BUSY_RETRIES => {
                    attempts += 1;
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(Reject::Busy { in_flight }) => {
                    return err_response(
                        req.id,
                        ErrorKind::Busy,
                        &format!("scenario point {i} starved ({in_flight} in flight)"),
                        Some(25),
                    );
                }
                Err(Reject::Draining) => {
                    return err_response(
                        req.id,
                        ErrorKind::ShuttingDown,
                        "daemon is draining",
                        None,
                    );
                }
            }
        }
        receivers.push(rx);
    }

    // Collect in sweep order. A point the pool failed (panic, typed
    // sim error) becomes a scenario failure; the expect block is still
    // evaluated over the points that did come back, so the response
    // lists everything wrong, not just the first transport loss.
    let mut outcomes: Vec<PointOutcome> = Vec::with_capacity(points.len());
    let mut failures: Vec<String> = Vec::new();
    for (i, rx) in receivers.into_iter().enumerate() {
        let line = rx.recv().unwrap_or_else(|_| {
            err_response(req.id, ErrorKind::Panic, "response channel lost", None)
        });
        match report_slice(&line) {
            Some(doc) => match point_outcome_from_json(doc) {
                Ok(o) => outcomes.push(o),
                Err(e) => failures.push(format!("point {i}: {e}")),
            },
            None => failures.push(format!("point {i}: {}", error_summary(&line))),
        }
    }
    failures.extend(scenario::evaluate(&s, &outcomes));
    scenario_response(req.id, &s.name, points.len(), &failures)
}

/// The daemonless leg: run the scenario inline on this thread (the
/// `simd-once` comparator has no pool), same response shape as
/// [`handle`].
pub fn handle_once(req: &ScenarioRequest) -> String {
    match scenario::parse(&req.text) {
        Err(e) => err_response(
            req.id,
            ErrorKind::Proto,
            &format!("bad scenario: {e}"),
            None,
        ),
        Ok(s) => {
            let outcome = scenario::run_scenario(&s);
            scenario_response(
                req.id,
                &outcome.name,
                outcome.points.len(),
                &outcome.failures,
            )
        }
    }
}

/// Render the `ok` scenario response line.
fn scenario_response(id: u64, name: &str, points: usize, failures: &[String]) -> String {
    let pass = failures.is_empty();
    let listed: Vec<String> = failures.iter().map(|f| jstr(f)).collect();
    format!(
        "{{\"id\":{id},\"ok\":true,\"scenario\":{{\"name\":{},\"points\":{points},\"pass\":{pass},\"failures\":[{}]}}}}",
        jstr(name),
        listed.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use emu_core::json::json_ok;

    fn sample() -> PointOutcome {
        let mut metrics = std::collections::BTreeMap::new();
        metrics.insert("events".to_string(), 42.0);
        metrics.insert("bandwidth_bps".to_string(), 1.25e9);
        metrics.insert("oracle:stream-saturated".to_string(), 0.993);
        PointOutcome {
            index: 3,
            axes: vec![("elems".into(), "64".into())],
            metrics,
            fingerprints: vec![
                (1, "{\"label\":\"s\"}".into()),
                (2, "{\"label\":\"s\"}".into()),
            ],
            problems: vec!["audit: \"quoted\" detail".into()],
        }
    }

    #[test]
    fn point_outcome_round_trips() {
        let o = sample();
        let doc = point_outcome_json(&o);
        assert!(json_ok(&doc), "{doc}");
        assert_eq!(point_outcome_from_json(&doc).unwrap(), o);
    }

    #[test]
    fn empty_outcome_round_trips() {
        let o = PointOutcome {
            index: 0,
            axes: vec![],
            metrics: Default::default(),
            fingerprints: vec![],
            problems: vec![],
        };
        let doc = point_outcome_json(&o);
        assert!(json_ok(&doc), "{doc}");
        assert_eq!(point_outcome_from_json(&doc).unwrap(), o);
    }

    #[test]
    fn truncated_outcomes_are_rejected() {
        assert!(point_outcome_from_json("{}").is_err());
        assert!(point_outcome_from_json("{\"point\":0}").is_err());
        assert!(point_outcome_from_json("not json").is_err());
    }
}
