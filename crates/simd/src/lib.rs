//! `simd` — the resident simulation daemon.
//!
//! Rebuilding an [`Engine`](emu_core::engine::Engine) for every run is
//! the dominant cost of short requests (figure sweeps, conformance
//! cases, CI probes). This crate keeps a pool of **warm** engines
//! resident behind a TCP/JSONL protocol and hardens every layer:
//!
//! - **Warm reuse** — each worker parks its engine after a successful
//!   run and [`Engine::reset`](emu_core::engine::Engine::reset)s it for
//!   the next request with the same machine config. Reset-vs-cold
//!   byte identity is enforced by emu-core's `reset_reuse` regression
//!   suite, by the report audit on every response, and optionally by
//!   an online self-check (`EMU_SIMD_SELFCHECK=1`).
//! - **Admission control** — a bounded in-flight cap; overload gets an
//!   explicit `busy` rejection with a retry hint instead of unbounded
//!   queueing.
//! - **Deadlines** — per-request wall-clock budgets armed on a timer
//!   wheel and polled cooperatively by the engine
//!   ([`SimError::DeadlineExceeded`](emu_core::fault::SimError)), plus
//!   per-request event caps.
//! - **Fault isolation** — a panicking worker is caught, answered on
//!   behalf of, and respawned by a supervisor; its queue (owned by the
//!   pool) loses nothing, and other in-flight requests are untouched.
//! - **Graceful drain** — shutdown stops admission, lets in-flight
//!   work finish or deadline out, then flushes a telemetry summary
//!   whose counters must reconcile exactly.
//!
//! Configuration is environment-driven (`EMU_SIMD_*`); the knobs are
//! documented in EXPERIMENTS.md.

#![warn(missing_docs)]

pub mod bench;
pub mod client;
pub mod exec;
pub mod parse;
pub mod pool;
pub mod proto;
pub mod scn;
pub mod server;
pub mod top;

use pool::PoolConfig;
use server::ServeOpts;

/// Read a `u64` env knob, falling back to `default` when unset/invalid.
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Read a boolean env knob: set and not `0`/empty means on.
pub fn env_flag(name: &str) -> bool {
    std::env::var(name)
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false)
}

/// Build a [`PoolConfig`] from the `EMU_SIMD_*` environment.
pub fn pool_config_from_env() -> PoolConfig {
    let workers = env_u64("EMU_SIMD_WORKERS", 2).max(1) as usize;
    PoolConfig {
        workers,
        queue_cap: env_u64("EMU_SIMD_QUEUE", 2 * workers as u64 + 4).max(1) as usize,
        default_deadline_ms: env_u64("EMU_SIMD_DEADLINE_MS", 0),
        default_max_events: env_u64("EMU_SIMD_MAX_EVENTS", 0),
        selfcheck: env_flag("EMU_SIMD_SELFCHECK"),
    }
}

/// Build [`ServeOpts`] from the `EMU_SIMD_*` environment.
pub fn serve_opts_from_env() -> ServeOpts {
    ServeOpts {
        addr: std::env::var("EMU_SIMD_ADDR").unwrap_or_else(|_| "127.0.0.1:7677".into()),
        pool: pool_config_from_env(),
        drain_ms: env_u64("EMU_SIMD_DRAIN_MS", 10_000),
        max_conns: env_u64("EMU_SIMD_MAX_CONNS", 32).max(1) as usize,
        telemetry_path: std::env::var("EMU_SIMD_TELEMETRY")
            .ok()
            .filter(|p| !p.is_empty()),
        handle_signals: true,
        metrics_addr: std::env::var("EMU_SIMD_METRICS_ADDR")
            .ok()
            .filter(|a| !a.is_empty()),
    }
}

/// The cold one-shot comparator: read one request line from stdin,
/// execute it on a fresh engine, write the response line to stdout.
///
/// This is what a daemonless client pays per run — process startup
/// plus a cold engine build — and is the `cold` leg of the service
/// benchmark as well as the byte-identity oracle for tests.
pub fn run_once_stdin() -> i32 {
    use std::io::{BufRead, Write};
    let mut line = String::new();
    if std::io::stdin().lock().read_line(&mut line).is_err() || line.trim().is_empty() {
        eprintln!("simd-once: expected one request line on stdin");
        return 2;
    }
    let reply = match proto::parse_request(line.trim_end()) {
        Err(e) => proto::err_response(0, proto::ErrorKind::Proto, &e, None),
        Ok(proto::Request::Run(req)) => {
            let mut slot = exec::WarmSlot::new();
            match exec::execute(&mut slot, &req, None) {
                Ok(out) => proto::ok_response(req.id, 0, false, &out.report_json),
                Err(e) => proto::err_response(req.id, e.kind, &e.message, None),
            }
        }
        Ok(proto::Request::Scenario(req)) => scn::handle_once(&req),
        Ok(proto::Request::Health { id })
        | Ok(proto::Request::Metrics { id })
        | Ok(proto::Request::Shutdown { id }) => proto::err_response(
            id,
            proto::ErrorKind::Proto,
            "simd-once only handles runs",
            None,
        ),
    };
    let mut out = std::io::stdout();
    let _ = writeln!(out, "{reply}");
    let _ = out.flush();
    0
}

/// Usage text for the daemon subcommands (shared by `simd` and
/// `simctl`).
pub const USAGE: &str = "\
simd subcommands:
  serve                       run the resident daemon (EMU_SIMD_* env knobs)
  client [flags]              submit runs / health / shutdown to a daemon
      --addr H:P --preset P --elems N --threads A,B,C --requests N
      --kernel K --strategy S --single-nodelet --deadline-ms N
      --max-events N --seed N --retries N --backoff-ms N
      --health --shutdown --out FILE
  simd-once                   execute one request line from stdin, cold
  simd-bench [flags]          warm-pool vs cold-process service benchmark
      --requests N --workers N --elems N --threads N --gate [MIN] --out FILE
  top [flags]                 live dashboard over the daemon's metrics op
      --addr H:P --interval MS --once --count N
";

/// Dispatch a daemon subcommand (`serve`, `client`, `simd-once`,
/// `simd-bench`). Returns the process exit code.
pub fn dispatch(args: &[String]) -> i32 {
    let Some(cmd) = args.first() else {
        eprint!("{USAGE}");
        return 2;
    };
    match cmd.as_str() {
        "serve" => match server::serve(serve_opts_from_env()) {
            Ok(summary) => {
                if summary.violations.is_empty() {
                    0
                } else {
                    for v in &summary.violations {
                        eprintln!("simd: invariant violated: {v}");
                    }
                    1
                }
            }
            Err(e) => {
                eprintln!("simd serve: {e}");
                1
            }
        },
        "client" => match client::run_cli(&args[1..]) {
            Ok(()) => 0,
            Err(e) => {
                eprintln!("simd client: {e}");
                1
            }
        },
        "once" | "simd-once" => run_once_stdin(),
        "top" => match top::run_cli(&args[1..]) {
            Ok(()) => 0,
            Err(e) => {
                eprintln!("simd top: {e}");
                1
            }
        },
        "bench" | "simd-bench" => match bench_cli(&args[1..]) {
            Ok(pass) => {
                if pass {
                    0
                } else {
                    1
                }
            }
            Err(e) => {
                eprintln!("simd bench: {e}");
                1
            }
        },
        other => {
            eprintln!("unknown simd subcommand {other:?}");
            eprint!("{USAGE}");
            2
        }
    }
}

fn bench_cli(args: &[String]) -> Result<bool, String> {
    let mut opts = bench::BenchOpts::default();
    let mut out: Option<String> = None;
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--requests" => {
                opts.requests = it
                    .next()
                    .ok_or("--requests needs a value")?
                    .parse()
                    .map_err(|_| "bad --requests")?;
            }
            "--workers" => {
                opts.workers = it
                    .next()
                    .ok_or("--workers needs a value")?
                    .parse()
                    .map_err(|_| "bad --workers")?;
            }
            "--elems" => {
                opts.elems = it
                    .next()
                    .ok_or("--elems needs a value")?
                    .parse()
                    .map_err(|_| "bad --elems")?;
            }
            "--threads" => {
                opts.threads = it
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|_| "bad --threads")?;
            }
            "--gate" => {
                // Optional value; default threshold 2.0, overridable by
                // EMU_SIMD_GATE_MIN or an inline number.
                let inline = it.peek().and_then(|v| v.parse::<f64>().ok()).inspect(|_| {
                    it.next();
                });
                let min = inline.unwrap_or_else(|| {
                    std::env::var("EMU_SIMD_GATE_MIN")
                        .ok()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or(2.0)
                });
                opts.gate_min = Some(min);
            }
            "--out" => out = Some(it.next().ok_or("--out needs a value")?.clone()),
            other => return Err(format!("unknown bench flag {other:?}")),
        }
    }
    let (json, pass) = bench::run_bench(&opts)?;
    println!("{json}");
    if let Some(path) = out {
        if let Some(dir) = std::path::Path::new(&path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        std::fs::write(&path, format!("{json}\n")).map_err(|e| format!("write {path}: {e}"))?;
    }
    if !pass {
        eprintln!("simd bench: warm/cold speedup gate FAILED: {json}");
    }
    Ok(pass)
}
