//! Request execution on a (possibly warm) engine slot.
//!
//! Each pool worker owns one [`WarmSlot`]. A run request resolves to a
//! [`MachineConfig`] plus a seeding step; if the slot holds an engine
//! built for an identical config it is [`Engine::reset`] and reused
//! (`warm`), otherwise a fresh engine is built (`cold`). Warm reuse is
//! byte-identical to cold by the `reset_reuse` regression suite in
//! emu-core, and every successful report is re-checked here against
//! the audit invariants before it leaves the daemon.
//!
//! Any failed run discards the slot's engine: a partially drained or
//! faulted engine is never reused.

use crate::proto::{ErrorKind, RunRequest, Spec};
use emu_core::json::report_json;
use emu_core::prelude::*;
use membench::stream::{run_stream_on, stream_checksum, EmuStreamConfig, StreamKernel};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

/// A worker's persistent engine, keyed by the config that built it.
#[derive(Default)]
pub struct WarmSlot(Option<(String, Engine)>);

impl WarmSlot {
    /// An empty (cold) slot.
    pub fn new() -> Self {
        WarmSlot(None)
    }
}

/// A typed execution failure, convertible to a wire error.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecError {
    /// Wire category.
    pub kind: ErrorKind,
    /// Human-readable detail.
    pub message: String,
}

impl ExecError {
    fn new(kind: ErrorKind, message: impl Into<String>) -> Self {
        ExecError {
            kind,
            message: message.into(),
        }
    }
}

/// A successful execution.
#[derive(Debug, Clone)]
pub struct ExecOutcome {
    /// The exact [`report_json`] document for the run, labeled `"run"`.
    pub report_json: String,
    /// Whether a warm engine was reused (vs built cold).
    pub warm: bool,
    /// The config key the engine was parked under (see [`spec_key`]) —
    /// the pool publishes it for sticky routing.
    pub config_key: String,
}

/// The warm-slot key a spec resolves to: the debug rendering of its
/// [`MachineConfig`]. Two requests with the same key can share a warm
/// engine, which is what the pool's sticky router matches on. `None`
/// when the spec does not resolve (the run would fail as `proto`
/// anyway, so routing it anywhere is fine).
pub fn spec_key(spec: &Spec) -> Option<String> {
    let plan = resolve(spec).ok()?;
    let cfg = match &plan {
        Plan::Case(case) => &case.cfg,
        Plan::Stream(cfg, _) => cfg,
        Plan::ScenarioPoint(_, point) => &point.cfg,
    };
    Some(format!("{cfg:?}"))
}

/// Resolve a preset name using the same vocabulary as the bench CLI
/// (shared resolver in [`presets::by_name`]).
pub fn preset_by_name(name: &str) -> Result<MachineConfig, String> {
    presets::by_name(name)
}

fn kernel_by_name(name: &str) -> Result<StreamKernel, String> {
    match name {
        "add" => Ok(StreamKernel::Add),
        "copy" => Ok(StreamKernel::Copy),
        "scale" => Ok(StreamKernel::Scale),
        "triad" => Ok(StreamKernel::Triad),
        other => Err(format!(
            "unknown kernel {other:?}; one of: add, copy, scale, triad"
        )),
    }
}

fn strategy_by_name(name: &str) -> Result<SpawnStrategy, String> {
    match name {
        "serial" => Ok(SpawnStrategy::Serial),
        "recursive" => Ok(SpawnStrategy::Recursive),
        "serial-remote" => Ok(SpawnStrategy::SerialRemote),
        "recursive-remote" => Ok(SpawnStrategy::RecursiveRemote),
        other => Err(format!(
            "unknown strategy {other:?}; one of: serial, recursive, serial-remote, recursive-remote"
        )),
    }
}

enum Plan {
    Case(conformance::fuzz::FuzzCase),
    Stream(MachineConfig, EmuStreamConfig),
    ScenarioPoint(Box<scenario::Scenario>, scenario::Point),
}

/// Whether daemon runs may be served from (or published to) the result
/// cache right now: the cache must be enabled and no process-global
/// telemetry armed.
fn cache_active() -> bool {
    runcache::enabled()
        && !emu_core::trace::collecting_reports()
        && !emu_core::trace::global().enabled()
        && !emu_core::engine::phase_profile()
}

/// Everything the pool needs to cache one run: the content digest, a
/// display label, and the self-contained re-run recipe consumed by
/// `simctl cache verify`.
pub struct CachePlan {
    /// Content digest the report is stored under.
    pub digest: String,
    /// Human-readable label for `cache stats`.
    pub label: String,
    /// Re-run recipe (`case:…` or `stream\nk=v…`).
    pub recipe: String,
}

/// The cache plan for a run request, or `None` when the request is not
/// cacheable: cache off, telemetry armed, unresolvable spec, or a
/// scenario point (those go through the scenario crate's own cache).
///
/// The digest hashes fully-resolved content — the decoded case
/// re-encoded in canonical form, or the resolved machine + stream
/// configs — so formatting differences hash identically and a preset
/// definition change lands on a new key. Event/deadline budgets are
/// excluded: they do not alter the report of a run that completes.
pub fn cache_plan(spec: &Spec) -> Option<CachePlan> {
    if !cache_active() {
        return None;
    }
    match resolve(spec).ok()? {
        Plan::Case(case) => {
            let text = conformance::fuzz::encode(&case);
            let mut k = runcache::Key::new("simd-case");
            k.record("case", &text);
            Some(CachePlan {
                digest: k.digest(),
                label: format!(
                    "case {}n/{}t",
                    case.cfg.total_nodelets(),
                    case.threads.len()
                ),
                recipe: format!("case:{text}"),
            })
        }
        Plan::Stream(cfg, sc) => {
            let Spec::Stream {
                preset,
                elems,
                threads,
                kernel,
                strategy,
                single_nodelet,
                stack_touch_period,
            } = spec
            else {
                return None;
            };
            let mut k = runcache::Key::new("simd-stream");
            k.record_debug("machine", &cfg);
            k.record_debug("stream", &sc);
            Some(CachePlan {
                digest: k.digest(),
                label: format!("stream {preset} {elems}x{threads}"),
                recipe: format!(
                    "stream\npreset={preset}\nelems={elems}\nthreads={threads}\n\
                     kernel={kernel}\nstrategy={strategy}\nsingle_nodelet={single_nodelet}\n\
                     stack_touch_period={stack_touch_period}"
                ),
            })
        }
        Plan::ScenarioPoint(..) => None,
    }
}

/// Rebuild the [`Spec`] a `stream` recipe describes (the inverse of
/// [`cache_plan`]'s recipe rendering). Used by `simctl cache verify`.
pub fn spec_from_stream_recipe(recipe: &str) -> Result<Spec, String> {
    let mut preset = None;
    let mut elems = None;
    let mut threads = None;
    let mut kernel = None;
    let mut strategy = None;
    let mut single_nodelet = None;
    let mut stack_touch_period = None;
    for line in recipe.lines().skip(1) {
        let (key, val) = line
            .split_once('=')
            .ok_or_else(|| format!("bad recipe line {line:?}"))?;
        match key {
            "preset" => preset = Some(val.to_string()),
            "elems" => elems = val.parse().ok(),
            "threads" => threads = val.parse().ok(),
            "kernel" => kernel = Some(val.to_string()),
            "strategy" => strategy = Some(val.to_string()),
            "single_nodelet" => single_nodelet = val.parse().ok(),
            "stack_touch_period" => stack_touch_period = val.parse().ok(),
            other => return Err(format!("unknown recipe key {other:?}")),
        }
    }
    Ok(Spec::Stream {
        preset: preset.ok_or("recipe missing preset")?,
        elems: elems.ok_or("recipe missing elems")?,
        threads: threads.ok_or("recipe missing threads")?,
        kernel: kernel.ok_or("recipe missing kernel")?,
        strategy: strategy.ok_or("recipe missing strategy")?,
        single_nodelet: single_nodelet.ok_or("recipe missing single_nodelet")?,
        stack_touch_period: stack_touch_period.ok_or("recipe missing stack_touch_period")?,
    })
}

fn resolve(spec: &Spec) -> Result<Plan, ExecError> {
    match spec {
        Spec::Case { text } => {
            let case = conformance::fuzz::decode(text)
                .map_err(|e| ExecError::new(ErrorKind::Proto, format!("bad case: {e}")))?;
            Ok(Plan::Case(case))
        }
        Spec::Stream {
            preset,
            elems,
            threads,
            kernel,
            strategy,
            single_nodelet,
            stack_touch_period,
        } => {
            let proto = |e| ExecError::new(ErrorKind::Proto, e);
            let cfg = preset_by_name(preset).map_err(proto)?;
            if *elems == 0 || *threads == 0 {
                return Err(ExecError::new(
                    ErrorKind::Proto,
                    "stream spec needs elems > 0 and threads > 0",
                ));
            }
            let sc = EmuStreamConfig {
                total_elems: *elems,
                nthreads: *threads,
                strategy: strategy_by_name(strategy).map_err(proto)?,
                kernel: kernel_by_name(kernel).map_err(proto)?,
                single_nodelet: *single_nodelet,
                stack_touch_period: *stack_touch_period,
            };
            Ok(Plan::Stream(cfg, sc))
        }
        Spec::ScenarioPoint { text, index } => {
            let proto = |e| ExecError::new(ErrorKind::Proto, e);
            let s = scenario::parse(text).map_err(|e| proto(format!("bad scenario: {e}")))?;
            let mut points = scenario::resolve(&s).map_err(proto)?;
            if *index >= points.len() {
                return Err(proto(format!(
                    "scenario {:?} has {} points; index {index} is out of range",
                    s.name,
                    points.len()
                )));
            }
            Ok(Plan::ScenarioPoint(Box::new(s), points.swap_remove(*index)))
        }
    }
}

fn sim_error(e: SimError) -> ExecError {
    let kind = match e {
        SimError::DeadlineExceeded { .. } => ErrorKind::Deadline,
        SimError::EventCapExceeded { .. } => ErrorKind::EventCap,
        _ => ErrorKind::Sim,
    };
    ExecError::new(kind, e.to_string())
}

/// Execute one run request on `slot`.
///
/// `cancel` is the watchdog flag armed by the pool's deadline timer;
/// the engine polls it cooperatively and raises
/// [`SimError::DeadlineExceeded`] when it trips. On any error the
/// slot's engine is discarded; on success it is parked for the next
/// request with a matching config.
pub fn execute(
    slot: &mut WarmSlot,
    req: &RunRequest,
    cancel: Option<(Arc<AtomicBool>, u64)>,
) -> Result<ExecOutcome, ExecError> {
    let plan = resolve(&req.spec)?;

    // A scenario point runs through the scenario crate's own runner
    // (which builds the workload's engines, audits every report, and
    // verifies the result against the functional oracle), so it never
    // touches this worker's parked engine. Deadline and event budgets
    // do not reach inside `run_point`; problems travel back as data in
    // the outcome document so the server can evaluate the scenario's
    // expect block over every point (see `crate::scn`).
    if let Plan::ScenarioPoint(s, point) = &plan {
        let outcome = scenario::run_point(s, point);
        return Ok(ExecOutcome {
            report_json: crate::scn::point_outcome_json(&outcome),
            warm: false,
            config_key: format!("{:?}", point.cfg),
        });
    }

    let cfg = match &plan {
        Plan::Case(case) => &case.cfg,
        Plan::Stream(cfg, _) => cfg,
        Plan::ScenarioPoint(..) => unreachable!("handled above"),
    };
    let key = format!("{cfg:?}");

    // Warm path: identical config => reset and reuse. Anything else is
    // a cold build (the old engine, if any, is simply replaced).
    let (mut engine, warm) = match slot.0.take() {
        Some((k, mut e)) if k == key => {
            e.reset();
            (e, true)
        }
        _ => (Engine::new(cfg.clone()).map_err(sim_error)?, false),
    };

    engine.set_event_cap(req.max_events);
    if let Some((flag, ms)) = cancel {
        engine.set_cancel(flag, ms);
    }

    let report = match &plan {
        Plan::Case(case) => {
            conformance::fuzz::seed_case(&mut engine, case).map_err(sim_error)?;
            engine.run_once().map_err(sim_error)?
        }
        Plan::Stream(_, sc) => {
            let res = run_stream_on(&mut engine, sc).map_err(sim_error)?;
            let want = stream_checksum(sc.total_elems, sc.kernel);
            if res.checksum != want {
                return Err(ExecError::new(
                    ErrorKind::Audit,
                    format!(
                        "stream checksum mismatch: got {:#x}, want {:#x}",
                        res.checksum, want
                    ),
                ));
            }
            res.report
        }
        Plan::ScenarioPoint(..) => unreachable!("handled above"),
    };

    // A finished engine is drained but structurally sound; audit the
    // report before vouching for it, then park the engine for reuse.
    let violations = audit(cfg, &report);
    if !violations.is_empty() {
        let joined: Vec<String> = violations.iter().map(|v| v.to_string()).collect();
        return Err(ExecError::new(ErrorKind::Audit, joined.join("; ")));
    }
    engine.clear_cancel();
    slot.0 = Some((key.clone(), engine));

    Ok(ExecOutcome {
        report_json: report_json("run", &report),
        warm,
        config_key: key,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::Chaos;

    fn stream_req(id: u64, elems: u64) -> RunRequest {
        RunRequest {
            id,
            spec: Spec::Stream {
                preset: "chick".into(),
                elems,
                threads: 16,
                kernel: "add".into(),
                strategy: "serial".into(),
                single_nodelet: true,
                stack_touch_period: 4,
            },
            deadline_ms: None,
            max_events: None,
            chaos: None,
        }
    }

    #[test]
    fn warm_reuse_is_byte_identical_to_cold() {
        let mut slot = WarmSlot::new();
        // First request builds cold; dirty the slot with a different size.
        let first = execute(&mut slot, &stream_req(1, 1024), None).unwrap();
        assert!(!first.warm);
        let warm = execute(&mut slot, &stream_req(2, 512), None).unwrap();
        assert!(warm.warm);

        let mut cold_slot = WarmSlot::new();
        let cold = execute(&mut cold_slot, &stream_req(3, 512), None).unwrap();
        assert_eq!(warm.report_json, cold.report_json);
    }

    #[test]
    fn case_spec_executes_and_reuses() {
        let case = "# case\nthread=0 L0:8 C5 S1:8 M0\nthread=3 A2:8 C9\n";
        let req = RunRequest {
            id: 7,
            spec: Spec::Case { text: case.into() },
            deadline_ms: None,
            max_events: None,
            chaos: None,
        };
        let mut slot = WarmSlot::new();
        let a = execute(&mut slot, &req, None).unwrap();
        assert!(!a.warm);
        let b = execute(&mut slot, &req, None).unwrap();
        assert!(b.warm);
        assert_eq!(a.report_json, b.report_json);
    }

    #[test]
    fn proto_errors_are_typed() {
        let mut slot = WarmSlot::new();
        let bad = RunRequest {
            id: 1,
            spec: Spec::Case {
                text: "nodes=0\n".into(),
            },
            deadline_ms: None,
            max_events: None,
            chaos: None,
        };
        let e = execute(&mut slot, &bad, None).unwrap_err();
        assert_eq!(e.kind, ErrorKind::Proto);

        let mut req = stream_req(2, 1024);
        req.spec = Spec::Stream {
            preset: "nope".into(),
            elems: 1,
            threads: 1,
            kernel: "add".into(),
            strategy: "serial".into(),
            single_nodelet: true,
            stack_touch_period: 0,
        };
        assert_eq!(
            execute(&mut slot, &req, None).unwrap_err().kind,
            ErrorKind::Proto
        );
    }

    #[test]
    fn event_cap_and_deadline_map_to_typed_errors_and_recover() {
        let mut slot = WarmSlot::new();
        let mut req = stream_req(1, 2048);
        req.max_events = Some(50);
        let e = execute(&mut slot, &req, None).unwrap_err();
        assert_eq!(e.kind, ErrorKind::EventCap);

        // The failed run discarded the engine; the next run is cold and
        // still byte-identical to a fresh slot.
        let ok = execute(&mut slot, &stream_req(2, 512), None).unwrap();
        assert!(!ok.warm);

        let tripped = Arc::new(AtomicBool::new(true));
        let e = execute(&mut slot, &stream_req(3, 2048), Some((tripped, 9))).unwrap_err();
        assert_eq!(e.kind, ErrorKind::Deadline);

        let mut fresh = WarmSlot::new();
        let cold = execute(&mut fresh, &stream_req(4, 512), None).unwrap();
        assert_eq!(ok.report_json, cold.report_json);
    }

    #[test]
    fn chaos_marker_is_inert_here() {
        // The panic directive is the pool's job; execute() ignores it.
        let mut slot = WarmSlot::new();
        let mut req = stream_req(1, 256);
        req.chaos = Some(Chaos::Panic);
        assert!(execute(&mut slot, &req, None).is_ok());
    }
}
