//! JSON reading for the daemon protocol.
//!
//! The daemon used to carry its own recursive-descent reader here; that
//! and `emu_core::json::json_ok`'s validating scanner were two
//! implementations of "strict JSON" that could silently drift apart
//! (one rejecting a duplicate key or lone surrogate the other let
//! through). The reader now lives in [`emu_core::jsonread`] and both
//! consumers share it; this module re-exports it under the old path so
//! protocol code keeps reading `parse::parse`.

pub use emu_core::jsonread::{parse, Value};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_protocol_shapes_through_the_shared_reader() {
        let v =
            parse(r#"{"op":"run","id":7,"spec":{"kind":"case","case":"a\nb"},"deadline_ms":250}"#)
                .unwrap();
        assert_eq!(v.get("op").unwrap().as_str(), Some("run"));
        assert_eq!(v.get("id").unwrap().as_u64(), Some(7));
        let spec = v.get("spec").unwrap();
        assert_eq!(spec.get("kind").unwrap().as_str(), Some("case"));
        assert_eq!(spec.get("case").unwrap().as_str(), Some("a\nb"));
    }

    #[test]
    fn shared_reader_and_json_ok_agree() {
        // The satellite invariant: the protocol parser and the artifact
        // validator are the same grammar. Spot-check both directions
        // here; the full shared rejection corpus lives in
        // `tests/json_corpus.rs`.
        for doc in [
            r#"{"a":1,"a":2}"#,
            "\"\\ud800\"",
            "NaN",
            "[1,]",
            r#"{"ok":true}"#,
            "[1,2,3]",
        ] {
            assert_eq!(
                parse(doc).is_ok(),
                emu_core::json::json_ok(doc),
                "diverged on {doc:?}"
            );
        }
    }
}
