//! The resident daemon: a TCP listener speaking the JSONL protocol,
//! feeding the warm [`Pool`](crate::pool::Pool), with graceful drain.
//!
//! Lifecycle: bind, announce readiness on stdout, serve until a
//! `shutdown` request or a SIGTERM/SIGINT arrives, then drain — stop
//! admitting (new runs get `shutting_down`), let in-flight work finish
//! or deadline out, and flush a final telemetry summary with the pool's
//! conservation audit.

use crate::pool::{Pool, PoolConfig, Reject, StatsSnapshot};
use crate::proto::{err_response, parse_request, ErrorKind, Request};
use emu_core::obs;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::Duration;

/// The server's live series: connection churn, wire traffic, and
/// scrape counts. Resolved once; every update is one relaxed atomic.
struct ServerObs {
    connections: &'static obs::Counter,
    active: &'static obs::Gauge,
    bytes_in: &'static obs::Counter,
    bytes_out: &'static obs::Counter,
    parse_errors: &'static obs::Counter,
    scrapes: &'static obs::Counter,
}

fn server_obs() -> &'static ServerObs {
    static CELLS: std::sync::OnceLock<ServerObs> = std::sync::OnceLock::new();
    CELLS.get_or_init(|| ServerObs {
        connections: obs::counter("simd_server_connections_total"),
        active: obs::gauge("simd_server_connections_active"),
        bytes_in: obs::counter("simd_server_bytes_in_total"),
        bytes_out: obs::counter("simd_server_bytes_out_total"),
        parse_errors: obs::counter("simd_server_parse_errors_total"),
        scrapes: obs::counter("simd_server_metrics_scrapes_total"),
    })
}

/// Daemon configuration (see `EMU_SIMD_*` in EXPERIMENTS.md).
#[derive(Debug, Clone)]
pub struct ServeOpts {
    /// Listen address, e.g. `127.0.0.1:7677` (port 0 picks a free port).
    pub addr: String,
    /// Worker pool sizing and per-request defaults.
    pub pool: PoolConfig,
    /// Budget for the graceful drain, in milliseconds.
    pub drain_ms: u64,
    /// Maximum concurrent client connections.
    pub max_conns: usize,
    /// Optional path for the final telemetry summary artifact.
    pub telemetry_path: Option<String>,
    /// Install SIGTERM/SIGINT handlers (the daemon binary does; tests
    /// and in-process servers use the `shutdown` op instead).
    pub handle_signals: bool,
    /// Optional bind address for the plain-text Prometheus exporter
    /// (`EMU_SIMD_METRICS_ADDR`; port 0 picks a free port; `None`
    /// disables the endpoint).
    pub metrics_addr: Option<String>,
}

impl Default for ServeOpts {
    fn default() -> Self {
        ServeOpts {
            addr: "127.0.0.1:7677".into(),
            pool: PoolConfig::default(),
            drain_ms: 10_000,
            max_conns: 32,
            telemetry_path: None,
            handle_signals: false,
            metrics_addr: None,
        }
    }
}

/// What the daemon observed over its lifetime, returned after drain.
#[derive(Debug, Clone)]
pub struct ServeSummary {
    /// Final pool counters.
    pub stats: StatsSnapshot,
    /// Conservation-law violations (must be empty for a healthy run).
    pub violations: Vec<String>,
    /// Whether every in-flight request finished within the drain budget.
    pub drained: bool,
}

impl ServeSummary {
    /// Serialize the drain summary as one JSON line.
    pub fn json(&self) -> String {
        let viol: Vec<String> = self
            .violations
            .iter()
            .map(|v| emu_core::json::jstr(v))
            .collect();
        format!(
            "{{\"event\":\"drain\",\"drained\":{},\"violations\":[{}],\"stats\":{}}}",
            self.drained,
            viol.join(","),
            self.stats.json()
        )
    }
}

#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    static STOP: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_term(_sig: i32) {
        STOP.store(true, Ordering::SeqCst);
    }

    /// Route SIGTERM and SIGINT to a stop flag (async-signal-safe: the
    /// handler only stores an atomic).
    pub fn install() {
        extern "C" {
            fn signal(sig: i32, handler: extern "C" fn(i32)) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGTERM, on_term);
            signal(SIGINT, on_term);
        }
    }

    pub fn stop_requested() -> bool {
        STOP.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod sig {
    pub fn install() {}
    pub fn stop_requested() -> bool {
        false
    }
}

/// Run the daemon to completion. Blocks until shutdown + drain.
pub fn serve(opts: ServeOpts) -> Result<ServeSummary, String> {
    serve_with(opts, |_| {})
}

/// [`serve`], invoking `on_ready` with the bound address once the
/// listener is live (used by in-process tests and port-0 binds).
pub fn serve_with(
    opts: ServeOpts,
    on_ready: impl FnOnce(SocketAddr),
) -> Result<ServeSummary, String> {
    let listener = TcpListener::bind(&opts.addr).map_err(|e| format!("bind {}: {e}", opts.addr))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("set_nonblocking: {e}"))?;
    let local = listener.local_addr().map_err(|e| e.to_string())?;
    if opts.handle_signals {
        sig::install();
    }

    let pool = Arc::new(Pool::start(opts.pool.clone()));
    let shutdown = Arc::new(AtomicBool::new(false));
    let conns = Arc::new(AtomicUsize::new(0));

    let metrics_stop = Arc::new(AtomicBool::new(false));
    let metrics = match &opts.metrics_addr {
        Some(addr) => Some(metrics_exporter(addr, Arc::clone(&metrics_stop))?),
        None => None,
    };

    {
        let metrics_field = match &metrics {
            Some((addr, _)) => format!(",\"metrics_addr\":\"{addr}\""),
            None => String::new(),
        };
        let mut out = std::io::stdout();
        let _ = writeln!(
            out,
            "{{\"event\":\"ready\",\"addr\":\"{local}\",\"workers\":{}{metrics_field}}}",
            pool.workers()
        );
        let _ = out.flush();
    }
    on_ready(local);

    while !(shutdown.load(Ordering::SeqCst) || opts.handle_signals && sig::stop_requested()) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if conns.load(Ordering::SeqCst) >= opts.max_conns {
                    let mut s = stream;
                    let _ = writeln!(
                        s,
                        "{}",
                        err_response(0, ErrorKind::Busy, "too many connections", Some(50))
                    );
                    continue;
                }
                conns.fetch_add(1, Ordering::SeqCst);
                let so = server_obs();
                so.connections.inc();
                so.active.add(1);
                let pool = Arc::clone(&pool);
                let shutdown = Arc::clone(&shutdown);
                let conns = Arc::clone(&conns);
                thread::Builder::new()
                    .name("simd-conn".into())
                    .spawn(move || {
                        let _ = handle_conn(stream, &pool, &shutdown);
                        server_obs().active.add(-1);
                        conns.fetch_sub(1, Ordering::SeqCst);
                    })
                    .map_err(|e| format!("spawn connection handler: {e}"))?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(10));
            }
            Err(e) => return Err(format!("accept: {e}")),
        }
    }

    if let Some((_, handle)) = metrics {
        metrics_stop.store(true, Ordering::SeqCst);
        let _ = handle.join();
    }
    let drained = pool.drain(Duration::from_millis(opts.drain_ms));
    let summary = ServeSummary {
        stats: pool.stats().snapshot(),
        violations: pool.stats().reconcile(),
        drained,
    };
    let line = summary.json();
    {
        let mut out = std::io::stdout();
        let _ = writeln!(out, "{line}");
        let _ = out.flush();
    }
    if let Some(path) = &opts.telemetry_path {
        if let Some(dir) = std::path::Path::new(path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        std::fs::write(path, format!("{line}\n")).map_err(|e| format!("write {path}: {e}"))?;
    }
    Ok(summary)
}

/// Serve one connection: requests in, responses out, strictly in order.
fn handle_conn(stream: TcpStream, pool: &Pool, shutdown: &AtomicBool) -> std::io::Result<()> {
    let so = server_obs();
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line?;
        so.bytes_in.add(line.len() as u64 + 1);
        if line.trim().is_empty() {
            continue;
        }
        let reply = match parse_request(&line) {
            Err(e) => {
                so.parse_errors.inc();
                err_response(0, ErrorKind::Proto, &e, None)
            }
            Ok(Request::Health { id }) => {
                format!(
                    "{{\"id\":{id},\"ok\":true,\"health\":{{\"workers\":{},\"draining\":{},\"stats\":{}}}}}",
                    pool.workers(),
                    pool.is_draining(),
                    pool.stats().snapshot().json()
                )
            }
            Ok(Request::Metrics { id }) => {
                format!(
                    "{{\"id\":{id},\"ok\":true,\"metrics\":{}}}",
                    obs::snapshot().json()
                )
            }
            Ok(Request::Shutdown { id }) => {
                shutdown.store(true, Ordering::SeqCst);
                let reply = format!("{{\"id\":{id},\"ok\":true,\"shutting_down\":true}}");
                so.bytes_out.add(reply.len() as u64 + 1);
                writeln!(writer, "{reply}")?;
                writer.flush()?;
                break;
            }
            Ok(Request::Scenario(req)) => crate::scn::handle(pool, &req),
            Ok(Request::Run(req)) => {
                let id = req.id;
                let (tx, rx) = mpsc::channel();
                match pool.submit(req, tx) {
                    Ok(()) => rx.recv().unwrap_or_else(|_| {
                        err_response(id, ErrorKind::Panic, "response channel lost", None)
                    }),
                    Err(Reject::Busy { in_flight }) => err_response(
                        id,
                        ErrorKind::Busy,
                        &format!("admission cap reached ({in_flight} in flight)"),
                        Some(25),
                    ),
                    Err(Reject::Draining) => {
                        err_response(id, ErrorKind::ShuttingDown, "daemon is draining", None)
                    }
                }
            }
        };
        so.bytes_out.add(reply.len() as u64 + 1);
        writeln!(writer, "{reply}")?;
        writer.flush()?;
    }
    Ok(())
}

/// Bind the Prometheus endpoint and serve scrapes until `stop` trips.
/// Hand-rolled HTTP/1.0: read the request head, answer `GET /metrics`
/// with the text exposition format, 404 anything else, close. Returns
/// the bound address (port 0 picks a free one) and the serving thread.
pub fn metrics_exporter(
    addr: &str,
    stop: Arc<AtomicBool>,
) -> Result<(SocketAddr, thread::JoinHandle<()>), String> {
    let listener = TcpListener::bind(addr).map_err(|e| format!("bind metrics {addr}: {e}"))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("metrics set_nonblocking: {e}"))?;
    let local = listener.local_addr().map_err(|e| e.to_string())?;
    let handle = thread::Builder::new()
        .name("simd-metrics".into())
        .spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let _ = serve_scrape(stream);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        thread::sleep(Duration::from_millis(10));
                    }
                    Err(_) => thread::sleep(Duration::from_millis(10)),
                }
            }
        })
        .map_err(|e| format!("spawn metrics exporter: {e}"))?;
    Ok((local, handle))
}

fn serve_scrape(stream: TcpStream) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain the rest of the head so the client never sees a reset
    // before it finishes sending.
    loop {
        let mut header = String::new();
        match reader.read_line(&mut header) {
            Ok(0) => break,
            Ok(_) if header == "\r\n" || header == "\n" => break,
            Ok(_) => {}
            Err(_) => break,
        }
    }
    let mut parts = request_line.split_whitespace();
    let is_metrics =
        parts.next() == Some("GET") && matches!(parts.next(), Some("/metrics") | Some("/metrics/"));
    let mut stream = stream;
    if is_metrics {
        server_obs().scrapes.inc();
        let body = obs::snapshot().prometheus();
        write!(
            stream,
            "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )?;
    } else {
        let body = "not found; try GET /metrics\n";
        write!(
            stream,
            "HTTP/1.0 404 Not Found\r\nContent-Type: text/plain\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )?;
    }
    stream.flush()
}
